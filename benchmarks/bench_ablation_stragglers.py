"""Ablation: heterogeneous hosts and stragglers (sync-policy motivation).

The paper's testbed mixed 2.8 and 3.2 GHz Pentium 4s.  Under
``wait_for_all`` a wave completes at the *slowest* contributor, so host
heterogeneity taxes every level of the tree; ``time_out`` trades
completeness for latency.  This ablation quantifies both effects on the
simulator (deterministic speed assignments) and on the live middleware
(an artificially slow leaf plus a ``time_out`` stream).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.topology import deep_topology
from repro.simulate.simnet import SimCosts, SimTBON, WaveMessage

TAG = FIRST_APPLICATION_TAG


def _meanshift_like(topology, node_speed=None):
    leaf = lambda rank: (1.0, WaveMessage(nbytes=4096.0, meta=1))
    merge = lambda rank, msgs: (
        0.01 * len(msgs),
        WaveMessage(nbytes=4096.0, meta=sum(m.meta for m in msgs)),
    )
    return SimTBON(topology, SimCosts(), leaf, merge, node_speed=node_speed)


@pytest.mark.parametrize("spread", [0.0, 0.07, 0.3])
def test_heterogeneity_tax(benchmark, spread):
    """Completion time vs host-speed spread (paper mix ~ 7%).

    Speeds are deterministic in the rank: alternating fast/slow hosts
    around 1.0.  With wait_for_all semantics the slowest leaf gates the
    whole phase, so the tax equals the spread, at every scale.
    """
    topo = deep_topology(256, 16)

    def speed(rank: int) -> float:
        return 1.0 + spread * (1 if rank % 2 == 0 else -1)

    rep = benchmark(lambda: _meanshift_like(topo, speed).run())
    baseline = 1.0 + 0.01 * 16  # leaf + one merge level, roughly
    print(f"\nspread {spread:.0%}: completion {rep.completion_time:.3f}s")
    # The tax tracks the slowest host: t ~ leaf_time / (1 - spread).
    assert rep.completion_time >= 1.0 / (1.0 + spread)
    if spread > 0:
        even = _meanshift_like(topo).run().completion_time
        assert rep.completion_time > even


def test_single_straggler_gates_wait_for_all(benchmark):
    """One 4x-slower leaf delays the whole wait_for_all phase ~4x."""
    topo = deep_topology(64, 8)
    slow_leaf = topo.backends[17]

    def speed(rank: int) -> float:
        return 0.25 if rank == slow_leaf else 1.0

    rep = benchmark(lambda: _meanshift_like(topo, speed).run())
    even = _meanshift_like(topo).run().completion_time
    print(f"\neven {even:.2f}s vs one straggler {rep.completion_time:.2f}s")
    assert rep.completion_time > 3.5 * even


def test_live_timeout_beats_waitforall_with_straggler(benchmark):
    """On the real middleware, time_out delivers before the straggler.

    One leaf sleeps 0.8 s before replying; wait_for_all waits for it,
    time_out (window 0.2 s) serves the other 8 leaves first.
    """
    topo = balanced_topology(3, 2)
    straggler = topo.backends[-1]

    def run() -> tuple[float, int]:
        with Network(topo) as net:
            s = net.new_stream(
                transform="sum", sync="time_out", sync_params={"window": 0.2}
            )

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                if be.rank == straggler:
                    time.sleep(0.8)
                be.send(s.stream_id, TAG, "%d", 1)

            threads = net.run_backends(leaf, join=False)
            t0 = time.perf_counter()
            first = s.recv(timeout=10)
            latency = time.perf_counter() - t0
            # The straggler's contribution arrives in a later batch.
            rest = 0
            try:
                while True:
                    rest += s.recv(timeout=2.0).values[0]
            except TimeoutError:
                pass
            for t in threads:
                t.join(10)
            return latency, int(first.values[0] + rest)

    latency, total = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nfirst batch after {latency:.2f}s; total {total} (all 9 arrive)")
    assert latency < 0.8  # served before the straggler woke up
    assert total == 9  # nothing lost, just delivered late
