"""Experiment **T-throughput** — front-end aggregation load (§2.2 prose).

Paper: "For data aggregation of a moderate flow (performance data of 32
functions), the front-end in Paradyn's original one-to-many architecture
could not process data at the rate it was being produced by more than 32
daemons.  Using MRNet, the front-end easily processed the loads offered
by 512 daemons."
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_throughput_table
from repro.simulate.workload import paradyn_report_stream
from conftest import emit


def test_throughput_table(benchmark):
    table = benchmark(run_throughput_table, (16, 32, 48, 64, 128, 256, 512), 5.0)
    emit(table)
    rows = {x: vals for x, vals in table.rows}
    assert not rows[32][1], "one-to-many keeps up through 32 daemons"
    assert rows[48][1], "one-to-many fails beyond 32 daemons"
    assert not rows[512][3], "the tree easily handles 512 daemons"


@pytest.mark.parametrize("n_daemons", [32, 512])
def test_flat_frontend_utilization_scales_linearly(benchmark, n_daemons):
    run = lambda: paradyn_report_stream(
        n_daemons, aggregate=False, duration=5.0
    ).run()
    rep = benchmark(run)
    print(f"\nflat n={n_daemons}: util {rep.frontend_utilization:.3f}")
    if n_daemons <= 32:
        assert not rep.saturated
    else:
        assert rep.saturated


def test_tree_frontend_unloaded_at_512(benchmark):
    run = lambda: paradyn_report_stream(512, aggregate=True, duration=5.0).run()
    rep = benchmark(run)
    print(f"\ntree n=512: util {rep.frontend_utilization:.3f}, backlog {rep.frontend_backlog:.3f}s")
    assert rep.frontend_utilization < 0.2
    assert rep.delivered_waves > 0
