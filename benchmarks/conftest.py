"""Benchmark-suite fixtures: one real calibration per session.

Run with ``pytest benchmarks/ --benchmark-only``.  Every bench prints
the table it reproduces (visible with ``-s``; EXPERIMENTS.md records the
values) and asserts the paper's shape criteria from DESIGN.md.
"""

from __future__ import annotations

import pytest

import repro.cluster  # noqa: F401 - register filters
import repro.filters_ext  # noqa: F401
from repro.simulate.calibrate import MeanShiftCostModel, calibrate_mean_shift
from repro.tools.profiler import calibrate_parse_cost


@pytest.fixture(scope="session")
def meanshift_model() -> MeanShiftCostModel:
    """Calibrate the mean-shift cost model from the real kernel once."""
    return calibrate_mean_shift()


@pytest.fixture(scope="session")
def parse_cost() -> float:
    """Measured symbol-table parse cost (seconds/byte) on this machine."""
    return calibrate_parse_cost()


def emit(table) -> None:
    """Print a result table under the bench output."""
    print()
    print(table.render(lambda v: f"{v:.4g}" if isinstance(v, float) else str(v)))
