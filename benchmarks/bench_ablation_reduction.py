"""Ablation: the data-reduction property (DESIGN.md design choice).

The paper defines TBON-suited algorithms by three properties; property 2
is "the algorithm's output is lesser in size than its total inputs".
This ablation turns that property off for the mean-shift filter
(``collapse_cell=0`` forwards raw merged data) and measures what happens
to upstream payload sizes and the simulated front-end cost — the
reduction is what keeps deep-tree node work bounded by fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.cluster.datagen import ClusterSpec, leaf_dataset
from repro.cluster.meanshift_filter import MEANSHIFT_FMT, leaf_mean_shift
from repro.simulate.simnet import SimCosts, SimTBON, WaveMessage
from repro.core.topology import flat_topology

TAG = FIRST_APPLICATION_TAG
SPEC = ClusterSpec(points_per_cluster=150)


@pytest.mark.parametrize("collapse", ["on", "off"])
def test_live_payload_growth(benchmark, collapse):
    """Root-payload size with and without the reduction, live middleware."""
    cell = None if collapse == "on" else 0

    def run() -> int:
        topo = balanced_topology(2, 2)
        with Network(topo) as net:
            s = net.new_stream(
                transform="mean_shift",
                sync="wait_for_all",
                transform_params={
                    "bandwidth": 50.0,
                    **({"collapse_cell": 0} if cell == 0 else {}),
                },
            )
            order = {r: i for i, r in enumerate(topo.backends)}

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                pts = leaf_dataset(order[be.rank], SPEC, seed=1)
                d, w, pk, _ = leaf_mean_shift(pts, collapse_cell=cell)
                be.send(s.stream_id, TAG, MEANSHIFT_FMT, d, w, pk)

            net.run_backends(leaf)
            pkt = s.recv(timeout=30)
            return len(pkt.values[0])

    root_points = benchmark(run)
    total_input = 4 * len(leaf_dataset(0, SPEC, seed=1))
    print(f"\ncollapse={collapse}: {root_points} points at the root "
          f"(input total {total_input})")
    if collapse == "on":
        assert root_points < total_input / 3  # a genuine reduction
    else:
        assert root_points == total_input  # raw union forwarded


def test_simulated_frontend_cost_without_reduction(benchmark, meanshift_model):
    """Disable the reduction in the cost model: flat fronts explode.

    With collapse on, a leaf ships ~``leaf_out_points`` representatives;
    without it, the full shard travels and merged sets grow with subtree
    size, so the flat front-end's merge input is N x points_per_leaf —
    an order of magnitude more work at 64 leaves.
    """
    model = meanshift_model
    costs = SimCosts()
    n = 64

    def build(reduced: bool):
        def leaf_fn(rank):
            pts = model.leaf_out_points if reduced else model.points_per_leaf
            return model.leaf_time, WaveMessage(
                nbytes=model.payload_bytes(pts, model.leaf_out_peaks),
                meta=(pts, model.leaf_out_peaks),
            )

        def merge_fn(rank, msgs):
            n_in = sum(m.meta[0] for m in msgs)
            seeds = sum(m.meta[1] for m in msgs)
            cpu = model.merge_cpu(n_in, seeds)
            out_pts = model.collapsed_size(n_in) if reduced else n_in
            return cpu, WaveMessage(
                nbytes=model.payload_bytes(out_pts, model.n_modes),
                meta=(out_pts, model.n_modes),
            )

        return SimTBON(flat_topology(n), costs, leaf_fn, merge_fn)

    def run_pair():
        return (
            build(True).run().completion_time,
            build(False).run().completion_time,
        )

    t_reduced, t_raw = benchmark(run_pair)
    print(f"\nflat {n} leaves: reduced {t_reduced:.2f}s, raw {t_raw:.2f}s "
          f"({t_raw / t_reduced:.1f}x worse without the reduction)")
    assert t_raw > 3 * t_reduced
