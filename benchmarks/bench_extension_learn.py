"""Extension bench: distributed decision-tree building (Section 4 future work).

Not a paper figure — the paper only sketches this — but the design
choice worth measuring: per-round cost of the bidirectional pattern
(model down, statistics up) on the live middleware, and how fitting
scales with shard count when per-shard data is fixed (the Figure-4
scaling regime applied to learning).
"""

from __future__ import annotations

import pytest

from repro import Network, balanced_topology, deep_topology
from repro.learn import (
    distributed_score,
    fit_distributed,
    make_classification_shard,
    union_shards,
    fit_single,
)


@pytest.mark.parametrize("n_leaves", [4, 9, 16])
def test_fit_scaling_with_shards(benchmark, n_leaves):
    """Wall-clock of a depth-4 distributed fit as leaves multiply.

    Every leaf holds the same amount of data, so the sufficient
    statistics stay the same size regardless of scale — rounds cost
    O(tree depth x frontier), not O(total data), which is the TBON
    data-reduction property applied to learning.
    """
    topo = deep_topology(n_leaves, max_fanout=4)
    shards = {
        r: make_classification_shard(i, n_samples=200, seed=13)
        for i, r in enumerate(topo.backends)
    }

    def run():
        with Network(topo) as net:
            return fit_distributed(net, shards, "classify", max_depth=4, n_bins=16)

    tree = benchmark(run)
    print(f"\n{n_leaves} shards: depth {tree.depth}, {tree.n_leaves} leaves, "
          f"root n={tree.nodes[0].n_samples}")
    assert tree.nodes[0].n_samples == 200 * n_leaves


def test_distributed_equals_single(benchmark):
    """The exactness claim, timed: distributed fit == union fit."""
    topo = balanced_topology(3, 2)
    shards = {
        r: make_classification_shard(i, n_samples=150, seed=21)
        for i, r in enumerate(topo.backends)
    }
    X, y = union_shards([shards[r] for r in topo.backends])

    def run():
        with Network(topo) as net:
            return fit_distributed(net, shards, "classify", max_depth=4)

    dist = benchmark(run)
    single = fit_single(X, y, "classify", max_depth=4)
    assert len(dist.nodes) == len(single.nodes)
    assert all(
        a.feature == b.feature and a.threshold == b.threshold
        for a, b in zip(dist.nodes, single.nodes)
    )


def test_cross_validation_round(benchmark):
    """One distributed scoring pass (broadcast model, reduce metrics)."""
    topo = balanced_topology(3, 2)
    shards = {
        r: make_classification_shard(i, n_samples=200, seed=31)
        for i, r in enumerate(topo.backends)
    }
    net = Network(topo)
    try:
        tree = fit_distributed(net, shards, "classify", max_depth=5, n_bins=32)
        acc = benchmark(distributed_score, net, tree, shards)
        print(f"\ntrain accuracy {acc:.3f}")
        assert acc > 0.9
    finally:
        net.shutdown()
