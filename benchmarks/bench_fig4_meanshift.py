"""Experiment **Fig. 4** — mean-shift processing times (the headline figure).

Reproduces the paper's Figure 4: processing time of the distributed
mean-shift for the *single-node*, *flat (1-deep)* and *deep (2-deep)*
organizations across input scale factors 16..324, with the simulator's
cost model calibrated from the real NumPy kernel on this machine.

Also includes a **live** cross-check at laptop scale: the actual
middleware (threads, real packets, real mean-shift) at small leaf
counts, verifying the distributed runs beat the single node on real
wall-clock — the simulator extends the same trend to cluster scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, flat_topology
from repro.bench.harness import run_fig4
from repro.cluster.datagen import ClusterSpec, full_dataset, leaf_dataset
from repro.cluster.meanshift import mean_shift
from repro.cluster.meanshift_filter import MEANSHIFT_FMT, leaf_mean_shift
from conftest import emit

TAG = FIRST_APPLICATION_TAG


def test_fig4_simulated(benchmark, meanshift_model):
    """The full Figure 4 sweep (simulated at paper scale)."""
    result = benchmark(run_fig4, meanshift_model)
    emit(result.table)
    violations = result.check_shape()
    assert violations == [], violations


def test_fig4_live_smallscale(benchmark):
    """Real middleware + real kernel at laptop scale (4 leaves).

    Measures the paper's protocol: start-control broadcast to results at
    the front-end, compared against the single-node run on the union.
    """
    spec = ClusterSpec(points_per_cluster=400)
    n_leaves = 4
    leaf_data = [leaf_dataset(i, spec, seed=42) for i in range(n_leaves)]

    def distributed_run() -> float:
        topo = flat_topology(n_leaves)
        with Network(topo) as net:
            s = net.new_stream(
                transform="mean_shift",
                sync="wait_for_all",
                transform_params={"bandwidth": 50.0},
            )
            order = {r: i for i, r in enumerate(topo.backends)}

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.recv(timeout=30, stream_id=s.stream_id)  # start control
                d, w, pk, _ = leaf_mean_shift(leaf_data[order[be.rank]])
                be.send(s.stream_id, TAG, MEANSHIFT_FMT, d, w, pk)

            threads = net.run_backends(leaf, join=False)
            t0 = time.perf_counter()
            s.send(TAG, "%d", 0)  # the paper's start-control broadcast
            pkt = s.recv(timeout=60)
            elapsed = time.perf_counter() - t0
            for t in threads:
                t.join(30)
            assert len(pkt.values[2]) >= 1
            return elapsed

    dist_time = benchmark(distributed_run)

    t0 = time.perf_counter()
    single = mean_shift(full_dataset(n_leaves, spec, seed=42))
    single_time = time.perf_counter() - t0
    print(
        f"\nlive 4-leaf: single {single_time:.3f}s, distributed {dist_time:.3f}s, "
        f"speedup {single_time / dist_time:.2f}x, peaks {len(single.peaks)}"
    )
    # Distribution must not be slower than the single node even at this
    # tiny scale (the paper's flat trees beat single everywhere).
    assert dist_time < single_time


@pytest.mark.parametrize("scale", [64, 324])
def test_fig4_point_deep_vs_flat(benchmark, meanshift_model, scale):
    """Single-scale checks: the deep-over-flat advantage at 64 and 324."""
    from repro.core.topology import flat_topology as flat
    from repro.simulate.workload import meanshift_deep_topology, meanshift_sim

    def run_pair():
        t_flat = meanshift_sim(flat(scale), meanshift_model).run().completion_time
        t_deep = (
            meanshift_sim(meanshift_deep_topology(scale), meanshift_model)
            .run()
            .completion_time
        )
        return t_flat, t_deep

    t_flat, t_deep = benchmark(run_pair)
    print(f"\nscale {scale}: flat {t_flat:.3f}s deep {t_deep:.3f}s")
    if scale >= 128:
        assert t_deep < t_flat / 10
