"""The paper's open question, answered with the calibrated model.

Section 3.2 closes with: "An open question is whether even deeper trees
with limited fan-outs would yield a constant execution time as the
scale increases."

This bench fixes the fan-out (so per-node work is bounded) and lets the
tree deepen as the scale grows, sweeping well past the paper's 324
leaves.  With the mean-shift workload's collapsed payloads, per-level
work is constant, so total time grows only with *depth* — O(log N) — a
gentle, plainly non-constant but asymptotically negligible growth:
deeper bounded-fan-out trees are the right answer at scale.
"""

from __future__ import annotations

import math

import pytest

from repro.core.topology import deep_topology
from repro.simulate.workload import meanshift_sim
from repro.bench.reporting import SeriesTable, fmt_seconds
from conftest import emit


SCALES = (64, 256, 1024, 4096)
FANOUT = 8


def test_depth_sweep_fixed_fanout(benchmark, meanshift_model):
    """Fixed fan-out 8, depth grows with scale: time ~ leaf + depth x const."""

    def run() -> SeriesTable:
        table = SeriesTable(
            "leaves",
            ["depth", "time", "minus_leaf"],
            title=f"Open question — fixed fan-out {FANOUT}, growing depth",
        )
        for n in SCALES:
            topo = deep_topology(n, FANOUT)
            t = meanshift_sim(topo, meanshift_model).run().completion_time
            table.add_row(n, [topo.depth(), t, t - meanshift_model.leaf_time])
        return table

    table = benchmark(run)
    emit(table)
    times = table.series("time")
    depths = table.series("depth")
    overhead = [t - meanshift_model.leaf_time for t in times]
    # Not constant (each level adds a merge)...
    assert times[-1] > times[0]
    # ...but the per-level overhead is: overhead/depth stays flat within 2x
    per_level = [o / d for o, d in zip(overhead, depths)]
    assert max(per_level) < 2 * min(per_level)
    # and the 64x scale-up costs well under 2x in total time.
    assert times[-1] < 2 * times[0]


@pytest.mark.parametrize("n", [1024, 4096])
def test_deeper_beats_wider_at_scale(benchmark, meanshift_model, n):
    """At large scale, a depth-3+ bounded-fan-out tree beats the 2-deep
    sqrt(N)-fan-out tree the paper measured — answering the question in
    the affirmative direction."""
    f2 = max(2, math.ceil(math.sqrt(n)))

    def run_pair():
        t_2deep = (
            meanshift_sim(deep_topology(n, f2), meanshift_model).run().completion_time
        )
        t_deeper = (
            meanshift_sim(deep_topology(n, FANOUT), meanshift_model)
            .run()
            .completion_time
        )
        return t_2deep, t_deeper

    t_2deep, t_deeper = benchmark(run_pair)
    print(
        f"\n{n} leaves: 2-deep (fan-out {f2}) {t_2deep:.2f}s vs "
        f"bounded fan-out {FANOUT} {t_deeper:.2f}s"
    )
    assert t_deeper < t_2deep
