"""Experiment **T-startup** — Paradyn startup at 512 daemons (§2.2 prose).

Paper: "With 512 daemons, these filters improved the tool's startup time
from over 1 minute to under 20 seconds (3.4 speedup)" via tree clock-skew
detection and equivalence-class suppression.  The parse cost is measured
from the real :func:`repro.tools.profiler.parse_symbol_table` and
rescaled to the paper's era (see the module docs); the *speedup ratio*
is hardware-independent.
"""

from __future__ import annotations

from repro import Network, balanced_topology
from repro.bench.harness import run_startup_table
from repro.tools.profiler import live_startup, simulate_startup
from conftest import emit


def test_startup_table_simulated(benchmark, parse_cost):
    # The table uses the pinned P4-era parse cost for reproducible
    # absolutes; the measured modern parse cost is printed alongside so
    # the era scaling (≈25x) is auditable.
    table = benchmark(run_startup_table)
    print(f"\nmeasured parse cost on this machine: {parse_cost * 1e9:.1f} ns/byte")
    emit(table)
    one, tree, speedup = dict(zip(table.xs(), [v for _x, v in table.rows]))[512]
    assert one > 60.0, "one-to-many must exceed the paper's 'over 1 minute'"
    assert tree < 20.0, "TBON startup must stay under the paper's 20 s"
    assert 2.5 < speedup < 6.0


def test_startup_512_single_point(benchmark):
    rep = benchmark(simulate_startup, 512, aggregate=True)
    assert rep.n_daemons == 512
    assert rep.skew_time < 1.0  # tree probing is off the critical path


def test_startup_live_smallscale(benchmark):
    """The live two-phase startup (skew + suppression) on a real network."""

    def run():
        net = Network(balanced_topology(3, 2))
        try:
            return live_startup(net, n_functions=100, n_variants=3)
        finally:
            net.shutdown()

    rep = benchmark(run)
    print(
        f"\nlive startup: {rep.n_daemons} daemons in {rep.total_time:.3f}s, "
        f"{rep.n_classes} classes, skew error {rep.skew_error:.2e}s"
    )
    assert rep.n_classes == 3
    assert rep.skew_error < 1e-3
