"""Experiment **A-logscale** — logarithmic tree scaling (§1/§2 claim).

Paper: "tree-based data communication scales logarithmically with the
number of processes in the network ... data reduction overheads vary
logarithmically with respect to the total number of processes."  The
ablation isolates communication/consolidation cost with a tiny fixed
payload and sweeps process count for flat vs bounded-fan-out trees, and
fan-out itself at fixed scale.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import run_logscale_table
from repro.core.topology import deep_topology, flat_topology
from repro.simulate.simnet import SimCosts, SimTBON, WaveMessage
from conftest import emit


def test_logscale_table(benchmark):
    table = benchmark(run_logscale_table)
    emit(table)
    flat = table.series("flat")
    tree = table.series("tree")
    # Flat grows ~linearly (256x size -> >50x latency); tree near-log.
    assert flat[-1] / flat[0] > 50
    assert tree[-1] / tree[0] < 6


def _tiny_reduction(topology):
    costs = SimCosts()
    leaf = lambda rank: (0.0, WaveMessage(nbytes=1024.0, meta=1))
    merge = lambda rank, msgs: (
        2e-6 * len(msgs),
        WaveMessage(nbytes=1024.0, meta=sum(m.meta for m in msgs)),
    )
    return SimTBON(topology, costs, leaf, merge).run()


@pytest.mark.parametrize("fanout", [2, 4, 16, 64])
def test_fanout_sweep_at_4096(benchmark, fanout):
    """Ablation: fan-out trades depth (latency hops) for per-node load.

    Very small fan-out wastes depth; very large fan-out re-creates the
    flat bottleneck — the sweet spot is in between, which is why MRNet
    makes topology a tunable.
    """
    rep = benchmark(_tiny_reduction, deep_topology(4096, fanout))
    depth = math.ceil(math.log(4096, fanout))
    print(f"\nfanout {fanout}: depth~{depth}, time {rep.completion_time*1e3:.2f} ms")
    assert rep.root_result.meta == 4096


@pytest.mark.parametrize("k,order", [(2, 8), (4, 4)])
def test_knomial_vs_balanced(benchmark, k, order):
    """Flexible-topology ablation: skewed k-nomial vs balanced trees.

    MRNet supports "balanced (k-ary) and skewed (k-nomial) trees"; the
    k-nomial shape trades a hot root (fan-out ~ order*(k-1)) for lower
    average depth.  Same leaf count, same workload, shapes compared.
    """
    from repro.core.topology import knomial_topology

    knomial = knomial_topology(k, order)
    n = knomial.n_backends

    def run_pair():
        t_kn = _tiny_reduction(knomial).completion_time
        t_bal = _tiny_reduction(deep_topology(n, 16)).completion_time
        return t_kn, t_bal

    t_kn, t_bal = benchmark(run_pair)
    print(
        f"\n{n} leaves: k-nomial(k={k}) {t_kn * 1e3:.2f} ms "
        f"(depth {knomial.depth()}, root fan-out {knomial.fanout(0)}), "
        f"balanced-16 {t_bal * 1e3:.2f} ms"
    )
    # Both shapes beat the flat organization handily.
    t_flat = _tiny_reduction(flat_topology(n)).completion_time
    assert t_kn < t_flat and t_bal < t_flat


def test_reduction_latency_vs_flat_at_4096(benchmark):
    def pair():
        t_flat = _tiny_reduction(flat_topology(4096)).completion_time
        t_tree = _tiny_reduction(deep_topology(4096, 16)).completion_time
        return t_flat, t_tree

    t_flat, t_tree = benchmark(pair)
    print(f"\n4096 leaves: flat {t_flat*1e3:.1f} ms, tree {t_tree*1e3:.1f} ms")
    assert t_flat / t_tree > 20
