"""Experiment **fast-path** — data-plane micro-benchmarks with a same-run
before/after toggle.

Measures the three optimizations of the serialize-once data plane against
a faithful in-process emulation of the pre-change (seed) code paths:

1. **Node throughput** — packets/sec through one fanout-16 communication
   process (wait_for_all + sum) fed a backlog, comparing the batched
   inbox drain + cached timer deadlines against the legacy
   one-get-per-wakeup loop with a full ``next_deadline()`` scan per
   iteration.
2. **TCP frame round-trip** — latency/throughput of one frame bounced
   across a real localhost socket edge (recv_into + sendmsg path).
3. **Multicast amplification** — packets/sec of a k-way TCP multicast,
   comparing serialize-once (one memoized ``to_bytes``, k scatter-gather
   writes) against the legacy path (per-child header pack via the
   directive interpreter, ``%ac %ac`` frame copy, header+body concat,
   ``sendall``) — exactly what ``_Connection.send`` did before this
   change.

A sweep over transport × fanout × payload feeds EXPERIMENTS.md.  Results
are written to ``BENCH_fastpath.json`` at the repo root.

``--reactor`` runs the high-fanout reactor-vs-threaded suite instead
(sustained multicast + reduction waves at fanout 64 and 128, I/O thread
counts) and writes ``BENCH_reactor.json`` — the ISSUE 4 acceptance
numbers.

Run: ``PYTHONPATH=src python benchmarks/bench_fastpath.py [--quick] [--reactor]``
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import instrument_capture  # noqa: E402
from repro.core.events import Direction, Envelope, StreamSpec, CONTROL_STREAM_ID, TAG_STREAM_CREATE  # noqa: E402
from repro.core.filter_registry import default_registry  # noqa: E402
from repro.core.node import NodeRunner  # noqa: E402
from repro.core.packet import HEADER_FMT, Packet  # noqa: E402
from repro.core.serialization import parse_format  # noqa: E402
from repro.core.topology import flat_topology  # noqa: E402
from repro.transport.local import ThreadTransport  # noqa: E402
from repro.transport.tcp import TCPTransport, _HDR, _DIR_CODE  # noqa: E402

TAG = 100


# ---------------------------------------------------------------------------
# Legacy (pre-change) emulation
# ---------------------------------------------------------------------------

def _legacy_pack(fmt: str, values) -> bytes:
    """The seed pack_payload: per-directive interpreter, no struct batch."""
    dirs = parse_format(fmt)
    return b"".join(d.packer(d.checker(v)) for d, v in zip(dirs, values))


def _legacy_frame(packet: Packet) -> bytes:
    """Seed Packet.to_bytes: rebuilt per call, payload buffer still cached."""
    header = _legacy_pack(
        HEADER_FMT, (packet.stream_id, packet.tag, packet.src, packet.hops, packet.fmt)
    )
    body = packet.payload_ref().serialize()
    return _legacy_pack("%ac %ac", (header, body))


def _legacy_tcp_multicast(transport: TCPTransport, src, dsts, direction, packet):
    """Seed data plane: per-child serialization + header concat + sendall."""
    code = _DIR_CODE[direction]
    for dst in dsts:
        conn = transport._conns[(src, dst)]
        body = _legacy_frame(packet)
        frame = _HDR.pack(len(body), code, src) + body
        with conn._wlock:
            conn.sock.sendall(frame)


def _legacy_thread_multicast(transport: ThreadTransport, src, dsts, direction, packet):
    """Seed fan-out: one send (one Envelope allocation) per child."""
    for dst in dsts:
        transport.send(src, dst, direction, packet)


class _NoBatchInbox:
    """Hides get_batch so NodeRunner falls back to one get per wakeup."""

    def __init__(self, inner):
        self._inner = inner

    def get(self, timeout=None):
        return self._inner.get(timeout=timeout)


class _LegacyTransport:
    """Hides multicast/get_batch: the duck-typed pre-change transport."""

    def __init__(self, inner):
        self._inner = inner

    def inbox(self, rank):
        return _NoBatchInbox(self._inner.inbox(rank))

    def send(self, *args, **kwargs):
        return self._inner.send(*args, **kwargs)


def _legacy_next_timer_delay(self):
    """Seed timer scan: every stream's next_deadline(), every wakeup."""
    earliest = None
    for st in self.streams.values():
        d = st.sync.next_deadline()
        if d is not None and (earliest is None or d < earliest):
            earliest = d
    if earliest is None:
        return None
    return max(0.0, earliest - self.clock())


def _legacy_fire_timers(self):
    now = self.clock()
    for st in list(self.streams.values()):
        for batch in st.sync.on_timer(now, st.ctx):
            self._run_transform(st, batch)


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------

def bench_node_throughput(fanout: int, n_waves: int, legacy: bool) -> float:
    """Packets/sec through one NodeRunner fed a pre-loaded backlog."""
    import types

    topo = flat_topology(fanout)
    transport = ThreadTransport()
    transport.bind(topo)
    done = threading.Event()
    delivered = [0]

    def deliver(env):
        delivered[0] += 1
        if delivered[0] >= n_waves:
            done.set()

    runner_transport = _LegacyTransport(transport) if legacy else transport
    node = NodeRunner(0, topo, runner_transport, default_registry, deliver_up=deliver)
    if legacy:
        node._next_timer_delay = types.MethodType(_legacy_next_timer_delay, node)
        node._fire_timers = types.MethodType(_legacy_fire_timers, node)
    spec = StreamSpec(1, tuple(topo.backends), "sum", "wait_for_all")
    node.handle(
        Envelope(
            -1,
            Direction.DOWNSTREAM,
            Packet(CONTROL_STREAM_ID, TAG_STREAM_CREATE, "%o", (spec,)),
        )
    )
    inbox = transport.inbox(0)
    children = topo.children(0)
    envs = [
        Envelope(c, Direction.UPSTREAM, Packet(1, TAG, "%d", (i,), src=c))
        for i in range(n_waves)
        for c in children
    ]
    t0 = time.perf_counter()
    node.start()
    for env in envs:
        inbox.put(env)
    done.wait(120)
    elapsed = time.perf_counter() - t0
    node.running = False
    inbox.close()
    node.join(5)
    transport.shutdown()
    if not done.is_set():
        raise RuntimeError("node throughput bench timed out")
    return n_waves * fanout / elapsed


def bench_tcp_roundtrip(n_iters: int, payload: bytes) -> dict:
    """Round-trips/sec of one frame down and back over a real socket edge."""
    topo = flat_topology(1)
    transport = TCPTransport()
    transport.bind(topo)
    try:
        down = transport.inbox(1)
        up = transport.inbox(0)
        t0 = time.perf_counter()
        for i in range(n_iters):
            transport.send(0, 1, Direction.DOWNSTREAM, Packet(1, TAG, "%ac", (payload,)))
            env = down.get(timeout=30)
            transport.send(1, 0, Direction.UPSTREAM, env.packet)
            up.get(timeout=30)
        elapsed = time.perf_counter() - t0
    finally:
        transport.shutdown()
    return {
        "roundtrips_per_sec": n_iters / elapsed,
        "mean_rtt_us": elapsed / n_iters * 1e6,
    }


def bench_multicast(
    kind: str,
    fanout: int,
    payload_nbytes: int,
    n_iters: int,
    legacy: bool,
    repeats: int = 5,
) -> float:
    """Sender packets/sec of a k-way multicast (frames/sec pushed).

    Times the send loop only — the optimization under test is the
    sending node's per-multicast cost (serialization + write calls).
    Children drain concurrently and every frame's delivery is verified,
    but the receive-side parse (identical in both modes) is not timed.

    Each timed window sends ``n_iters`` multicasts and the inboxes are
    fully drained (untimed) between windows, so small-payload windows
    fit in the kernel socket buffers instead of measuring flow-control
    backpressure; the best of ``repeats`` windows is returned.
    """
    topo = flat_topology(fanout)
    transport = TCPTransport() if kind == "tcp" else ThreadTransport()
    transport.bind(topo)
    try:
        children = topo.children(0)
        payload = bytes(payload_nbytes)

        if legacy:
            raw = _legacy_tcp_multicast if kind == "tcp" else _legacy_thread_multicast

            def send_all(pkt):
                raw(transport, 0, children, Direction.DOWNSTREAM, pkt)

        else:

            def send_all(pkt):
                transport.multicast(0, children, Direction.DOWNSTREAM, pkt)

        def delivered():
            # Frames land in unbounded inboxes (put there directly by the
            # thread transport, or by the TCP reader threads after parse),
            # so queue sizes count deliveries without a consumer thread
            # competing for the GIL during the timed window.
            return sum(transport.inbox(c).qsize() for c in children)

        best = 0.0
        for rep in range(1, repeats + 1):
            packets = [
                Packet(1, TAG, "%ac", (payload,), src=0) for _ in range(n_iters)
            ]
            t0 = time.perf_counter()
            for pkt in packets:
                send_all(pkt)
            elapsed = time.perf_counter() - t0
            best = max(best, n_iters * fanout / elapsed)
            # Untimed: let the readers fully catch up before the next window.
            deadline = time.time() + 120
            while delivered() < rep * n_iters * fanout:
                if time.time() > deadline:
                    raise RuntimeError(
                        f"multicast bench lost frames: {delivered()}/"
                        f"{rep * n_iters * fanout}"
                    )
                time.sleep(0.001)
    finally:
        transport.shutdown()
    return best


# ---------------------------------------------------------------------------
# Reactor vs threaded transport at high fanout (ISSUE 4)
# ---------------------------------------------------------------------------

def _make_socket_transport(kind: str):
    if kind == "reactor":
        from repro.transport.reactor import ReactorTransport

        return ReactorTransport()
    return TCPTransport()


def _io_thread_count(kind: str) -> int:
    """Live transport I/O threads (reactor loop or per-connection readers).

    Filtered by the kind under test so readers from a just-shut-down
    transport of the other kind, still winding down, don't pollute the
    count.
    """
    prefix = "tbon-reactor" if kind == "reactor" else "tbon-tcp-read"
    return sum(1 for t in threading.enumerate() if t.name.startswith(prefix))


def bench_multicast_sustained(
    kind: str,
    fanout: int,
    payload_nbytes: int,
    n_iters: int,
    repeats: int = 5,
) -> tuple[float, int]:
    """Delivered packets/sec of a k-way multicast, send start → last parse.

    Unlike :func:`bench_multicast` (sender-side cost only), the clock
    stops when every frame has been parsed into a child inbox — the
    reactor enqueues asynchronously, so charging only the send loop
    would credit it for work it had not done yet.  Both transports are
    measured under the identical delivered-throughput definition.

    Returns ``(best packets/sec, I/O thread count)`` — the thread count
    is the O(1)-vs-O(fanout) acceptance datum.
    """
    topo = flat_topology(fanout)
    transport = _make_socket_transport(kind)
    transport.bind(topo)
    try:
        children = topo.children(0)
        payload = bytes(payload_nbytes)
        io_threads = _io_thread_count(kind)

        best = 0.0
        for rep in range(1, repeats + 1):
            packets = [
                Packet(1, TAG, "%ac", (payload,), src=0) for _ in range(n_iters)
            ]
            target = rep * n_iters * fanout
            deadline = time.time() + 180
            t0 = time.perf_counter()
            for pkt in packets:
                transport.multicast(0, children, Direction.DOWNSTREAM, pkt)
            while sum(transport.inbox(c).qsize() for c in children) < target:
                if time.time() > deadline:
                    raise RuntimeError(
                        f"sustained multicast bench ({kind}) lost frames"
                    )
                time.sleep(0.0005)
            elapsed = time.perf_counter() - t0
            best = max(best, n_iters * fanout / elapsed)
    finally:
        transport.shutdown()
    return best, io_threads


def bench_reduction_wave(
    kind: str, fanout: int, n_waves: int, repeats: int = 3
) -> tuple[float, int]:
    """Leaf packets/sec of full sum-reduction waves over a live Network.

    Every back-end sends ``n_waves`` values; the front-end receives
    ``n_waves`` reduced results.  This exercises the whole data plane —
    leaf sends, node filter pipeline, upstream forwarding — over real
    sockets, where the threaded transport also pays for ~2×fanout reader
    threads competing with the fanout application threads.  Best of
    ``repeats`` fresh networks: with >100 runnable threads the
    scheduler's mood swamps a single measurement.
    """
    from repro.core.network import Network

    best = 0.0
    io_threads = 0
    for _ in range(repeats):
        topo = flat_topology(fanout)
        net = Network(topo, transport=_make_socket_transport(kind))
        try:
            io_threads = _io_thread_count(kind)
            s = net.new_stream(transform="sum", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                for _ in range(n_waves):
                    be.send(s.stream_id, TAG, "%d", 1)

            t0 = time.perf_counter()
            threads = net.run_backends(leaf, join=False)
            for _ in range(n_waves):
                pkt = s.recv(timeout=300)
                assert pkt.values[0] == fanout
            elapsed = time.perf_counter() - t0
            for t in threads:
                t.join(30)
            errors = net.node_errors()
            if errors:
                raise RuntimeError(f"reduction wave bench node errors: {errors}")
        finally:
            net.shutdown()
        best = max(best, n_waves * fanout / elapsed)
    return best, io_threads


def run_reactor_suite(quick: bool, out_path: str) -> None:
    """The ISSUE 4 acceptance suite: reactor vs threaded at high fanout."""
    results: dict = {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "suite": "reactor-vs-threaded",
        }
    }

    fanouts = (16,) if quick else (64, 128)

    multicast = []
    for fanout in fanouts:
        n = 20 if quick else 100
        reps = 2 if quick else 5
        threaded_pps, threaded_io = bench_multicast_sustained(
            "threads", fanout, 64, n, repeats=reps
        )
        reactor_pps, reactor_io = bench_multicast_sustained(
            "reactor", fanout, 64, n, repeats=reps
        )
        entry = {
            "fanout": fanout,
            "payload_bytes": 64,
            "iters": n,
            "threaded_pps": threaded_pps,
            "reactor_pps": reactor_pps,
            "speedup": reactor_pps / threaded_pps,
            "threaded_io_threads": threaded_io,
            "reactor_io_threads": reactor_io,
        }
        multicast.append(entry)
        print(
            f"sustained multicast fanout={fanout} 64B: "
            f"threaded {threaded_pps:,.0f} ({threaded_io} io threads) -> "
            f"reactor {reactor_pps:,.0f} ({reactor_io} io threads), "
            f"{entry['speedup']:.2f}x"
        )
        if reactor_io > 2:
            raise RuntimeError(
                f"reactor used {reactor_io} I/O threads (acceptance bound: 2)"
            )
    results["multicast_sustained"] = multicast

    waves = []
    for fanout in fanouts:
        n_waves = 5 if quick else 30
        reps = 2 if quick else 3
        threaded_pps, threaded_io = bench_reduction_wave(
            "threads", fanout, n_waves, repeats=reps
        )
        reactor_pps, reactor_io = bench_reduction_wave(
            "reactor", fanout, n_waves, repeats=reps
        )
        entry = {
            "fanout": fanout,
            "waves": n_waves,
            "threaded_pps": threaded_pps,
            "reactor_pps": reactor_pps,
            "speedup": reactor_pps / threaded_pps,
            "threaded_io_threads": threaded_io,
            "reactor_io_threads": reactor_io,
        }
        waves.append(entry)
        print(
            f"reduction wave fanout={fanout}: "
            f"threaded {threaded_pps:,.0f} ({threaded_io} io threads) -> "
            f"reactor {reactor_pps:,.0f} ({reactor_io} io threads), "
            f"{entry['speedup']:.2f}x"
        )
    results["reduction_wave"] = waves

    Path(out_path).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI smoke mode")
    ap.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_fastpath.json"), help="output path"
    )
    ap.add_argument(
        "--reactor",
        action="store_true",
        help="run the reactor-vs-threaded high-fanout suite instead",
    )
    ap.add_argument(
        "--reactor-out",
        default=str(REPO_ROOT / "BENCH_reactor.json"),
        help="output path for the --reactor suite",
    )
    args = ap.parse_args()

    if args.reactor:
        run_reactor_suite(args.quick, args.reactor_out)
        return

    q = args.quick
    results: dict = {
        "meta": {
            "quick": q,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
    }

    # 1. fanout-16 node throughput, batched loop vs legacy loop.
    waves = 200 if q else 3000
    legacy_pps = bench_node_throughput(16, waves, legacy=True)
    with instrument_capture() as cap:
        fast_pps = bench_node_throughput(16, waves, legacy=False)
    results["node_fanout16"] = {
        "waves": waves,
        "legacy_pps": legacy_pps,
        "fast_pps": fast_pps,
        "speedup": fast_pps / legacy_pps,
        "telemetry": cap.as_dict(),
    }
    print(
        f"node fanout=16: {legacy_pps:,.0f} -> {fast_pps:,.0f} pkt/s "
        f"({fast_pps / legacy_pps:.2f}x)"
    )

    # 2. TCP frame round-trip.
    with instrument_capture() as cap:
        rt = bench_tcp_roundtrip(100 if q else 2000, bytes(64))
    rt["telemetry"] = cap.as_dict()
    results["tcp_roundtrip_64B"] = rt
    print(
        f"tcp roundtrip 64B: {rt['roundtrips_per_sec']:,.0f} rt/s "
        f"({rt['mean_rtt_us']:.1f} us)"
    )

    # 3. fanout-16 TCP multicast amplification (the headline number).
    n, reps = (50, 3) if q else (150, 7)
    legacy_pps = bench_multicast("tcp", 16, 64, n, legacy=True, repeats=reps)
    with instrument_capture() as cap:
        fast_pps = bench_multicast("tcp", 16, 64, n, legacy=False, repeats=reps)
    results["multicast_fanout16_tcp_64B"] = {
        "iters": n,
        "legacy_pps": legacy_pps,
        "fast_pps": fast_pps,
        "speedup": fast_pps / legacy_pps,
        "telemetry": cap.as_dict(),
    }
    print(
        f"tcp multicast fanout=16 64B: {legacy_pps:,.0f} -> {fast_pps:,.0f} pkt/s "
        f"({fast_pps / legacy_pps:.2f}x)"
    )

    # 4. sweep for EXPERIMENTS.md: transport x fanout x payload.
    sweep = []
    payloads = [64, 65536]
    for kind in ("thread", "tcp"):
        for fanout in (4, 16):
            for nbytes in payloads:
                n = 30 if q else (50 if nbytes == 65536 else 150)
                reps = 2 if q else 5
                lp = bench_multicast(kind, fanout, nbytes, n, legacy=True, repeats=reps)
                fp = bench_multicast(kind, fanout, nbytes, n, legacy=False, repeats=reps)
                sweep.append(
                    {
                        "transport": kind,
                        "fanout": fanout,
                        "payload_bytes": nbytes,
                        "iters": n,
                        "legacy_pps": lp,
                        "fast_pps": fp,
                        "speedup": fp / lp,
                    }
                )
                print(
                    f"sweep {kind} fanout={fanout} payload={nbytes}B: "
                    f"{lp:,.0f} -> {fp:,.0f} pkt/s ({fp / lp:.2f}x)"
                )
    results["multicast_sweep"] = sweep

    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
