"""Experiment **T-nodecost** — internal-node overhead of deep trees (§3.2).

Paper: "with a fan-out of 16, 16 (6.25% more) internal nodes are needed
to connect 256 back-ends, or 272 (6.6%) for 4096 back-ends."
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_nodecost_table
from repro.core.topology import deep_topology, internal_node_overhead
from conftest import emit


def test_nodecost_table(benchmark):
    table = benchmark(run_nodecost_table)
    emit(table)
    rows = {x: vals for x, vals in table.rows}
    assert rows[256] == [16, 6.25]
    assert rows[4096][0] == 272


@pytest.mark.parametrize("n_backends", [256, 4096])
def test_overhead_function_speed(benchmark, n_backends):
    extra, frac = benchmark(internal_node_overhead, 16, n_backends)
    assert extra in (16, 272)


def test_topology_construction_4096(benchmark):
    """Building the 4096-back-end fan-out-16 tree itself is cheap."""
    topo = benchmark(deep_topology, 4096, 16)
    assert topo.n_backends == 4096
    assert topo.max_fanout <= 16
    # The builder's real tree matches the analytic accounting.
    assert topo.n_internal == 272
