"""Experiment **A-sync/filters** — design-choice ablations on live networks.

Micro-benchmarks of the pieces DESIGN.md calls out as design choices:
filter execution cost, synchronization policy effect on delivery, the
serialization fast path, and live wave latency flat-vs-deep on the real
thread middleware.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology, flat_topology
from repro.core.builtin_filters import AverageFilter, ConcatFilter, SumFilter
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.core.serialization import pack_payload, unpack_payload
from repro.cluster.meanshift_filter import MEANSHIFT_FMT, MeanShiftFilter

TAG = FIRST_APPLICATION_TAG


# -- filter execution cost ------------------------------------------------------

def _batch(fmt, values_list):
    return [Packet(1, TAG, fmt, v, src=i) for i, v in enumerate(values_list)]


@pytest.mark.parametrize("width", [16, 256])
def test_sum_filter_cost(benchmark, width):
    batch = _batch("%af", [(np.random.default_rng(i).random(width),) for i in range(16)])
    f = SumFilter()
    ctx = FilterContext(n_children=16)
    (out,) = benchmark(f.execute, batch, ctx)
    assert out.values[0].shape == (width,)


def test_concat_filter_cost(benchmark):
    batch = _batch("%af", [(np.random.default_rng(i).random(128),) for i in range(16)])
    (out,) = benchmark(ConcatFilter().execute, batch, FilterContext(n_children=16))
    assert len(out.values[0]) == 16 * 128


def test_avg_filter_cost(benchmark):
    batch = _batch("%af", [(np.random.default_rng(i).random(128),) for i in range(16)])
    f = AverageFilter()
    ctx = FilterContext(n_children=16, is_root=True)
    (out,) = benchmark(f.execute, batch, ctx)
    assert out.values[0].shape == (128,)


def test_meanshift_merge_filter_cost(benchmark):
    """The case study's per-node merge on realistic collapsed payloads."""
    rng = np.random.default_rng(0)
    def child(i):
        pts = rng.normal(loc=(200 * (i % 2), 200), scale=30, size=(400, 2))
        peaks = np.array([[200.0 * (i % 2), 200.0]])
        return (pts, np.ones(len(pts)), peaks)

    batch = _batch(MEANSHIFT_FMT, [child(i) for i in range(4)])
    f = MeanShiftFilter(bandwidth=50.0)
    (out,) = benchmark(f.execute, batch, FilterContext(n_children=4))
    assert len(out.values[2]) >= 1


# -- serialization path ------------------------------------------------------------

def test_pack_unpack_throughput(benchmark):
    fmt = "%d %f %s %af %am"
    values = (
        7,
        3.14,
        "status",
        np.random.default_rng(0).random(1000),
        np.random.default_rng(1).random((100, 2)),
    )

    def roundtrip():
        return unpack_payload(fmt, pack_payload(fmt, values))

    out = benchmark(roundtrip)
    assert out[0] == 7


# -- sync policy + live latency ---------------------------------------------------

@pytest.mark.parametrize("sync,params", [
    ("wait_for_all", {}),
    ("time_out", {"window": 0.5}),
    ("null", {}),
])
def test_live_wave_latency_by_sync_policy(benchmark, sync, params):
    """One full wave (all 9 leaves -> root) under each sync policy.

    ``null`` delivers 9 unreduced packets; the aligned policies deliver
    one — the aggregation-versus-immediacy trade MRNet exposes.
    """
    net = Network(balanced_topology(3, 2))
    try:
        s = net.new_stream(transform="sum", sync=sync, sync_params=params)
        for be in net.backends:
            be.wait_for_stream(s.stream_id)
        n = net.topology.n_backends

        def one_wave():
            for be in net.backends:
                be.send(s.stream_id, TAG, "%d", 1)
            if sync == "null":
                total = 0
                while total < n:
                    total += s.recv(timeout=10).values[0]
                return total
            return s.recv(timeout=10).values[0]

        total = benchmark(one_wave)
        assert total == n
    finally:
        net.shutdown()


@pytest.mark.parametrize("shape", ["flat", "deep"])
def test_live_wave_latency_flat_vs_deep(benchmark, shape):
    """Live (thread transport) wave latency at 16 leaves, both shapes."""
    topo = flat_topology(16) if shape == "flat" else balanced_topology(4, 2)
    net = Network(topo)
    try:
        s = net.new_stream(transform="sum", sync="wait_for_all")
        for be in net.backends:
            be.wait_for_stream(s.stream_id)

        def one_wave():
            for be in net.backends:
                be.send(s.stream_id, TAG, "%d", 1)
            return s.recv(timeout=10).values[0]

        assert benchmark(one_wave) == 16
    finally:
        net.shutdown()
