"""Experiment **telemetry-overhead** — cost of the telemetry plane.

Measures node throughput (the PR 1 fast-path benchmark: one fanout-16
communication process fed a backlog, wait_for_all + sum) in two modes:

* **disabled** — ``TELEMETRY.enabled`` is False, so every instrument
  call site is a single attribute check.  This must stay within noise
  of PR 1's ``BENCH_fastpath.json`` numbers.
* **enabled** — every hot point increments sharded counters and
  observes histograms.  Acceptance (docs/OBSERVABILITY.md): < 5%
  throughput overhead on a quiet machine.

``--bound PCT`` turns the overhead report into an assertion (used by
the CI smoke job with a loose bound to absorb shared-runner noise).

Run: ``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
[--quick] [--bound 15]``
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_fastpath import bench_node_throughput  # noqa: E402
from repro.telemetry.registry import TELEMETRY  # noqa: E402


def measure_one(enabled: bool, fanout: int, waves: int) -> float:
    """One node-throughput run with telemetry on or off."""
    prev = TELEMETRY.enabled
    TELEMETRY.enabled = enabled
    try:
        return bench_node_throughput(fanout, waves, legacy=False)
    finally:
        TELEMETRY.enabled = prev


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="CI smoke mode")
    ap.add_argument(
        "--bound",
        type=float,
        default=None,
        help="fail (exit 1) if enabled overhead exceeds this many percent",
    )
    ap.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_telemetry_overhead.json"),
        help="output path",
    )
    args = ap.parse_args()

    waves = 300 if args.quick else 3000
    repeats = 3 if args.quick else 5
    fanout = 16

    # Untimed warm-up: the first NodeRunner pays import and thread-pool
    # setup costs that would otherwise land entirely on the first mode.
    measure_one(False, fanout, min(waves, 300))

    # Interleave the two modes so machine-load drift hits both equally;
    # best-of-repeats per mode filters scheduler hiccups.
    disabled_pps = 0.0
    enabled_pps = 0.0
    for _ in range(repeats):
        disabled_pps = max(disabled_pps, measure_one(False, fanout, waves))
        enabled_pps = max(enabled_pps, measure_one(True, fanout, waves))
    overhead_pct = 100.0 * (1.0 - enabled_pps / disabled_pps)

    results = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "node_fanout16": {
            "waves": waves,
            "repeats": repeats,
            "disabled_pps": disabled_pps,
            "enabled_pps": enabled_pps,
            "overhead_pct": overhead_pct,
        },
    }
    Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"node fanout={fanout}: disabled {disabled_pps:,.0f} pkt/s, "
        f"enabled {enabled_pps:,.0f} pkt/s -> overhead {overhead_pct:.2f}%"
    )
    print(f"wrote {args.out}")

    if args.bound is not None and overhead_pct > args.bound:
        print(f"FAIL: overhead {overhead_pct:.2f}% exceeds bound {args.bound}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
