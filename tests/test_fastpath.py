"""Tests for the fast data plane: serialize-once multicast, batched
inbox drains, cached timer deadlines, and the fixed-width struct fast
path in serialization.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np
import pytest

from repro.core.errors import ChannelClosedError, SerializationError
from repro.core.events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    StreamSpec,
    TAG_STREAM_CREATE,
)
from repro.core.filter_registry import default_registry
from repro.core.node import NodeRunner
from repro.core.packet import HEADER_FMT, Packet, make_packet
from repro.core.serialization import pack_payload, unpack_payload
from repro.core.topology import balanced_topology, flat_topology
from repro.transport.base import Inbox
from repro.transport.local import ThreadTransport
from repro.transport.tcp import TCPTransport


# -- Packet frame memoization -------------------------------------------------


class TestFrameCache:
    def test_to_bytes_memoized(self):
        p = make_packet(1, 100, "%af", np.arange(32, dtype=np.float64))
        assert p.to_bytes() is p.to_bytes()

    def test_hop_invalidates_frame(self):
        p = make_packet(1, 100, "%d", 5)
        before = p.to_bytes()
        p.hop()
        after = p.to_bytes()
        assert before != after
        q = Packet.from_bytes(after)
        assert q.hops == 1
        assert q.values == (5,)

    def test_cached_frame_matches_fresh_serialization(self):
        p = Packet(3, 105, "%d %s", (7, "x"), src=9, hops=2)
        cached = p.to_bytes()
        fresh = Packet(3, 105, "%d %s", (7, "x"), src=9, hops=2).to_bytes()
        assert cached == fresh


# -- serialize-once multicast over TCP ---------------------------------------


class TestSerializeOnceMulticast:
    def test_to_bytes_called_once_per_multicast(self, monkeypatch):
        """Acceptance: a k-way TCP multicast invokes to_bytes exactly once."""
        topo = flat_topology(4)  # root 0 with 4 back-end children
        transport = TCPTransport()
        transport.bind(topo)
        try:
            calls = {"n": 0}
            orig = Packet.to_bytes

            def counting(self):
                calls["n"] += 1
                return orig(self)

            monkeypatch.setattr(Packet, "to_bytes", counting)
            pkt = make_packet(1, 100, "%af", np.arange(64, dtype=np.float64))
            transport.multicast(
                0, topo.children(0), Direction.DOWNSTREAM, pkt
            )
            assert calls["n"] == 1
            # Every child still receives a full, parseable frame.
            for c in topo.children(0):
                env = transport.inbox(c).get(timeout=2)
                assert np.array_equal(env.packet.values[0], np.arange(64))
        finally:
            transport.shutdown()

    def test_node_forward_down_uses_multicast(self, monkeypatch):
        """_forward_down routes fan-out through Transport.multicast."""
        topo = flat_topology(3)
        transport = ThreadTransport()
        transport.bind(topo)
        seen = []
        orig = ThreadTransport.multicast

        def spying(self, src, dsts, direction, packet):
            seen.append(tuple(dsts))
            return orig(self, src, dsts, direction, packet)

        monkeypatch.setattr(ThreadTransport, "multicast", spying)
        node = NodeRunner(0, topo, transport, default_registry)
        spec = StreamSpec(1, tuple(topo.backends), "sum", "wait_for_all")
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_STREAM_CREATE, "%o", (spec,)),
            )
        )
        assert tuple(topo.children(0)) in seen

    def test_thread_multicast_shares_envelope(self):
        topo = flat_topology(3)
        transport = ThreadTransport()
        transport.bind(topo)
        pkt = make_packet(1, 100, "%d", 5)
        transport.multicast(0, topo.children(0), Direction.DOWNSTREAM, pkt)
        envs = [transport.inbox(c).get(timeout=1) for c in topo.children(0)]
        assert envs[0] is envs[1] is envs[2]  # one envelope, not k
        assert envs[0].packet is pkt


# -- Inbox.get_batch ----------------------------------------------------------


class TestGetBatch:
    def _env(self, i: int) -> Envelope:
        return Envelope(i, Direction.UPSTREAM, make_packet(1, 100, "%d", i))

    def test_drains_all_ready_in_fifo_order(self):
        box = Inbox()
        for i in range(5):
            box.put(self._env(i))
        batch = box.get_batch(max_n=64, timeout=1)
        assert [e.src for e in batch] == [0, 1, 2, 3, 4]

    def test_respects_max_n(self):
        box = Inbox()
        for i in range(10):
            box.put(self._env(i))
        assert [e.src for e in box.get_batch(max_n=4)] == [0, 1, 2, 3]
        assert [e.src for e in box.get_batch(max_n=64)] == list(range(4, 10))

    def test_blocks_for_first_envelope(self):
        box = Inbox()

        def feed():
            time.sleep(0.05)
            box.put(self._env(7))

        threading.Thread(target=feed, daemon=True).start()
        batch = box.get_batch(timeout=2)
        assert [e.src for e in batch] == [7]

    def test_timeout_raises_empty(self):
        with pytest.raises(queue.Empty):
            Inbox().get_batch(timeout=0.05)

    def test_pending_items_drain_before_close(self):
        box = Inbox()
        box.put(self._env(1))
        box.put(self._env(2))
        box.close()
        assert [e.src for e in box.get_batch(timeout=1)] == [1, 2]
        with pytest.raises(ChannelClosedError):
            box.get_batch(timeout=1)

    def test_close_leaves_sentinel_for_other_consumers(self):
        box = Inbox()
        box.put(self._env(1))
        box.close()
        box.get_batch(timeout=1)
        with pytest.raises(ChannelClosedError):
            box.get_batch(timeout=1)
        # A plain get() must also observe the close.
        with pytest.raises(ChannelClosedError):
            box.get(timeout=1)


# -- cached timer deadlines ---------------------------------------------------


def _make_node(topo, transport, rank=0, **kwargs):
    return NodeRunner(rank, topo, transport, default_registry, **kwargs)


def _create_stream(node, topo, sync="wait_for_all", sync_params=()):
    spec = StreamSpec(
        1, tuple(topo.backends), "sum", sync, sync_params=tuple(sync_params)
    )
    node.handle(
        Envelope(
            -1,
            Direction.DOWNSTREAM,
            Packet(CONTROL_STREAM_ID, TAG_STREAM_CREATE, "%o", (spec,)),
        )
    )
    return spec


class TestTimerDeadlineCache:
    def test_zero_deadline_calls_without_timed_filter(self):
        """Acceptance: no next_deadline()/on_timer() per data packet when
        no stream uses a timed sync filter."""
        topo = balanced_topology(2, 2)
        transport = ThreadTransport()
        transport.bind(topo)
        delivered = []
        node = _make_node(topo, transport, deliver_up=delivered.append)
        _create_stream(node, topo, sync="wait_for_all")
        st = node.streams[1]
        calls = {"next_deadline": 0, "on_timer": 0}
        orig_nd, orig_ot = st.sync.next_deadline, st.sync.on_timer
        st.sync.next_deadline = lambda: (
            calls.__setitem__("next_deadline", calls["next_deadline"] + 1),
            orig_nd(),
        )[1]
        st.sync.on_timer = lambda now, ctx: (
            calls.__setitem__("on_timer", calls["on_timer"] + 1),
            orig_ot(now, ctx),
        )[1]
        c1, c2 = topo.children(0)
        for _ in range(50):
            node.handle(
                Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (1,), src=c1))
            )
            node.handle(
                Envelope(c2, Direction.UPSTREAM, Packet(1, 100, "%d", (2,), src=c2))
            )
            assert node._next_timer_delay() is None
            node._fire_timers()
        assert calls == {"next_deadline": 0, "on_timer": 0}
        assert len(delivered) == 50

    def test_timed_stream_still_scanned(self):
        topo = balanced_topology(2, 2)
        transport = ThreadTransport()
        transport.bind(topo)
        node = _make_node(topo, transport, deliver_up=lambda env: None)
        _create_stream(node, topo, sync="time_out", sync_params=(("window", 0.05),))
        assert 1 in node._timed_streams
        c1 = topo.children(0)[0]
        node.handle(
            Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (1,), src=c1))
        )
        delay = node._next_timer_delay()
        assert delay is not None and 0 <= delay <= 0.05

    def test_timeout_window_fires_through_run_loop(self):
        """A time_out stream's partial wave is released by the timer even
        with the batched run loop."""
        topo = balanced_topology(2, 2)
        transport = ThreadTransport()
        transport.bind(topo)
        delivered = []
        node = _make_node(topo, transport, deliver_up=delivered.append)
        _create_stream(node, topo, sync="time_out", sync_params=(("window", 0.05),))
        t = threading.Thread(target=node.run, daemon=True)
        node.running = True
        t.start()
        c1 = topo.children(0)[0]
        transport.inbox(0).put(
            Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (3,), src=c1))
        )
        deadline = time.time() + 5
        while not delivered and time.time() < deadline:
            time.sleep(0.01)
        node.running = False
        transport.inbox(0).close()
        t.join(2)
        assert delivered and delivered[0].packet.values == (3,)

    def test_timer_exception_reported_not_fatal(self):
        """Satellite bugfix: a filter exception raised from on_timer is
        captured in node.error instead of silently killing the thread."""
        topo = balanced_topology(2, 2)
        transport = ThreadTransport()
        transport.bind(topo)
        node = _make_node(topo, transport, deliver_up=lambda env: None)
        _create_stream(node, topo, sync="time_out", sync_params=(("window", 0.01),))

        def exploding(now, ctx):
            raise RuntimeError("timer boom")

        node.streams[1].sync.on_timer = exploding
        t = threading.Thread(target=node.run, daemon=True)
        node.running = True
        t.start()
        c1 = topo.children(0)[0]
        transport.inbox(0).put(
            Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (1,), src=c1))
        )
        deadline = time.time() + 5
        while node.error is None and time.time() < deadline:
            time.sleep(0.01)
        assert isinstance(node.error, RuntimeError)
        assert t.is_alive()  # the loop survived the timer exception
        node.running = False
        transport.inbox(0).close()
        t.join(2)

    def test_stream_close_unregisters_timed_stream(self):
        from repro.core.events import TAG_STREAM_CLOSE

        topo = flat_topology(2)
        transport = ThreadTransport()
        transport.bind(topo)
        node = _make_node(topo, transport, deliver_up=lambda env: None)
        _create_stream(node, topo, sync="time_out", sync_params=(("window", 0.05),))
        assert 1 in node._timed_streams
        close = Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (1,))
        node.handle(Envelope(-1, Direction.DOWNSTREAM, close))
        ack = Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (1,))
        for c in topo.children(0):
            node.handle(Envelope(c, Direction.UPSTREAM, ack))
        assert 1 not in node._timed_streams
        assert node._next_timer_delay() is None


# -- fixed-width struct fast path ---------------------------------------------


class TestFixedWidthFastPath:
    @pytest.mark.parametrize(
        "fmt,values",
        [
            ("%d %d %d %d %s", (3, 105, -1, 2, "%d %af %s")),  # the header
            ("%d %f", (7, 2.5)),
            ("%b %b %d", (True, False, -9)),
            ("%ud", (2**63 + 1,)),
            ("%s", ("héllo",)),
            ("%d %ac", (1, b"\x00\xff")),
            ("", ()),
        ],
    )
    def test_roundtrip(self, fmt, values):
        assert unpack_payload(fmt, pack_payload(fmt, values)) == values

    def test_header_fmt_uses_fast_path(self):
        from repro.core.serialization import _fast_path

        assert _fast_path(HEADER_FMT) is not None
        assert _fast_path("%d %f %b %ud") is not None
        assert _fast_path("%d %af") is None  # arrays stay on the slow path
        assert _fast_path("%s %d") is None  # %s only qualifies as the tail

    def test_fast_path_bytes_identical_to_slow_path(self):
        """The fast path must be a pure optimization: same wire bytes."""
        from repro.core.serialization import FORMAT_DIRECTIVES, parse_format

        fmt = "%d %d %d %d %s"
        values = (12, 100, -1, 3, "%af %s")
        fast = pack_payload(fmt, values)
        slow = b"".join(
            d.packer(d.checker(v)) for d, v in zip(parse_format(fmt), values)
        )
        assert fast == slow

    def test_type_errors_preserved(self):
        with pytest.raises(SerializationError):
            pack_payload("%d %f", (True, 1.0))  # bool is not an int
        with pytest.raises(SerializationError):
            pack_payload("%d", (2**63,))
        with pytest.raises(SerializationError):
            pack_payload("%d %s", (1, 42))

    def test_arity_errors_preserved(self):
        with pytest.raises(SerializationError):
            pack_payload("%d %f", (1,))
        with pytest.raises(SerializationError):
            pack_payload("%d %s", (1, "a", "b"))

    def test_truncated_and_trailing_rejected(self):
        data = pack_payload("%d %f", (1, 2.0))
        with pytest.raises(SerializationError):
            unpack_payload("%d %f", data[:-1])
        with pytest.raises(SerializationError):
            unpack_payload("%d %f", data + b"x")
        tail = pack_payload("%d %s", (1, "abc"))
        with pytest.raises(SerializationError):
            unpack_payload("%d %s", tail[:-1])
        with pytest.raises(SerializationError):
            unpack_payload("%d %s", tail + b"x")

    def test_memoryview_input(self):
        data = pack_payload(HEADER_FMT, (1, 2, 3, 4, "%d"))
        assert unpack_payload(HEADER_FMT, memoryview(data)) == (1, 2, 3, 4, "%d")


# -- batched run loop ---------------------------------------------------------


class TestBatchedRunLoop:
    def test_backlog_processed_in_order(self):
        topo = balanced_topology(2, 2)
        transport = ThreadTransport()
        transport.bind(topo)
        delivered = []
        node = _make_node(topo, transport, deliver_up=delivered.append)
        _create_stream(node, topo, sync="wait_for_all")
        c1, c2 = topo.children(0)
        # Pile up a backlog before the loop starts, exercising get_batch.
        for i in range(40):
            transport.inbox(0).put(
                Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (i,), src=c1))
            )
            transport.inbox(0).put(
                Envelope(c2, Direction.UPSTREAM, Packet(1, 100, "%d", (i,), src=c2))
            )
        t = threading.Thread(target=node.run, daemon=True)
        node.running = True
        t.start()
        deadline = time.time() + 5
        while len(delivered) < 40 and time.time() < deadline:
            time.sleep(0.01)
        node.running = False
        transport.inbox(0).close()
        t.join(2)
        assert [env.packet.values[0] for env in delivered] == [
            2 * i for i in range(40)
        ]
        assert node.error is None

    def test_shutdown_mid_batch_stops_loop(self):
        from repro.core.events import TAG_SHUTDOWN

        topo = balanced_topology(2, 2)
        transport = ThreadTransport()
        transport.bind(topo)
        node = _make_node(topo, transport, deliver_up=lambda env: None)
        _create_stream(node, topo, sync="wait_for_all")
        transport.inbox(0).put(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_SHUTDOWN, "%d", (0,)),
            )
        )
        t = threading.Thread(target=node.run, daemon=True)
        node.running = True
        t.start()
        t.join(3)
        assert not t.is_alive()
        assert node.running is False
