"""Tests for tree-based clock-skew detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.filters_ext.clock_skew import (
    CLOCK_SKEW_FMT,
    SkewClock,
    estimate_edge_offset,
    serial_skew_detection,
    tree_skew_detection,
)

TAG = FIRST_APPLICATION_TAG


class TestSkewClock:
    def test_offset_and_drift(self):
        c = SkewClock(offset=1.5, drift=0.01)
        assert c.read(0.0) == pytest.approx(1.5)
        assert c.read(100.0) == pytest.approx(1.5 + 1.0 + 100.0)


class TestEdgeEstimator:
    def test_recovers_offset_symmetric_delay(self):
        parent = SkewClock(0.0)
        child = SkewClock(offset=0.025)
        est = estimate_edge_offset(
            parent, child, jitter=1e-9, rng=np.random.default_rng(0)
        )
        assert est == pytest.approx(0.025, abs=1e-6)

    def test_jitter_bounded_by_best_rtt(self):
        parent = SkewClock(0.0)
        child = SkewClock(offset=-0.010)
        est = estimate_edge_offset(
            parent, child, jitter=50e-6, n_samples=16, rng=np.random.default_rng(1)
        )
        assert abs(est - (-0.010)) < 1e-3

    def test_sign_convention(self):
        parent = SkewClock(0.0)
        ahead = SkewClock(offset=0.1)
        behind = SkewClock(offset=-0.1)
        rng = np.random.default_rng(2)
        assert estimate_edge_offset(parent, ahead, rng=rng) > 0
        assert estimate_edge_offset(parent, behind, rng=rng) < 0


class TestTreeDetection:
    def test_offsets_compose_along_paths(self):
        topo = balanced_topology(3, 2)
        clocks = {r: SkewClock(offset=0.002 * r) for r in topo.ranks}
        offsets, _t = tree_skew_detection(topo, clocks, jitter=1e-9)
        for r in topo.ranks:
            assert offsets[r] == pytest.approx(0.002 * r, abs=1e-4)

    def test_tree_faster_than_serial_at_scale(self):
        topo = balanced_topology(8, 2)  # 64 backends
        clocks = {r: SkewClock(0.0) for r in topo.ranks}
        _, t_tree = tree_skew_detection(topo, clocks)
        _, t_serial = serial_skew_detection(topo, clocks)
        # Serial is O(N); tree is O(fanout x depth).
        assert t_serial / t_tree == pytest.approx(64 / 16, rel=0.01)

    def test_serial_offsets_also_correct(self):
        topo = balanced_topology(2, 2)
        clocks = {r: SkewClock(offset=0.001 * r) for r in topo.ranks}
        offsets, _ = serial_skew_detection(topo, clocks, jitter=1e-9)
        for be in topo.backends:
            assert offsets[be] == pytest.approx(0.001 * be, abs=1e-4)


class TestClockSkewFilter:
    def test_live_composition(self):
        """Per-edge offsets injected as params compose to per-leaf totals."""
        topo = balanced_topology(2, 2)
        true_offset = {r: 0.003 * r for r in topo.ranks}
        edge_offsets = {}
        for parent, child in topo.iter_edges():
            edge_offsets.setdefault(parent, {})[child] = (
                true_offset[child] - true_offset[parent]
            )
        with Network(topo) as net:
            s = net.new_stream(
                transform="clock_skew",
                sync="wait_for_all",
                transform_params={"edge_offsets": edge_offsets},
            )

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(
                    s.stream_id,
                    TAG,
                    CLOCK_SKEW_FMT,
                    np.array([be.rank], dtype=np.int64),
                    np.array([0.0]),
                )

            net.run_backends(leaf)
            pkt = s.recv(timeout=10)
            ranks, offs = pkt.values
            got = dict(zip(ranks.tolist(), offs.tolist()))
            assert set(got) == set(topo.backends)
            for r, o in got.items():
                assert o == pytest.approx(true_offset[r], abs=1e-12)
            assert net.node_errors() == {}
