"""Tests for the runtime lock-order and guarded-attribute harness.

Each test uses a private :class:`LockOrderMonitor` so recorded edges
never leak between tests (or into the process-wide monitor that a
``TBON_LOCKCHECK=1`` tier-1 run uses).
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.locks import (
    ENV_VAR,
    GuardedAccessError,
    GuardedBy,
    LockOrderError,
    LockOrderMonitor,
    TrackedLock,
    lockcheck_enabled,
    make_lock,
)


def tracked_pair(monitor):
    return (
        TrackedLock("a", monitor=monitor),
        TrackedLock("b", monitor=monitor),
    )


def test_consistent_order_is_silent():
    mon = LockOrderMonitor()
    a, b = tracked_pair(mon)
    for _ in range(3):
        with a:
            with b:
                pass
    assert mon.edges() == {"a": {"b"}}


def test_inverted_order_across_threads_raises():
    mon = LockOrderMonitor()
    a, b = tracked_pair(mon)
    errors: list[BaseException] = []

    def forward():
        with a:
            with b:
                pass

    def inverted():
        try:
            with b:
                with a:
                    pass
        except LockOrderError as exc:
            errors.append(exc)

    t1 = threading.Thread(target=forward)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=inverted)
    t2.start()
    t2.join()

    assert len(errors) == 1
    assert "a" in str(errors[0]) and "b" in str(errors[0])


def test_cycle_detection_through_intermediate_lock():
    mon = LockOrderMonitor()
    a = TrackedLock("a", monitor=mon)
    b = TrackedLock("b", monitor=mon)
    c = TrackedLock("c", monitor=mon)
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with pytest.raises(LockOrderError):
        with c:
            with a:
                pass


def test_failed_tracked_acquire_releases_inner_lock():
    """When the monitor raises, the underlying lock must not stay held."""
    mon = LockOrderMonitor()
    a, b = tracked_pair(mon)
    with a:
        with b:
            pass
    try:
        with b:
            with a:
                pass
    except LockOrderError:
        pass
    # The inversion above must not leave 'a' locked.
    assert a.acquire(blocking=False)
    a.release()


def test_reentrant_lock_no_self_edge():
    mon = LockOrderMonitor()
    r = TrackedLock("r", reentrant=True, monitor=mon)
    with r:
        with r:
            assert mon.holds(r)
    assert mon.edges() == {}
    assert not mon.holds(r)


def test_tracked_lock_backs_a_condition():
    mon = LockOrderMonitor()
    cond = threading.Condition(TrackedLock("cond", monitor=mon))
    results = []

    def waiter():
        with cond:
            while not results:
                cond.wait(timeout=1.0)

    t = threading.Thread(target=waiter)
    t.start()
    with cond:
        results.append(1)
        cond.notify_all()
    t.join(timeout=2.0)
    assert not t.is_alive()


def test_guarded_by_enforces_lock_ownership():
    mon = LockOrderMonitor()

    class Counter:
        value = GuardedBy("_lock")

        def __init__(self):
            self._lock = TrackedLock("counter", monitor=mon)
            with self._lock:
                self.value = 0

    c = Counter()
    with pytest.raises(GuardedAccessError):
        c.value = 5
    with pytest.raises(GuardedAccessError):
        _ = c.value
    with c._lock:
        c.value = 5
        assert c.value == 5


def test_guarded_by_degrades_with_plain_lock():
    class Counter:
        value = GuardedBy("_lock")

        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0

    c = Counter()
    c.value = 7  # plain lock: ownership unknowable, no enforcement
    assert c.value == 7


def test_make_lock_env_gating(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert not lockcheck_enabled()
    plain = make_lock("plain")
    assert not isinstance(plain, TrackedLock)
    with plain:
        pass

    monkeypatch.setenv(ENV_VAR, "1")
    assert lockcheck_enabled()
    tracked = make_lock("tracked", monitor=LockOrderMonitor())
    assert isinstance(tracked, TrackedLock)
    with tracked:
        pass

    monkeypatch.setenv(ENV_VAR, "0")
    assert not lockcheck_enabled()


def test_held_names_reports_outermost_first():
    mon = LockOrderMonitor()
    a, b = tracked_pair(mon)
    with a, b:
        assert mon.held_names() == ("a", "b")
    assert mon.held_names() == ()
