"""Tests for the Ladebug/Ygdrasil-style parallel debugger tool."""

from __future__ import annotations

import pytest

from repro import Network, balanced_topology
from repro.core.errors import TBONError
from repro.tools.debugger import ParallelDebugger, SyntheticProcess


@pytest.fixture
def net():
    network = Network(balanced_topology(3, 2))
    yield network
    network.shutdown()
    assert network.node_errors() == {}


class TestSyntheticProcess:
    def test_profiles(self):
        p = SyntheticProcess(4, "compute")
        assert p.stack[-1] == "stencil_kernel"
        assert p.pc > 0x400000

    def test_unknown_profile_rejected(self):
        with pytest.raises(TBONError):
            SyntheticProcess(1, "wat")

    def test_variable_reads_deterministic(self):
        p = SyntheticProcess(3, "compute")
        assert p.read_variable("x") == p.read_variable("x")
        assert p.read_variable("x") != p.read_variable("y")


class TestWhere:
    def test_stack_equivalence_classes(self, net):
        dbg = ParallelDebugger(net)
        try:
            rep = dbg.where()
            assert rep.n_processes == 9
            # Default job: 7 compute, 1 exchange, 1 io_stuck.
            assert len(rep.classes) == 3
            assert rep.dominant().endswith("stencil_kernel")
            outliers = rep.outliers()
            assert len(outliers) == 2
            assert all(count == 1 for count, _ranks in outliers.values())
        finally:
            dbg.close()

    def test_member_ranks_recorded(self, net):
        dbg = ParallelDebugger(net)
        try:
            rep = dbg.where()
            all_ranks = sorted(
                r for _count, ranks in rep.classes.values() for r in ranks
            )
            assert all_ranks == sorted(net.topology.backends)
        finally:
            dbg.close()

    def test_homogeneous_job_single_class(self, net):
        profiles = {r: "compute" for r in net.topology.backends}
        dbg = ParallelDebugger(net, profile_of=profiles)
        try:
            rep = dbg.where()
            assert len(rep.classes) == 1
            assert rep.outliers() == {}
        finally:
            dbg.close()

    def test_repeated_queries(self, net):
        dbg = ParallelDebugger(net)
        try:
            for _ in range(3):
                rep = dbg.where()
                assert rep.n_processes == 9
        finally:
            dbg.close()


class TestVariableGather:
    def test_print_variable(self, net):
        dbg = ParallelDebugger(net)
        try:
            vals = dbg.print_variable("iteration_count")
            assert len(vals) == 9
            # Deterministic per rank: re-reading gives the same gather.
            again = dbg.print_variable("iteration_count")
            assert sorted(vals.tolist()) == sorted(again.tolist())
        finally:
            dbg.close()

    def test_interleaved_commands(self, net):
        dbg = ParallelDebugger(net)
        try:
            rep1 = dbg.where()
            vals = dbg.print_variable("x")
            rep2 = dbg.where()
            assert rep1.classes.keys() == rep2.classes.keys()
            assert len(vals) == 9
        finally:
            dbg.close()
