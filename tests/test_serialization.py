"""Unit tests for the MRNet-style format-string serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FormatStringError, SerializationError
from repro.core.serialization import (
    FORMAT_DIRECTIVES,
    pack_payload,
    parse_format,
    payload_nbytes,
    unpack_payload,
    validate_values,
)


class TestParseFormat:
    def test_single_directives(self):
        for code in FORMAT_DIRECTIVES:
            (d,) = parse_format(f"%{code}")
            assert d.code == code

    def test_whitespace_optional(self):
        assert [d.code for d in parse_format("%d %f %s")] == ["d", "f", "s"]
        assert [d.code for d in parse_format("%d%f%s")] == ["d", "f", "s"]

    def test_longest_match_wins(self):
        # %aud must not parse as %ad + stray text.
        assert [d.code for d in parse_format("%aud")] == ["aud"]
        assert [d.code for d in parse_format("%ad")] == ["ad"]
        assert [d.code for d in parse_format("%aud %ad")] == ["aud", "ad"]
        # Trailing text after a directive (no %) is rejected.
        with pytest.raises(FormatStringError):
            parse_format("%audxx")

    def test_unknown_directive_rejected(self):
        with pytest.raises(FormatStringError):
            parse_format("%z")

    def test_stray_text_rejected(self):
        with pytest.raises(FormatStringError):
            parse_format("%d hello %f")

    def test_empty_format_is_valid(self):
        assert parse_format("") == ()

    def test_non_string_rejected(self):
        with pytest.raises(FormatStringError):
            parse_format(42)  # type: ignore[arg-type]


ROUNDTRIP_CASES = [
    ("%c", ("x",)),
    ("%b", (True,)),
    ("%b", (False,)),
    ("%d", (-(2**62),)),
    ("%d", (0,)),
    ("%ud", (2**63 + 11,)),
    ("%f", (3.14159,)),
    ("%f", (float("inf"),)),
    ("%s", ("",)),
    ("%s", ("héllo wörld",)),
    ("%ac", (b"\x00\xff\x10",)),
    ("%ad", (np.array([-1, 2, 3], dtype=np.int64),)),
    ("%aud", (np.array([1, 2**64 - 1], dtype=np.uint64),)),
    ("%af", (np.array([1.5, -2.5]),)),
    ("%af", (np.empty(0),)),
    ("%as", (["a", "b", ""],)),
    ("%as", ([],)),
    ("%am", (np.arange(6, dtype=np.float64).reshape(2, 3),)),
    ("%am", (np.empty((0, 2)),)),
    ("%o", ({"nested": [1, (2, 3)]},)),
    ("%d %f %s %ad", (7, 2.5, "mix", np.array([9], dtype=np.int64))),
]


class TestRoundTrip:
    @pytest.mark.parametrize("fmt,values", ROUNDTRIP_CASES)
    def test_roundtrip(self, fmt, values):
        data = pack_payload(fmt, values)
        out = unpack_payload(fmt, data)
        assert len(out) == len(values)
        for a, b in zip(values, out):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
                assert b.dtype == a.dtype
            else:
                assert a == b

    @pytest.mark.parametrize("fmt,values", ROUNDTRIP_CASES)
    def test_nbytes_matches_packed_size(self, fmt, values):
        assert payload_nbytes(fmt, values) == len(pack_payload(fmt, values))

    def test_scalar_coercion(self):
        out = validate_values("%d %f", (np.int64(3), np.float32(1.5)))
        assert out == (3, 1.5)
        assert isinstance(out[0], int)
        assert isinstance(out[1], float)

    def test_array_coercion_from_list(self):
        (arr,) = validate_values("%af", ([1, 2, 3],))
        assert isinstance(arr, np.ndarray)
        assert arr.dtype == np.float64


class TestErrors:
    def test_arity_mismatch(self):
        with pytest.raises(SerializationError):
            pack_payload("%d %d", (1,))
        with pytest.raises(SerializationError):
            pack_payload("%d", (1, 2))

    def test_type_mismatches(self):
        for fmt, bad in [
            ("%c", "toolong"),
            ("%c", 7),
            ("%b", 1),
            ("%d", 1.5),
            ("%d", True),
            ("%d", 2**63),
            ("%ud", -1),
            ("%f", "nope"),
            ("%s", 42),
            ("%ac", "text"),
            ("%as", "not-a-list"),
            ("%as", [1, 2]),
            ("%ad", np.ones((2, 2))),
            ("%am", np.ones(3)),
        ]:
            with pytest.raises(SerializationError):
                pack_payload(fmt, (bad,))

    def test_truncated_payload(self):
        data = pack_payload("%d %f", (1, 2.0))
        with pytest.raises(SerializationError):
            unpack_payload("%d %f", data[:-1])

    def test_trailing_bytes(self):
        data = pack_payload("%d", (1,))
        with pytest.raises(SerializationError):
            unpack_payload("%d", data + b"x")

    def test_wrong_format_on_unpack(self):
        data = pack_payload("%s", ("abcdefgh",))
        with pytest.raises(SerializationError):
            unpack_payload("%ad %ad %ad", data)

    def test_unpicklable_object(self):
        with pytest.raises(SerializationError):
            pack_payload("%o", (lambda x: x,))


# -- property-based: any payload survives a pack/unpack cycle ------------------

_scalar_fmt_values = st.one_of(
    st.tuples(st.just("%d"), st.integers(min_value=-(2**63), max_value=2**63 - 1)),
    st.tuples(st.just("%ud"), st.integers(min_value=0, max_value=2**64 - 1)),
    st.tuples(
        st.just("%f"), st.floats(allow_nan=False, width=64)
    ),
    st.tuples(st.just("%s"), st.text(max_size=64)),
    st.tuples(st.just("%b"), st.booleans()),
    st.tuples(st.just("%ac"), st.binary(max_size=64)),
    st.tuples(
        st.just("%ad"),
        st.lists(
            st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=16
        ).map(lambda v: np.asarray(v, dtype=np.int64)),
    ),
    st.tuples(
        st.just("%af"),
        st.lists(st.floats(allow_nan=False, width=64), max_size=16).map(
            lambda v: np.asarray(v, dtype=np.float64)
        ),
    ),
    st.tuples(st.just("%as"), st.lists(st.text(max_size=8), max_size=8)),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_scalar_fmt_values, min_size=0, max_size=6))
def test_property_roundtrip(slots):
    fmt = " ".join(f for f, _v in slots)
    values = tuple(v for _f, v in slots)
    out = unpack_payload(fmt, pack_payload(fmt, values))
    assert len(out) == len(values)
    for a, b in zip(values, out):
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b)
        else:
            assert a == b


class Test32BitArrays:
    """%ad32/%af32: half-width arrays for space control."""

    def test_roundtrip_preserves_dtype(self):
        v = (
            np.array([-5, 7], dtype=np.int32),
            np.array([1.5, -2.25], dtype=np.float32),
        )
        out = unpack_payload("%ad32 %af32", pack_payload("%ad32 %af32", v))
        assert out[0].dtype == np.int32 and np.array_equal(out[0], v[0])
        assert out[1].dtype == np.float32 and np.array_equal(out[1], v[1])

    def test_half_the_wire_size(self):
        wide = payload_nbytes("%af", (np.zeros(100),))
        narrow = payload_nbytes("%af32", (np.zeros(100, np.float32),))
        assert narrow - 4 == (wide - 4) / 2

    def test_longest_match_parsing(self):
        assert [d.code for d in parse_format("%ad32%ad")] == ["ad32", "ad"]
        assert [d.code for d in parse_format("%af32 %af")] == ["af32", "af"]

    def test_lossy_coercion_is_explicit(self):
        # float64 data packs fine into %af32 (numpy casts), but the
        # round trip is float32 precision — callers opt in knowingly.
        (out,) = unpack_payload(
            "%af32", pack_payload("%af32", (np.array([1 / 3]),))
        )
        assert out.dtype == np.float32
        assert abs(float(out[0]) - 1 / 3) < 1e-7
