"""Smoke-run every example script so the shipped demos never rot.

Each example is executed in a subprocess exactly as a user would run it;
the assertions check the narrative output's key facts, not timing.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "sum of ranks" in out
        assert "network shut down cleanly" in out

    def test_cluster_monitor(self):
        out = run_example("cluster_monitor.py")
        assert "snapshot 3" in out
        assert "cluster CPU histogram" in out

    def test_failure_recovery(self):
        out = run_example("failure_recovery.py")
        assert "wave 1 aggregate: 9" in out
        assert "wave 2 aggregate: 18" in out
        assert "wave 3 aggregate: 27" in out

    def test_custom_filter(self):
        out = run_example("custom_filter.py")
        assert "loaded custom_filter:TopKFilter" in out
        assert "after wave 4" in out

    def test_sensor_queries(self):
        out = run_example("sensor_queries.py")
        assert "tag>" in out
        assert "epoch 2" in out

    def test_text_mining(self):
        out = run_example("text_mining.py")
        assert "topic terms surfaced from all shards: 15/15" in out

    def test_decision_trees(self):
        out = run_example("decision_trees.py")
        assert "identical to single-node fit on the union: True" in out

    def test_paradyn_profiler(self):
        out = run_example("paradyn_profiler.py")
        assert "equivalence classes" in out
        assert "T-startup" in out

    def test_performance_diagnosis(self):
        out = run_example("performance_diagnosis.py")
        assert "anomalies (minority behaviours)" in out
        assert "io_bound > io_in_checkpoint" in out

    def test_distributed_meanshift(self):
        out = run_example("distributed_meanshift.py", timeout=600)
        assert "peaks (single vs distributed)" in out
        assert "Fig. 4" in out
