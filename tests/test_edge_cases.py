"""Edge-case coverage across modules: concurrency, limits, odd inputs."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import (
    FIRST_APPLICATION_TAG,
    Network,
    Packet,
    SerializationError,
    balanced_topology,
    flat_topology,
)
from repro.core.packet import PayloadRef
from repro.core.serialization import pack_payload, unpack_payload

TAG = FIRST_APPLICATION_TAG


class TestPayloadRefConcurrency:
    def test_concurrent_incref_decref_balanced(self):
        """Refcount arithmetic is atomic under thread contention."""
        ref = PayloadRef("%af", (np.arange(100, dtype=np.float64),))
        n_threads, per_thread = 8, 500

        def churn():
            for _ in range(per_thread):
                ref.incref()
                ref.serialize()
                ref.decref()

        threads = [threading.Thread(target=churn) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ref.refcount == 1

    def test_concurrent_serialize_same_buffer(self):
        ref = PayloadRef("%af", (np.arange(1000, dtype=np.float64),))
        buffers = []

        def grab():
            buffers.append(ref.serialize())

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(b is buffers[0] for b in buffers)


class TestSerializationEdges:
    def test_non_latin1_char_rejected(self):
        with pytest.raises(SerializationError):
            pack_payload("%c", ("€",))

    def test_object_slot_with_numpy_inside(self):
        payload = {"arr": np.arange(5), "nested": [np.float64(2.5)]}
        (out,) = unpack_payload("%o", pack_payload("%o", (payload,)))
        assert np.array_equal(out["arr"], np.arange(5))

    def test_empty_string_list_items(self):
        vals = (["", "a", ""],)
        assert unpack_payload("%as", pack_payload("%as", vals)) == vals

    def test_matrix_with_zero_columns(self):
        m = np.empty((3, 0))
        (out,) = unpack_payload("%am", pack_payload("%am", (m,)))
        assert out.shape == (3, 0)

    def test_unicode_heavy_strings(self):
        s = "𝔘𝔫𝔦𝔠𝔬𝔡𝔢 ✓ ру́сский 中文"
        assert unpack_payload("%s", pack_payload("%s", (s,))) == (s,)

    def test_negative_zero_float(self):
        (out,) = unpack_payload("%f", pack_payload("%f", (-0.0,)))
        assert out == 0.0 and np.signbit(out)


class TestMinimalNetworks:
    def test_single_backend_tree(self):
        """The smallest legal network: root + one back-end."""
        with Network(flat_topology(1)) as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            be = net.backends[0]
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, TAG, "%d", 41)
            assert s.recv(timeout=5).values[0] == 41
            assert net.node_errors() == {}

    def test_two_networks_coexist(self):
        """Independent networks in one process do not interfere."""
        n1 = Network(flat_topology(2))
        n2 = Network(flat_topology(3))
        try:
            s1 = n1.new_stream(transform="sum", sync="wait_for_all")
            s2 = n2.new_stream(transform="sum", sync="wait_for_all")
            for net, s in ((n1, s1), (n2, s2)):
                for be in net.backends:
                    be.wait_for_stream(s.stream_id)
                    be.send(s.stream_id, TAG, "%d", 1)
            assert s1.recv(timeout=5).values[0] == 2
            assert s2.recv(timeout=5).values[0] == 3
        finally:
            n1.shutdown()
            n2.shutdown()

    def test_stream_ids_unique_per_network(self):
        with Network(flat_topology(2)) as net:
            ids = {net.new_stream(transform="sum").stream_id for _ in range(5)}
            assert len(ids) == 5

    def test_empty_format_packets(self):
        """A zero-slot packet is a legal signal-only message."""
        with Network(flat_topology(2)) as net:
            s = net.new_stream(transform="passthrough", sync="null")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "")

            net.run_backends(leaf)
            for _ in range(2):
                pkt = s.recv(timeout=5)
                assert pkt.values == ()
            assert net.node_errors() == {}


class TestConcurrentFrontendUse:
    def test_parallel_stream_creation(self):
        """Racing new_stream calls from several threads stays consistent."""
        with Network(balanced_topology(2, 2)) as net:
            streams = []
            lock = threading.Lock()

            def create():
                s = net.new_stream(transform="sum", sync="wait_for_all")
                with lock:
                    streams.append(s)

            threads = [threading.Thread(target=create) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len({s.stream_id for s in streams}) == 8
            # Every stream is fully functional.
            for s in streams:
                for be in net.backends:
                    be.wait_for_stream(s.stream_id)
                    be.send(s.stream_id, TAG, "%d", 1)
            for s in streams:
                assert s.recv(timeout=10).values[0] == 4
            assert net.node_errors() == {}

    def test_send_recv_from_different_threads(self):
        with Network(flat_topology(4)) as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            results = []

            def receiver():
                results.append(s.recv(timeout=10).values[0])

            t = threading.Thread(target=receiver)
            t.start()

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "%d", 2)

            net.run_backends(leaf)
            t.join(10)
            assert results == [8]
