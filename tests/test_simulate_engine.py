"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.simulate.engine import Server, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        assert sim.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1]
        sim.run()
        assert log == [1, 5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_determinism(self):
        def build():
            sim = Simulator()
            log = []
            for i in range(50):
                sim.schedule((i * 7919) % 13 * 0.1, lambda i=i: log.append(i))
            sim.run()
            return log

        assert build() == build()


class TestServer:
    def test_serial_service(self):
        sim = Simulator()
        srv = Server(sim)
        finishes = []
        sim.schedule(0.0, lambda: finishes.append(srv.submit(2.0)))
        sim.schedule(0.0, lambda: finishes.append(srv.submit(3.0)))
        sim.run()
        assert finishes == [2.0, 5.0]  # second job queues behind the first

    def test_idle_gap(self):
        sim = Simulator()
        srv = Server(sim)
        sim.schedule(0.0, lambda: srv.submit(1.0))
        sim.schedule(10.0, lambda: srv.submit(1.0))
        sim.run()
        assert srv.free_at == 11.0
        assert srv.busy_time == 2.0
        assert srv.utilization(11.0) == pytest.approx(2.0 / 11.0)

    def test_completion_callback_time(self):
        sim = Simulator()
        srv = Server(sim)
        times = []
        sim.schedule(1.0, lambda: srv.submit(2.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.5]

    def test_backlog_tracking(self):
        sim = Simulator()
        srv = Server(sim)

        def burst():
            for _ in range(4):
                srv.submit(1.0)

        sim.schedule(0.0, burst)
        sim.run()
        assert srv.max_backlog == 3.0
        assert srv.jobs == 4

    def test_negative_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Server(sim).submit(-1.0)
