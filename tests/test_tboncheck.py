"""Tests for the ``tboncheck`` static-analysis subsystem.

Fixture files under ``tests/analysis_fixtures/`` carry ``# expect:``
markers naming the rule(s) each line must trigger; the tests compare the
analysis output against those markers exactly, so every rule is covered
for true positives, true negatives, and pragma suppression in one sweep.
The zero-findings gate over ``src/`` is what CI enforces.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

import pytest

from repro.analysis.engine import analyze_paths, iter_python_files
from repro.analysis.findings import RULES, parse_pragmas

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "analysis_fixtures")
SRC = os.path.join(os.path.dirname(HERE), "src", "repro")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>TB\d{3}(?:\s*,\s*TB\d{3})*)")


def expected_findings(path: str) -> set[tuple[int, str]]:
    """(line, rule) pairs declared by ``# expect:`` markers in a fixture."""
    out: set[tuple[int, str]] = set()
    with open(path, encoding="utf-8") as fh:
        for lineno, text in enumerate(fh, start=1):
            m = _EXPECT_RE.search(text)
            if m:
                for rule in m.group("rules").split(","):
                    out.add((lineno, rule.strip()))
    return out


def actual_findings(path: str) -> set[tuple[int, str]]:
    return {(f.line, f.rule) for f in analyze_paths([path]).findings}


@pytest.mark.parametrize(
    "fixture",
    [
        "fx_wire_format.py",
        "fx_filter_protocol.py",
        "fx_locks.py",
        "fx_excepts.py",
        "fx_telemetry.py",
        "fx_reactor.py",
        "fx_chaos_hooks.py",
    ],
)
def test_fixture_findings_match_markers(fixture):
    path = os.path.join(FIXTURES, fixture)
    expected = expected_findings(path)
    assert expected, f"{fixture} declares no expectations — marker drift?"
    assert actual_findings(path) == expected


def test_clean_fixture_has_zero_findings():
    path = os.path.join(FIXTURES, "fx_clean.py")
    result = analyze_paths([path])
    assert result.ok, result.render()


def test_src_tree_is_clean():
    """The gate CI enforces: the code base itself has zero findings."""
    result = analyze_paths([SRC])
    assert result.files_analyzed > 30
    assert result.ok, result.render()


def test_every_rule_has_fixture_coverage():
    """Each non-infrastructure rule fires somewhere in the fixture set."""
    covered = set()
    for name in os.listdir(FIXTURES):
        if name.endswith(".py"):
            covered |= {r for _, r in expected_findings(os.path.join(FIXTURES, name))}
    assert covered == set(RULES) - {"TB001"}  # TB001 is exercised via tmp_path


def test_syntax_error_reports_tb001(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def nope(:\n")
    result = analyze_paths([str(bad)])
    assert [f.rule for f in result.findings] == ["TB001"]


def test_iter_python_files_skips_hidden_and_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
    files = iter_python_files([str(tmp_path)])
    assert files == [str(tmp_path / "pkg" / "a.py")]


# -- pragma parsing ----------------------------------------------------------


def test_pragma_lock_and_ignore():
    table = parse_pragmas(
        "x = 1  # tbon: lock=_mu\n"
        "y = 2  # tbon: ignore[TB101,TB204]\n"
        "z = 3  # tbon: ignore[*]\n"
    )
    assert table.lock_name(1) == "_mu"
    assert table.suppressed("TB101", 2) and table.suppressed("TB204", 2)
    assert not table.suppressed("TB102", 2)
    assert table.suppressed("TB402", 3)
    assert not table.errors


def test_pragma_reason_required():
    table = parse_pragmas("try:\n    pass\nexcept Exception:  # tbon: allow-broad-except()\n    pass\n")
    assert len(table.errors) == 1
    assert "reason" in table.errors[0][1]


def test_pragma_inside_string_is_not_a_pragma():
    table = parse_pragmas('s = "# tbon: ignore[*]"\n')
    assert not table.by_line and not table.errors


# -- CLI ---------------------------------------------------------------------


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=os.path.join(os.path.dirname(HERE), "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "tboncheck", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_flags_violations_with_rule_and_location():
    path = os.path.join(FIXTURES, "fx_excepts.py")
    proc = run_cli(path)
    assert proc.returncode == 1
    assert "TB402" in proc.stdout and "TB401" in proc.stdout
    assert re.search(r"fx_excepts\.py:\d+:\d+: TB4\d\d", proc.stdout)


def test_cli_clean_path_exits_zero():
    proc = run_cli(os.path.join(FIXTURES, "fx_clean.py"))
    assert proc.returncode == 0, proc.stdout


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in RULES:
        assert rule in proc.stdout


def test_cli_no_paths_is_usage_error():
    proc = run_cli()
    assert proc.returncode == 2


# -- mypy (CI installs it; skipped where unavailable) ------------------------


def test_mypy_strict_modules():
    pytest.importorskip("mypy")
    root = os.path.dirname(HERE)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            os.path.join(root, "pyproject.toml"),
            os.path.join(root, "src", "repro", "analysis"),
            os.path.join(root, "src", "repro", "core", "packet.py"),
            os.path.join(root, "src", "repro", "core", "serialization.py"),
            os.path.join(root, "src", "repro", "core", "filters.py"),
        ],
        capture_output=True,
        text=True,
        cwd=root,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
