"""Unit tests for the back-end endpoint API."""

from __future__ import annotations

import threading

import pytest

from repro import (
    FIRST_APPLICATION_TAG,
    Network,
    StreamError,
    balanced_topology,
)

TAG = FIRST_APPLICATION_TAG


@pytest.fixture
def net():
    network = Network(balanced_topology(2, 2))
    yield network
    network.shutdown()


class TestStreamAnnouncement:
    def test_wait_for_stream_returns_spec(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")
        spec = net.backends[0].wait_for_stream(s.stream_id)
        assert spec.stream_id == s.stream_id
        assert spec.transform == "sum"
        assert spec.members == tuple(net.topology.backends)

    def test_wait_for_unknown_stream_times_out(self, net):
        with pytest.raises(StreamError):
            net.backends[0].wait_for_stream(999, timeout=0.2)

    def test_streams_property(self, net):
        s1 = net.new_stream(transform="sum")
        s2 = net.new_stream(transform="max")
        be = net.backends[0]
        be.wait_for_stream(s1.stream_id)
        be.wait_for_stream(s2.stream_id)
        assert set(be.streams) >= {s1.stream_id, s2.stream_id}

    def test_send_unknown_stream_rejected(self, net):
        with pytest.raises(StreamError):
            net.backends[0].send(999, TAG, "%d", 1)


class TestTargetedReceive:
    def test_per_stream_routing(self, net):
        """Two consumers on one back-end, each targeting its own stream."""
        s1 = net.new_stream(transform="sum")
        s2 = net.new_stream(transform="sum")
        be = net.backends[0]
        be.wait_for_stream(s1.stream_id)
        be.wait_for_stream(s2.stream_id)
        got = {}

        def consumer(stream_id, key):
            got[key] = be.recv(timeout=10, stream_id=stream_id).values[0]

        t1 = threading.Thread(target=consumer, args=(s1.stream_id, "a"))
        t2 = threading.Thread(target=consumer, args=(s2.stream_id, "b"))
        t1.start()
        t2.start()
        # Send in the "wrong" order: targeted receives must not steal.
        s2.send(TAG, "%d", 222)
        s1.send(TAG, "%d", 111)
        t1.join(10)
        t2.join(10)
        assert got == {"a": 111, "b": 222}

    def test_untargeted_receive_in_arrival_order(self, net):
        s1 = net.new_stream(transform="sum")
        s2 = net.new_stream(transform="sum")
        be = net.backends[0]
        be.wait_for_stream(s1.stream_id)
        be.wait_for_stream(s2.stream_id)
        s1.send(TAG, "%d", 1)
        # Ensure ordering: wait until first arrives before sending second.
        first = be.recv(timeout=10)
        s2.send(TAG, "%d", 2)
        second = be.recv(timeout=10)
        assert (first.stream_id, second.stream_id) == (s1.stream_id, s2.stream_id)

    def test_mixed_targeted_then_untargeted(self, net):
        """Targeted receives must not leave ghost tokens for recv()."""
        s1 = net.new_stream(transform="sum")
        s2 = net.new_stream(transform="sum")
        be = net.backends[0]
        be.wait_for_stream(s1.stream_id)
        be.wait_for_stream(s2.stream_id)
        s1.send(TAG, "%d", 1)
        s2.send(TAG, "%d", 2)
        # Drain stream 1 by target, then an untargeted recv must get s2.
        p1 = be.recv(timeout=10, stream_id=s1.stream_id)
        p2 = be.recv(timeout=10)
        assert p1.stream_id == s1.stream_id
        assert p2.stream_id == s2.stream_id

    def test_recv_timeout(self, net):
        with pytest.raises(TimeoutError):
            net.backends[0].recv(timeout=0.2)

    def test_targeted_recv_timeout(self, net):
        s = net.new_stream(transform="sum")
        with pytest.raises(TimeoutError):
            net.backends[0].recv(timeout=0.2, stream_id=s.stream_id)
