"""Tests for the distributed mean-shift filter (the paper's case study)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology, flat_topology
from repro.cluster.datagen import ClusterSpec, full_dataset, leaf_dataset
from repro.cluster.meanshift import mean_shift
from repro.cluster.meanshift_filter import (
    MEANSHIFT_FMT,
    MeanShiftFilter,
    leaf_mean_shift,
)
from repro.core.filters import FilterContext
from repro.core.packet import Packet

TAG = FIRST_APPLICATION_TAG
SPEC = ClusterSpec(points_per_cluster=150)


def leaf_packet(i, seed=42, collapse=None):
    pts = leaf_dataset(i, SPEC, seed)
    d, w, pk, _res = leaf_mean_shift(pts, collapse_cell=collapse)
    return Packet(1, TAG, MEANSHIFT_FMT, (d, w, pk), src=100 + i)


class TestLeafStep:
    def test_leaf_output_is_reduced(self):
        pts = leaf_dataset(0, SPEC, 42)
        d, w, pk, res = leaf_mean_shift(pts)
        assert len(d) < len(pts)
        assert w.sum() == pytest.approx(len(pts))
        assert 1 <= len(pk) <= 8
        assert res.iterations > 0

    def test_collapse_disabled_forwards_raw(self):
        pts = leaf_dataset(0, SPEC, 42)
        d, w, _pk, _res = leaf_mean_shift(pts, collapse_cell=0)
        assert len(d) == len(pts)
        assert np.all(w == 1.0)


class TestFilterMerge:
    def test_merge_conserves_weight(self):
        f = MeanShiftFilter(bandwidth=50.0)
        batch = [leaf_packet(i) for i in range(3)]
        (out,) = f.execute(batch, FilterContext(n_children=3))
        total_in = sum(p.values[1].sum() for p in batch)
        assert out.values[1].sum() == pytest.approx(total_in)
        assert f.waves == 1
        assert f.total_iterations > 0

    def test_merged_peaks_match_single_node(self):
        """The distributed peaks track the single-node run's peaks."""
        f = MeanShiftFilter(bandwidth=50.0)
        batch = [leaf_packet(i) for i in range(4)]
        (out,) = f.execute(batch, FilterContext(n_children=4))
        dist_peaks = np.sort(out.values[2], axis=0)
        single = mean_shift(full_dataset(4, SPEC, 42))
        single_peaks = np.sort(single.peaks, axis=0)
        assert len(dist_peaks) == len(single_peaks)
        assert np.linalg.norm(dist_peaks - single_peaks, axis=1).max() < 10.0

    def test_output_stays_bounded_across_levels(self):
        """Re-merging merged outputs must not blow up (data reduction)."""
        f = MeanShiftFilter(bandwidth=50.0)
        ctx = FilterContext(n_children=2)
        level1 = [
            f.execute([leaf_packet(2 * i), leaf_packet(2 * i + 1)], ctx)[0]
            for i in range(2)
        ]
        (root,) = f.execute(level1, ctx)
        leaf_sizes = [len(leaf_packet(i).values[0]) for i in range(4)]
        assert len(root.values[0]) < sum(leaf_sizes)

    def test_empty_peaks_tolerated(self):
        f = MeanShiftFilter(bandwidth=50.0)
        empty = Packet(
            1, TAG, MEANSHIFT_FMT, (np.empty((0, 2)), np.empty(0), np.empty((0, 2)))
        )
        (out,) = f.execute([empty, leaf_packet(0)], FilterContext(n_children=2))
        assert len(out.values[2]) >= 1

    def test_collapse_off_grows_data(self):
        f = MeanShiftFilter(bandwidth=50.0, collapse_cell=0)
        batch = [leaf_packet(i, collapse=0) for i in range(2)]
        (out,) = f.execute(batch, FilterContext(n_children=2))
        assert len(out.values[0]) == sum(len(p.values[0]) for p in batch)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "topo_factory", [lambda: flat_topology(4), lambda: balanced_topology(2, 2)]
    )
    def test_distributed_equals_single_node_modes(self, topo_factory):
        topo = topo_factory()
        with Network(topo) as net:
            s = net.new_stream(
                transform="mean_shift",
                sync="wait_for_all",
                transform_params={"bandwidth": 50.0},
            )
            leaf_order = {r: i for i, r in enumerate(topo.backends)}

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                pts = leaf_dataset(leaf_order[be.rank], SPEC, 42)
                d, w, pk, _ = leaf_mean_shift(pts)
                be.send(s.stream_id, TAG, MEANSHIFT_FMT, d, w, pk)

            net.run_backends(leaf)
            pkt = s.recv(timeout=30)
            dist_peaks = np.sort(pkt.values[2], axis=0)
            single = mean_shift(full_dataset(4, SPEC, 42))
            single_peaks = np.sort(single.peaks, axis=0)
            assert len(dist_peaks) == len(single_peaks) == 4
            assert np.linalg.norm(dist_peaks - single_peaks, axis=1).max() < 10.0
            # Weight conservation across the whole tree.
            assert pkt.values[1].sum() == pytest.approx(4 * len(leaf_dataset(0, SPEC, 42)))
            assert net.node_errors() == {}
