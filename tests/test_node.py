"""Unit tests for the communication-process event loop (NodeRunner).

These drive :meth:`NodeRunner.handle` directly against a bound thread
transport — no node threads — so control-plane edge cases are exercised
deterministically.
"""

from __future__ import annotations

import queue

import pytest

from repro.core.errors import ProtocolError
from repro.core.events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    StreamSpec,
    TAG_SHUTDOWN,
    TAG_STREAM_CLOSE,
    TAG_STREAM_CREATE,
)
from repro.core.filter_registry import default_registry
from repro.core.node import NodeRunner
from repro.core.packet import Packet
from repro.core.topology import balanced_topology
from repro.transport.local import ThreadTransport


@pytest.fixture
def setup():
    topo = balanced_topology(2, 2)
    transport = ThreadTransport()
    transport.bind(topo)
    delivered = []
    root = NodeRunner(
        0, topo, transport, default_registry, deliver_up=delivered.append
    )
    internal_rank = topo.internals[0]
    internal = NodeRunner(internal_rank, topo, transport, default_registry)
    return topo, transport, root, internal, delivered


def spec_packet(spec: StreamSpec) -> Packet:
    return Packet(CONTROL_STREAM_ID, TAG_STREAM_CREATE, "%o", (spec,))


def make_spec(topo, stream_id=1, transform="sum", sync="wait_for_all"):
    return StreamSpec(
        stream_id=stream_id,
        members=tuple(topo.backends),
        transform=transform,
        sync=sync,
    )


class TestStreamCreate:
    def test_creates_state_and_forwards(self, setup):
        topo, transport, root, internal, _d = setup
        spec = make_spec(topo)
        root.handle(Envelope(-1, Direction.DOWNSTREAM, spec_packet(spec)))
        assert 1 in root.streams
        st = root.streams[1]
        assert st.covering == tuple(topo.children(0))
        assert st.ctx.n_children == 2
        assert st.ctx.is_root
        # Forwarded to both children.
        for c in topo.children(0):
            env = transport.inbox(c).get(timeout=1)
            assert env.packet.tag == TAG_STREAM_CREATE

    def test_subset_covering(self, setup):
        topo, transport, root, internal, _d = setup
        left = topo.children(0)[0]
        members = tuple(topo.subtree_backends(left))
        spec = StreamSpec(1, members, "sum", "wait_for_all")
        root.handle(Envelope(-1, Direction.DOWNSTREAM, spec_packet(spec)))
        assert root.streams[1].covering == (left,)
        assert root.streams[1].ctx.n_children == 1


class TestDataPath:
    def test_upstream_reduction_to_frontend(self, setup):
        topo, transport, root, internal, delivered = setup
        spec = make_spec(topo)
        root.handle(Envelope(-1, Direction.DOWNSTREAM, spec_packet(spec)))
        c1, c2 = topo.children(0)
        root.handle(
            Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (3,), src=c1))
        )
        assert delivered == []  # waiting for the second child
        root.handle(
            Envelope(c2, Direction.UPSTREAM, Packet(1, 100, "%d", (4,), src=c2))
        )
        assert len(delivered) == 1
        assert delivered[0].packet.values == (7,)

    def test_internal_forwards_to_parent(self, setup):
        topo, transport, root, internal, _d = setup
        spec = make_spec(topo)
        internal.handle(Envelope(0, Direction.DOWNSTREAM, spec_packet(spec)))
        for be in topo.children(internal.rank):
            internal.handle(
                Envelope(be, Direction.UPSTREAM, Packet(1, 100, "%d", (1,), src=be))
            )
        env = transport.inbox(0).get(timeout=1)
        assert env.direction is Direction.UPSTREAM
        assert env.packet.values == (2,)
        assert internal.stream_stats()[1] == (2, 1)

    def test_upstream_unknown_stream_rejected(self, setup):
        topo, transport, root, internal, _d = setup
        with pytest.raises(ProtocolError):
            root.handle(
                Envelope(1, Direction.UPSTREAM, Packet(99, 100, "%d", (1,)))
            )

    def test_downstream_unknown_stream_rejected(self, setup):
        topo, transport, root, internal, _d = setup
        with pytest.raises(ProtocolError):
            root.handle(
                Envelope(-1, Direction.DOWNSTREAM, Packet(99, 100, "%d", (1,)))
            )

    def test_downstream_multicast_shares_payload(self, setup):
        topo, transport, root, internal, _d = setup
        spec = make_spec(topo)
        root.handle(Envelope(-1, Direction.DOWNSTREAM, spec_packet(spec)))
        pkt = Packet(1, 100, "%d", (5,))
        root.handle(Envelope(-1, Direction.DOWNSTREAM, pkt))
        assert pkt.payload_ref().refcount >= 2  # one per child


class TestControlEdgeCases:
    def test_unknown_downstream_control_rejected(self, setup):
        topo, transport, root, internal, _d = setup
        bogus = Packet(CONTROL_STREAM_ID, 42, "%d", (0,))
        with pytest.raises(ProtocolError):
            root.handle(Envelope(-1, Direction.DOWNSTREAM, bogus))

    def test_unknown_upstream_control_forwarded_to_root(self, setup):
        topo, transport, root, internal, delivered = setup
        bogus = Packet(CONTROL_STREAM_ID, 42, "%d", (0,))
        internal.handle(Envelope(5, Direction.UPSTREAM, bogus))
        env = transport.inbox(0).get(timeout=1)
        assert env.packet.tag == 42
        root.handle(env)
        assert delivered and delivered[0].packet.tag == 42

    def test_close_without_create_rejected(self, setup):
        topo, transport, root, internal, _d = setup
        close = Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (7,))
        with pytest.raises(ProtocolError):
            root.handle(Envelope(-1, Direction.DOWNSTREAM, close))

    def test_duplicate_close_ack_ignored(self, setup):
        topo, transport, root, internal, delivered = setup
        spec = make_spec(topo)
        root.handle(Envelope(-1, Direction.DOWNSTREAM, spec_packet(spec)))
        close = Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (1,))
        root.handle(Envelope(-1, Direction.DOWNSTREAM, close))
        c1, c2 = topo.children(0)
        ack = Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (1,))
        root.handle(Envelope(c1, Direction.UPSTREAM, ack))
        root.handle(Envelope(c2, Direction.UPSTREAM, ack))
        assert 1 not in root.streams
        # A straggler ack for the closed stream must not blow up.
        root.handle(Envelope(c1, Direction.UPSTREAM, ack))

    def test_shutdown_stops_loop_and_propagates(self, setup):
        topo, transport, root, internal, _d = setup
        root.running = True
        root.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_SHUTDOWN, "%d", (0,)),
            )
        )
        assert root.running is False
        for c in topo.children(0):
            env = transport.inbox(c).get(timeout=1)
            assert env.packet.tag == TAG_SHUTDOWN

    def test_filter_error_reported_not_raised(self, setup):
        """The run loop catches handler errors and reports upstream."""
        topo, transport, root, internal, delivered = setup
        import threading

        spec = make_spec(topo)
        root.handle(Envelope(-1, Direction.DOWNSTREAM, spec_packet(spec)))
        # Feed garbage through the run loop (mixed formats break sum).
        t = threading.Thread(target=root.run, daemon=True)
        root.running = True
        t.start()
        c1, c2 = topo.children(0)
        transport.inbox(0).put(
            Envelope(c1, Direction.UPSTREAM, Packet(1, 100, "%d", (1,), src=c1))
        )
        transport.inbox(0).put(
            Envelope(c2, Direction.UPSTREAM, Packet(1, 100, "%f", (1.0,), src=c2))
        )
        import time

        deadline = time.time() + 5
        while root.error is None and time.time() < deadline:
            time.sleep(0.01)
        assert root.error is not None
        root.running = False
        transport.inbox(0).close()
        t.join(2)
