"""Unit tests for the transport layer (Inbox, thread and TCP channels)."""

from __future__ import annotations

import queue
import threading

import numpy as np
import pytest

from repro.core.errors import ChannelClosedError, TransportError
from repro.core.events import Direction, Envelope
from repro.core.packet import Packet, make_packet
from repro.core.topology import balanced_topology, flat_topology
from repro.transport.base import Inbox
from repro.transport.local import ThreadTransport
from repro.transport.tcp import TCPTransport


class TestInbox:
    def test_fifo_order(self):
        box = Inbox()
        for i in range(5):
            box.put(Envelope(i, Direction.UPSTREAM, make_packet(1, 100, "%d", i)))
        got = [box.get(timeout=1).src for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_get_timeout(self):
        with pytest.raises(queue.Empty):
            Inbox().get(timeout=0.05)

    def test_close_unblocks_all_consumers(self):
        box = Inbox()
        results = []

        def consumer():
            try:
                box.get(timeout=5)
            except ChannelClosedError:
                results.append("closed")

        threads = [threading.Thread(target=consumer) for _ in range(3)]
        for t in threads:
            t.start()
        box.close()
        for t in threads:
            t.join(2)
        assert results == ["closed"] * 3

    def test_pending_items_drain_before_close(self):
        box = Inbox()
        box.put(Envelope(1, Direction.UPSTREAM, make_packet(1, 100, "%d", 1)))
        box.close()
        assert box.get(timeout=1).src == 1
        with pytest.raises(ChannelClosedError):
            box.get(timeout=1)

    def test_put_after_closed_get_rejected(self):
        box = Inbox()
        box.close()
        with pytest.raises(ChannelClosedError):
            box.get(timeout=1)
        with pytest.raises(ChannelClosedError):
            box.put(Envelope(1, Direction.UPSTREAM, make_packet(1, 100, "%d", 1)))


class TestThreadTransport:
    def test_edges_enforced(self):
        t = ThreadTransport()
        t.bind(balanced_topology(2, 2))
        with pytest.raises(TransportError):
            t.send(3, 4, Direction.UPSTREAM, make_packet(1, 100, "%d", 1))

    def test_double_bind_rejected(self):
        t = ThreadTransport()
        t.bind(flat_topology(2))
        with pytest.raises(TransportError):
            t.bind(flat_topology(2))

    def test_unbound_access_rejected(self):
        t = ThreadTransport()
        with pytest.raises(TransportError):
            t.inbox(0)
        with pytest.raises(TransportError):
            t.send(0, 1, Direction.DOWNSTREAM, make_packet(1, 100, "%d", 1))

    def test_send_delivers_by_reference(self):
        t = ThreadTransport()
        t.bind(flat_topology(2))
        pkt = make_packet(1, 100, "%d", 42)
        t.send(0, 1, Direction.DOWNSTREAM, pkt)
        env = t.inbox(1).get(timeout=1)
        assert env.packet is pkt  # zero-copy in process

    def test_rebind_keeps_existing_queues(self):
        t = ThreadTransport()
        topo = flat_topology(2)
        t.bind(topo)
        t.send(0, 1, Direction.DOWNSTREAM, make_packet(1, 100, "%d", 7))
        topo2, _new = topo.attach_backend(0)
        t.rebind(topo2)
        # The queued packet survives the rebind.
        assert t.inbox(1).get(timeout=1).packet.values == (7,)
        # The new rank has a fresh inbox.
        assert t.inbox(topo2.backends[-1]).qsize() == 0

    def test_rebind_requires_bind(self):
        with pytest.raises(TransportError):
            ThreadTransport().rebind(flat_topology(2))


class TestTCPTransport:
    @pytest.fixture
    def bound(self):
        t = TCPTransport()
        t.bind(balanced_topology(2, 2))
        yield t
        t.shutdown()

    def test_roundtrip_preserves_payload(self, bound):
        pkt = Packet(
            1, 100, "%d %af %s", (7, np.array([1.5, -2.5]), "hello"), src=3
        )
        bound.send(3, 1, Direction.UPSTREAM, pkt)
        env = bound.inbox(1).get(timeout=2)
        assert env.src == 3
        assert env.direction is Direction.UPSTREAM
        assert env.packet.values[0] == 7
        assert np.array_equal(env.packet.values[1], [1.5, -2.5])
        assert env.packet.values[2] == "hello"
        assert env.packet is not pkt  # genuinely serialized

    def test_fifo_per_channel(self, bound):
        for i in range(20):
            bound.send(3, 1, Direction.UPSTREAM, make_packet(1, 100, "%d", i))
        got = [bound.inbox(1).get(timeout=2).packet.values[0] for _ in range(20)]
        assert got == list(range(20))

    def test_non_edge_rejected(self, bound):
        with pytest.raises(TransportError):
            bound.send(3, 4, Direction.UPSTREAM, make_packet(1, 100, "%d", 1))

    def test_send_after_shutdown_fails(self):
        t = TCPTransport()
        t.bind(flat_topology(2))
        t.shutdown()
        with pytest.raises(ChannelClosedError):
            t.send(1, 0, Direction.UPSTREAM, make_packet(1, 100, "%d", 1))

    def test_bidirectional_edges(self, bound):
        down = make_packet(1, 100, "%s", "down")
        up = make_packet(1, 100, "%s", "up")
        bound.send(0, 1, Direction.DOWNSTREAM, down)
        bound.send(1, 0, Direction.UPSTREAM, up)
        assert bound.inbox(1).get(timeout=2).packet.values == ("down",)
        assert bound.inbox(0).get(timeout=2).packet.values == ("up",)
