"""Tests for distributed agglomerative clustering (Section 2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.errors import TBONError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.cluster.agglomerative import (
    AGGLOMERATIVE_FMT,
    AgglomerativeFilter,
    ClusterSummary,
    agglomerate,
    summarize_points,
)

TAG = FIRST_APPLICATION_TAG


class TestAgglomerate:
    def test_merges_below_threshold(self):
        s = ClusterSummary(
            np.array([[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]]), np.ones(3)
        )
        out = agglomerate(s, merge_distance=5.0)
        assert out.k == 2
        assert out.weights.sum() == pytest.approx(3.0)

    def test_weighted_centroid(self):
        s = ClusterSummary(np.array([[0.0, 0.0], [4.0, 0.0]]), np.array([3.0, 1.0]))
        out = agglomerate(s, merge_distance=10.0)
        assert out.k == 1
        assert out.centroids[0, 0] == pytest.approx(1.0)  # (0*3 + 4*1)/4

    def test_centroid_linkage_chain(self):
        """Centroid linkage: merging (0, 4) moves the centroid to 2, so
        the remaining gap to 8 is 6 — beyond a threshold of 5 the chain
        does NOT fully collapse (distinguishes centroid from single
        linkage), while a threshold of 7 collapses it."""
        cents = np.array([[0.0, 0.0], [4.0, 0.0], [8.0, 0.0]])
        out5 = agglomerate(ClusterSummary(cents, np.ones(3)), merge_distance=5.0)
        assert out5.k == 2
        out7 = agglomerate(ClusterSummary(cents, np.ones(3)), merge_distance=7.0)
        assert out7.k == 1

    def test_nothing_to_merge(self):
        cents = np.array([[0.0, 0.0], [100.0, 0.0]])
        out = agglomerate(ClusterSummary(cents, np.ones(2)), merge_distance=5.0)
        assert out.k == 2

    def test_single_cluster_noop(self):
        out = agglomerate(ClusterSummary(np.zeros((1, 2)), np.ones(1)), 5.0)
        assert out.k == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TBONError):
            ClusterSummary(np.zeros((2, 2)), np.ones(3))


class TestSummarizePoints:
    def test_small_input_exact(self, rng):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [50.0, 50.0]])
        s = summarize_points(pts, merge_distance=5.0)
        assert s.k == 2
        assert s.weights.sum() == pytest.approx(3.0)

    def test_large_input_grid_path(self, rng):
        pts = rng.normal(size=(1000, 2)) * 5 + 100
        s = summarize_points(pts, merge_distance=10.0)
        assert s.weights.sum() == pytest.approx(1000.0)
        assert s.k < 50


class TestFilter:
    def test_requires_merge_distance(self):
        with pytest.raises(TBONError):
            AgglomerativeFilter()

    def test_merges_children(self):
        f = AgglomerativeFilter(merge_distance=10.0)
        a = Packet(1, TAG, AGGLOMERATIVE_FMT, (np.array([[0.0, 0.0]]), np.array([5.0])))
        b = Packet(1, TAG, AGGLOMERATIVE_FMT, (np.array([[2.0, 0.0]]), np.array([3.0])))
        (out,) = f.execute([a, b], FilterContext(n_children=2))
        cents, wts = out.values
        assert len(cents) == 1
        assert wts[0] == pytest.approx(8.0)
        assert cents[0, 0] == pytest.approx((0 * 5 + 2 * 3) / 8)

    def test_end_to_end(self):
        """Leaves summarize disjoint views of the same blobs; the tree
        agglomerates them back to the true cluster count."""
        topo = balanced_topology(2, 2)
        centers = np.array([[100.0, 100.0], [400.0, 400.0], [100.0, 400.0]])
        with Network(topo) as net:
            s = net.new_stream(
                transform="agglomerative",
                sync="wait_for_all",
                transform_params={"merge_distance": 60.0},
            )
            order = {r: i for i, r in enumerate(topo.backends)}

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                rng = np.random.default_rng(order[be.rank])
                pts = np.concatenate(
                    [rng.normal(loc=c, scale=10.0, size=(80, 2)) for c in centers]
                )
                summary = summarize_points(pts, merge_distance=60.0)
                be.send(
                    s.stream_id, TAG, AGGLOMERATIVE_FMT, summary.centroids, summary.weights
                )

            net.run_backends(leaf)
            pkt = s.recv(timeout=20)
            cents, wts = pkt.values
            assert len(cents) == 3
            assert wts.sum() == pytest.approx(4 * 3 * 80)
            for c in centers:
                assert np.linalg.norm(cents - c, axis=1).min() < 15
            assert net.node_errors() == {}
