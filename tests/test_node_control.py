"""Unit tests for NodeRunner control-plane handlers.

Covers the tree routing of back-end p2p messages (`_on_p2p`:
climb-then-descend) and held-wave release after a topology
reconfiguration (`_on_reconfigure`), both driven directly through
``NodeRunner.handle`` without spinning up full networks.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ProtocolError
from repro.core.events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    StreamSpec,
    TAG_P2P,
    TAG_STREAM_CREATE,
    TAG_TOPOLOGY_ATTACH,
)
from repro.core.filter_registry import default_registry
from repro.core.node import NodeRunner
from repro.core.packet import Packet
from repro.core.topology import balanced_topology
from repro.transport.local import ThreadTransport


def _p2p_packet(dst: int, src: int = -1, tag: int = 200, fmt: str = "%d", values=(1,)):
    """Build a p2p control packet the way BackEnd.send_p2p does."""
    return Packet(
        CONTROL_STREAM_ID, TAG_P2P, "%d %d %d %s %o", (dst, src, tag, fmt, values)
    )


@pytest.fixture
def topo():
    # 0 -> (1, 2); 1 -> (3, 4); 2 -> (5, 6).  Backends are 3..6.
    return balanced_topology(2, 2)


@pytest.fixture
def transport(topo):
    t = ThreadTransport()
    t.bind(topo)
    return t


def _node(rank, topo, transport, **kwargs):
    return NodeRunner(rank, topo, transport, default_registry, **kwargs)


class TestP2PRoutingUnit:
    def test_root_descends_to_covering_child(self, topo, transport):
        node = _node(0, topo, transport)
        pkt = _p2p_packet(dst=3, src=5)
        node.handle(Envelope(2, Direction.UPSTREAM, pkt))
        env = transport.inbox(1).get(timeout=1)
        assert env.direction is Direction.DOWNSTREAM
        assert env.src == 0
        assert env.packet is pkt  # routed unchanged

    def test_internal_descends_to_local_backend(self, topo, transport):
        node = _node(1, topo, transport)
        pkt = _p2p_packet(dst=4, src=3)
        node.handle(Envelope(3, Direction.UPSTREAM, pkt))
        env = transport.inbox(4).get(timeout=1)
        assert env.direction is Direction.DOWNSTREAM
        assert env.packet.values[0] == 4

    def test_internal_climbs_when_dst_outside_subtree(self, topo, transport):
        # dst 5 lives under node 2, so node 1 must hand the message to
        # its parent (the climb half of climb-then-descend).
        node = _node(1, topo, transport)
        pkt = _p2p_packet(dst=5, src=3)
        node.handle(Envelope(3, Direction.UPSTREAM, pkt))
        env = transport.inbox(0).get(timeout=1)
        assert env.direction is Direction.UPSTREAM
        assert env.src == 1
        assert env.packet is pkt

    def test_climb_then_descend_chain(self, topo, transport):
        """Route 3 -> 6 hop by hop through nodes 1, 0, 2."""
        pkt = _p2p_packet(dst=6, src=3)
        _node(1, topo, transport).handle(Envelope(3, Direction.UPSTREAM, pkt))
        env = transport.inbox(0).get(timeout=1)
        _node(0, topo, transport).handle(env)
        env = transport.inbox(2).get(timeout=1)
        assert env.direction is Direction.DOWNSTREAM
        _node(2, topo, transport).handle(env)
        env = transport.inbox(6).get(timeout=1)
        assert env.packet.values[0] == 6
        assert env.packet.values[3:] == ("%d", (1,))

    def test_root_rejects_non_backend_destination(self, topo, transport):
        node = _node(0, topo, transport)
        with pytest.raises(ProtocolError, match="not a back-end"):
            node.handle(Envelope(1, Direction.UPSTREAM, _p2p_packet(dst=1)))

    def test_unknown_destination_rejected(self, topo, transport):
        node = _node(0, topo, transport)
        with pytest.raises(ProtocolError, match="not in topology"):
            node.handle(Envelope(1, Direction.UPSTREAM, _p2p_packet(dst=99)))


class TestReconfigureRelease:
    def _create_stream(self, node, members, sync="wait_for_all"):
        spec = StreamSpec(1, tuple(members), "sum", sync)
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_STREAM_CREATE, "%o", (spec,)),
            )
        )
        return spec

    def test_held_wave_releases_when_child_subtree_lost(self, topo, transport):
        delivered = []
        node = _node(0, topo, transport, deliver_up=delivered.append)
        self._create_stream(node, topo.backends)
        # Child 1's aggregate arrives; wait_for_all blocks on child 2.
        node.handle(
            Envelope(1, Direction.UPSTREAM, Packet(1, 100, "%d", (7,), src=1))
        )
        assert delivered == []
        assert node.streams[1].sync.pending_count() == 1
        # Node 2's subtree is lost; the recovery machinery hands the
        # shrunken topology straight to the survivors' inboxes.
        new_topo = (
            topo.detach_backend(5).detach_backend(6).detach_backend(2)
        )
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (new_topo,)),
            )
        )
        # The held wave released with the survivor's packet.
        assert len(delivered) == 1
        assert delivered[0].packet.values == (7,)
        assert node.streams[1].covering == (1,)
        assert node.streams[1].ctx.n_children == 1

    def test_reconfigure_updates_routing_state(self, topo, transport):
        node = _node(0, topo, transport)
        self._create_stream(node, topo.backends)
        new_topo = topo.replace_subtree_parent(2)  # 5, 6 adopted by root
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (new_topo,)),
            )
        )
        assert node.topology is new_topo
        assert set(node.streams[1].covering) == {1, 5, 6}
        assert node.streams[1].ctx.n_children == 3
        # p2p routing follows the new tree: 5 is now root's own child.
        transport.rebind(new_topo)
        node.handle(Envelope(1, Direction.UPSTREAM, _p2p_packet(dst=5)))
        env = transport.inbox(5).get(timeout=1)
        assert env.direction is Direction.DOWNSTREAM

    def test_waves_after_reconfigure_use_new_width(self, topo, transport):
        delivered = []
        node = _node(0, topo, transport, deliver_up=delivered.append)
        self._create_stream(node, topo.backends)
        new_topo = topo.detach_backend(5).detach_backend(6).detach_backend(2)
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (new_topo,)),
            )
        )
        # With only child 1 covering, each packet completes a wave alone.
        node.handle(
            Envelope(1, Direction.UPSTREAM, Packet(1, 100, "%d", (5,), src=1))
        )
        assert len(delivered) == 1 and delivered[0].packet.values == (5,)

    def test_closing_stream_finishes_when_last_ack_was_lost_child(
        self, topo, transport
    ):
        """A stream blocked on a close-ack from a lost subtree completes
        once reconfiguration shrinks the covering set."""
        from repro.core.events import TAG_STREAM_CLOSE

        delivered = []
        node = _node(0, topo, transport, deliver_up=delivered.append)
        self._create_stream(node, topo.backends)
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (1,)),
            )
        )
        # Only child 1 acks; child 2 died.
        node.handle(
            Envelope(
                1,
                Direction.UPSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (1,)),
            )
        )
        assert 1 in node.streams  # still waiting on child 2
        new_topo = topo.detach_backend(5).detach_backend(6).detach_backend(2)
        node.handle(
            Envelope(
                -1,
                Direction.DOWNSTREAM,
                Packet(CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (new_topo,)),
            )
        )
        assert 1 not in node.streams  # close completed
        assert delivered and delivered[-1].packet.tag == TAG_STREAM_CLOSE
