"""Property-based invariants for the seeded chaos engine.

Each test sweeps seeds (``--chaos-seeds N``, or ``--chaos-seed S`` to
replay one): every seed derives its own random topology and fault
schedule inside :func:`repro.reliability.chaos.run_chaos`, so the sweep
covers ~N distinct (topology, schedule) combinations per transport.

The invariants cross-linked from docs/RELIABILITY.md:

* ``test_no_duplicate_wave_delivery`` — a wave result reaches the
  front-end at most once, even after duplicate/reorder faults;
* ``test_liveness_after_recovery`` — every wave from surviving
  back-ends eventually arrives (with exact sums) once the storm heals;
* ``test_membership_consistency`` — all surviving processes agree on
  the post-recovery topology;
* ``test_same_seed_identical_trace`` — same seed, byte-identical fault
  trace (the replay guarantee).

The invariant runs go over ``transport="tcp"``, which resolves through
``TBON_TRANSPORT`` — CI's chaos job sweeps both socket transports with
the same tests.  Trace determinism runs on the thread transport where
per-edge ordinals are fully count-driven; ``crash``/``reset`` timing is
wall-clock and deliberately outside the trace contract.
"""

from __future__ import annotations

import pytest

from repro.core.topology import balanced_topology
from repro.reliability.chaos import (
    ChaosReport,
    ChaosSchedule,
    CrashFault,
    generate_schedule,
    run_chaos,
)

#: Full fault menu for the invariant runs: every kind, crash included.
STORM_KINDS = ("drop", "delay", "duplicate", "reorder", "partition", "reset", "crash")
#: Count-deterministic kinds for the byte-identical-trace guarantee.
TRACE_KINDS = ("drop", "delay", "duplicate", "reorder", "partition")

#: One chaos run per (seed, transport, kinds) serves every invariant
#: test — the properties are independent reads of the same experiment.
_RUNS: dict[tuple, ChaosReport] = {}


def storm_report(seed: int, transport: str = "tcp") -> ChaosReport:
    key = (seed, transport, STORM_KINDS)
    if key not in _RUNS:
        _RUNS[key] = run_chaos(seed, transport=transport, kinds=STORM_KINDS)
    return _RUNS[key]


# -- schedule purity ---------------------------------------------------------
def test_schedule_generation_is_pure():
    topo = balanced_topology(3, 2)
    a = generate_schedule(42, topo, STORM_KINDS, events=20, horizon=10)
    b = generate_schedule(42, topo, STORM_KINDS, events=20, horizon=10)
    assert a == b
    c = generate_schedule(43, topo, STORM_KINDS, events=20, horizon=10)
    assert a != c
    assert all(f.seq >= 1 for f in a.edge_faults)
    for crash in a.crashes:
        assert crash.rank in topo.internals


def test_schedule_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown fault kinds"):
        generate_schedule(1, balanced_topology(2, 2), ("drop", "gamma-rays"))


# -- invariants over the seed sweep ------------------------------------------
def test_no_duplicate_wave_delivery(chaos_seed):
    report = storm_report(chaos_seed)
    assert report.invariants["no_duplicate_delivery"], report.format()


def test_liveness_after_recovery(chaos_seed):
    report = storm_report(chaos_seed)
    assert report.invariants["all_waves_arrive"], report.format()
    assert report.invariants["wave_sums_exact"], report.format()
    assert not report.errors, report.format()


def test_membership_consistency(chaos_seed):
    report = storm_report(chaos_seed)
    assert report.invariants["membership_consistent"], report.format()
    if report.schedule.crashes:
        # A crashed internal node must actually have left the tree.
        assert report.n_processes_after <= report.n_processes_before


def test_same_seed_identical_trace(chaos_seed):
    first = run_chaos(chaos_seed, transport="thread", kinds=TRACE_KINDS)
    second = run_chaos(chaos_seed, transport="thread", kinds=TRACE_KINDS)
    assert first.schedule == second.schedule
    assert first.trace == second.trace
    assert first.ok and second.ok, first.format() + "\n" + second.format()


# -- hand-crafted schedules --------------------------------------------------
def test_crash_schedule_executes():
    """A schedule that is *only* a crash: kill, recover, verify."""
    topo = balanced_topology(3, 2)
    victim = topo.internals[0]
    schedule = ChaosSchedule(seed=0, crashes=(CrashFault(victim, after=1),))
    report = run_chaos(
        0, topology=topo, transport="tcp", schedule=schedule, waves=2
    )
    assert report.ok, report.format()
    assert f"crash rank={victim} after=1" in report.trace
    assert report.n_processes_after == report.n_processes_before - 1


def test_report_format_mentions_invariants():
    report = storm_report(1)
    text = report.format()
    for name in report.invariants:
        assert name in text
    assert "verdict:" in text
