"""Tests for tree-routed back-end-to-back-end messaging (Section 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Network, Topology, balanced_topology, flat_topology


@pytest.fixture
def net():
    network = Network(balanced_topology(3, 2))
    yield network
    network.shutdown()
    assert network.node_errors() == {}


class TestP2PRouting:
    def test_cross_subtree_delivery(self, net):
        """Message climbs to the root and descends the other side."""
        backends = net.topology.backends
        a, b = backends[0], backends[-1]
        assert net.topology.parent(a) != net.topology.parent(b)
        net.backend(a).send_p2p(b, 200, "%s", "ping")
        pkt = net.backend(b).recv_p2p(timeout=5)
        assert pkt.src == a
        assert pkt.tag == 200
        assert pkt.values == ("ping",)

    def test_same_subtree_short_path(self, net):
        """Siblings route through their shared parent, not the root."""
        backends = net.topology.backends
        a, b = backends[0], backends[1]
        assert net.topology.parent(a) == net.topology.parent(b)
        net.backend(a).send_p2p(b, 201, "%d", 42)
        assert net.backend(b).recv_p2p(timeout=5).values == (42,)
        # The root never saw the message (no jobs on its p2p path):
        # stream stats count data packets only, but node errors would
        # flag a misroute; absence is checked by the fixture teardown.

    def test_request_reply(self, net):
        backends = net.topology.backends
        a, b = backends[0], backends[4]
        net.backend(a).send_p2p(b, 210, "%af", np.array([3.0]))
        req = net.backend(b).recv_p2p(timeout=5)
        net.backend(b).send_p2p(req.src, 211, "%af", req.values[0] * 2)
        rep = net.backend(a).recv_p2p(timeout=5)
        assert rep.values[0][0] == 6.0

    def test_p2p_and_streams_coexist(self, net):
        from repro import FIRST_APPLICATION_TAG

        s = net.new_stream(transform="sum", sync="wait_for_all")
        backends = net.topology.backends

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, FIRST_APPLICATION_TAG, "%d", 1)

        net.run_backends(leaf)
        net.backend(backends[0]).send_p2p(backends[-1], 220, "%s", "side-channel")
        assert s.recv(timeout=10).values[0] == 9
        assert net.backend(backends[-1]).recv_p2p(timeout=5).values == (
            "side-channel",
        )

    def test_flat_tree_p2p(self):
        with Network(flat_topology(4)) as net:
            a, b = net.topology.backends[0], net.topology.backends[-1]
            net.backend(a).send_p2p(b, 230, "%d", 7)
            assert net.backend(b).recv_p2p(timeout=5).values == (7,)
            assert net.node_errors() == {}

    def test_unknown_destination_reports_error(self):
        import time

        # Own network: the misroute legitimately records a node error.
        local = Network(balanced_topology(3, 2))
        try:
            local.backend(local.topology.backends[0]).send_p2p(9999, 240, "%d", 1)
            deadline = time.time() + 5
            while not local.frontend.errors and time.time() < deadline:
                time.sleep(0.05)
            assert local.frontend.errors  # misroute surfaced at the front-end
        finally:
            local.shutdown()

    def test_fifo_between_same_pair(self, net):
        a, b = net.topology.backends[0], net.topology.backends[-1]
        for i in range(10):
            net.backend(a).send_p2p(b, 250, "%d", i)
        got = [net.backend(b).recv_p2p(timeout=5).values[0] for i in range(10)]
        assert got == list(range(10))
