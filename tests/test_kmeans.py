"""Tests for single-node and TBON-distributed k-means."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Network, Topology, balanced_topology
from repro.core.errors import TBONError
from repro.cluster.datagen import ClusterSpec, leaf_dataset
from repro.cluster.kmeans import assign, distributed_kmeans, kmeans

SPEC = ClusterSpec(points_per_cluster=100)


def leaf_points_for(topo, seed=9):
    return {
        r: leaf_dataset(i, SPEC, seed) for i, r in enumerate(topo.backends)
    }


class TestSingleNode:
    def test_recovers_blob_centers(self):
        pts = leaf_dataset(0, SPEC, 3)
        res = kmeans(pts, 4, seed=1)
        # Every true center has a centroid within 3 sigma.
        for c in SPEC.centers:
            assert np.linalg.norm(res.centroids - c, axis=1).min() < 3 * SPEC.std

    def test_deterministic_with_seed(self):
        pts = leaf_dataset(0, SPEC, 3)
        a = kmeans(pts, 3, seed=7)
        b = kmeans(pts, 3, seed=7)
        assert np.array_equal(a.centroids, b.centroids)

    def test_explicit_init(self):
        pts = leaf_dataset(0, SPEC, 3)
        init = pts[:2].copy()
        res = kmeans(pts, 2, init=init)
        assert res.iterations >= 1

    def test_k_validation(self):
        pts = np.zeros((5, 2))
        with pytest.raises(TBONError):
            kmeans(pts, 0)
        with pytest.raises(TBONError):
            kmeans(pts, 6)

    def test_init_shape_validation(self):
        with pytest.raises(TBONError):
            kmeans(np.zeros((5, 2)), 2, init=np.zeros((3, 2)))

    def test_assign(self):
        cen = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts = np.array([[1.0, 1.0], [9.0, 9.0]])
        assert assign(pts, cen).tolist() == [0, 1]

    def test_inertia_nonnegative_and_decreases_with_k(self):
        pts = leaf_dataset(0, SPEC, 3)
        r2 = kmeans(pts, 2, seed=5)
        r8 = kmeans(pts, 8, seed=5)
        assert 0 <= r8.inertia <= r2.inertia


class TestDistributed:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: balanced_topology(2, 2),
            lambda: Topology({0: [1, 2], 1: [3, 4], 2: [5], 4: [6, 7]}),
        ],
    )
    def test_matches_single_node_exactly(self, topo_factory):
        """Sum-filter reduction makes distributed Lloyd == serial Lloyd."""
        topo = topo_factory()
        lp = leaf_points_for(topo)
        all_pts = np.concatenate([lp[r] for r in topo.backends])
        rng = np.random.default_rng(0)
        init = all_pts[rng.choice(len(all_pts), 4, replace=False)]

        single = kmeans(all_pts, 4, init=init)
        with Network(topo) as net:
            dist = distributed_kmeans(net, lp, 4, init)
            assert net.node_errors() == {}
        assert np.allclose(single.centroids, dist.centroids)
        assert dist.iterations == single.iterations
        assert dist.inertia == pytest.approx(single.inertia)

    def test_missing_leaf_data_rejected(self):
        topo = balanced_topology(2, 2)
        lp = leaf_points_for(topo)
        lp.pop(topo.backends[0])
        with Network(topo) as net:
            with pytest.raises(TBONError, match="missing back-end"):
                distributed_kmeans(net, lp, 2, np.zeros((2, 2)))
