"""Tests for the distributed decision/regression trees (Section 4 future work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Network, Topology, balanced_topology
from repro.core.errors import TBONError
from repro.learn import (
    DecisionTree,
    distributed_score,
    fit_distributed,
    fit_single,
    make_classification_shard,
    make_regression_shard,
    union_shards,
)


def shards_for(topo, maker=make_classification_shard, seed=7, **kw):
    return {r: maker(i, seed=seed, **kw) for i, r in enumerate(topo.backends)}


class TestSingleNodeFit:
    def test_trivial_split(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        t = fit_single(X, y, "classify", max_depth=2, n_bins=8)
        assert np.array_equal(t.predict(X), y)
        assert t.depth >= 1

    def test_classification_accuracy(self):
        X, y = make_classification_shard(0, n_samples=600, seed=7)
        t = fit_single(X, y, "classify", max_depth=6, n_bins=32)
        assert (t.predict(X) == y).mean() > 0.9

    def test_regression_learns_piecewise_target(self):
        X, y = make_regression_shard(0, n_samples=800, noise=0.05, seed=1)
        t = fit_single(X, y, "regress", max_depth=3, n_bins=32)
        mse = float(((t.predict(X) - y) ** 2).mean())
        assert mse < 0.1

    def test_leaf_masks_partition_data(self):
        X, y = make_classification_shard(0, n_samples=400, seed=3)
        t = fit_single(X, y, "classify", max_depth=4)
        leaf_ids = [i for i, n in enumerate(t.nodes) if n.is_leaf]
        masks = np.array([t.route(X, nid) for nid in leaf_ids])
        assert np.all(masks.sum(axis=0) == 1)  # exactly one leaf per sample
        for nid, mask in zip(leaf_ids, masks):
            assert t.nodes[nid].n_samples == mask.sum()

    def test_pure_node_stops_early(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.zeros(4)
        t = fit_single(X, y, "classify", max_depth=5)
        assert t.n_leaves == 1  # already pure at the root

    def test_max_depth_respected(self):
        X, y = make_classification_shard(0, n_samples=500, seed=5)
        t = fit_single(X, y, "classify", max_depth=2)
        assert t.depth <= 2

    def test_bad_inputs_rejected(self):
        with pytest.raises(TBONError):
            fit_single(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(TBONError):
            fit_single(np.zeros((3, 2)), np.zeros(3), task="cluster")

    def test_predict_validates_width(self):
        X, y = make_classification_shard(0, n_samples=100, seed=2)
        t = fit_single(X, y, "classify", max_depth=2)
        with pytest.raises(TBONError):
            t.predict(np.zeros((5, 99)))


class TestDistributedFit:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: balanced_topology(2, 2),
            lambda: Topology({0: [1, 2], 1: [3, 4], 2: [5], 4: [6, 7]}),
        ],
    )
    def test_identical_to_single_node(self, topo_factory):
        """Sum-reduced statistics make the distributed greedy fit exact."""
        topo = topo_factory()
        shards = shards_for(topo, n_samples=150)
        X, y = union_shards([shards[r] for r in topo.backends])
        single = fit_single(X, y, "classify", max_depth=4)
        with Network(topo) as net:
            dist = fit_distributed(net, shards, "classify", max_depth=4)
            assert net.node_errors() == {}
        assert len(single.nodes) == len(dist.nodes)
        for a, b in zip(single.nodes, dist.nodes):
            assert a.feature == b.feature
            assert a.threshold == pytest.approx(b.threshold)
            assert a.prediction == b.prediction
            assert a.n_samples == b.n_samples

    def test_regression_identical(self):
        topo = balanced_topology(2, 2)
        shards = shards_for(topo, make_regression_shard, seed=3, n_samples=200)
        X, y = union_shards([shards[r] for r in topo.backends])
        single = fit_single(X, y, "regress", max_depth=3)
        with Network(topo) as net:
            dist = fit_distributed(net, shards, "regress", max_depth=3)
        assert np.allclose(single.predict(X), dist.predict(X))

    def test_missing_shard_rejected(self):
        topo = balanced_topology(2, 2)
        shards = shards_for(topo)
        shards.pop(topo.backends[0])
        with Network(topo) as net:
            with pytest.raises(TBONError, match="missing back-end"):
                fit_distributed(net, shards)

    def test_distributed_score_classification(self):
        topo = balanced_topology(2, 2)
        shards = shards_for(topo, n_samples=300)
        holdout = {
            r: make_classification_shard(50 + i, seed=7)
            for i, r in enumerate(topo.backends)
        }
        with Network(topo) as net:
            tree = fit_distributed(net, shards, "classify", max_depth=6, n_bins=32)
            acc = distributed_score(net, tree, holdout)
        assert acc > 0.85

    def test_distributed_score_matches_local_eval(self):
        topo = balanced_topology(2, 2)
        shards = shards_for(topo, n_samples=150)
        X, y = union_shards([shards[r] for r in topo.backends])
        with Network(topo) as net:
            tree = fit_distributed(net, shards, "classify", max_depth=4)
            acc = distributed_score(net, tree, shards)
        assert acc == pytest.approx((tree.predict(X) == y).mean())


# -- property tests --------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
)
def test_property_leaf_partition(seed, depth):
    """Every sample reaches exactly one leaf of any fitted tree."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(120, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(float)
    t = fit_single(X, y, "classify", max_depth=depth, n_bins=8)
    leaf_ids = [i for i, n in enumerate(t.nodes) if n.is_leaf]
    cover = np.zeros(len(X), dtype=int)
    for nid in leaf_ids:
        cover += t.route(X, nid)
    assert np.all(cover == 1)
    # predict() agrees with per-leaf routing.
    pred = t.predict(X)
    for nid in leaf_ids:
        mask = t.route(X, nid)
        if mask.any():
            assert np.all(pred[mask] == t.nodes[nid].prediction)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_deeper_trees_fit_no_worse(seed):
    """Training error is monotone non-increasing in depth (greedy CART)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(200, 2))
    y = (np.sin(3 * X[:, 0]) > X[:, 1]).astype(float)
    errs = []
    for depth in (1, 3, 5):
        t = fit_single(X, y, "classify", max_depth=depth, n_bins=16)
        errs.append((t.predict(X) != y).mean())
    assert errs[0] >= errs[1] >= errs[2]
