"""Unit tests for packets and counted payload references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SerializationError
from repro.core.packet import (
    GLOBAL_PACKET_STATS,
    Packet,
    PayloadRef,
    make_packet,
    total_nbytes,
)


class TestPacket:
    def test_values_accessible(self):
        p = make_packet(1, 100, "%d %s", 42, "hi")
        assert p.values == (42, "hi")
        assert p[0] == 42
        assert len(p) == 2
        assert p.unpack() == (42, "hi")

    def test_validation_at_construction(self):
        with pytest.raises(SerializationError):
            make_packet(1, 100, "%d", "not-an-int")

    def test_wire_roundtrip(self):
        p = Packet(3, 105, "%d %af %s", (7, np.array([1.0, 2.0]), "x"), src=9)
        q = Packet.from_bytes(p.to_bytes())
        assert q.stream_id == 3
        assert q.tag == 105
        assert q.src == 9
        assert q.fmt == "%d %af %s"
        assert q.values[0] == 7
        assert np.array_equal(q.values[1], [1.0, 2.0])
        assert q.values[2] == "x"

    def test_with_values_same_stream_tag(self):
        p = make_packet(2, 101, "%d", 1)
        q = p.with_values([5])
        assert (q.stream_id, q.tag, q.fmt) == (2, 101, "%d")
        assert q.values == (5,)

    def test_with_values_new_format(self):
        p = make_packet(2, 101, "%d", 1)
        q = p.with_values([1.5], fmt="%f")
        assert q.fmt == "%f"

    def test_hop_counts(self):
        p = make_packet(1, 100, "%d", 1)
        assert p.hops == 0
        p.hop()
        assert p.hops == 1

    def test_nbytes(self):
        p = make_packet(1, 100, "%ad", np.arange(10, dtype=np.int64))
        assert p.nbytes() == 4 + 80
        assert total_nbytes([p, p]) == 2 * (4 + 80)

    def test_seq_monotonic(self):
        a = make_packet(1, 100, "%d", 1)
        b = make_packet(1, 100, "%d", 1)
        assert b.seq > a.seq


class TestPayloadRef:
    def test_serialize_once(self):
        GLOBAL_PACKET_STATS.reset()
        p = make_packet(1, 100, "%af", np.arange(100, dtype=np.float64))
        ref = p.payload_ref()
        buf1 = ref.serialize()
        buf2 = ref.serialize()
        assert buf1 is buf2
        assert GLOBAL_PACKET_STATS.serializations == 1

    def test_multicast_shares_one_buffer(self):
        """A k-way multicast must serialize exactly once (zero-copy)."""
        GLOBAL_PACKET_STATS.reset()
        p = make_packet(1, 100, "%af", np.arange(64, dtype=np.float64))
        ref = p.payload_ref()
        k = 8
        ref.incref(k - 1)
        assert ref.refcount == k
        for _ in range(k):
            ref.serialize()
            ref.decref()
        assert GLOBAL_PACKET_STATS.serializations == 1
        assert GLOBAL_PACKET_STATS.max_refcount == k
        assert ref.refcount == 0

    def test_refcount_underflow_rejected(self):
        ref = PayloadRef("%d", (1,))
        ref.decref()
        with pytest.raises(SerializationError):
            ref.decref()

    def test_buffer_dropped_at_zero(self):
        ref = PayloadRef("%d", (1,))
        ref.serialize()
        ref.decref()
        assert ref._buffer is None

    def test_payload_ref_cached_on_packet(self):
        p = make_packet(1, 100, "%d", 1)
        assert p.payload_ref() is p.payload_ref()
