"""Tests for the tool-domain applications (profiler, monitor, admin)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Network, balanced_topology
from repro.core.errors import TBONError
from repro.tools.admin import TaskRegistry, default_task_registry, run_task
from repro.tools.monitor import ClusterMonitor, NodeMetrics
from repro.tools.profiler import (
    live_startup,
    make_symbol_table,
    parse_symbol_table,
    simulate_startup,
)

#: Fixed parse cost so simulated-startup tests are machine-independent.
PARSE_COST = 20e-9


@pytest.fixture
def net():
    network = Network(balanced_topology(3, 2))
    yield network
    network.shutdown()
    assert network.node_errors() == {}


class TestSymbolTables:
    def test_roundtrip(self):
        table = make_symbol_table(100, host="h", variant=2)
        parsed = parse_symbol_table(table)
        assert len(parsed) == 100
        name, (addr, module) = next(iter(parsed.items()))
        assert name.startswith("func_2_")
        assert addr >= 0x400000
        assert module.endswith(".so")

    def test_variants_differ(self):
        assert make_symbol_table(10, variant=0) != make_symbol_table(10, variant=1)

    def test_same_variant_same_body(self):
        def body(t):
            return [l for l in t.splitlines() if not l.startswith("#")]

        assert body(make_symbol_table(10, host="a")) == body(
            make_symbol_table(10, host="b")
        )


class TestLiveStartup:
    def test_startup_phases(self, net):
        rep = live_startup(net, n_functions=40, n_variants=3, seed=1)
        assert rep.n_daemons == 9
        assert rep.n_classes == 3  # redundancy suppressed
        assert rep.skew_error < 1e-3  # recovered injected skews
        assert rep.total_time > 0

    def test_variant_count_respected(self, net):
        rep = live_startup(net, n_functions=20, n_variants=1, seed=2)
        assert rep.n_classes == 1


class TestSimulatedStartup:
    def test_paper_scale_numbers(self):
        """T-startup acceptance: >60s one-to-many, <20s tree, ~3-4x."""
        one = simulate_startup(512, aggregate=False, parse_cost_per_byte=PARSE_COST)
        tree = simulate_startup(512, aggregate=True, parse_cost_per_byte=PARSE_COST)
        assert one.total_time > 60.0
        assert tree.total_time < 20.0
        assert 3.0 <= one.total_time / tree.total_time <= 5.5

    def test_speedup_grows_with_scale(self):
        speedups = []
        for n in (32, 128, 512):
            one = simulate_startup(n, aggregate=False, parse_cost_per_byte=PARSE_COST)
            tree = simulate_startup(n, aggregate=True, parse_cost_per_byte=PARSE_COST)
            speedups.append(one.total_time / tree.total_time)
        assert speedups == sorted(speedups)

    def test_tree_time_nearly_flat(self):
        t128 = simulate_startup(128, aggregate=True, parse_cost_per_byte=PARSE_COST)
        t512 = simulate_startup(512, aggregate=True, parse_cost_per_byte=PARSE_COST)
        assert t512.total_time < 1.3 * t128.total_time


class TestMonitor:
    def test_snapshot_invariants(self, net):
        mon = ClusterMonitor(net)
        try:
            for _ in range(3):
                snap = mon.snapshot(timeout=15)
                assert np.all(snap.minimum <= snap.average + 1e-9)
                assert np.all(snap.average <= snap.maximum + 1e-9)
                d = snap.as_dict()
                assert set(d) == {"cpu_pct", "mem_mb", "net_mbps", "load"}
        finally:
            mon.close()

    def test_custom_sampler(self, net):
        def factory(rank):
            return lambda: NodeMetrics(
                cpu_pct=float(rank), mem_mb=1.0, net_mbps=1.0, load=1.0
            )

        mon = ClusterMonitor(net, sampler_factory=factory)
        try:
            snap = mon.snapshot(timeout=15)
            backends = net.topology.backends
            assert snap.minimum[0] == pytest.approx(min(backends))
            assert snap.maximum[0] == pytest.approx(max(backends))
            assert snap.average[0] == pytest.approx(np.mean(backends))
        finally:
            mon.close()


class TestAdmin:
    def test_run_task_covers_all_backends(self, net):
        res = run_task(net, "uname")
        assert set(res.outputs) == set(net.topology.backends)
        assert all("tbon-sim" in out for out in res.outputs.values())

    def test_task_kwargs(self, net):
        res = run_task(net, "echo", {"text": "ping"})
        assert all(out.endswith("ping") for out in res.outputs.values())

    def test_unknown_task_fails_fast(self, net):
        with pytest.raises(TBONError, match="unknown task"):
            run_task(net, "rm_rf_slash")

    def test_task_errors_reported_in_output(self, net):
        reg = TaskRegistry()
        reg.register("boom", lambda rank: 1 / 0)
        res = run_task(net, "boom", registry=reg)
        assert all("ERROR" in out for out in res.outputs.values())

    def test_registry_rejects_duplicates(self):
        reg = TaskRegistry()
        reg.register("t", lambda rank: "")
        with pytest.raises(TBONError):
            reg.register("t", lambda rank: "")

    def test_default_registry_names(self):
        assert {"echo", "uname", "disk_usage"} <= set(default_task_registry.names())


class TestMonitorWatch:
    def test_watch_series(self, net):
        from repro.tools.monitor import ClusterMonitor

        mon = ClusterMonitor(net)
        try:
            series = mon.watch(3, interval=0.0, timeout=15)
            assert len(series) == 3
            for snap in series:
                assert snap.n_reporting == 9
        finally:
            mon.close()


class TestNetworkStats:
    def test_stats_show_reduction_ratio(self, net):
        from repro import FIRST_APPLICATION_TAG
        from conftest import send_from_all

        s = net.new_stream(transform="sum", sync="wait_for_all")
        send_from_all(net, s, FIRST_APPLICATION_TAG, "%d", lambda r: 1)
        assert s.recv(timeout=10).values[0] == 9
        stats = net.stats()
        # Every internal node reduced 3 packets to 1; the root likewise.
        for label, per_stream in stats.items():
            pin, pout = per_stream[s.stream_id]
            assert (pin, pout) == (3, 1), label
