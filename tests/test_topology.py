"""Unit and property tests for process-tree topologies."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TopologyError
from repro.core.topology import (
    NodeDesc,
    NodeRole,
    Topology,
    balanced_topology,
    deep_topology,
    flat_topology,
    internal_node_overhead,
    knomial_topology,
    parse_topology_file,
)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology({})

    def test_missing_root_rejected(self):
        with pytest.raises(TopologyError):
            Topology({1: [2]})

    def test_two_parents_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: [1, 2], 1: [3], 2: [3]})

    def test_self_parent_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: [0]})

    def test_duplicate_child_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: [1, 1]})

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: [1], 1: [2], 2: [1]})

    def test_second_root_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: [1], 5: [6]})


class TestShapes:
    def test_flat(self):
        t = flat_topology(8)
        assert t.n_backends == 8
        assert t.n_internal == 0
        assert t.depth() == 1
        assert t.max_fanout == 8
        assert t.role(0) == NodeRole.FRONT_END
        assert all(t.role(b) == NodeRole.BACK_END for b in t.backends)

    def test_flat_needs_backends(self):
        with pytest.raises(TopologyError):
            flat_topology(0)

    @pytest.mark.parametrize("fanout,depth", [(2, 1), (2, 3), (4, 2), (16, 2)])
    def test_balanced(self, fanout, depth):
        t = balanced_topology(fanout, depth)
        assert t.n_backends == fanout**depth
        assert t.depth() == depth
        assert t.max_fanout == fanout
        expected_internal = sum(fanout**k for k in range(1, depth))
        assert t.n_internal == expected_internal

    def test_balanced_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            balanced_topology(0, 2)
        with pytest.raises(TopologyError):
            balanced_topology(2, 0)

    @pytest.mark.parametrize("n,fanout", [(16, 4), (48, 7), (324, 18), (5, 2), (100, 16)])
    def test_deep_covers_all_backends(self, n, fanout):
        t = deep_topology(n, fanout)
        assert t.n_backends == n
        assert t.max_fanout <= fanout
        assert t.depth() <= math.ceil(math.log(n, fanout)) + 1

    def test_deep_degenerates_to_flat(self):
        t = deep_topology(4, 8)
        assert t.n_internal == 0

    @pytest.mark.parametrize("k,order", [(2, 3), (3, 2), (2, 0)])
    def test_knomial(self, k, order):
        t = knomial_topology(k, order)
        # k-nomial tree has k**order communication nodes, each with one
        # dedicated back-end leaf.
        assert t.n_backends == k**order
        assert len(t) == 2 * k**order

    def test_knomial_skewed(self):
        t = knomial_topology(2, 4)
        # Binomial tree root has `order` k-nomial children + 1 leaf.
        assert t.fanout(0) == 4 + 1
        with pytest.raises(TopologyError):
            knomial_topology(1, 2)


class TestQueries:
    def test_roles_and_paths(self):
        t = balanced_topology(2, 2)
        internal = t.internals[0]
        assert t.role(internal) == NodeRole.INTERNAL
        leaf = t.backends[0]
        path = t.path(leaf)
        assert path[0] == 0 and path[-1] == leaf
        assert t.ancestors(leaf) == list(reversed(path[:-1]))

    def test_subtree_backends(self):
        t = balanced_topology(2, 2)
        assert t.subtree_backends(0) == frozenset(t.backends)
        for internal in t.internals:
            sub = t.subtree_backends(internal)
            assert sub == frozenset(t.children(internal))

    def test_covering_children(self):
        t = balanced_topology(2, 2)
        left, right = t.children(0)
        left_leaves = t.subtree_backends(left)
        assert t.covering_children(0, left_leaves) == [left]
        assert set(t.covering_children(0, t.backends)) == {left, right}

    def test_fanout_histogram(self):
        t = balanced_topology(3, 2)
        assert t.fanout_histogram() == {3: 4}

    def test_unknown_rank_rejected(self):
        t = flat_topology(2)
        with pytest.raises(TopologyError):
            t.children(99)

    def test_iter_edges_count(self):
        t = balanced_topology(3, 2)
        assert len(list(t.iter_edges())) == len(t) - 1


class TestDynamic:
    def test_attach_backend(self):
        t = flat_topology(2)
        t2, new = t.attach_backend(0)
        assert new not in t
        assert new in t2
        assert t2.n_backends == 3
        # Original untouched (persistent-style updates).
        assert t.n_backends == 2

    def test_attach_under_backend_rejected(self):
        t = flat_topology(2)
        with pytest.raises(TopologyError):
            t.attach_backend(t.backends[0])

    def test_detach_backend(self):
        t = flat_topology(3)
        t2 = t.detach_backend(t.backends[0])
        assert t2.n_backends == 2

    def test_detach_internal_rejected(self):
        t = balanced_topology(2, 2)
        with pytest.raises(TopologyError):
            t.detach_backend(t.internals[0])

    def test_replace_subtree_parent(self):
        t = balanced_topology(2, 2)
        victim = t.internals[0]
        kids = t.children(victim)
        t2 = t.replace_subtree_parent(victim)
        assert victim not in t2
        for k in kids:
            assert t2.parent(k) == 0
        assert t2.n_backends == t.n_backends

    def test_replace_root_rejected(self):
        t = balanced_topology(2, 2)
        with pytest.raises(TopologyError):
            t.replace_subtree_parent(0)


class TestTopologyFile:
    SPEC = """
    # front-end on hostA
    hostA:0 => hostB:0 hostC:0 ;
    hostB:0 => hostB:1 hostB:2 ;
    hostC:0 => hostC:1 ;
    """

    def test_parse(self):
        t = parse_topology_file(self.SPEC)
        assert t.n_backends == 3
        assert t.n_internal == 2
        assert t.desc(0) == NodeDesc("hostA", 0)

    def test_roundtrip(self):
        t = parse_topology_file(self.SPEC)
        t2 = parse_topology_file(t.to_spec())
        assert [t2.desc(r) for r in t2.ranks] == [t.desc(r) for r in t.ranks]
        assert list(t2.iter_edges()) == list(t.iter_edges())

    def test_malformed_statements(self):
        for bad in ["hostA:0 hostB:0 ;", "hostA:0 => ;", "hostA => hostB:0 ;", ""]:
            with pytest.raises(TopologyError):
                parse_topology_file(bad)

    def test_comments_stripped(self):
        t = parse_topology_file("a:0 => a:1 ; # trailing comment\n# whole line\n")
        assert t.n_backends == 1


class TestOverheadAccounting:
    """The Section 3.2 numbers, exactly."""

    def test_paper_256(self):
        n, frac = internal_node_overhead(16, 256)
        assert n == 16
        assert frac == pytest.approx(0.0625)

    def test_paper_4096(self):
        n, frac = internal_node_overhead(16, 4096)
        assert n == 272
        assert frac == pytest.approx(272 / 4096)
        assert 0.066 < frac < 0.067

    def test_small_tree_no_internals(self):
        assert internal_node_overhead(16, 16) == (0, 0.0)

    def test_matches_deep_topology(self):
        for n in (64, 256, 300):
            expected, _ = internal_node_overhead(16, n)
            t = deep_topology(n, 16)
            assert t.n_internal <= expected + 2  # builder may differ slightly

    def test_internal_overhead_method(self):
        t = deep_topology(256, 16)
        assert t.internal_overhead() == t.n_internal / 256


# -- property tests -------------------------------------------------------------

@st.composite
def random_tree(draw):
    """Random parent map: node i's parent is a uniform pick from 0..i-1."""
    n = draw(st.integers(min_value=2, max_value=40))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    children: dict[int, list[int]] = {i: [] for i in range(n)}
    for child, parent in enumerate(parents, start=1):
        children[parent].append(child)
    return Topology(children)


@settings(max_examples=100, deadline=None)
@given(random_tree())
def test_property_tree_invariants(t: Topology):
    # Partition: every non-root rank is a back-end xor internal.
    assert set(t.backends) | set(t.internals) | {0} == set(t.ranks)
    assert not set(t.backends) & set(t.internals)
    # Parent/child consistency.
    for parent, child in t.iter_edges():
        assert t.parent(child) == parent
        assert child in t.children(parent)
    # Subtree backends of root = all backends.
    assert t.subtree_backends(0) == frozenset(t.backends)
    # Depth of every node = path length - 1.
    for r in t.ranks:
        assert t.depth(r) == len(t.path(r)) - 1
    # Spec roundtrip preserves structure.
    if t.n_backends < len(t):  # to_spec needs at least one edge statement
        t2 = parse_topology_file(t.to_spec())
        assert len(t2) == len(t)
        assert t2.n_backends == t.n_backends


@settings(max_examples=100, deadline=None)
@given(random_tree())
def test_property_covering_children_partition(t: Topology):
    """Covering children partition the members among subtrees."""
    members = t.backends[:: 2] or t.backends
    for rank in t.internals + [0]:
        covering = t.covering_children(rank, members)
        seen: set[int] = set()
        for c in covering:
            sub = t.subtree_backends(c) & set(members)
            assert sub, "covering child with no members"
            assert not seen & sub, "members double-covered"
            seen |= sub
        assert seen == t.subtree_backends(rank) & set(members)


class TestHostAssignment:
    def test_round_robin_placement(self):
        from repro.core.topology import assign_hosts

        t = balanced_topology(2, 2)
        placed = assign_hosts(t, ["a", "b", "c"])
        assert placed.desc(0).host == "a"  # front-end on the first host
        hosts_used = {placed.desc(r).host for r in placed.ranks}
        assert hosts_used == {"a", "b", "c"}
        # host indexes are dense per host
        for h in hosts_used:
            idxs = sorted(
                placed.desc(r).index for r in placed.ranks if placed.desc(r).host == h
            )
            assert idxs == list(range(len(idxs)))

    def test_capacity_respected(self):
        from repro.core.topology import assign_hosts

        t = balanced_topology(2, 2)  # 7 processes
        placed = assign_hosts(t, ["a", "b", "c", "d"], processes_per_host=2)
        counts = {}
        for r in placed.ranks:
            counts[placed.desc(r).host] = counts.get(placed.desc(r).host, 0) + 1
        assert all(c <= 2 for c in counts.values())

    def test_overflow_rejected(self):
        from repro.core.topology import assign_hosts

        t = balanced_topology(2, 2)  # 7 processes > 2 hosts x 2 slots
        with pytest.raises(TopologyError):
            assign_hosts(t, ["a", "b"], processes_per_host=2)

    def test_structure_preserved_and_spec_roundtrips(self):
        from repro.core.topology import assign_hosts

        t = balanced_topology(3, 2)
        placed = assign_hosts(t, ["n01", "n02", "n03", "n04"])
        assert list(placed.iter_edges()) == list(t.iter_edges())
        t2 = parse_topology_file(placed.to_spec())
        assert t2.n_backends == t.n_backends

    def test_empty_hosts_rejected(self):
        from repro.core.topology import assign_hosts

        with pytest.raises(TopologyError):
            assign_hosts(flat_topology(2), [])
