"""Tests for performance-model calibration."""

from __future__ import annotations

import pytest

from repro.cluster.datagen import ClusterSpec
from repro.simulate.calibrate import (
    REFERENCE_MODEL,
    MeanShiftCostModel,
    calibrate_mean_shift,
    scaled_model,
)


class TestReferenceModel:
    def test_predictions_positive(self):
        m = REFERENCE_MODEL
        assert m.merge_cpu(1000, 8) > 0
        assert m.single_node_time(16) > 0
        assert m.payload_bytes(100, 4) > 0

    def test_merge_cost_monotonic(self):
        m = REFERENCE_MODEL
        assert m.merge_cpu(2000, 8) > m.merge_cpu(1000, 8)
        assert m.merge_cpu(1000, 16) > m.merge_cpu(1000, 8)

    def test_single_node_linear(self):
        m = REFERENCE_MODEL
        t1, t2, t4 = (m.single_node_time(n) for n in (16, 32, 64))
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)
        assert t4 / t2 == pytest.approx(2.0, rel=0.01)

    def test_collapsed_size_saturates(self):
        m = REFERENCE_MODEL
        assert m.collapsed_size(10) == 10
        assert m.collapsed_size(10**6) == m.collapse_cap

    def test_scaled_model(self):
        s = scaled_model(REFERENCE_MODEL, 10.0)
        assert s.leaf_time == pytest.approx(10 * REFERENCE_MODEL.leaf_time)
        assert s.per_point_iter == pytest.approx(10 * REFERENCE_MODEL.per_point_iter)
        # Structural fields unchanged.
        assert s.collapse_cap == REFERENCE_MODEL.collapse_cap


class TestLiveCalibration:
    @pytest.fixture(scope="class")
    def model(self) -> MeanShiftCostModel:
        # Small probe so the test stays fast; one repeat is enough to
        # check plumbing (benchmarks calibrate properly).
        return calibrate_mean_shift(
            spec=ClusterSpec(points_per_cluster=60),
            probe_children=2,
            repeats=1,
        )

    def test_all_constants_measured(self, model):
        assert model.per_point_iter > 0
        assert model.per_scan_point > 0
        assert model.per_collapse_point > 0
        assert model.seeded_iters >= 1.0
        assert model.leaf_time > 0
        # 4 clusters x 60 points plus ~2% uniform clutter.
        assert 240 <= model.points_per_leaf <= 252
        assert model.leaf_out_points > 0
        assert model.leaf_out_peaks >= 1
        assert model.collapse_cap >= model.leaf_out_points
        assert model.n_modes >= 1

    def test_leaf_time_consistent_with_anchor(self, model):
        """single_node_time(1) is at least the measured leaf time."""
        assert model.single_node_time(1) >= model.leaf_time * 0.99

    def test_model_is_frozen(self, model):
        with pytest.raises(AttributeError):
            model.leaf_time = 0.0  # type: ignore[misc]
