"""Tests for the Supermon-style symbolic data concentrators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Network, balanced_topology
from repro.core.errors import FilterError, TBONError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.tools.concentrator import (
    CONCENTRATOR_FMT,
    Concentrator,
    ConcentratorFilter,
    parse_sexpr,
    _Stats,
)


class TestParser:
    def test_atoms_and_nesting(self):
        assert parse_sexpr("42") == 42.0
        assert parse_sexpr("cpu") == "cpu"
        assert parse_sexpr("(+ 1 2)") == ("+", 1.0, 2.0)
        assert parse_sexpr("(if (> (avg cpu) 50) 1 0)") == (
            "if", (">", ("avg", "cpu"), 50.0), 1.0, 0.0,
        )

    @pytest.mark.parametrize("bad", ["", "(+ 1 2", ")", "(+ 1) extra"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(TBONError):
            parse_sexpr(bad)


class TestStats:
    def test_merge_is_exact(self):
        a = _Stats.from_row(["x"], np.array([2.0]))
        b = _Stats.from_row(["x"], np.array([5.0]))
        c = _Stats.from_row(["x"], np.array([3.0]))
        m = _Stats.merge([_Stats.merge([a, b]), c])
        assert m.sums[0] == 10.0
        assert m.mins[0] == 2.0
        assert m.maxs[0] == 5.0
        assert m.count == 3

    def test_payload_roundtrip(self):
        s = _Stats.from_row(["a", "b"], np.array([1.0, 2.0]))
        s2 = _Stats.from_payload(*s.to_payload())
        assert s2.names == s.names
        assert np.array_equal(s2.sums, s.sums)
        assert s2.count == 1

    def test_name_mismatch_rejected(self):
        a = _Stats.from_row(["x"], np.array([1.0]))
        b = _Stats.from_row(["y"], np.array([1.0]))
        with pytest.raises(FilterError):
            _Stats.merge([a, b])


class TestFilterEvaluation:
    def _packet(self, names, row):
        stats = _Stats.from_row(names, np.asarray(row, dtype=float))
        return Packet(1, 190, CONCENTRATOR_FMT, stats.to_payload())

    def test_root_emits_scalar(self):
        f = ConcentratorFilter(expr="(avg cpu)")
        batch = [self._packet(["cpu"], [10.0]), self._packet(["cpu"], [30.0])]
        (out,) = f.execute(batch, FilterContext(n_children=2, is_root=True))
        assert out.fmt == "%f %ud"
        assert out.values == (20.0, 2)

    def test_internal_forwards_stats(self):
        f = ConcentratorFilter(expr="(avg cpu)")
        batch = [self._packet(["cpu"], [10.0]), self._packet(["cpu"], [30.0])]
        (out,) = f.execute(batch, FilterContext(n_children=2, is_root=False))
        assert out.fmt == CONCENTRATOR_FMT
        s = _Stats.from_payload(*out.values)
        assert s.sums[0] == 40.0 and s.count == 2

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("(sum x)", 6.0),
            ("(min x)", 1.0),
            ("(max x)", 3.0),
            ("(count)", 3.0),
            ("(* (avg x) (count))", 6.0),
            ("(- (max x) (min x))", 2.0),
            ("(if (>= (sum x) 6) 100 -100)", 100.0),
            ("(/ (sum x) 0)", float("nan")),
        ],
    )
    def test_expression_semantics(self, expr, expected):
        f = ConcentratorFilter(expr=expr)
        batch = [self._packet(["x"], [v]) for v in (1.0, 2.0, 3.0)]
        (out,) = f.execute(batch, FilterContext(n_children=3, is_root=True))
        if expected != expected:  # NaN
            assert out.values[0] != out.values[0]
        else:
            assert out.values[0] == pytest.approx(expected)

    @pytest.mark.parametrize(
        "bad",
        [
            "cpu",                 # bare metric as scalar
            "(median cpu)",        # unknown op
            "(sum cpu mem)",       # wrong arity
            "(if (+ 1 2) 1 0)",    # non-comparison condition
            "(sum nope)",          # unknown metric
        ],
    )
    def test_bad_expressions_raise(self, bad):
        f = ConcentratorFilter(expr=bad)
        batch = [self._packet(["cpu"], [1.0])]
        with pytest.raises(FilterError):
            f.execute(batch, FilterContext(n_children=1, is_root=True))


class TestLive:
    def test_nested_levels_compose_exactly(self):
        with Network(balanced_topology(3, 2)) as net:
            rows = {r: [float(r), float(r * 10)] for r in net.topology.backends}
            c = Concentrator(net, ["cpu", "mem"], lambda rank, wave: rows[rank])
            v, n = c.evaluate("(avg cpu)")
            assert n == 9
            assert v == pytest.approx(np.mean([r[0] for r in rows.values()]))
            v, _ = c.evaluate("(- (max mem) (min mem))")
            mems = [r[1] for r in rows.values()]
            assert v == pytest.approx(max(mems) - min(mems))
            assert net.node_errors() == {}

    def test_sampler_width_checked(self):
        with Network(balanced_topology(2, 2)) as net:
            c = Concentrator(net, ["a", "b"], lambda rank, wave: [1.0])
            with pytest.raises(Exception):
                c.evaluate("(sum a)", timeout=5)
