"""Tests for histogram filters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.errors import FilterError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.filters_ext.histogram import (
    ADAPTIVE_HISTOGRAM_FMT,
    AdaptiveHistogramFilter,
    HISTOGRAM_FMT,
    HistogramFilter,
    histogram_counts,
    sketch_values,
)

TAG = FIRST_APPLICATION_TAG


class TestFixedHistogram:
    def test_counts(self):
        edges = np.array([0.0, 1.0, 2.0, 3.0])
        c = histogram_counts(np.array([0.5, 0.6, 1.5, 2.5, 2.6]), edges)
        assert c.tolist() == [2, 1, 2]

    def test_filter_sums(self):
        f = HistogramFilter()
        a = Packet(1, TAG, HISTOGRAM_FMT, (np.array([1, 2, 3], dtype=np.int64),))
        b = Packet(1, TAG, HISTOGRAM_FMT, (np.array([10, 0, 1], dtype=np.int64),))
        (out,) = f.execute([a, b], FilterContext(n_children=2))
        assert out.values[0].tolist() == [11, 2, 4]

    def test_width_mismatch_rejected(self):
        f = HistogramFilter()
        a = Packet(1, TAG, HISTOGRAM_FMT, (np.zeros(3, dtype=np.int64),))
        b = Packet(1, TAG, HISTOGRAM_FMT, (np.zeros(4, dtype=np.int64),))
        with pytest.raises(FilterError):
            f.execute([a, b], FilterContext())

    def test_configured_bins_enforced(self):
        f = HistogramFilter(n_bins=8)
        a = Packet(1, TAG, HISTOGRAM_FMT, (np.zeros(3, dtype=np.int64),))
        with pytest.raises(FilterError):
            f.execute([a], FilterContext())

    def test_end_to_end(self, rng):
        topo = balanced_topology(2, 2)
        edges = np.linspace(0, 100, 21)
        leaf_vals = {
            r: rng.uniform(0, 100, size=50) for r in topo.backends
        }
        with Network(topo) as net:
            s = net.new_stream(transform="histogram", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(
                    s.stream_id, TAG, HISTOGRAM_FMT,
                    histogram_counts(leaf_vals[be.rank], edges),
                )

            net.run_backends(leaf)
            out = s.recv(timeout=10).values[0]
            expected = histogram_counts(
                np.concatenate(list(leaf_vals.values())), edges
            )
            assert np.array_equal(out, expected)
            assert net.node_errors() == {}


class TestAdaptiveHistogram:
    def test_sketch_basics(self):
        lo, hi, counts = sketch_values(np.array([1.0, 2.0, 3.0]), 4)
        assert (lo, hi) == (1.0, 3.0)
        assert counts.sum() == 3

    def test_sketch_degenerate_range(self):
        lo, hi, counts = sketch_values(np.array([5.0, 5.0]), 4)
        assert hi > lo
        assert counts.sum() == 2

    def test_sketch_empty(self):
        lo, hi, counts = sketch_values(np.empty(0), 4)
        assert counts.sum() == 0

    def test_merge_preserves_total(self):
        f = AdaptiveHistogramFilter(n_bins=8)
        a = Packet(1, TAG, ADAPTIVE_HISTOGRAM_FMT, sketch_values(np.arange(10.0), 8))
        b = Packet(
            1, TAG, ADAPTIVE_HISTOGRAM_FMT, sketch_values(np.arange(100.0, 150.0), 8)
        )
        (out,) = f.execute([a, b], FilterContext(n_children=2))
        lo, hi, counts = out.values
        assert counts.sum() == 60
        assert lo == 0.0 and hi == 149.0

    def test_width_mismatch_rejected(self):
        f = AdaptiveHistogramFilter(n_bins=8)
        a = Packet(1, TAG, ADAPTIVE_HISTOGRAM_FMT, sketch_values(np.arange(10.0), 4))
        with pytest.raises(FilterError):
            f.execute([a], FilterContext())

    def test_all_empty_children(self):
        f = AdaptiveHistogramFilter(n_bins=4)
        a = Packet(1, TAG, ADAPTIVE_HISTOGRAM_FMT, sketch_values(np.empty(0), 4))
        (out,) = f.execute([a, a], FilterContext(n_children=2))
        assert out.values[2].sum() == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
        min_size=2,
        max_size=5,
    )
)
def test_property_adaptive_merge_total_exact(groups):
    """However sketches re-bin, total counts are conserved exactly."""
    n_bins = 16
    f = AdaptiveHistogramFilter(n_bins=n_bins)
    packets = [
        Packet(1, TAG, ADAPTIVE_HISTOGRAM_FMT, sketch_values(np.asarray(g), n_bins))
        for g in groups
    ]
    (out,) = f.execute(packets, FilterContext(n_children=len(groups)))
    assert out.values[2].sum() == sum(len(g) for g in groups)
