"""Cross-module integration scenarios on live networks."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology, deep_topology
from repro.cluster.datagen import ClusterSpec, leaf_dataset
from repro.cluster.meanshift_filter import MEANSHIFT_FMT, leaf_mean_shift
from repro.filters_ext.equivalence import EQUIVALENCE_FMT, EquivalenceClasses, classify
from repro.learn import fit_distributed, make_classification_shard
from repro.reliability import FailureInjector, recover_from_failure
from repro.tools.tag import TagService
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


class TestMixedWorkload:
    def test_tool_and_application_streams_coexist(self):
        """A monitoring stream, an equivalence stream and a clustering
        stream share one tree concurrently (the MRNet flexible
        communication model at full stretch)."""
        topo = balanced_topology(3, 2)
        spec = ClusterSpec(points_per_cluster=80)
        with Network(topo) as net:
            s_mon = net.new_stream(transform="avg", sync="wait_for_all")
            s_eq = net.new_stream(transform="equivalence", sync="wait_for_all")
            s_ms = net.new_stream(
                transform="mean_shift",
                sync="wait_for_all",
                transform_params={"bandwidth": 50.0},
            )
            order = {r: i for i, r in enumerate(topo.backends)}

            def leaf(be):
                for s in (s_mon, s_eq, s_ms):
                    be.wait_for_stream(s.stream_id)
                be.send(s_mon.stream_id, TAG, "%f", float(be.rank))
                ec = classify({f"h{be.rank}": f"cfg{be.rank % 2}"})
                be.send(s_eq.stream_id, TAG, EQUIVALENCE_FMT, *ec.to_payload())
                d, w, pk, _ = leaf_mean_shift(leaf_dataset(order[be.rank], spec, 3))
                be.send(s_ms.stream_id, TAG, MEANSHIFT_FMT, d, w, pk)

            net.run_backends(leaf)
            avg = s_mon.recv(timeout=20).values[0]
            assert avg == pytest.approx(np.mean(topo.backends))
            ec = EquivalenceClasses.from_payload(*s_eq.recv(timeout=20).values)
            assert ec.n_classes == 2 and ec.total_count == 9
            peaks = s_ms.recv(timeout=30).values[2]
            assert 1 <= len(peaks) <= 8
            for s in (s_mon, s_eq, s_ms):
                s.close(timeout=15)
            assert net.node_errors() == {}

    def test_learning_after_recovery(self):
        """Fit a distributed model on a tree that lost an internal node."""
        topo = balanced_topology(3, 2)
        net = Network(topo)
        try:
            victim = topo.internals[0]
            FailureInjector(net).kill_node(victim)
            recover_from_failure(net, victim)
            time.sleep(0.3)
            shards = {
                r: make_classification_shard(i, n_samples=120, seed=4)
                for i, r in enumerate(net.topology.backends)
            }
            tree = fit_distributed(net, shards, "classify", max_depth=3)
            assert tree.depth >= 1
            assert net.node_errors() == {}
        finally:
            net.shutdown()

    def test_tag_after_attach(self):
        """Declarative queries see back-ends attached after startup."""
        net = Network(balanced_topology(2, 2))
        try:
            net.attach_backend(net.topology.internals[0])
            time.sleep(0.2)
            svc = TagService(net, sampler=lambda rank, epoch: {"v": 1.0})
            (res,) = svc.execute("SELECT sum(v) FROM s")
            assert res.values["sum(v)"] == 5.0  # 4 original + 1 attached
        finally:
            net.shutdown()


class TestStress:
    def test_many_concurrent_streams(self):
        """32 overlapping streams with different filters, one wave each."""
        topo = balanced_topology(3, 2)
        with Network(topo) as net:
            streams = [
                net.new_stream(
                    transform=["sum", "min", "max", "concat"][i % 4],
                    sync="wait_for_all",
                )
                for i in range(32)
            ]

            def leaf(be):
                for s in streams:
                    be.wait_for_stream(s.stream_id)
                for s in streams:
                    be.send(s.stream_id, TAG, "%d", be.rank)

            net.run_backends(leaf)
            for i, s in enumerate(streams):
                pkt = s.recv(timeout=20)
                kind = ["sum", "min", "max", "concat"][i % 4]
                if kind == "sum":
                    assert pkt.values[0] == sum(topo.backends)
                elif kind == "min":
                    assert pkt.values[0] == min(topo.backends)
                elif kind == "max":
                    assert pkt.values[0] == max(topo.backends)
                else:
                    assert sorted(pkt.values[0].tolist()) == sorted(topo.backends)
            assert net.node_errors() == {}

    def test_many_waves_sustained(self):
        """200 aligned waves through a depth-2 tree without loss."""
        topo = balanced_topology(2, 2)
        n_waves = 200
        with Network(topo) as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                for w in range(n_waves):
                    be.send(s.stream_id, TAG, "%d", w)

            net.run_backends(leaf)
            for w in range(n_waves):
                assert s.recv(timeout=20).values[0] == 4 * w
            assert net.node_errors() == {}

    def test_large_payloads(self):
        """Megabyte-scale arrays traverse the tree intact (thread + TCP)."""
        big = np.arange(200_000, dtype=np.float64)  # 1.6 MB
        for transport in ("thread", "tcp"):
            with Network(balanced_topology(2, 2), transport=transport) as net:
                s = net.new_stream(transform="sum", sync="wait_for_all")
                send_from_all(net, s, TAG, "%af", lambda r: big)
                out = s.recv(timeout=30).values[0]
                assert np.array_equal(out, big * 4)
                assert net.node_errors() == {}

    def test_wide_flat_tree(self):
        """A 64-way fan-out flat tree (the paper's bottleneck regime)."""
        topo = deep_topology(64, 64)  # flat: root with 64 children
        assert topo.n_internal == 0
        with Network(topo) as net:
            s = net.new_stream(transform="count", sync="wait_for_all")
            send_from_all(net, s, TAG, "%ud", lambda r: 1)
            assert s.recv(timeout=30).values[0] == 64
            assert net.node_errors() == {}

    def test_deep_narrow_tree(self):
        """Depth-5 binary tree: many hops, filters at every level."""
        topo = balanced_topology(2, 5)  # 32 leaves, 30 internal
        with Network(topo) as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            send_from_all(net, s, TAG, "%d", lambda r: 1)
            assert s.recv(timeout=30).values[0] == 32
            assert net.node_errors() == {}
