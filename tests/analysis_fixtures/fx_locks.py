"""tboncheck fixture: TB3xx lock-discipline rules.

Never imported — only parsed.  See fx_wire_format.py for the marker
conventions.
"""

import threading


class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # tbon: lock=_lock
        self._count = 0  # tbon: lock=_lock

    def add(self, item):
        with self._lock:
            self._items = self._items + [item]
            self._count += 1

    def bad_reset(self):
        self._items = []  # expect: TB301

    def bad_count(self):
        self._count += 1  # expect: TB301

    def deliberate_reset(self):
        self._items = []  # tbon: lock-free(called before worker threads start)

    def unguarded_other(self, x):
        self.extra = x  # no lock= declaration: not checked


class WrongWith:
    def __init__(self):
        self._lock = threading.Lock()
        self._other = threading.Lock()
        self._state = 0  # tbon: lock=_lock

    def update(self):
        with self._other:
            self._state = 1  # expect: TB301


class Orphan:
    def __init__(self):
        self.data = 0  # expect: TB302  # tbon: lock=_missing
