"""tboncheck fixture: a file with zero findings.

Exercises every rule family's happy path in one place; the test asserts
the analysis returns nothing at all for this file.
"""

import threading

from repro.core.filters import SynchronizationFilter, TransformationFilter
from repro.core.packet import make_packet
from repro.core.serialization import pack_payload


class SumFilter(TransformationFilter):
    def transform(self, packets, ctx):
        total = sum(p.values[0] for p in packets)
        return packets[0].with_values((total,))


class WaveSync(SynchronizationFilter):
    timed = True

    def push(self, packet, child, ctx):
        return [[packet]]

    def next_deadline(self):
        return None

    def on_timer(self, now, ctx):
        return []


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0  # tbon: lock=_lock

    def bump(self):
        with self._lock:
            self._value += 1


def send_wave(be):
    pkt = make_packet(4, 100, "%d %f", 1, 2.5)
    buf = pack_payload("%d %s", (7, "ok"))
    try:
        be.send(4, 100, "%d", 1)
    except ValueError as exc:
        raise RuntimeError("send failed") from exc
    return pkt, buf
