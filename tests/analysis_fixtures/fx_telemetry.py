"""tboncheck fixture: TB501 telemetry-instrument discipline.

Never imported — only parsed.  See fx_wire_format.py for the marker
conventions.
"""

import collections

import repro.telemetry.registry as tel_registry
from collections import Counter as StdCounter
from repro.telemetry.registry import Counter, Gauge, GLOBAL
from repro.telemetry.registry import Histogram as Hist


def direct_instantiation():
    c = Counter("tbon_rogue_total")  # expect: TB501
    g = Gauge("tbon_rogue_depth")  # expect: TB501
    h = Hist("tbon_rogue_seconds", (1.0, 2.0))  # expect: TB501
    return c, g, h


def via_module_alias():
    return tel_registry.Counter("tbon_rogue_total")  # expect: TB501


def suppressed_with_reason():
    # A deliberate off-registry instrument (e.g. a unit test's scratch
    # object) can opt out explicitly.
    return Counter("scratch")  # tbon: ignore[TB501]


def through_the_registry():
    # The sanctioned path: keyed get-or-create on a Registry.
    c = GLOBAL.counter("tbon_good_total", {"kind": "fixture"})
    h = GLOBAL.histogram("tbon_good_seconds")
    return c, h


def unrelated_counters_stay_clean():
    # collections.Counter is not a telemetry instrument.
    a = StdCounter("abracadabra")
    b = collections.Counter([1, 2, 2])
    return a, b
