"""tboncheck fixture: TB701 chaos-hook discipline.

Never imported — only parsed.  TB701 applies everywhere *except*
``src/repro/reliability/chaos.py`` (the engine exempts that exact path
suffix, so this fixture — a different file — stays in scope): the
``_chaos_*`` fault hooks may only be reached through the sanctioned
``ChaosTransport`` wrapper, which is what guarantees the control plane
is never faulted and fault decisions stay deterministic per edge.  See
fx_wire_format.py for the marker conventions.
"""


class SneakyTransport:
    def __init__(self, engine):
        self.engine = engine

    def send(self, src, dst, direction, packet):
        # Production code injecting faults behind the wrapper's back.
        self.engine._chaos_apply(self._raw_send, src, dst, direction, packet)  # expect: TB701

    def _raw_send(self, src, dst, direction, packet):
        pass


def poke_engine_internals(engine, packet):
    decision = engine._chaos_decide(packet)  # expect: TB701
    return decision


def read_is_flagged_too(engine):
    # Even a bare attribute read leaks the hook out of the wrapper.
    hook = engine._chaos_apply  # expect: TB701
    return hook


def suppressed_with_reason(engine, packet):
    # The standard escape hatch still works.
    engine._chaos_apply(None, 0, 1, None, packet)  # tbon: ignore[TB701]


def unrelated_private_attrs_are_fine(transport, packet):
    transport._conns.clear()
    transport._chaostrophic = packet  # prefix must match "_chaos_" exactly
    return transport._chao
