"""tboncheck fixture: TB601 reactor I/O discipline.

Never imported — only parsed.  The engine applies TB601 to modules whose
basename names the reactor (this file qualifies, like
``src/repro/transport/reactor.py``): direct blocking socket calls are
forbidden there because a single parked ``recv``/``sendall`` stalls the
one event-loop thread serving every channel in the process.  See
fx_wire_format.py for the marker conventions.
"""

import socket


def blocking_calls_on_the_loop(sock: socket.socket, data: bytes):
    sock.sendall(data)  # expect: TB601
    sock.send(data)  # expect: TB601
    chunk = sock.recv(4096)  # expect: TB601
    n = sock.recv_into(bytearray(16))  # expect: TB601
    sock.sendmsg([data])  # expect: TB601
    return chunk, n


def name_based_matching(transport, payload):
    # The rule is deliberately lexical: inside the reactor package *any*
    # ``.send(...)``-shaped call is flagged, even on a non-socket
    # receiver, because the checker cannot see types and a miss here
    # blocks every channel at once.  Route such calls through helpers
    # or suppress explicitly.
    transport.send(0, 1, None, payload)  # expect: TB601


def _nb_send(sock: socket.socket, data: bytes):
    # Sanctioned: the _nb_* helpers are the one place allowed to touch
    # the primitives, translating EAGAIN into None.
    try:
        return sock.send(data)
    except BlockingIOError:
        return None


def _nb_recv_into(sock: socket.socket, view: memoryview):
    try:
        return sock.recv_into(view)
    except BlockingIOError:
        return None


def suppressed_handshake(sock: socket.socket, data: bytes):
    sock.sendall(data)  # tbon: ignore[TB601]
