"""tboncheck fixture: TB2xx filter-protocol and mutation-contract rules.

Never imported — only parsed.  See fx_wire_format.py for the marker
conventions.
"""

from repro.core.filters import SynchronizationFilter, TransformationFilter


class GoodTransform(TransformationFilter):
    def transform(self, packets, ctx):
        return packets[0]


class GoodExec(TransformationFilter):
    def execute(self, packets, ctx):
        return list(packets)


class InheritsTransform(GoodTransform):
    """transform() comes from GoodTransform — no finding."""

    extra = 1


class MissingTransform(TransformationFilter):  # expect: TB201
    def helper(self):
        return None


class GoodSync(SynchronizationFilter):
    def push(self, packet, child, ctx):
        return [[packet]]


class MissingPush(SynchronizationFilter):  # expect: TB202
    """No push() anywhere in the chain below the root."""


class UntimedTimer(SynchronizationFilter):  # expect: TB203
    def push(self, packet, child, ctx):
        return []

    def next_deadline(self):
        return 1.0


class TimedOK(SynchronizationFilter):
    timed = True

    def push(self, packet, child, ctx):
        return []

    def on_timer(self, now, ctx):
        return []


class TimedViaBase(TimedOK):
    """timed = True and push() both inherited — no finding."""

    def on_timer(self, now, ctx):
        return []


def mutate(pkt, other):
    pkt.tag = 3  # expect: TB204
    pkt.hops += 1  # expect: TB204
    other.payload = b""  # expect: TB204
    pkt.src = 0  # tbon: ignore[TB204]


class NotAPacket:
    def __init__(self):
        self.tag = 1  # writes through self are exempt
        self.hops = 0
