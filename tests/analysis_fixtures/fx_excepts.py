"""tboncheck fixture: TB4xx exception-hygiene rules and TB002 pragmas.

Never imported — only parsed.  See fx_wire_format.py for the marker
conventions.
"""

import logging

_LOG = logging.getLogger(__name__)


def work():
    raise ValueError("boom")


def swallows_broad():
    try:
        work()
    except Exception:  # expect: TB402
        pass


def swallows_tuple():
    try:
        work()
    except (ValueError, Exception):  # expect: TB402
        pass


def swallows_bare():
    try:
        work()
    except:  # expect: TB401
        pass


def allowed():
    try:
        work()
    except Exception:  # tbon: allow-broad-except(fixture demonstrates suppression)
        pass


def reports_via_logger():
    try:
        work()
    except Exception:
        _LOG.warning("work failed")


def reports_via_bound_name():
    try:
        work()
    except Exception as exc:
        record = {"error": exc}
        return record


def reraises():
    try:
        work()
    except Exception:
        raise


def narrow_is_fine():
    try:
        work()
    except ValueError:
        pass


def bad_pragmas():
    x = 1  # expect: TB002  # tbon: allow-broad-except()
    y = 2  # expect: TB002  # tbon: frobnicate
    z = 3  # expect: TB002  # tbon: ignore[TB999]
    return x, y, z
