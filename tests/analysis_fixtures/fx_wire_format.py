"""tboncheck fixture: TB1xx wire-format rules.

Never imported — only parsed by the analysis engine.  Lines carrying a
``# expect: <rules>`` marker must produce exactly those findings; all
other lines must be clean.  ``# tbon:`` pragmas must sit last on their
line (everything after ``tbon:`` is the pragma body).
"""

from repro.core.packet import Packet, make_packet
from repro.core.serialization import (
    pack_payload,
    payload_nbytes,
    unpack_payload,
    validate_values,
)


def positives(be, stream):
    pack_payload("%q", (1,))  # expect: TB101
    unpack_payload("%d %zz", b"")  # expect: TB101
    pack_payload("%d", (1, 2))  # expect: TB102
    validate_values("%d %d", (1,))  # expect: TB102
    pack_payload("%d %s", (1, 2))  # expect: TB103
    payload_nbytes("%f", ("no",))  # expect: TB103
    Packet(1, 2, "%d %d", (1,))  # expect: TB102
    Packet(1, 2, "%d", (True,))  # expect: TB103
    make_packet(1, 2, "%d", 1, 2)  # expect: TB102
    make_packet(1, 2, "%s", 7)  # expect: TB103
    be.send(5, 7, "%d %f", 1)  # expect: TB102
    be.send_p2p(3, 7, "%x", 1)  # expect: TB101
    stream.send(7, "%b", "yes")  # expect: TB103


def negatives(be, stream, fmt, values, xs):
    pack_payload("%d %f", (1, 2.0))
    pack_payload("%d %f %s %ac %as %am %o", values)
    unpack_payload("%d %d %d %d %s", b"")
    pack_payload(fmt, (1,))
    pack_payload("%d %d", (*xs,))
    Packet(1, 2, "%d", (-3,))
    make_packet(1, 2, "%d %f", 1, 2.5)
    make_packet(1, 2, "%d", *xs)
    be.send(5, 7, "%d", 1)
    be.send(5, 7, "%s", "ok")
    stream.send(7, "%d %s", 4, "ok")
    be.send_p2p(3, 7, "%f", 2.5)


def suppressed():
    pack_payload("%q", (1,))  # tbon: ignore[TB101]
    pack_payload("%d", (1, 2))  # tbon: ignore[*]
