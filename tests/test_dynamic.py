"""Tests for dynamic features: live back-end attach and filter chains."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import (
    FIRST_APPLICATION_TAG,
    FilterLoadError,
    Network,
    StreamError,
    balanced_topology,
)
from repro.core.filter_registry import FilterRegistry, default_registry
from repro.core.filters import SuperFilter, TransformationFilter
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


class TestLiveAttach:
    def test_attach_adds_backend(self):
        with Network(balanced_topology(2, 2)) as net:
            n0 = net.topology.n_backends
            parent = net.topology.internals[0]
            new_be = net.attach_backend(parent)
            assert net.topology.n_backends == n0 + 1
            assert new_be.rank in net.topology.backends
            assert net.topology.parent(new_be.rank) == parent

    def test_new_backend_joins_new_streams(self):
        with Network(balanced_topology(2, 2)) as net:
            parent = net.topology.internals[0]
            new_be = net.attach_backend(parent)
            time.sleep(0.2)  # allow reconfiguration to land
            s = net.new_stream(transform="sum", sync="wait_for_all")
            assert new_be.rank in s.members

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "%d", 1)

            net.run_backends(leaf)
            assert s.recv(timeout=10).values[0] == net.topology.n_backends
            assert net.node_errors() == {}

    def test_existing_streams_unaffected(self):
        """MRNet semantics: memberships are fixed at stream creation."""
        with Network(balanced_topology(2, 2)) as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            old_members = s.members
            net.attach_backend(net.topology.internals[0])
            time.sleep(0.2)
            send_from_all_old = [net.backend(r) for r in old_members]
            for be in send_from_all_old:
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "%d", 1)
            assert s.recv(timeout=10).values[0] == len(old_members)

    def test_attach_under_backend_rejected(self):
        with Network(balanced_topology(2, 2)) as net:
            with pytest.raises(StreamError):
                net.attach_backend(net.topology.backends[0])

    def test_attach_chain(self):
        """Attach several back-ends in sequence, then aggregate over all."""
        with Network(balanced_topology(2, 2)) as net:
            for _ in range(3):
                net.attach_backend(0)
                time.sleep(0.1)
            s = net.new_stream(transform="count", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "%ud", 1)

            net.run_backends(leaf)
            assert s.recv(timeout=10).values[0] == 7
            assert net.node_errors() == {}

    def test_tcp_attach_live(self):
        """Socket transports rebind live since PR 5, so attach works over TCP."""
        net = Network(balanced_topology(2, 2), transport="tcp")
        try:
            new_be = net.attach_backend(net.topology.internals[0])
            time.sleep(0.3)  # allow reconfiguration + reconnects to land
            s = net.new_stream(transform="sum", sync="wait_for_all")
            assert new_be.rank in s.members

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "%d", 1)

            net.run_backends(leaf)
            assert s.recv(timeout=10).values[0] == net.topology.n_backends
            assert net.node_errors() == {}
        finally:
            net.shutdown()

    def test_attach_requires_rebind_capability(self):
        """A transport without rebind() cannot host live attach."""
        import types

        net = Network(balanced_topology(2, 2))
        try:
            real = net.transport
            net.transport = types.SimpleNamespace(inbox=real.inbox)
            try:
                with pytest.raises(StreamError, match="does not support"):
                    net.attach_backend(net.topology.internals[0])
            finally:
                net.transport = real
        finally:
            net.shutdown()


class _Negate(TransformationFilter):
    def transform(self, packets, ctx):
        p = packets[0]
        return p.with_values([-p.values[0]])


class TestFilterChains:
    def test_pipe_syntax_builds_super_filter(self):
        reg = FilterRegistry()
        from repro.core.builtin_filters import SumFilter

        reg.add_transform("sum", SumFilter)
        reg.add_transform("negate", _Negate)
        f = reg.make_transform("sum|negate")
        assert isinstance(f, SuperFilter)
        assert len(f.stages) == 2

    def test_empty_stage_rejected(self):
        with pytest.raises(FilterLoadError):
            default_registry.make_transform("sum||sum")

    def test_chain_on_live_network(self, net):
        net.registry.add_transform("negate", _Negate, replace=True)
        s = net.new_stream(transform="sum|negate", sync="wait_for_all")
        send_from_all(net, s, TAG, "%d", lambda r: 1)
        # Each node sums, then negates; negations flip at every level:
        # depth-2 tree => internal: -(sum leaves), root: -(sum internals).
        # With 9 leaves of 1: internal -(3), root -((-3)*3) = 9.
        assert s.recv(timeout=10).values[0] == 9

    def test_unknown_stage_fails_fast(self, net):
        with pytest.raises(FilterLoadError):
            net.new_stream(transform="sum|definitely_missing")
