"""Unit tests for MRNet's synchronization filters (with a fake clock)."""

from __future__ import annotations

import pytest

from repro.core.errors import FilterError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.core.sync_filters import NullSync, TimeOut, WaitForAll


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def mk_ctx(n_children, clock=None):
    return FilterContext(
        node_rank=1,
        stream_id=1,
        n_children=n_children,
        now=clock or FakeClock(),
    )


def pkt(v, src=0):
    return Packet(1, 100, "%d", (v,), src=src)


class TestWaitForAll:
    def test_holds_until_all_children(self):
        f = WaitForAll()
        c = mk_ctx(3)
        assert f.push(pkt(1, 10), 10, c) == []
        assert f.push(pkt(2, 11), 11, c) == []
        batches = f.push(pkt(3, 12), 12, c)
        assert len(batches) == 1
        assert sorted(p.values[0] for p in batches[0]) == [1, 2, 3]

    def test_wave_alignment(self):
        """The i-th packets from each child form the i-th batch."""
        f = WaitForAll()
        c = mk_ctx(2)
        # Child 10 races two waves ahead.
        assert f.push(pkt(1, 10), 10, c) == []
        assert f.push(pkt(2, 10), 10, c) == []
        b1 = f.push(pkt(100, 11), 11, c)
        assert [p.values[0] for p in b1[0]] == [1, 100]
        b2 = f.push(pkt(200, 11), 11, c)
        assert [p.values[0] for p in b2[0]] == [2, 200]

    def test_release_of_multiple_complete_waves(self):
        f = WaitForAll()
        c = mk_ctx(2)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 10, c)
        f.push(pkt(3), 11, c)  # completes wave 1 only
        batches = f.push(pkt(4), 11, c)
        assert len(batches) == 1

    def test_flush_releases_partial_waves(self):
        f = WaitForAll()
        c = mk_ctx(3)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 10, c)
        f.push(pkt(3), 11, c)
        batches = f.flush(c)
        assert [len(b) for b in batches] == [2, 1]
        assert f.pending_count() == 0

    def test_recheck_after_losing_child(self):
        """Recovery shrinks the covering set; held waves must release."""
        f = WaitForAll()
        c = mk_ctx(3)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 11, c)
        # Child 12 dies; covering is now (10, 11) and n_children 2.
        c.n_children = 2
        batches = f.recheck(c, (10, 11))
        assert len(batches) == 1
        assert sorted(p.values[0] for p in batches[0]) == [1, 2]

    def test_no_deadline(self):
        assert WaitForAll().next_deadline() is None


class TestTimeOut:
    def test_window_release_on_timer(self):
        clock = FakeClock()
        f = TimeOut(window=1.0)
        c = mk_ctx(3, clock)
        assert f.push(pkt(1), 10, c) == []
        assert f.next_deadline() == pytest.approx(1.0)
        clock.advance(0.5)
        assert f.on_timer(clock(), c) == []  # window still open
        clock.advance(0.6)
        batches = f.on_timer(clock(), c)
        assert len(batches) == 1 and len(batches[0]) == 1
        assert f.next_deadline() is None

    def test_early_release_when_all_children_report(self):
        clock = FakeClock()
        f = TimeOut(window=100.0)
        c = mk_ctx(2, clock)
        assert f.push(pkt(1), 10, c) == []
        batches = f.push(pkt(2), 11, c)
        assert len(batches) == 1 and len(batches[0]) == 2

    def test_window_reopens_for_next_batch(self):
        clock = FakeClock()
        f = TimeOut(window=1.0)
        c = mk_ctx(2, clock)
        f.push(pkt(1), 10, c)
        clock.advance(2.0)
        assert len(f.on_timer(clock(), c)) == 1
        # Next packet opens a new window anchored at the new now.
        f.push(pkt(2), 10, c)
        assert f.next_deadline() == pytest.approx(3.0)

    def test_flush(self):
        f = TimeOut(window=5.0)
        c = mk_ctx(3)
        f.push(pkt(1), 10, c)
        assert len(f.flush(c)) == 1
        assert f.pending_count() == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(FilterError):
            TimeOut(window=0.0)


class TestNullSync:
    def test_immediate_delivery(self):
        f = NullSync()
        c = mk_ctx(5)
        batches = f.push(pkt(7), 10, c)
        assert batches == [[batches[0][0]]]
        assert batches[0][0].values == (7,)

    def test_no_state(self):
        f = NullSync()
        assert f.pending_count() == 0
        assert f.flush(mk_ctx(1)) == []
