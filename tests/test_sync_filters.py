"""Unit tests for MRNet's synchronization filters (with a fake clock)."""

from __future__ import annotations

import pytest

from repro.core.errors import FilterError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.core.sync_filters import NullSync, TimeOut, WaitForAll


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def mk_ctx(n_children, clock=None):
    return FilterContext(
        node_rank=1,
        stream_id=1,
        n_children=n_children,
        now=clock or FakeClock(),
    )


def pkt(v, src=0):
    return Packet(1, 100, "%d", (v,), src=src)


class TestWaitForAll:
    def test_holds_until_all_children(self):
        f = WaitForAll()
        c = mk_ctx(3)
        assert f.push(pkt(1, 10), 10, c) == []
        assert f.push(pkt(2, 11), 11, c) == []
        batches = f.push(pkt(3, 12), 12, c)
        assert len(batches) == 1
        assert sorted(p.values[0] for p in batches[0]) == [1, 2, 3]

    def test_wave_alignment(self):
        """The i-th packets from each child form the i-th batch."""
        f = WaitForAll()
        c = mk_ctx(2)
        # Child 10 races two waves ahead.
        assert f.push(pkt(1, 10), 10, c) == []
        assert f.push(pkt(2, 10), 10, c) == []
        b1 = f.push(pkt(100, 11), 11, c)
        assert [p.values[0] for p in b1[0]] == [1, 100]
        b2 = f.push(pkt(200, 11), 11, c)
        assert [p.values[0] for p in b2[0]] == [2, 200]

    def test_release_of_multiple_complete_waves(self):
        f = WaitForAll()
        c = mk_ctx(2)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 10, c)
        f.push(pkt(3), 11, c)  # completes wave 1 only
        batches = f.push(pkt(4), 11, c)
        assert len(batches) == 1

    def test_flush_releases_partial_waves(self):
        f = WaitForAll()
        c = mk_ctx(3)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 10, c)
        f.push(pkt(3), 11, c)
        batches = f.flush(c)
        assert [len(b) for b in batches] == [2, 1]
        assert f.pending_count() == 0

    def test_recheck_after_losing_child(self):
        """Recovery shrinks the covering set; held waves must release."""
        f = WaitForAll()
        c = mk_ctx(3)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 11, c)
        # Child 12 dies; covering is now (10, 11) and n_children 2.
        c.n_children = 2
        batches = f.recheck(c, (10, 11))
        assert len(batches) == 1
        assert sorted(p.values[0] for p in batches[0]) == [1, 2]

    def test_no_deadline(self):
        assert WaitForAll().next_deadline() is None


class TestTimeOut:
    def test_window_release_on_timer(self):
        clock = FakeClock()
        f = TimeOut(window=1.0)
        c = mk_ctx(3, clock)
        assert f.push(pkt(1), 10, c) == []
        assert f.next_deadline() == pytest.approx(1.0)
        clock.advance(0.5)
        assert f.on_timer(clock(), c) == []  # window still open
        clock.advance(0.6)
        batches = f.on_timer(clock(), c)
        assert len(batches) == 1 and len(batches[0]) == 1
        assert f.next_deadline() is None

    def test_early_release_when_all_children_report(self):
        clock = FakeClock()
        f = TimeOut(window=100.0)
        c = mk_ctx(2, clock)
        assert f.push(pkt(1), 10, c) == []
        batches = f.push(pkt(2), 11, c)
        assert len(batches) == 1 and len(batches[0]) == 2

    def test_window_reopens_for_next_batch(self):
        clock = FakeClock()
        f = TimeOut(window=1.0)
        c = mk_ctx(2, clock)
        f.push(pkt(1), 10, c)
        clock.advance(2.0)
        assert len(f.on_timer(clock(), c)) == 1
        # Next packet opens a new window anchored at the new now.
        f.push(pkt(2), 10, c)
        assert f.next_deadline() == pytest.approx(3.0)

    def test_flush(self):
        f = TimeOut(window=5.0)
        c = mk_ctx(3)
        f.push(pkt(1), 10, c)
        assert len(f.flush(c)) == 1
        assert f.pending_count() == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(FilterError):
            TimeOut(window=0.0)

    def test_straggler_lands_in_next_wave(self):
        """A packet arriving after the window closed joins the next wave."""
        clock = FakeClock()
        f = TimeOut(window=1.0)
        c = mk_ctx(3, clock)
        f.push(pkt(1), 10, c)
        f.push(pkt(2), 11, c)
        clock.advance(1.5)
        partial = f.on_timer(clock(), c)
        assert sorted(p.values[0] for p in partial[0]) == [1, 2]
        # Child 12's late packet opens a fresh window...
        assert f.push(pkt(3), 12, c) == []
        assert f.next_deadline() == pytest.approx(2.5)
        # ...and is released with the *next* wave, not lost.
        clock.advance(1.1)
        nxt = f.on_timer(clock(), c)
        assert [p.values[0] for p in nxt[0]] == [3]
        assert f.pending_count() == 0


class TestTimeOutLive:
    def test_lagging_backend_partial_wave_then_straggler(self):
        """Live network: a deliberately lagging back-end misses the window.

        The prompt back-ends' contributions are delivered as a partial
        wave when the timer fires; the straggler's packet is not dropped
        but surfaces as the following (singleton) wave.
        """
        import threading

        from repro.core.events import FIRST_APPLICATION_TAG
        from repro.core.network import Network
        from repro.core.topology import flat_topology

        release = threading.Event()
        with Network(flat_topology(3)) as net:
            s = net.new_stream(
                transform="sum", sync="time_out", sync_params={"window": 0.3}
            )

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                if be.rank == net.topology.backends[-1]:
                    # The lagging back-end: far beyond the sync window.
                    assert release.wait(30)
                    be.send(s.stream_id, FIRST_APPLICATION_TAG, "%d", 100)
                else:
                    be.send(s.stream_id, FIRST_APPLICATION_TAG, "%d", 1)

            threads = net.run_backends(leaf, join=False)
            partial = s.recv(timeout=30)
            assert partial.values == (2,)  # both prompt back-ends, no straggler
            release.set()
            straggler = s.recv(timeout=30)
            assert straggler.values == (100,)  # lands alone in the next wave
            for t in threads:
                t.join(30)
            assert not net.node_errors()


class TestNullSync:
    def test_immediate_delivery(self):
        f = NullSync()
        c = mk_ctx(5)
        batches = f.push(pkt(7), 10, c)
        assert batches == [[batches[0][0]]]
        assert batches[0][0].values == (7,)

    def test_no_state(self):
        f = NullSync()
        assert f.pending_count() == 0
        assert f.flush(mk_ctx(1)) == []
