"""Tests for the TAG-style declarative query layer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Network, balanced_topology
from repro.core.errors import TBONError
from repro.tools.tag import Query, TagService, parse_query


class TestParser:
    def test_full_query(self):
        q = parse_query(
            "SELECT avg(cpu), max(mem) FROM sensors WHERE cpu > 50 EPOCH 4"
        )
        assert q.aggregates == (("avg", "cpu"), ("max", "mem"))
        assert q.table == "sensors"
        assert q.predicate == ("cpu", ">", 50.0)
        assert q.epochs == 4

    def test_minimal_query(self):
        q = parse_query("SELECT count(cpu) FROM nodes")
        assert q.predicate is None
        assert q.epochs == 1

    def test_case_insensitive_keywords(self):
        q = parse_query("select min(temp) from s where temp <= 30")
        assert q.aggregates == (("min", "temp"),)
        assert q.predicate == ("temp", "<=", 30.0)

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT cpu FROM s",            # bare attribute, no aggregate
            "SELECT median(cpu) FROM s",    # unknown aggregate
            "avg(cpu) FROM s",              # missing SELECT
            "SELECT avg(cpu)",              # missing FROM
            "SELECT avg(cpu) FROM s EPOCH 0",
        ],
    )
    def test_rejects_bad_syntax(self, bad):
        with pytest.raises(TBONError):
            parse_query(bad)

    def test_predicate_ops(self):
        for op, expected in [("<", True), (">", False), ("=", False), ("!=", True)]:
            q = parse_query(f"SELECT sum(x) FROM t WHERE x {op} 10")
            assert q.matches({"x": 5.0}) is expected

    def test_predicate_missing_attr(self):
        q = parse_query("SELECT sum(x) FROM t WHERE y < 1")
        with pytest.raises(TBONError):
            q.matches({"x": 1.0})


@pytest.fixture
def net():
    network = Network(balanced_topology(3, 2))
    yield network
    network.shutdown()
    assert network.node_errors() == {}


def ground_truth(net, epoch, pred=None):
    rows = [TagService._default_sampler(r, epoch) for r in net.topology.backends]
    if pred:
        rows = [r for r in rows if pred(r)]
    return rows


class TestExecution:
    def test_unfiltered_aggregates(self, net):
        svc = TagService(net)
        (res,) = svc.execute("SELECT min(cpu), max(cpu), avg(cpu), sum(cpu), count(cpu) FROM s")
        rows = ground_truth(net, 0)
        cpus = [r["cpu"] for r in rows]
        assert res.n_rows == 9
        assert res.values["min(cpu)"] == pytest.approx(min(cpus))
        assert res.values["max(cpu)"] == pytest.approx(max(cpus))
        assert res.values["avg(cpu)"] == pytest.approx(np.mean(cpus))
        assert res.values["sum(cpu)"] == pytest.approx(sum(cpus))
        assert res.values["count(cpu)"] == 9

    def test_where_clause_filters_in_network(self, net):
        svc = TagService(net)
        (res,) = svc.execute("SELECT avg(mem), count(mem) FROM s WHERE cpu > 50")
        rows = ground_truth(net, 0, lambda r: r["cpu"] > 50)
        assert res.n_rows == len(rows)
        assert res.values["avg(mem)"] == pytest.approx(
            np.mean([r["mem"] for r in rows])
        )

    def test_epochs_stream_results(self, net):
        svc = TagService(net)
        results = svc.execute("SELECT max(temp) FROM s EPOCH 3")
        assert [r.epoch for r in results] == [0, 1, 2]
        for res in results:
            rows = ground_truth(net, res.epoch)
            assert res.values["max(temp)"] == pytest.approx(
                max(r["temp"] for r in rows)
            )

    def test_empty_selection_yields_nan(self, net):
        svc = TagService(net)
        (res,) = svc.execute("SELECT min(cpu), avg(cpu) FROM s WHERE cpu > 1000")
        assert res.n_rows == 0
        assert math.isnan(res.values["min(cpu)"])
        assert math.isnan(res.values["avg(cpu)"])

    def test_custom_sampler(self, net):
        svc = TagService(net, sampler=lambda rank, epoch: {"v": float(rank)})
        (res,) = svc.execute("SELECT sum(v), max(v) FROM s")
        assert res.values["sum(v)"] == sum(net.topology.backends)
        assert res.values["max(v)"] == max(net.topology.backends)

    def test_consecutive_queries(self, net):
        svc = TagService(net)
        (a,) = svc.execute("SELECT count(cpu) FROM s")
        (b,) = svc.execute("SELECT count(mem) FROM s WHERE mem > 0")
        assert a.n_rows == b.n_rows == 9
