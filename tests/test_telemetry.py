"""Tests for the telemetry plane: metrics core, tracing, in-tree reduction.

Global state (the enable flag, the trace sampler) is saved and restored
around every test so the suite passes identically with and without
``TBON_TELEMETRY=1`` in the environment.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.errors import FilterError
from repro.core.events import FIRST_APPLICATION_TAG
from repro.core.filters import FilterContext
from repro.core.network import Network
from repro.core.packet import Packet
from repro.core.topology import balanced_topology
from repro.telemetry.export import format_trace, to_json, to_prometheus
from repro.telemetry.merge_filter import TelemetryMergeFilter
from repro.telemetry.registry import (
    TELEMETRY,
    Registry,
    empty_snapshot,
    enable,
    merge_snapshots,
    snapshot_delta,
    telemetry_enabled,
)
from repro.telemetry.trace import TRACER, TraceContext, Tracer, set_trace_sampling


@pytest.fixture
def telemetry_on():
    prev = TELEMETRY.enabled
    enable()
    yield
    TELEMETRY.enabled = prev


@pytest.fixture
def trace_all():
    prev = TRACER.rate
    set_trace_sampling(1.0)
    yield
    set_trace_sampling(prev)


# -- metrics core -------------------------------------------------------------


def test_enable_disable_roundtrip():
    prev = TELEMETRY.enabled
    try:
        enable()
        assert telemetry_enabled()
        TELEMETRY.enabled = False
        assert not telemetry_enabled()
    finally:
        TELEMETRY.enabled = prev


def test_counter_sums_across_threads():
    reg = Registry("t")
    c = reg.counter("tbon_test_total", {"k": "v"})
    assert c.key == 'tbon_test_total{k="v"}'

    def worker():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    c.inc(5)
    assert c.value() == 4005


def test_key_labels_sorted():
    reg = Registry("t")
    assert reg.counter("m", {"b": "2", "a": "1"}).key == 'm{a="1",b="2"}'
    # Same labels in any order resolve to the same instrument.
    assert reg.counter("m", {"a": "1", "b": "2"}) is reg.counter("m", {"b": "2", "a": "1"})


def test_histogram_bucket_math():
    reg = Registry("t")
    h = reg.histogram("h", bounds=(1.0, 2.0, 4.0, 8.0))
    for v in (0.5, 1.0, 1.5, 8.0, 9.0):
        h.observe(v)
    snap = h.value()
    # le semantics: v == bound lands in that bound's bucket.
    assert snap["counts"] == [2, 1, 0, 1, 1]  # last entry is +Inf overflow
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(20.0)
    assert snap["bounds"] == [1.0, 2.0, 4.0, 8.0]


def test_histogram_bounds_validation():
    reg = Registry("t")
    with pytest.raises(ValueError):
        reg.histogram("bad", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        reg.histogram("dup", bounds=(1.0, 1.0, 2.0))
    reg.histogram("ok", bounds=(1.0, 2.0))
    with pytest.raises(ValueError):
        reg.histogram("ok", bounds=(1.0, 4.0))  # re-registered, new bounds


def test_merge_snapshots_semantics():
    a = Registry("node-a")
    b = Registry("node-b")
    a.counter("c").inc(3)
    b.counter("c").inc(4)
    b.counter("only_b").inc(1)
    a.gauge("g").set(2.0)
    b.gauge("g").set(5.0)
    a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
    b.histogram("h", bounds=(1.0, 2.0)).observe(3.0)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["sources"] == ["node-a", "node-b"]
    assert merged["counters"]["c"] == 7
    assert merged["counters"]["only_b"] == 1
    assert merged["gauges"]["g"] == 5.0
    assert merged["histograms"]["h"]["counts"] == [1, 0, 1]
    assert merged["histograms"]["h"]["count"] == 2


def test_merge_is_associative():
    regs = [Registry(f"n{i}") for i in range(3)]
    for i, r in enumerate(regs):
        r.counter("c").inc(i + 1)
        r.histogram("h", bounds=(1.0,)).observe(float(i))
    snaps = [r.snapshot() for r in regs]
    left = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
    right = merge_snapshots([snaps[0], merge_snapshots(snaps[1:])])
    assert left == right == merge_snapshots(snaps)


def test_merge_rejects_mismatched_bounds():
    a = Registry("a")
    b = Registry("b")
    a.histogram("h", bounds=(1.0,)).observe(0.5)
    b.histogram("h", bounds=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_snapshot_delta():
    reg = Registry("t")
    c = reg.counter("c")
    h = reg.histogram("h", bounds=(1.0,))
    c.inc(10)
    h.observe(0.5)
    before = reg.snapshot()
    c.inc(7)
    h.observe(2.0)
    delta = snapshot_delta(before, reg.snapshot())
    assert delta["counters"]["c"] == 7
    assert delta["histograms"]["h"]["counts"] == [0, 1]
    assert delta["histograms"]["h"]["count"] == 1


def test_empty_snapshot_merges_as_identity():
    reg = Registry("t")
    reg.counter("c").inc(2)
    snap = reg.snapshot()
    assert merge_snapshots([empty_snapshot(), snap])["counters"] == snap["counters"]


# -- causal tracing -----------------------------------------------------------


def test_trace_lifecycle_and_roundtrip():
    tr = TraceContext.start(7, 1.0)
    tr = tr.mark_arrival(3, 2.0)
    assert tr.t_latest == 2.0
    tr = tr.complete("sum", 2.5)
    assert tr.pending is None
    assert [h.filter for h in tr] == ["send", "sum"]
    back = TraceContext.from_bytes(tr.to_bytes())
    assert back.trace_id == tr.trace_id
    assert back.hops == tr.hops


def test_trace_rejects_trailing_bytes():
    blob = TraceContext.start(1, 0.0).to_bytes() + b"x"
    with pytest.raises(ValueError):
        TraceContext.from_bytes(blob)


def test_trace_complete_without_arrival_is_noop():
    tr = TraceContext.start(1, 0.0)
    assert tr.complete("sum", 1.0) is tr


def test_tracer_deterministic_sampling():
    t = Tracer(1.0)
    assert all(t.sample() for _ in range(5))
    t = Tracer(0.0)
    assert not any(t.sample() for _ in range(5))
    t = Tracer(0.5)
    assert [t.sample() for _ in range(6)] == [False, True, False, True, False, True]
    with pytest.raises(ValueError):
        Tracer(1.5)


def test_packet_trace_wire_roundtrip():
    pkt = Packet(1, 100, "%d %s", (42, "hi"), src=9)
    plain = Packet.from_bytes(pkt.to_bytes())
    assert plain.trace is None

    pkt.attach_trace(TraceContext.start(9, 1.0).mark_arrival(0, 2.0).complete("sum", 3.0))
    back = Packet.from_bytes(pkt.to_bytes())
    assert back.values == (42, "hi")
    assert back.trace is not None
    assert back.trace.hops == pkt.trace.hops


def test_attach_trace_invalidates_frame_memo():
    pkt = Packet(1, 100, "%d", (1,), src=0)
    untraced = pkt.to_bytes()
    pkt.attach_trace(TraceContext.start(0, 1.0))
    traced = pkt.to_bytes()
    assert len(traced) > len(untraced)
    assert Packet.from_bytes(traced).trace is not None


# -- exposition ---------------------------------------------------------------


def _sample_snapshot():
    reg = Registry("demo")
    reg.counter("tbon_pkts_total", {"dir": "up"}).inc(3)
    reg.gauge("tbon_depth").set(2.0)
    h = reg.histogram("tbon_lat_seconds", bounds=(1.0, 2.0))
    h.observe(0.5)
    h.observe(5.0)
    return reg.snapshot()


def test_prometheus_text_format():
    text = to_prometheus(_sample_snapshot())
    assert "# TYPE tbon_pkts_total counter" in text
    assert 'tbon_pkts_total{dir="up"} 3' in text
    assert "# TYPE tbon_depth gauge" in text
    assert "tbon_depth 2.0" in text
    # Cumulative buckets plus +Inf == total count.
    assert 'tbon_lat_seconds_bucket{le="1"} 1' in text
    assert 'tbon_lat_seconds_bucket{le="2"} 1' in text
    assert 'tbon_lat_seconds_bucket{le="+Inf"} 2' in text
    assert "tbon_lat_seconds_sum 5.5" in text
    assert "tbon_lat_seconds_count 2" in text


def test_json_export_roundtrips():
    snap = _sample_snapshot()
    assert json.loads(to_json(snap)) == snap


def test_format_trace_lists_hops():
    tr = TraceContext.start(5, 1.0).mark_arrival(0, 1.5).complete("sum", 1.75)
    text = format_trace(tr)
    assert "2 hops" in text
    assert "filter=sum" in text
    assert "end-to-end" in text


# -- the merge filter ---------------------------------------------------------


def _merge_ctx():
    return FilterContext(node_rank=0, stream_id=0, n_children=2, now=lambda: 0.0)


def test_telemetry_merge_filter():
    a = Registry("a")
    a.counter("c").inc(2)
    b = Registry("b")
    b.counter("c").inc(3)
    pkts = [
        Packet(0, 12, "%d %o", (1, a.snapshot()), src=10),
        Packet(0, 12, "%d %o", (1, b.snapshot()), src=11),
    ]
    out = TelemetryMergeFilter().transform(pkts, _merge_ctx())
    req_id, merged = out.values
    assert req_id == 1
    assert merged["counters"]["c"] == 5
    assert merged["sources"] == ["a", "b"]


def test_telemetry_merge_filter_rejects_bad_payloads():
    snap = Registry("a").snapshot()
    good = Packet(0, 12, "%d %o", (1, snap), src=10)
    with pytest.raises(FilterError):
        TelemetryMergeFilter().transform(
            [good, Packet(0, 12, "%o", (snap,), src=11)], _merge_ctx()
        )


# -- end-to-end: instruments + in-tree reduction + tracing --------------------


def test_live_gather_equals_flat_sum(telemetry_on, trace_all):
    topo = balanced_topology(2, 2)  # 4 back-ends, 3 communication processes
    traced = []
    with Network(topo) as net:
        s = net.new_stream(transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            for _ in range(2):
                be.send(s.stream_id, FIRST_APPLICATION_TAG, "%d", 5)

        threads = net.run_backends(leaf, join=False)
        for _ in range(2):
            pkt = s.recv(timeout=30)
            assert pkt.values == (20,)
            if pkt.trace is not None:
                traced.append(pkt.trace)
        for t in threads:
            t.join(30)

        aggregated = net.telemetry_snapshot()
        local = merge_snapshots(
            [n.telemetry.snapshot() for n in net.nodes.values()]
            + [be.telemetry.snapshot() for be in net.backends]
        )
        assert not net.node_errors()

    assert len(aggregated["sources"]) == 7
    assert aggregated["counters"] == local["counters"]
    up_in = aggregated["counters"]['tbon_node_packets_total{direction="up",point="in"}']
    assert up_in == 2 * (4 + 2)  # 2 waves through 3 nodes' input sides

    # Sampling at 1.0, every wave's critical path is traced end-to-end.
    assert traced
    for tr in traced:
        assert [h.filter for h in tr.hops] == ["send", "sum", "sum"]
        times = [t for hop in tr.hops for t in (hop.t_in, hop.t_out)]
        assert times == sorted(times)


def test_gather_with_telemetry_disabled_still_answers():
    prev = TELEMETRY.enabled
    TELEMETRY.enabled = False
    try:
        with Network(balanced_topology(2, 1)) as net:
            snap = net.telemetry_snapshot()
            assert len(snap["sources"]) == 3  # 2 back-ends + root
            assert all(v == 0 for v in snap["counters"].values())
    finally:
        TELEMETRY.enabled = prev
