"""Tests for graph folding (SGFA) and graph merging filters."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.errors import FilterError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.filters_ext.graph_fold import (
    GRAPH_FMT,
    label_paths_without_shim,
    SubGraphFoldFilter,
    composite_from_payload,
    fold_graphs,
    graph_root,
    label_paths,
    tree_payload,
)
from repro.filters_ext.graph_merge import (
    GraphMergeFilter,
    graph_from_payload,
    graph_to_payload,
    merge_graphs,
)

TAG = FIRST_APPLICATION_TAG


def labelled_tree(host: str, labels_edges):
    """Build a DiGraph from [(node, label)], [(u, v)] pairs."""
    nodes, edges = labels_edges
    g = nx.DiGraph(host=host)
    for nid, label in nodes:
        g.add_node(nid, label=label)
    g.add_edges_from(edges)
    return g


SIMPLE = ([(0, "root"), (1, "cpu"), (2, "io")], [(0, 1), (0, 2)])
SIMPLE_B = ([(0, "root"), (1, "cpu"), (2, "net")], [(0, 1), (0, 2)])


class TestFold:
    def test_identical_trees_collapse(self):
        g1 = labelled_tree("h1", SIMPLE)
        g2 = labelled_tree("h2", SIMPLE)
        comp = fold_graphs([g1, g2])
        # @root + root + cpu + io
        assert len(comp) == 4
        paths = label_paths_without_shim(comp)
        assert paths["root"][0] == {"h1", "h2"}
        assert paths["root"][1] == 2

    def test_divergent_children_coexist(self):
        comp = fold_graphs([labelled_tree("h1", SIMPLE), labelled_tree("h2", SIMPLE_B)])
        labels = sorted(d["label"] for _n, d in comp.nodes(data=True))
        assert labels == ["@root", "cpu", "io", "net", "root"]

    def test_different_roots_do_not_collapse(self):
        a = labelled_tree("h1", ([(0, "A")], []))
        b = labelled_tree("h2", ([(0, "B")], []))
        comp = fold_graphs([a, b])
        assert comp.out_degree("@root") == 2

    def test_refold_composite_with_tree(self):
        comp1 = fold_graphs([labelled_tree("h1", SIMPLE)])
        comp2 = fold_graphs([comp1, labelled_tree("h2", SIMPLE)])
        paths = label_paths_without_shim(comp2)
        assert paths["root"][0] == {"h1", "h2"}

    def test_multi_root_graph_rejected(self):
        g = nx.DiGraph()
        g.add_node(0, label="a")
        g.add_node(1, label="b")
        with pytest.raises(FilterError):
            graph_root(g)

    def test_empty_input_rejected(self):
        with pytest.raises(FilterError):
            fold_graphs([])

    def test_sibling_label_duplicates_fold_within_tree(self):
        """Two same-labelled siblings occupy one composite position with
        count 2 (SGFA collapses repeated qualitative structure)."""
        g = labelled_tree("h", ([(0, "r"), (1, "x"), (2, "x")], [(0, 1), (0, 2)]))
        comp = fold_graphs([g])
        paths = label_paths_without_shim(comp)
        x_key = [k for k in paths if k.endswith("x")][0]
        assert paths[x_key][1] == 2


class TestFoldFilter:
    def test_mixed_tree_and_composite_batch(self):
        f = SubGraphFoldFilter()
        ctx = FilterContext(n_children=2)
        p1 = Packet(1, TAG, GRAPH_FMT, (tree_payload(*SIMPLE, host="h1"),))
        p2 = Packet(1, TAG, GRAPH_FMT, (tree_payload(*SIMPLE, host="h2"),))
        (lower,) = f.execute([p1, p2], ctx)
        p3 = Packet(1, TAG, GRAPH_FMT, (tree_payload(*SIMPLE_B, host="h3"),))
        (out,) = f.execute([lower, p3], ctx)
        comp = composite_from_payload(out.values[0])
        paths = label_paths_without_shim(comp)
        assert paths["root"][0] == {"h1", "h2", "h3"}

    def test_bad_payload_rejected(self):
        f = SubGraphFoldFilter()
        bad = Packet(1, TAG, GRAPH_FMT, ({"nodes": []},))
        with pytest.raises(FilterError):
            f.execute([bad], FilterContext())

    def test_end_to_end_thousand_host_style(self):
        """9 daemons, 2 qualitative shapes -> composite with host unions."""
        topo = balanced_topology(3, 2)
        with Network(topo) as net:
            s = net.new_stream(transform="graph_fold", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                shape = SIMPLE if be.rank % 2 == 0 else SIMPLE_B
                be.send(
                    s.stream_id, TAG, GRAPH_FMT,
                    tree_payload(*shape, host=f"h{be.rank}"),
                )

            net.run_backends(leaf)
            comp = composite_from_payload(s.recv(timeout=15).values[0])
            paths = label_paths_without_shim(comp)
            hosts, count = paths["root"]
            assert count == 9
            assert len(hosts) == 9
            assert net.node_errors() == {}


class TestGraphMerge:
    def test_union_with_attr_accumulation(self):
        g1 = nx.DiGraph()
        g1.add_edge("main", "f", calls=3)
        g1.nodes["main"]["hosts"] = {"h1"}
        g2 = nx.DiGraph()
        g2.add_edge("main", "f", calls=4)
        g2.add_edge("f", "g", calls=1)
        g2.nodes["main"]["hosts"] = {"h2"}
        m = merge_graphs([g1, g2])
        assert m.edges["main", "f"]["calls"] == 7
        assert m.nodes["main"]["hosts"] == {"h1", "h2"}
        assert m.has_edge("f", "g")

    def test_payload_roundtrip(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", w=2)
        g.nodes["a"]["hosts"] = {"x"}
        g2 = graph_from_payload(graph_to_payload(g))
        assert list(g2.edges(data=True)) == list(g.edges(data=True))

    def test_filter(self):
        f = GraphMergeFilter()
        g = nx.DiGraph()
        g.add_edge("a", "b", w=1)
        p = Packet(1, TAG, GRAPH_FMT, (graph_to_payload(g),))
        (out,) = f.execute([p, p], FilterContext(n_children=2))
        m = graph_from_payload(out.values[0])
        assert m.edges["a", "b"]["w"] == 2

    def test_bad_payload_rejected(self):
        f = GraphMergeFilter()
        with pytest.raises(FilterError):
            f.execute([Packet(1, TAG, GRAPH_FMT, ({"wat": 1},))], FilterContext())


# -- property: folding is associative ------------------------------------------

@st.composite
def random_labelled_tree(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    labels = [draw(st.sampled_from(["a", "b", "c"])) for _ in range(n)]
    nodes = [(i, labels[i]) for i in range(n)]
    edges = [
        (draw(st.integers(min_value=0, max_value=i - 1)), i) for i in range(1, n)
    ]
    host = draw(st.sampled_from(["h1", "h2", "h3", "h4"]))
    return labelled_tree(host, (nodes, edges))


def _normalize(comp):
    return sorted(
        (n, d["label"], tuple(sorted(d["hosts"])), d["count"])
        for n, d in comp.nodes(data=True)
    )


@settings(max_examples=60, deadline=None)
@given(random_labelled_tree(), random_labelled_tree(), random_labelled_tree())
def test_property_fold_associative(a, b, c):
    direct = fold_graphs([a, b, c])
    nested_left = fold_graphs([fold_graphs([a, b]), c])
    nested_right = fold_graphs([a, fold_graphs([b, c])])
    assert _normalize(direct) == _normalize(nested_left) == _normalize(nested_right)
