"""Failure injection and recovery over the socket transports.

Every recovery scenario from ``test_reliability.py`` — which runs on the
thread transport — replayed over both socket backends: the selector
reactor and the legacy thread-per-connection TCP transport.  PR 4 made
the reactor the default for ``transport="tcp"``; this suite is what
replaced the old "TCP raises on recovery" assertions when the rebind
restriction was lifted: ``recover_from_failure`` reconnects surviving
edges with backoff, re-registers repaired channels with the event loop
(reactor) or respawns readers (tcp), and replays the topology push over
the repaired edges themselves.
"""

from __future__ import annotations

import logging
import threading
import time

import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.reliability import FailureInjector, recover_from_failure

TAG = FIRST_APPLICATION_TAG


@pytest.fixture(params=["reactor", "tcp-threads"])
def socket_net(request):
    """A live depth-2 network over each socket transport implementation."""
    net = Network(balanced_topology(3, 2), transport=request.param)
    yield net
    net.shutdown()


def _settle() -> None:
    """Let reconfiguration control packets land on real sockets."""
    time.sleep(0.5)


class TestFailureInjection:
    def test_killed_node_stops_and_channels_close(self, socket_net):
        victim = socket_net.topology.internals[0]
        FailureInjector(socket_net).kill_node(victim)
        assert not socket_net.nodes[victim].running
        # The dead rank's connections are gone from the transport.
        assert not any(victim in key for key in socket_net.transport._conns)

    def test_kill_and_recover_log_no_channel_errors(self, socket_net, caplog):
        """Regression: the teardown race the chaos work exposed.

        ``kill_node`` on a socket transport used to leave surviving
        peers' readers (or reactor channels) reporting an abrupt error;
        with the per-edge expected-close gate they see an orderly close,
        so a kill + recover cycle emits no termination warnings.
        """
        victim = socket_net.topology.internals[1]
        with caplog.at_level(logging.WARNING, logger="repro.transport"):
            FailureInjector(socket_net).kill_node(victim)
            recover_from_failure(socket_net, victim)
            _settle()
        noisy = [r for r in caplog.records if "terminated" in r.getMessage()]
        assert noisy == [], [r.getMessage() for r in noisy]
        assert socket_net.node_errors() == {}


class TestRecovery:
    def test_liveness_after_recovery(self, socket_net):
        """Open streams keep aggregating across a kill + recover."""
        s = socket_net.new_stream(transform="sum", sync="wait_for_all")
        for be in socket_net.backends:
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, TAG, "%d", 1)
        assert s.recv(timeout=10).values[0] == 9

        victim = socket_net.topology.internals[1]
        FailureInjector(socket_net).kill_node(victim)
        new_topo = recover_from_failure(socket_net, victim)
        assert victim not in new_topo
        _settle()

        for be in socket_net.backends:
            be.send(s.stream_id, TAG, "%d", 2)
        assert s.recv(timeout=10).values[0] == 18

    def test_partial_wave_releases_after_recovery(self, socket_net):
        """A wave blocked on the dead subtree completes with survivors."""
        s = socket_net.new_stream(transform="sum", sync="wait_for_all")
        for be in socket_net.backends:
            be.wait_for_stream(s.stream_id)
        victim = socket_net.topology.internals[2]
        lost = socket_net.topology.subtree_backends(victim)
        survivors = [r for r in socket_net.topology.backends if r not in lost]

        for r in survivors:
            socket_net.backend(r).send(s.stream_id, TAG, "%d", 1)
        time.sleep(0.2)

        FailureInjector(socket_net).kill_node(victim)
        recover_from_failure(socket_net, victim)
        _settle()
        # Contributions held at the dead node are the documented loss
        # window; the application resends them over the repaired edges.
        for r in lost:
            socket_net.backend(r).send(s.stream_id, TAG, "%d", 1)
        for r in socket_net.topology.backends:
            socket_net.backend(r).send(s.stream_id, TAG, "%d", 10)
        assert s.recv(timeout=10).values[0] == 9
        assert s.recv(timeout=10).values[0] == 90

    def test_close_completes_after_recovery(self, socket_net):
        s = socket_net.new_stream(transform="sum", sync="wait_for_all")
        for be in socket_net.backends:
            be.wait_for_stream(s.stream_id)
        victim = socket_net.topology.internals[0]
        FailureInjector(socket_net).kill_node(victim)
        recover_from_failure(socket_net, victim)
        _settle()
        s.close(timeout=10)
        assert s.is_closed

    def test_recover_unkilled_node_rejected(self, socket_net):
        victim = socket_net.topology.internals[0]
        from repro.core.errors import RecoveryError

        with pytest.raises(RecoveryError, match="still running"):
            recover_from_failure(socket_net, victim)

    def test_failure_under_active_load(self, socket_net):
        """Kill a node while back-ends are mid-burst; the network stays
        live and post-recovery waves aggregate completely."""
        s = socket_net.new_stream(transform="sum", sync="wait_for_all")
        for be in socket_net.backends:
            be.wait_for_stream(s.stream_id)
        victim = socket_net.topology.internals[0]
        stop = threading.Event()

        def burst(be):
            while not stop.is_set():
                try:
                    be.send(s.stream_id, TAG, "%d", 1)
                except Exception:
                    return  # channel to the dying node closed mid-send
                time.sleep(0.005)

        threads = socket_net.run_backends(burst, join=False)
        time.sleep(0.1)
        FailureInjector(socket_net).kill_node(victim)
        recover_from_failure(socket_net, victim)
        _settle()
        stop.set()
        for t in threads:
            t.join(5)
        s.close(timeout=10)
        s2 = socket_net.new_stream(transform="sum", sync="wait_for_all")
        for be in socket_net.backends:
            be.wait_for_stream(s2.stream_id)
            be.send(s2.stream_id, TAG, "%d", 5)
        assert s2.recv(timeout=10).values[0] == 45

    def test_repeated_failures(self, socket_net):
        """Survive losing every internal node, one at a time."""
        s = socket_net.new_stream(transform="sum", sync="wait_for_all")
        for be in socket_net.backends:
            be.wait_for_stream(s.stream_id)
        inj = FailureInjector(socket_net)
        for victim in list(socket_net.topology.internals):
            inj.kill_node(victim)
            recover_from_failure(socket_net, victim)
            _settle()
        assert socket_net.topology.n_internal == 0  # now a flat tree
        for be in socket_net.backends:
            be.send(s.stream_id, TAG, "%d", 3)
        assert s.recv(timeout=10).values[0] == 27
