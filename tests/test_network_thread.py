"""End-to-end network tests over the thread transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FIRST_APPLICATION_TAG,
    FilterError,
    Network,
    NetworkShutdownError,
    StreamClosedError,
    StreamError,
    Topology,
    balanced_topology,
    flat_topology,
)
from repro.core.filters import TransformationFilter
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


class TestBasicReduction:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: flat_topology(5),
            lambda: balanced_topology(2, 2),
            lambda: balanced_topology(3, 2),
            lambda: balanced_topology(2, 3),
            lambda: Topology({0: [1, 2], 1: [3, 4], 2: [5], 4: [6, 7]}),
        ],
    )
    def test_sum_across_shapes(self, topo_factory):
        topo = topo_factory()
        with Network(topo) as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            send_from_all(net, s, TAG, "%d", lambda r: r)
            assert s.recv(timeout=10).values[0] == sum(topo.backends)
            assert net.node_errors() == {}

    def test_multiple_waves_aligned(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            for wave in range(3):
                be.send(s.stream_id, TAG, "%d", wave * 100 + 1)

        net.run_backends(leaf)
        n = net.topology.n_backends
        totals = [s.recv(timeout=10).values[0] for _ in range(3)]
        assert totals == [n, 100 * n + n, 200 * n + n]

    def test_passthrough_delivers_one_per_backend(self, net):
        s = net.new_stream(transform="passthrough", sync="null")
        send_from_all(net, s, TAG, "%d", lambda r: r)
        got = sorted(s.recv(timeout=10).values[0] for _ in net.topology.backends)
        assert got == sorted(net.topology.backends)

    def test_concat_gathers_everything(self, net):
        s = net.new_stream(transform="concat", sync="wait_for_all")
        send_from_all(net, s, TAG, "%af", lambda r: np.array([float(r)]))
        out = s.recv(timeout=10).values[0]
        assert sorted(out.tolist()) == sorted(float(r) for r in net.topology.backends)


class TestStreamFeatures:
    def test_subset_membership(self, net):
        members = net.topology.backends[::2]
        s = net.new_stream(members, transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, TAG, "%d", 1)

        net.run_backends(leaf, ranks=members)
        assert s.recv(timeout=10).values[0] == len(members)

    def test_non_member_send_rejected(self, net):
        members = net.topology.backends[:2]
        s = net.new_stream(members, transform="sum", sync="wait_for_all")
        outsider = net.backend(net.topology.backends[-1])
        # The stream was never announced to the outsider.
        with pytest.raises(StreamError):
            outsider.send(s.stream_id, TAG, "%d", 1)

    def test_invalid_members_rejected(self, net):
        with pytest.raises(StreamError):
            net.new_stream([0], transform="sum")  # front-end is not a member
        with pytest.raises(StreamError):
            net.new_stream([net.topology.internals[0]], transform="sum")

    def test_concurrent_overlapping_streams(self, net):
        """Two streams, same members, different filters, in flight at once."""
        s_min = net.new_stream(transform="min", sync="wait_for_all")
        s_max = net.new_stream(transform="max", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s_min.stream_id)
            be.wait_for_stream(s_max.stream_id)
            be.send(s_min.stream_id, TAG, "%d", be.rank)
            be.send(s_max.stream_id, TAG, "%d", be.rank)

        net.run_backends(leaf)
        assert s_min.recv(timeout=10).values[0] == min(net.topology.backends)
        assert s_max.recv(timeout=10).values[0] == max(net.topology.backends)

    def test_downstream_multicast(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")
        seen = {}

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            pkt = be.recv(timeout=10, stream_id=s.stream_id)
            seen[be.rank] = pkt.values

        import threading

        threads = net.run_backends(leaf, join=False)
        s.send(TAG, "%d %s", 42, "go")
        for t in threads:
            t.join(10)
        assert set(seen) == set(net.topology.backends)
        assert all(v == (42, "go") for v in seen.values())

    def test_filter_params_reach_nodes(self, net):
        s = net.new_stream(
            transform="equivalence",
            sync="wait_for_all",
            transform_params={"max_members_per_class": 2},
        )
        from repro.filters_ext.equivalence import EQUIVALENCE_FMT, EquivalenceClasses

        send_from_all(
            net, s, TAG, EQUIVALENCE_FMT, lambda r: (["k"], [1], [f"h{r}"])
        )
        pkt = s.recv(timeout=10)
        ec = EquivalenceClasses.from_payload(*pkt.values)
        assert ec.counts == {"k": net.topology.n_backends}
        # Member list capped at 2 per class.
        assert len(ec.members["k"]) <= 2


class TestClose:
    def test_close_handshake(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")
        send_from_all(net, s, TAG, "%d", lambda r: 1)
        assert s.recv(timeout=10).values[0] == net.topology.n_backends
        s.close(timeout=10)
        assert s.is_closed
        with pytest.raises(StreamClosedError):
            s.send(TAG, "%d", 1)
        with pytest.raises(StreamClosedError):
            s.recv(timeout=1)

    def test_close_flushes_partial_waves(self, net):
        """Data sent by a strict subset still reaches the front-end on close."""
        s = net.new_stream(transform="sum", sync="wait_for_all")
        half = net.topology.backends[:4]

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, TAG, "%d", 1)

        net.run_backends(leaf, ranks=half)
        s.close_async()
        packets = s.drain(timeout=10)
        assert sum(p.values[0] for p in packets) == len(half)

    def test_backend_send_after_close_rejected(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")
        be = net.backends[0]
        be.wait_for_stream(s.stream_id)
        s.close(timeout=10)
        with pytest.raises(StreamClosedError):
            be.send(s.stream_id, TAG, "%d", 1)

    def test_double_close_is_idempotent(self, net):
        s = net.new_stream(transform="sum")
        s.close(timeout=10)
        s.close(timeout=10)


class _ExplodingFilter(TransformationFilter):
    def transform(self, packets, ctx):
        raise RuntimeError("kaboom")


class TestErrorPropagation:
    def test_filter_error_reaches_frontend(self, deep2_topology):
        net = Network(deep2_topology)
        try:
            net.registry.add_transform("exploding", _ExplodingFilter, replace=True)
            s = net.new_stream(transform="exploding", sync="null")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                be.send(s.stream_id, TAG, "%d", 1)

            net.run_backends(leaf, ranks=deep2_topology.backends[:1])
            with pytest.raises(FilterError, match="kaboom"):
                s.recv(timeout=10)
            assert net.frontend.errors
        finally:
            net.shutdown()

    def test_unknown_filter_fails_fast(self, net):
        from repro import FilterLoadError

        with pytest.raises(FilterLoadError):
            net.new_stream(transform="definitely_missing")
        with pytest.raises(FilterLoadError):
            net.new_stream(transform="sum", sync="definitely_missing")


class TestDynamicFilterLoad:
    def test_load_filter_by_module_path(self, net):
        net.load_filter("repro.filters_ext.histogram:HistogramFilter")
        name = "repro.filters_ext.histogram:HistogramFilter"
        s = net.new_stream(transform=name, sync="wait_for_all")
        from repro.filters_ext.histogram import histogram_counts

        edges = np.linspace(0, 100, 11)
        send_from_all(
            net,
            s,
            TAG,
            "%ad",
            lambda r: histogram_counts(np.array([float(r)]), edges),
        )
        out = s.recv(timeout=10).values[0]
        assert out.sum() == net.topology.n_backends

    def test_load_bad_kind_rejected(self, net):
        with pytest.raises(StreamError):
            net.load_filter("sum", kind="wat")


class TestShutdown:
    def test_operations_after_shutdown_rejected(self, deep2_topology):
        net = Network(deep2_topology)
        net.shutdown()
        with pytest.raises(NetworkShutdownError):
            net.new_stream(transform="sum")

    def test_shutdown_idempotent(self, deep2_topology):
        net = Network(deep2_topology)
        net.shutdown()
        net.shutdown()

    def test_backend_recv_unblocks_on_shutdown(self, deep2_topology):
        import threading

        net = Network(deep2_topology)
        be = net.backends[0]
        results = []

        def blocked():
            try:
                be.recv(timeout=30)
            except NetworkShutdownError:
                results.append("unblocked")

        t = threading.Thread(target=blocked)
        t.start()
        net.shutdown()
        t.join(5)
        assert results == ["unblocked"]


class TestBidirectionalExtension:
    def test_down_transform_applies(self, net):
        """The paper's future-work bidirectional filter: transform
        downstream packets at every node."""

        class Doubler(TransformationFilter):
            def transform(self, packets, ctx):
                p = packets[0]
                return p.with_values([p.values[0] * 2])

        net.registry.add_transform("doubler", Doubler, replace=True)
        s = net.new_stream(
            transform="passthrough", sync="null", down_transform="doubler"
        )
        seen = {}

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            seen[be.rank] = be.recv(timeout=10, stream_id=s.stream_id).values[0]

        threads = net.run_backends(leaf, join=False)
        s.send(TAG, "%d", 3)
        for t in threads:
            t.join(10)
        # Depth-2 tree: doubled at the root and once per internal = 3*2*2.
        assert set(seen.values()) == {12}
