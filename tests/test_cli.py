"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_nodecost(self, capsys):
        assert main(["nodecost"]) == 0
        out = capsys.readouterr().out
        assert "6.25" in out and "272" in out

    def test_logscale(self, capsys):
        assert main(["logscale"]) == 0
        assert "A-logscale" in capsys.readouterr().out

    def test_startup(self, capsys):
        assert main(["startup", "--daemons", "32", "512"]) == 0
        out = capsys.readouterr().out
        assert "one_to_many" in out and "512" in out

    def test_throughput(self, capsys):
        assert main(["throughput", "--daemons", "16", "48", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "flat_saturated" in out

    def test_fig4_reference(self, capsys):
        assert main(["fig4", "--reference"]) == 0
        out = capsys.readouterr().out
        assert "shape criteria: OK" in out
        assert "324" in out

    def test_fig4_custom_scales(self, capsys):
        assert main(["fig4", "--reference", "--scales", "16", "32"]) == 0
        out = capsys.readouterr().out
        assert "16" in out and "32" in out

    def test_topology_flat(self, capsys):
        assert main(["topology", "flat", "--backends", "5"]) == 0
        out = capsys.readouterr().out
        assert "backends=5" in out
        assert "=>" in out

    def test_topology_balanced(self, capsys):
        assert main(["topology", "balanced", "--fanout", "3", "--depth", "2"]) == 0
        assert "backends=9" in capsys.readouterr().out

    def test_topology_deep_roundtrips(self, capsys):
        from repro.core.topology import parse_topology_file

        assert main(["topology", "deep", "--backends", "48", "--fanout", "7"]) == 0
        out = capsys.readouterr().out
        spec = "\n".join(l for l in out.splitlines() if not l.startswith("#"))
        topo = parse_topology_file(spec)
        assert topo.n_backends == 48

    def test_meanshift_live_tiny(self, capsys):
        assert main(["meanshift", "--leaves", "2"]) == 0
        out = capsys.readouterr().out
        assert "distributed" in out and "peaks" in out
