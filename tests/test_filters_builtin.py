"""Unit and property tests for MRNet's built-in transformation filters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builtin_filters import (
    AverageFilter,
    ConcatFilter,
    CountFilter,
    MaxFilter,
    MinFilter,
    SumFilter,
)
from repro.core.errors import FilterError
from repro.core.filters import (
    FilterContext,
    FunctionFilter,
    PassthroughFilter,
    SuperFilter,
)
from repro.core.packet import Packet, make_packet


def ctx(n_children=2, is_root=False):
    return FilterContext(node_rank=1, stream_id=1, n_children=n_children, is_root=is_root)


def pkts(fmt, *value_tuples, srcs=None):
    srcs = srcs or list(range(10, 10 + len(value_tuples)))
    return [
        Packet(1, 100, fmt, vals, src=s) for vals, s in zip(value_tuples, srcs)
    ]


class TestSumMinMax:
    def test_sum_scalars(self):
        (out,) = SumFilter().execute(pkts("%d", (1,), (2,), (3,)), ctx())
        assert out.values == (6,)

    def test_sum_mixed_slots(self):
        batch = pkts(
            "%d %af",
            (1, np.array([1.0, 2.0])),
            (2, np.array([10.0, 20.0])),
        )
        (out,) = SumFilter().execute(batch, ctx())
        assert out.values[0] == 3
        assert np.array_equal(out.values[1], [11.0, 22.0])

    def test_min_max(self):
        batch = pkts("%f", (3.0,), (-1.0,), (2.0,))
        assert MinFilter().execute(batch, ctx())[0].values == (-1.0,)
        assert MaxFilter().execute(batch, ctx())[0].values == (3.0,)

    def test_elementwise_arrays(self):
        batch = pkts("%ad", (np.array([1, 5]),), (np.array([4, 2]),))
        assert np.array_equal(MinFilter().execute(batch, ctx())[0].values[0], [1, 2])
        assert np.array_equal(MaxFilter().execute(batch, ctx())[0].values[0], [4, 5])

    def test_mixed_formats_rejected(self):
        batch = [make_packet(1, 100, "%d", 1), make_packet(1, 100, "%f", 1.0)]
        with pytest.raises(FilterError):
            SumFilter().execute(batch, ctx())

    def test_shape_mismatch_rejected(self):
        batch = pkts("%af", (np.array([1.0]),), (np.array([1.0, 2.0]),))
        with pytest.raises(FilterError):
            SumFilter().execute(batch, ctx())

    def test_string_slot_rejected(self):
        batch = pkts("%s", ("a",), ("b",))
        with pytest.raises(FilterError):
            SumFilter().execute(batch, ctx())

    def test_empty_batch_is_noop(self):
        assert SumFilter().execute([], ctx()) == []


class TestCount:
    def test_counts_sum(self):
        (out,) = CountFilter().execute(pkts("%ud", (1,), (1,), (5,)), ctx())
        assert out.values == (7,)

    def test_requires_single_int_slot(self):
        with pytest.raises(FilterError):
            CountFilter().execute(pkts("%f", (1.0,)), ctx())


class TestAverage:
    def test_flat_average(self):
        (out,) = AverageFilter().execute(
            pkts("%f", (1.0,), (2.0,), (6.0,)), ctx(is_root=True)
        )
        assert out.values[0] == pytest.approx(3.0)

    def test_two_level_weighted(self):
        """avg of avgs must weight by contribution count."""
        f_internal = AverageFilter()
        f_root = AverageFilter()
        # Internal node A aggregates 3 leaves; internal node B only 1.
        (partial_a,) = f_internal.execute(
            pkts("%f", (0.0,), (0.0,), (0.0,)), ctx(3)
        )
        (partial_b,) = AverageFilter().execute(pkts("%f", (8.0,)), ctx(1))
        (out,) = f_root.execute([partial_a, partial_b], ctx(2, is_root=True))
        # True mean of (0,0,0,8) is 2, not mean-of-means 4.
        assert out.values[0] == pytest.approx(2.0)

    def test_array_slots(self):
        (out,) = AverageFilter().execute(
            pkts("%af", (np.array([2.0, 4.0]),), (np.array([4.0, 8.0]),)),
            ctx(is_root=True),
        )
        assert np.allclose(out.values[0], [3.0, 6.0])

    def test_backend_payload_ending_in_ud_not_misread(self):
        """A back-end packet whose format ends in %ud is data, not a
        partial sum (regression: the filter used to guess from format)."""
        (out,) = AverageFilter().execute(
            pkts("%f %ud", (2.0, 100), (4.0, 300)), ctx(is_root=True)
        )
        assert out.values[0] == pytest.approx(3.0)
        assert out.values[1] == pytest.approx(200.0)


class TestConcat:
    def test_scalar_promotion_ordered_by_src(self):
        batch = pkts("%d", (3,), (1,), (2,), srcs=[30, 10, 20])
        (out,) = ConcatFilter().execute(batch, ctx())
        assert np.array_equal(out.values[0], [1, 2, 3])
        assert out.fmt == "%ad"

    def test_array_concat(self):
        batch = pkts("%af", (np.array([1.0]),), (np.array([2.0, 3.0]),))
        (out,) = ConcatFilter().execute(batch, ctx())
        assert np.array_equal(out.values[0], [1.0, 2.0, 3.0])

    def test_string_and_list_concat(self):
        batch = pkts("%s %as", ("ab", ["x"]), ("cd", ["y", "z"]))
        (out,) = ConcatFilter().execute(batch, ctx())
        assert out.values[0] == "abcd"
        assert out.values[1] == ["x", "y", "z"]

    def test_matrix_concat(self):
        batch = pkts(
            "%am", (np.ones((2, 2)),), (np.zeros((1, 2)),)
        )
        (out,) = ConcatFilter().execute(batch, ctx())
        assert out.values[0].shape == (3, 2)
        assert out.fmt == "%am"

    def test_mixed_scalar_and_array_slot(self):
        """Unbalanced trees mix leaf scalars with promoted arrays."""
        a = Packet(1, 100, "%d", (5,), src=10)
        b = Packet(1, 100, "%ad", (np.array([1, 2]),), src=5)
        (out,) = ConcatFilter().execute([a, b], ctx())
        assert sorted(out.values[0].tolist()) == [1, 2, 5]


class TestCombinators:
    def test_passthrough_forwards_all(self):
        batch = pkts("%d", (1,), (2,))
        out = PassthroughFilter().execute(batch, ctx())
        assert out == list(batch)

    def test_function_filter(self):
        f = FunctionFilter(lambda ps, c: ps[0])
        batch = pkts("%d", (9,), (8,))
        assert f.execute(batch, ctx()) == [batch[0]]

    def test_function_filter_returning_none(self):
        f = FunctionFilter(lambda ps, c: None)
        assert f.execute(pkts("%d", (1,)), ctx()) == []

    def test_super_filter_chains(self):
        # Stage 1 sums; stage 2 doubles the sum.
        double = FunctionFilter(
            lambda ps, c: ps[0].with_values([ps[0].values[0] * 2])
        )
        sf = SuperFilter([SumFilter(), double])
        (out,) = sf.execute(pkts("%d", (1,), (2,)), ctx())
        assert out.values == (6,)

    def test_super_filter_empty_stage_list_rejected(self):
        with pytest.raises(FilterError):
            SuperFilter([])

    def test_bad_return_type_rejected(self):
        f = FunctionFilter(lambda ps, c: "garbage")
        with pytest.raises(FilterError):
            f.execute(pkts("%d", (1,)), ctx())

    def test_filter_exception_wrapped(self):
        def boom(ps, c):
            raise ValueError("inner")

        with pytest.raises(FilterError, match="inner"):
            FunctionFilter(boom).execute(pkts("%d", (1,)), ctx())


# -- property: tree reduction == flat reduction for associative filters ---------

@st.composite
def leaf_values_and_split(draw):
    values = draw(st.lists(st.integers(-1000, 1000), min_size=2, max_size=12))
    split = draw(st.integers(min_value=1, max_value=len(values) - 1))
    return values, split


@settings(max_examples=100, deadline=None)
@given(leaf_values_and_split())
def test_property_sum_tree_equals_flat(case):
    values, split = case
    batch = pkts("%d", *[(v,) for v in values])
    flat = SumFilter().execute(batch, ctx())[0].values[0]
    left = SumFilter().execute(batch[:split], ctx())[0]
    right = SumFilter().execute(batch[split:], ctx())[0]
    tree = SumFilter().execute([left, right], ctx())[0].values[0]
    assert tree == flat == sum(values)


@settings(max_examples=100, deadline=None)
@given(leaf_values_and_split())
def test_property_minmax_tree_equals_flat(case):
    values, split = case
    batch = pkts("%d", *[(v,) for v in values])
    for F, expect in ((MinFilter, min), (MaxFilter, max)):
        flat = F().execute(batch, ctx())[0].values[0]
        left = F().execute(batch[:split], ctx())[0]
        right = F().execute(batch[split:], ctx())[0]
        tree = F().execute([left, right], ctx())[0].values[0]
        assert tree == flat == expect(values)


@settings(max_examples=100, deadline=None)
@given(leaf_values_and_split())
def test_property_avg_tree_equals_flat(case):
    """The carried-count trick makes avg exact on any split."""
    values, split = case
    batch = pkts("%f", *[(float(v),) for v in values])
    flat = AverageFilter().execute(batch, ctx(is_root=True))[0].values[0]
    left = AverageFilter().execute(batch[:split], ctx())[0]
    right = AverageFilter().execute(batch[split:], ctx())[0]
    tree = AverageFilter().execute([left, right], ctx(is_root=True))[0].values[0]
    assert tree == pytest.approx(flat) == pytest.approx(np.mean(values))


@settings(max_examples=100, deadline=None)
@given(leaf_values_and_split())
def test_property_concat_tree_equals_flat(case):
    values, split = case
    batch = pkts("%d", *[(v,) for v in values])
    flat = ConcatFilter().execute(batch, ctx())[0].values[0]
    left = ConcatFilter().execute(batch[:split], ctx())[0]
    right = ConcatFilter().execute(batch[split:], ctx())[0]
    tree = ConcatFilter().execute([left, right], ctx())[0].values[0]
    assert np.array_equal(np.sort(tree), np.sort(flat))
