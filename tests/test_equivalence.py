"""Tests for the equivalence-class filter (Figure 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.errors import FilterError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.filters_ext.equivalence import (
    EQUIVALENCE_FMT,
    EquivalenceClassFilter,
    EquivalenceClasses,
    classify,
)

TAG = FIRST_APPLICATION_TAG


class TestEquivalenceClasses:
    def test_add_and_counts(self):
        ec = EquivalenceClasses()
        ec.add("a", "h1")
        ec.add("a", "h2")
        ec.add("b", "h3", count=5)
        assert ec.counts == {"a": 2, "b": 5}
        assert ec.n_classes == 2
        assert ec.total_count == 7

    def test_merge_respects_member_cap(self):
        a = EquivalenceClasses()
        b = EquivalenceClasses()
        for i in range(5):
            a.add("k", f"a{i}")
            b.add("k", f"b{i}")
        a.merge(b, member_cap=6)
        assert a.counts["k"] == 10  # counts exact
        assert len(a.members["k"]) == 6  # members capped

    def test_payload_roundtrip(self):
        ec = classify({"h1": "x", "h2": "x", "h3": "y"})
        ec2 = EquivalenceClasses.from_payload(*ec.to_payload())
        assert ec2.counts == ec.counts
        assert {k: sorted(v) for k, v in ec2.members.items()} == {
            k: sorted(v) for k, v in ec.members.items()
        }

    def test_classify_with_key_fn(self):
        ec = classify({"h1": 12, "h2": 17, "h3": 23}, key_fn=lambda v: str(v // 10))
        assert ec.counts == {"1": 2, "2": 1}


class TestFilter:
    def _pkt(self, ec):
        return Packet(1, TAG, EQUIVALENCE_FMT, ec.to_payload())

    def test_merges_batches(self):
        f = EquivalenceClassFilter()
        a = classify({"h1": "t1", "h2": "t1"})
        b = classify({"h3": "t2"})
        (out,) = f.execute([self._pkt(a), self._pkt(b)], FilterContext(n_children=2))
        merged = EquivalenceClasses.from_payload(*out.values)
        assert merged.counts == {"t1": 2, "t2": 1}

    def test_rejects_wrong_format(self):
        f = EquivalenceClassFilter()
        bad = Packet(1, TAG, "%d", (1,))
        with pytest.raises(FilterError):
            f.execute([bad], FilterContext())

    def test_negative_cap_rejected(self):
        with pytest.raises(FilterError):
            EquivalenceClassFilter(max_members_per_class=-1)

    def test_end_to_end_suppression(self):
        """27 daemons with 3 distinct configurations -> 3 classes."""
        topo = balanced_topology(3, 3)
        with Network(topo) as net:
            s = net.new_stream(transform="equivalence", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                ec = classify({f"host{be.rank}": f"config-{be.rank % 3}"})
                be.send(s.stream_id, TAG, EQUIVALENCE_FMT, *ec.to_payload())

            net.run_backends(leaf)
            pkt = s.recv(timeout=20)
            merged = EquivalenceClasses.from_payload(*pkt.values)
            assert merged.n_classes == 3
            assert merged.total_count == 27
            assert net.node_errors() == {}


# -- property: keyed-union merge is associative and commutative ------------------

classes_strategy = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=1, max_value=50),
    max_size=4,
)


def _mk(counts, tag):
    ec = EquivalenceClasses()
    for k, n in counts.items():
        ec.add(k, f"{tag}-{k}", count=n)
    return ec


@settings(max_examples=100, deadline=None)
@given(classes_strategy, classes_strategy, classes_strategy)
def test_property_merge_associative_counts(c1, c2, c3):
    cap = 64
    left = _mk(c1, "x")
    left.merge(_mk(c2, "y"), cap)
    left.merge(_mk(c3, "z"), cap)

    right_inner = _mk(c2, "y")
    right_inner.merge(_mk(c3, "z"), cap)
    right = _mk(c1, "x")
    right.merge(right_inner, cap)

    assert left.counts == right.counts
    expected = {}
    for c in (c1, c2, c3):
        for k, n in c.items():
            expected[k] = expected.get(k, 0) + n
    assert left.counts == expected
