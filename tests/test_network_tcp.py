"""End-to-end tests over the real-TCP transport (localhost sockets).

The same middleware semantics as the thread transport, but every packet
crosses a genuine TCP connection with length-prefixed frames and full
serialization — exercising the wire format, the counted-reference
serialize-once path, and the socket lifecycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology, flat_topology
from repro.core.packet import GLOBAL_PACKET_STATS
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


@pytest.fixture
def tcp_net():
    net = Network(balanced_topology(2, 2), transport="tcp")
    yield net
    net.shutdown()
    assert net.node_errors() == {}


class TestTCPReduction:
    def test_sum(self, tcp_net):
        s = tcp_net.new_stream(transform="sum", sync="wait_for_all")
        send_from_all(tcp_net, s, TAG, "%d", lambda r: r * r)
        expected = sum(r * r for r in tcp_net.topology.backends)
        assert s.recv(timeout=15).values[0] == expected

    def test_arrays_cross_the_wire(self, tcp_net):
        s = tcp_net.new_stream(transform="concat", sync="wait_for_all")
        send_from_all(
            tcp_net, s, TAG, "%am", lambda r: np.full((2, 2), float(r))
        )
        out = s.recv(timeout=15).values[0]
        assert out.shape == (8, 2)

    def test_multiple_waves(self, tcp_net):
        s = tcp_net.new_stream(transform="max", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            for wave in range(5):
                be.send(s.stream_id, TAG, "%d", wave * 10 + be.rank)

        tcp_net.run_backends(leaf)
        maxima = [s.recv(timeout=15).values[0] for _ in range(5)]
        top = max(tcp_net.topology.backends)
        assert maxima == [top, 10 + top, 20 + top, 30 + top, 40 + top]

    def test_close_handshake_over_tcp(self, tcp_net):
        s = tcp_net.new_stream(transform="sum", sync="wait_for_all")
        send_from_all(tcp_net, s, TAG, "%d", lambda r: 1)
        assert s.recv(timeout=15).values[0] == tcp_net.topology.n_backends
        s.close(timeout=15)
        assert s.is_closed

    def test_downstream_multicast_shares_serialization(self, tcp_net):
        """A multicast to k children must pack its payload exactly once."""
        s = tcp_net.new_stream(transform="sum", sync="wait_for_all")
        for be in tcp_net.backends:
            be.wait_for_stream(s.stream_id)
        GLOBAL_PACKET_STATS.reset()
        seen = {}

        def leaf(be):
            seen[be.rank] = be.recv(timeout=15, stream_id=s.stream_id).values[0]

        threads = tcp_net.run_backends(leaf, join=False)
        s.send(TAG, "%af", np.arange(1000, dtype=np.float64))
        for t in threads:
            t.join(15)
        assert len(seen) == 4
        # One payload: serialized once at the root fan-out, once per
        # internal fan-out (new frame) — but never once per receiver.
        # Root (k=2) + 2 internals (k=2 each): 3 serializations max for
        # 4 deliveries + control traffic packed separately.
        assert GLOBAL_PACKET_STATS.serializations <= 3
        assert GLOBAL_PACKET_STATS.max_refcount >= 2


class TestTCPTopologies:
    @pytest.mark.parametrize("n", [2, 7])
    def test_flat(self, n):
        with Network(flat_topology(n), transport="tcp") as net:
            s = net.new_stream(transform="count", sync="wait_for_all")
            send_from_all(net, s, TAG, "%ud", lambda r: 1)
            assert s.recv(timeout=15).values[0] == n
            assert net.node_errors() == {}

    def test_depth3(self):
        with Network(balanced_topology(2, 3), transport="tcp") as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            send_from_all(net, s, TAG, "%d", lambda r: 1)
            assert s.recv(timeout=20).values[0] == 8
            assert net.node_errors() == {}


class TestThreadTCPParity:
    def test_same_results_both_transports(self):
        """The two transports are interchangeable implementations."""
        results = {}
        for transport in ("thread", "tcp"):
            with Network(balanced_topology(2, 2), transport=transport) as net:
                s = net.new_stream(transform="concat", sync="wait_for_all")
                send_from_all(net, s, TAG, "%d", lambda r: r)
                results[transport] = sorted(s.recv(timeout=15).values[0].tolist())
        assert results["thread"] == results["tcp"]
