"""Tests for time-aligned aggregation (stateful filter)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.errors import FilterError
from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.filters_ext.time_align import (
    TIME_ALIGN_IN_FMT,
    TIME_ALIGN_OUT_FMT,
    TimeAlignedAggregator,
)

TAG = FIRST_APPLICATION_TAG


def sample(ts, vals, src):
    return Packet(1, TAG, TIME_ALIGN_IN_FMT, (ts, np.asarray(vals, float)), src=src)


class TestBinning:
    def test_requires_bin_width(self):
        with pytest.raises(FilterError):
            TimeAlignedAggregator()
        with pytest.raises(FilterError):
            TimeAlignedAggregator(bin_width=0)
        with pytest.raises(FilterError):
            TimeAlignedAggregator(bin_width=1.0, op="median")

    def test_bin_held_until_watermarks_pass(self):
        f = TimeAlignedAggregator(bin_width=1.0)
        ctx = FilterContext(n_children=2)
        # Child 10 reports in bin 0; nothing released (child 11 unseen).
        assert f.execute([sample(0.5, [1.0], 10)], ctx) == []
        # Child 11 reports in bin 0; bin 0 not complete (watermark 0.6 < 1.0).
        assert f.execute([sample(0.6, [2.0], 11)], ctx) == []
        # Child 10 moves past bin 0...
        assert f.execute([sample(1.2, [5.0], 10)], ctx) == []
        # ...and once child 11 does too, bin 0 releases.
        out = f.execute([sample(1.3, [7.0], 11)], ctx)
        assert len(out) == 1
        ts, total, count = out[0].values
        assert ts == 0.0
        assert total[0] == pytest.approx(3.0)
        assert count == 2
        assert f.pending_bins() == 1  # bin 1 still open

    def test_flush_drains_open_bins(self):
        f = TimeAlignedAggregator(bin_width=1.0)
        ctx = FilterContext(n_children=2)
        f.execute([sample(0.5, [1.0], 10)], ctx)
        out = f.flush(ctx)
        assert len(out) == 1
        assert out[0].values[2] == 1

    def test_mean_finalized_at_root_only(self):
        ctx_mid = FilterContext(n_children=1, is_root=False)
        ctx_root = FilterContext(n_children=1, is_root=True)
        f_mid = TimeAlignedAggregator(bin_width=1.0, op="mean")
        f_root = TimeAlignedAggregator(bin_width=1.0, op="mean")
        f_mid.execute([sample(0.1, [2.0], 10)], ctx_mid)
        f_mid.execute([sample(0.2, [4.0], 10)], ctx_mid)
        (partial,) = f_mid.flush(ctx_mid)
        assert partial.fmt == TIME_ALIGN_OUT_FMT
        assert partial.values[1][0] == pytest.approx(6.0)  # still a sum
        f_root.execute([partial], ctx_root)
        (final,) = f_root.flush(ctx_root)
        assert final.values[1][0] == pytest.approx(3.0)  # mean of 2 samples
        assert final.values[2] == 2

    def test_shape_change_within_bin_rejected(self):
        f = TimeAlignedAggregator(bin_width=1.0)
        ctx = FilterContext(n_children=2)
        f.execute([sample(0.1, [1.0], 10)], ctx)
        with pytest.raises(FilterError):
            f.execute([sample(0.2, [1.0, 2.0], 11)], ctx)

    def test_wrong_format_rejected(self):
        f = TimeAlignedAggregator(bin_width=1.0)
        with pytest.raises(FilterError):
            f.execute([Packet(1, TAG, "%d", (1,))], FilterContext())

    def test_negative_timestamps_bin_correctly(self):
        f = TimeAlignedAggregator(bin_width=1.0)
        ctx = FilterContext(n_children=1)
        f.execute([sample(-0.5, [1.0], 10)], ctx)
        (out,) = f.flush(ctx)
        assert out.values[0] == -1.0  # floor(-0.5) = bin -1


class TestEndToEnd:
    def test_cluster_wide_time_bins(self):
        """Each back-end samples at its own phase; the tree aligns bins."""
        topo = balanced_topology(2, 2)
        with Network(topo) as net:
            s = net.new_stream(
                transform="time_align",
                sync="null",
                transform_params={"bin_width": 10.0},
            )
            order = {r: i for i, r in enumerate(topo.backends)}

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                phase = order[be.rank] * 0.7
                for step in range(3):
                    ts = step * 10.0 + phase
                    be.send(s.stream_id, TAG, TIME_ALIGN_IN_FMT, ts, np.array([1.0]))

            net.run_backends(leaf)
            s.close_async()
            packets = s.drain(timeout=15)
            by_bin = {}
            for p in packets:
                ts, total, count = p.values
                entry = by_bin.setdefault(ts, [0.0, 0])
                entry[0] += total[0]
                entry[1] += int(count)
            assert set(by_bin) == {0.0, 10.0, 20.0}
            for ts, (total, count) in by_bin.items():
                assert count == 4, f"bin {ts}"
                assert total == pytest.approx(4.0)
            assert net.node_errors() == {}
