"""Cross-module invariant property tests (hypothesis).

Invariants that hold regardless of tree shape, arrival order, or data:
conservation (nothing created or lost by aggregation), composition
(per-edge estimates sum along paths), determinism (the simulator is a
pure function of its inputs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import FilterContext
from repro.core.packet import Packet
from repro.core.topology import Topology, deep_topology
from repro.filters_ext.clock_skew import SkewClock, tree_skew_detection
from repro.filters_ext.time_align import TIME_ALIGN_IN_FMT, TimeAlignedAggregator
from repro.simulate.simnet import SimCosts, SimTBON, WaveMessage


@st.composite
def random_tree(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    children: dict[int, list[int]] = {i: [] for i in range(n)}
    for child, parent in enumerate(parents, start=1):
        children[parent].append(child)
    return Topology(children)


# -- time-aligned aggregation conserves mass ------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),     # child link id
            st.floats(min_value=-50, max_value=50),    # timestamp
            st.floats(min_value=-10, max_value=10),    # value
        ),
        min_size=1,
        max_size=40,
    ),
    st.floats(min_value=0.5, max_value=20.0),
)
def test_property_time_align_conserves_sum_and_count(samples, bin_width):
    """Whatever the binning, flushing yields every sample exactly once."""
    f = TimeAlignedAggregator(bin_width=bin_width)
    ctx = FilterContext(n_children=4)
    emitted = []
    for child, ts, value in samples:
        pkt = Packet(1, 100, TIME_ALIGN_IN_FMT, (ts, np.array([value])), src=child)
        emitted.extend(f.execute([pkt], ctx))
    emitted.extend(f.flush(ctx))
    total = sum(p.values[1][0] for p in emitted)
    count = sum(p.values[2] for p in emitted)
    assert count == len(samples)
    assert total == pytest.approx(sum(v for _c, _t, v in samples), abs=1e-9)
    # Bin starts are multiples of the bin width and strictly increasing
    # per emission batch boundaries.
    for p in emitted:
        assert p.values[0] / bin_width == pytest.approx(
            round(p.values[0] / bin_width)
        )


# -- clock skew composes exactly along paths -------------------------------------

@settings(max_examples=40, deadline=None)
@given(random_tree(), st.integers(min_value=0, max_value=2**16))
def test_property_skew_composition_exact_without_jitter(topo, seed):
    rng = np.random.default_rng(seed)
    true = {r: float(rng.uniform(-0.05, 0.05)) for r in topo.ranks}
    true[0] = 0.0
    clocks = {r: SkewClock(offset=true[r]) for r in topo.ranks}
    offsets, _t = tree_skew_detection(topo, clocks, jitter=1e-12, seed=seed)
    for r in topo.ranks:
        assert offsets[r] == pytest.approx(true[r], abs=1e-6)


# -- the simulator is deterministic and conserves contributions ------------------

@settings(max_examples=30, deadline=None)
@given(random_tree())
def test_property_sim_counts_all_leaves_once(topo):
    leaf = lambda rank: (0.001, WaveMessage(nbytes=64.0, meta={rank}))
    merge = lambda rank, msgs: (
        0.0005,
        WaveMessage(nbytes=64.0, meta=set().union(*(m.meta for m in msgs))),
    )
    rep = SimTBON(topo, SimCosts(), leaf, merge).run()
    assert rep.root_result.meta == set(topo.backends)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=4, max_value=200),
    st.integers(min_value=2, max_value=16),
)
def test_property_sim_deterministic(n, fanout):
    topo = deep_topology(n, fanout)
    leaf = lambda rank: (0.01, WaveMessage(nbytes=128.0, meta=1))
    merge = lambda rank, msgs: (
        0.002 * len(msgs),
        WaveMessage(nbytes=128.0, meta=sum(m.meta for m in msgs)),
    )
    a = SimTBON(topo, SimCosts(), leaf, merge).run()
    b = SimTBON(topo, SimCosts(), leaf, merge).run()
    assert a.completion_time == b.completion_time
    assert a.node_busy == b.node_busy
    assert a.root_result.meta == n
