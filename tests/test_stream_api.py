"""Unit tests for the front-end Stream API edge cases."""

from __future__ import annotations

import pytest

from repro import (
    FIRST_APPLICATION_TAG,
    Network,
    StreamClosedError,
    balanced_topology,
)
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


@pytest.fixture
def net():
    network = Network(balanced_topology(2, 2))
    yield network
    network.shutdown()
    assert network.node_errors() == {}


class TestRecvVariants:
    def test_recv_nowait_empty(self, net):
        s = net.new_stream(transform="sum")
        assert s.recv_nowait() is None

    def test_recv_nowait_after_wave(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")
        send_from_all(net, s, TAG, "%d", lambda r: 1)
        # Poll until the aggregate lands.
        import time

        deadline = time.time() + 5
        pkt = None
        while pkt is None and time.time() < deadline:
            pkt = s.recv_nowait()
            time.sleep(0.01)
        assert pkt is not None and pkt.values[0] == 4

    def test_recv_timeout_raises(self, net):
        s = net.new_stream(transform="sum")
        with pytest.raises(TimeoutError):
            s.recv(timeout=0.2)

    def test_drain_collects_all_remaining(self, net):
        s = net.new_stream(transform="passthrough", sync="null")
        send_from_all(net, s, TAG, "%d", lambda r: r)
        s.close_async()
        packets = s.drain(timeout=10)
        assert sorted(p.values[0] for p in packets) == sorted(net.topology.backends)

    def test_context_manager_closes(self, net):
        with net.new_stream(transform="sum") as s:
            pass
        assert s.is_closed


class TestFrontEndDispatch:
    def test_packets_route_to_owning_stream(self, net):
        s1 = net.new_stream(transform="sum", sync="wait_for_all")
        s2 = net.new_stream(transform="max", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s1.stream_id)
            be.wait_for_stream(s2.stream_id)
            be.send(s2.stream_id, TAG, "%d", be.rank)
            be.send(s1.stream_id, TAG, "%d", 1)

        net.run_backends(leaf)
        assert s1.recv(timeout=10).values[0] == 4
        assert s2.recv(timeout=10).values[0] == max(net.topology.backends)

    def test_unregistered_stream_packets_dropped(self, net):
        """Late packets for a closed (unregistered) stream are ignored."""
        s = net.new_stream(transform="sum", sync="wait_for_all")
        s.close(timeout=10)
        net.frontend.unregister(s.stream_id)
        # Dispatch a stray data packet manually: must not raise.
        from repro.core.events import Direction, Envelope
        from repro.core.packet import Packet

        net.frontend.dispatch(
            Envelope(0, Direction.UPSTREAM, Packet(s.stream_id, TAG, "%d", (1,)))
        )

    def test_send_on_closed_stream_rejected(self, net):
        s = net.new_stream(transform="sum")
        s.close(timeout=10)
        with pytest.raises(StreamClosedError):
            s.send(TAG, "%d", 1)

    def test_open_streams_listing(self, net):
        s1 = net.new_stream(transform="sum")
        s2 = net.new_stream(transform="sum")
        assert {x.stream_id for x in net.frontend.open_streams()} >= {
            s1.stream_id,
            s2.stream_id,
        }
        s1.close(timeout=10)
        assert s1.stream_id not in {
            x.stream_id for x in net.frontend.open_streams()
        }


class TestStreamIter:
    def test_iter_yields_until_close(self, net):
        s = net.new_stream(transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            for w in range(3):
                be.send(s.stream_id, TAG, "%d", w)

        net.run_backends(leaf)
        import threading

        got = []

        def consume():
            for pkt in s.iter(timeout=10):
                got.append(pkt.values[0])

        t = threading.Thread(target=consume)
        t.start()
        import time

        deadline = time.time() + 5
        while len(got) < 3 and time.time() < deadline:
            time.sleep(0.02)
        s.close(timeout=10)
        t.join(10)
        assert got[:3] == [0, 4, 8]
