"""Shared fixtures for the test suite.

Importing :mod:`repro.filters_ext` and :mod:`repro.cluster` here makes
every registered filter available to every network test without
per-test imports.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.cluster  # noqa: F401 - registers mean_shift/agglomerative
import repro.filters_ext  # noqa: F401 - registers tool filters
from repro import Network, Topology, balanced_topology, flat_topology


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("chaos", "seeded fault-injection suite")
    group.addoption(
        "--chaos-seeds",
        type=int,
        default=6,
        help="number of seeds the chaos property suite sweeps (1..N)",
    )
    group.addoption(
        "--chaos-seed",
        type=int,
        default=None,
        help="replay exactly one chaos seed (e.g. a failing seed from CI)",
    )


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    """Parametrize any test taking ``chaos_seed`` over the seed sweep.

    ``--chaos-seed N`` pins the sweep to one seed so a CI failure
    reproduces locally with a single flag; otherwise ``--chaos-seeds``
    picks the sweep width (CI soaks with 10, the default tier-1 run
    uses 6).
    """
    if "chaos_seed" in metafunc.fixturenames:
        pinned = metafunc.config.getoption("--chaos-seed")
        if pinned is not None:
            seeds = [pinned]
        else:
            seeds = list(range(1, metafunc.config.getoption("--chaos-seeds") + 1))
        metafunc.parametrize("chaos_seed", seeds)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_topology() -> Topology:
    """Flat tree with 4 back-ends."""
    return flat_topology(4)


@pytest.fixture
def deep2_topology() -> Topology:
    """Balanced 3-ary tree of depth 2 (9 back-ends, 3 internal)."""
    return balanced_topology(3, 2)


@pytest.fixture
def unbalanced_topology() -> Topology:
    r"""Back-ends at different depths; stresses weighting and routing.

    Shape: 0 -> (1, 2); 1 -> (3, 4); 2 -> 5; 4 -> (6, 7).
    Back-ends: 3 and 5 (depth 2), 6 and 7 (depth 3).
    """
    return Topology({0: [1, 2], 1: [3, 4], 2: [5], 4: [6, 7]})


@pytest.fixture
def net(deep2_topology):
    """A live thread-transport network over the depth-2 tree."""
    network = Network(deep2_topology)
    yield network
    network.shutdown()
    assert network.node_errors() == {}


@pytest.fixture
def flat_net(tiny_topology):
    network = Network(tiny_topology)
    yield network
    network.shutdown()
    assert network.node_errors() == {}


def send_from_all(network: Network, stream, tag: int, fmt: str, value_fn):
    """Helper: every back-end sends ``value_fn(rank)`` on ``stream``."""

    def leaf(be):
        be.wait_for_stream(stream.stream_id)
        values = value_fn(be.rank)
        if not isinstance(values, tuple):
            values = (values,)
        be.send(stream.stream_id, tag, fmt, *values)

    network.run_backends(leaf)
