"""Tests for failure injection and tree recovery."""

from __future__ import annotations

import time

import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.core.errors import NodeFailureError, RecoveryError, TopologyError
from repro.reliability import FailureInjector, recover_from_failure
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


@pytest.fixture
def net3x2():
    net = Network(balanced_topology(3, 2))
    yield net
    net.shutdown()


class TestFailureInjection:
    def test_cannot_kill_frontend(self, net3x2):
        inj = FailureInjector(net3x2)
        with pytest.raises(NodeFailureError):
            inj.kill_node(0)

    def test_cannot_kill_backend(self, net3x2):
        inj = FailureInjector(net3x2)
        with pytest.raises(TopologyError):
            inj.kill_node(net3x2.topology.backends[0])

    def test_double_kill_rejected(self, net3x2):
        inj = FailureInjector(net3x2)
        victim = net3x2.topology.internals[0]
        inj.kill_node(victim)
        with pytest.raises(NodeFailureError):
            inj.kill_node(victim)
        assert inj.is_failed(victim)

    def test_killed_node_stops(self, net3x2):
        victim = net3x2.topology.internals[0]
        FailureInjector(net3x2).kill_node(victim)
        assert not net3x2.nodes[victim].running


class TestRecovery:
    def test_liveness_after_recovery(self, net3x2):
        """Open streams keep aggregating across a kill + recover."""
        s = net3x2.new_stream(transform="sum", sync="wait_for_all")
        for be in net3x2.backends:
            be.wait_for_stream(s.stream_id)
        send_from_all(net3x2, s, TAG, "%d", lambda r: 1)
        assert s.recv(timeout=10).values[0] == 9

        victim = net3x2.topology.internals[1]
        FailureInjector(net3x2).kill_node(victim)
        new_topo = recover_from_failure(net3x2, victim)
        assert victim not in new_topo
        time.sleep(0.3)  # let reconfiguration control packets land

        for be in net3x2.backends:
            be.send(s.stream_id, TAG, "%d", 2)
        assert s.recv(timeout=10).values[0] == 18

    def test_partial_wave_releases_after_recovery(self, net3x2):
        """A wave blocked on the dead subtree completes with survivors."""
        s = net3x2.new_stream(transform="sum", sync="wait_for_all")
        for be in net3x2.backends:
            be.wait_for_stream(s.stream_id)
        victim = net3x2.topology.internals[2]
        lost_backends = net3x2.topology.subtree_backends(victim)
        survivors = [r for r in net3x2.topology.backends if r not in lost_backends]

        # Survivors send; the root wave blocks on the victim's subtree.
        for r in survivors:
            net3x2.backend(r).send(s.stream_id, TAG, "%d", 1)
        time.sleep(0.2)

        FailureInjector(net3x2).kill_node(victim)
        recover_from_failure(net3x2, victim)
        time.sleep(0.3)
        # The lost subtree's backends are re-parented onto the root; any
        # contribution held at the dead node is gone (the documented
        # loss window), so the application resends it — wave 1 completes
        # with the survivors' already-queued partial aggregates.
        for r in lost_backends:
            net3x2.backend(r).send(s.stream_id, TAG, "%d", 1)
        # Then a full second wave from everyone.
        for r in net3x2.topology.backends:
            net3x2.backend(r).send(s.stream_id, TAG, "%d", 10)
        wave1 = s.recv(timeout=10).values[0]
        wave2 = s.recv(timeout=10).values[0]
        assert wave1 == 9
        assert wave2 == 90

    def test_close_completes_after_recovery(self, net3x2):
        s = net3x2.new_stream(transform="sum", sync="wait_for_all")
        for be in net3x2.backends:
            be.wait_for_stream(s.stream_id)
        victim = net3x2.topology.internals[0]
        FailureInjector(net3x2).kill_node(victim)
        recover_from_failure(net3x2, victim)
        time.sleep(0.3)
        s.close(timeout=10)
        assert s.is_closed

    def test_recover_unkilled_node_rejected(self, net3x2):
        victim = net3x2.topology.internals[0]
        with pytest.raises(RecoveryError, match="still running"):
            recover_from_failure(net3x2, victim)

    def test_recover_unknown_rank_rejected(self, net3x2):
        with pytest.raises(RecoveryError):
            recover_from_failure(net3x2, 999)

    def test_recovery_requires_rebind_capability(self, net3x2):
        """Socket transports recover now (test_recovery_sockets.py); the
        capability check still guards transports without ``rebind``."""
        import types

        victim = net3x2.topology.internals[0]
        FailureInjector(net3x2).kill_node(victim)
        real = net3x2.transport
        net3x2.transport = types.SimpleNamespace(inbox=real.inbox)
        try:
            with pytest.raises(RecoveryError, match="does not support"):
                recover_from_failure(net3x2, victim)
        finally:
            net3x2.transport = real
        recover_from_failure(net3x2, victim)  # teardown needs a sane tree

    def test_failure_under_active_load(self, net3x2):
        """Kill a node while back-ends are mid-burst; the network stays
        live and post-recovery waves aggregate completely."""
        import threading

        s = net3x2.new_stream(transform="sum", sync="wait_for_all")
        for be in net3x2.backends:
            be.wait_for_stream(s.stream_id)
        victim = net3x2.topology.internals[0]
        stop = threading.Event()

        def burst(be):
            while not stop.is_set():
                try:
                    be.send(s.stream_id, TAG, "%d", 1)
                except Exception:
                    return  # channel to the dying node closed mid-send
                time.sleep(0.005)

        threads = net3x2.run_backends(burst, join=False)
        time.sleep(0.1)
        FailureInjector(net3x2).kill_node(victim)
        recover_from_failure(net3x2, victim)
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(5)
        # Close the disturbed stream (flushes all partial waves), then
        # prove the recovered tree serves a fresh stream perfectly.
        s.close(timeout=10)
        s2 = net3x2.new_stream(transform="sum", sync="wait_for_all")
        for be in net3x2.backends:
            be.wait_for_stream(s2.stream_id)
            be.send(s2.stream_id, TAG, "%d", 5)
        assert s2.recv(timeout=10).values[0] == 45

    def test_crash_during_timeout_wave_releases_partial(self, net3x2):
        """Coverage gap: a crash *during* a ``TimeOut`` synchronization
        wave.  The straggler subtree is lost mid-wave; the blocked wave
        must release with the survivors' partial results once the window
        expires (PR 3's partial-wave semantics under failure)."""
        s = net3x2.new_stream(
            transform="sum", sync="time_out", sync_params={"window": 1.0}
        )
        for be in net3x2.backends:
            be.wait_for_stream(s.stream_id)
        victim = net3x2.topology.internals[1]
        lost = net3x2.topology.subtree_backends(victim)
        survivors = [r for r in net3x2.topology.backends if r not in lost]

        # Survivors contribute; the root's window opens on their first
        # aggregate while the wave still waits on the victim's subtree.
        for r in survivors:
            net3x2.backend(r).send(s.stream_id, TAG, "%d", 1)
        time.sleep(0.2)
        FailureInjector(net3x2).kill_node(victim)
        recover_from_failure(net3x2, victim)

        # The straggler subtree is gone: window expiry releases the
        # partial wave with exactly the survivors' contributions.
        assert s.recv(timeout=10).values[0] == len(survivors)

        # And the re-parented tree serves a full wave afterwards.
        time.sleep(0.3)
        for r in net3x2.topology.backends:
            net3x2.backend(r).send(s.stream_id, TAG, "%d", 2)
        assert s.recv(timeout=10).values[0] == 18

    def test_repeated_failures(self, net3x2):
        """Survive losing every internal node, one at a time."""
        s = net3x2.new_stream(transform="sum", sync="wait_for_all")
        for be in net3x2.backends:
            be.wait_for_stream(s.stream_id)
        inj = FailureInjector(net3x2)
        for victim in list(net3x2.topology.internals):
            inj.kill_node(victim)
            recover_from_failure(net3x2, victim)
            time.sleep(0.3)
        assert net3x2.topology.n_internal == 0  # now a flat tree
        for be in net3x2.backends:
            be.send(s.stream_id, TAG, "%d", 3)
        assert s.recv(timeout=10).values[0] == 27
