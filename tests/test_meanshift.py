"""Unit tests for the mean-shift kernel (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TBONError
from repro.cluster.datagen import ClusterSpec, full_dataset, leaf_dataset, make_clusters
from repro.cluster.meanshift import (
    KERNELS,
    assign_labels,
    collapse_points,
    density_starts,
    mean_shift,
    mean_shift_search,
    merge_peaks,
)


@pytest.fixture
def two_blobs(rng):
    centers = np.array([[100.0, 100.0], [400.0, 400.0]])
    return make_clusters(centers, std=20.0, points_per_cluster=300, rng=rng)


class TestKernels:
    def test_all_kernels_unit_at_zero(self):
        z = np.array([0.0])
        for name, k in KERNELS.items():
            assert k(z)[0] == pytest.approx(1.0), name

    def test_compact_kernels_vanish_outside_window(self):
        u = np.array([1.5])
        for name in ("uniform", "triangular", "quadratic"):
            assert KERNELS[name](u)[0] == 0.0, name

    def test_gaussian_decays(self):
        g = KERNELS["gaussian"](np.array([0.0, 1.0, 2.0]))
        assert g[0] > g[1] > g[2] > 0


class TestSearch:
    def test_converges_to_blob_center(self, two_blobs):
        mode, iters = mean_shift_search(
            two_blobs[:300], start=np.array([120.0, 90.0]), bandwidth=50.0
        )
        assert np.linalg.norm(mode - [100, 100]) < 10
        assert 1 <= iters <= 100

    def test_kernel_choice_still_converges(self, two_blobs):
        for kernel in KERNELS:
            mode, _ = mean_shift_search(
                two_blobs, np.array([110.0, 95.0]), bandwidth=50.0, kernel=kernel
            )
            assert np.linalg.norm(mode - [100, 100]) < 15, kernel

    def test_empty_window_stops(self):
        pts = np.array([[0.0, 0.0]])
        mode, iters = mean_shift_search(
            pts, np.array([1e6, 1e6]), bandwidth=1.0, kernel="uniform"
        )
        assert iters == 1  # empty window: no density info, stop where we are

    def test_unknown_kernel_rejected(self, two_blobs):
        with pytest.raises(TBONError):
            mean_shift_search(two_blobs, np.zeros(2), kernel="wat")

    def test_bad_start_shape_rejected(self, two_blobs):
        with pytest.raises(TBONError):
            mean_shift_search(two_blobs, np.zeros(3))

    def test_weighted_equals_duplicated(self, rng):
        """Weight w at a point == w copies of that point."""
        pts = rng.normal(size=(50, 2)) * 10
        dup = np.concatenate([pts, pts[:10]])
        w = np.ones(50)
        w[:10] = 2.0
        start = np.array([1.0, 1.0])
        m_dup, _ = mean_shift_search(dup, start, bandwidth=30.0)
        m_w, _ = mean_shift_search(pts, start, bandwidth=30.0, weights=w)
        assert np.allclose(m_dup, m_w)


class TestDensityStarts:
    def test_finds_dense_regions(self, two_blobs):
        starts = density_starts(two_blobs, bandwidth=50.0, density_threshold=5)
        assert len(starts) >= 2
        # At least one start near each blob.
        d0 = np.linalg.norm(starts - [100, 100], axis=1).min()
        d1 = np.linalg.norm(starts - [400, 400], axis=1).min()
        assert d0 < 50 and d1 < 50

    def test_threshold_filters_sparse_cells(self):
        pts = np.array([[0.0, 0.0], [1000.0, 1000.0]])
        assert len(density_starts(pts, 50.0, density_threshold=2)) == 0

    def test_empty_input(self):
        assert len(density_starts(np.empty((0, 2)), 50.0)) == 0

    def test_invalid_bandwidth(self, two_blobs):
        with pytest.raises(TBONError):
            density_starts(two_blobs, bandwidth=0.0)

    def test_weights_count_toward_density(self):
        pts = np.array([[10.0, 10.0]])
        assert len(density_starts(pts, 50.0, density_threshold=5)) == 0
        starts = density_starts(
            pts, 50.0, density_threshold=5, weights=np.array([6.0])
        )
        assert len(starts) == 1


class TestCollapse:
    def test_weight_conservation(self, two_blobs):
        reps, w = collapse_points(two_blobs, cell=12.5)
        assert w.sum() == pytest.approx(len(two_blobs))
        assert len(reps) < len(two_blobs)

    def test_idempotent_on_collapsed(self, two_blobs):
        reps, w = collapse_points(two_blobs, cell=12.5)
        reps2, w2 = collapse_points(reps, w, cell=12.5)
        # Representatives land at cell centers of mass; re-collapsing at
        # the same resolution preserves total weight and count scale.
        assert w2.sum() == pytest.approx(w.sum())
        assert len(reps2) <= len(reps)

    def test_single_point(self):
        reps, w = collapse_points(np.array([[3.0, 4.0]]), cell=10.0)
        assert np.allclose(reps, [[3.0, 4.0]])
        assert w.tolist() == [1.0]

    def test_invalid_cell(self, two_blobs):
        with pytest.raises(TBONError):
            collapse_points(two_blobs, cell=0.0)


class TestMergePeaks:
    def test_dedupes_nearby(self):
        peaks = np.array([[0.0, 0.0], [1.0, 1.0], [100.0, 100.0]])
        merged = merge_peaks(peaks, radius=10.0)
        assert len(merged) == 2

    def test_keeps_distant(self):
        peaks = np.array([[0.0, 0.0], [100.0, 100.0]])
        assert len(merge_peaks(peaks, radius=10.0)) == 2

    def test_empty(self):
        assert len(merge_peaks(np.empty((0, 2)), 10.0)) == 0


class TestFullPipeline:
    def test_finds_the_right_modes(self, two_blobs):
        res = mean_shift(two_blobs, bandwidth=50.0, density_threshold=5)
        assert len(res.peaks) == 2
        dists = np.linalg.norm(
            res.peaks[:, None, :] - np.array([[100, 100], [400, 400]])[None], axis=2
        )
        assert dists.min(axis=1).max() < 10

    def test_explicit_starts_skip_scan(self, two_blobs):
        res = mean_shift(two_blobs, starts=np.array([[110.0, 110.0]]))
        assert res.points_scanned == 0
        assert len(res.peaks) == 1

    def test_work_counters_populated(self, two_blobs):
        res = mean_shift(two_blobs)
        assert res.iterations > 0
        assert res.point_iter_products == res.iterations * len(two_blobs)
        assert res.points_scanned == len(two_blobs)

    def test_paper_default_bandwidth_on_synthetic_workload(self):
        """The paper's bandwidth-50 default finds the 4 generated modes."""
        data = full_dataset(2, ClusterSpec(), seed=7)
        res = mean_shift(data)  # bandwidth defaults to 50
        assert len(res.peaks) == 4

    def test_non_2d_rejected(self):
        with pytest.raises(TBONError):
            mean_shift(np.zeros((5, 3)))


class TestAssignLabels:
    def test_nearest_peak(self):
        pts = np.array([[0.0, 0.0], [99.0, 99.0]])
        peaks = np.array([[1.0, 1.0], [100.0, 100.0]])
        assert assign_labels(pts, peaks).tolist() == [0, 1]

    def test_no_peaks(self):
        assert assign_labels(np.zeros((3, 2)), np.empty((0, 2))).tolist() == [-1] * 3


class TestDatagen:
    def test_leaf_determinism(self):
        a = leaf_dataset(3, seed=11)
        b = leaf_dataset(3, seed=11)
        assert np.array_equal(a, b)

    def test_leaves_differ(self):
        assert not np.array_equal(leaf_dataset(0, seed=11), leaf_dataset(1, seed=11))

    def test_full_is_union_of_leaves(self):
        spec = ClusterSpec(points_per_cluster=50)
        full = full_dataset(3, spec, seed=5)
        parts = [leaf_dataset(i, spec, seed=5) for i in range(3)]
        assert np.array_equal(full, np.concatenate(parts))

    def test_spec_validation(self):
        with pytest.raises(TBONError):
            ClusterSpec(points_per_cluster=0)
        with pytest.raises(TBONError):
            ClusterSpec(noise_fraction=1.5)
        with pytest.raises(TBONError):
            ClusterSpec(centers=np.zeros((3, 5)))


# -- property tests ----------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=5.0, max_value=100.0),
)
def test_property_collapse_conserves_weight(n, cell):
    rng = np.random.default_rng(n)
    pts = rng.uniform(0, 500, size=(n, 2))
    w = rng.uniform(0.1, 3.0, size=n)
    reps, rw = collapse_points(pts, w, cell=cell)
    assert rw.sum() == pytest.approx(w.sum())
    assert len(reps) <= n
    # Representatives lie inside the data bounding box.
    assert reps[:, 0].min() >= pts[:, 0].min() - 1e-9
    assert reps[:, 0].max() <= pts[:, 0].max() + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_search_stays_in_hull(seed):
    """A mean-shift centroid is a convex combination of data points."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(40, 2)) * 50
    start = pts.mean(axis=0)
    mode, _ = mean_shift_search(pts, start, bandwidth=60.0)
    assert pts[:, 0].min() - 1e-6 <= mode[0] <= pts[:, 0].max() + 1e-6
    assert pts[:, 1].min() - 1e-6 <= mode[1] <= pts[:, 1].max() + 1e-6
