"""Tests for the Performance-Consultant-style diagnosis tool."""

from __future__ import annotations

import pytest

from repro import Network, balanced_topology
from repro.core.errors import TBONError
from repro.filters_ext.graph_fold import fold_graphs, graph_root
from repro.tools.consultant import (
    HostBehaviour,
    PerformanceConsultant,
    run_search,
)


@pytest.fixture
def net():
    network = Network(balanced_topology(3, 2))
    yield network
    network.shutdown()
    assert network.node_errors() == {}


class TestHostBehaviour:
    def test_profiles_have_expected_dominant_kind(self):
        cpu = HostBehaviour(1, "cpu_solve")
        io = HostBehaviour(2, "io_checkpoint")
        assert cpu.metric("cpu") > 0.7
        assert cpu.metric("io") < 0.2
        assert io.metric("io") > 0.5

    def test_hot_function_carries_the_time(self):
        h = HostBehaviour(3, "cpu_solve")
        assert h.metric("cpu", "solve") > h.metric("cpu", "exchange")

    def test_deterministic_per_rank(self):
        a = HostBehaviour(5, "cpu_solve").metric("cpu", "solve")
        b = HostBehaviour(5, "cpu_solve").metric("cpu", "solve")
        assert a == b

    def test_unknown_profile_rejected(self):
        with pytest.raises(TBONError):
            HostBehaviour(1, "gpu_bound")


class TestSearch:
    def test_search_graph_shape(self):
        payload = run_search(HostBehaviour(1, "cpu_solve"))
        assert payload["kind"] == "tree"
        labels = {label for _nid, label in payload["nodes"]}
        assert "TopLevel" in labels
        assert "cpu_bound" in labels
        assert "cpu_in_solve" in labels
        assert "io_ok" in labels
        assert "io_bound" not in labels

    def test_identical_profiles_fold(self):
        import repro.filters_ext.graph_fold as gf

        g1 = gf._tree_from_payload(run_search(HostBehaviour(1, "cpu_solve")))
        g2 = gf._tree_from_payload(run_search(HostBehaviour(2, "cpu_solve")))
        comp = fold_graphs([g1, g2])
        # Identical structure => identical node count to a single graph.
        assert len(comp) == len(g1) + 1  # + the @root shim


class TestDiagnosis:
    def test_default_job_finds_the_anomaly(self, net):
        pc = PerformanceConsultant(net)
        rep = pc.diagnose()
        assert rep.n_hosts == 9
        assert "cpu_bound > cpu_in_solve" in rep.findings
        majority, _hosts = rep.findings["cpu_bound > cpu_in_solve"]
        assert majority == 8
        anomalies = rep.anomalies()
        assert list(anomalies) == ["io_bound > io_in_checkpoint"]
        n, hosts = anomalies["io_bound > io_in_checkpoint"]
        assert n == 1
        assert hosts == [f"host{net.topology.backends[-1]}"]

    def test_homogeneous_job_no_anomalies(self, net):
        profiles = {r: "cpu_solve" for r in net.topology.backends}
        pc = PerformanceConsultant(net, profile_of=profiles)
        rep = pc.diagnose()
        assert rep.anomalies() == {}
        assert rep.findings["cpu_bound > cpu_in_solve"][0] == 9

    def test_threshold_controls_sensitivity(self, net):
        pc = PerformanceConsultant(net)
        strict = pc.diagnose(threshold=0.95)
        assert strict.findings == {}  # nothing exceeds 95%
