"""Unit tests for the filter registry and dlopen-style dynamic loading."""

from __future__ import annotations

import pytest

from repro.core.errors import FilterLoadError
from repro.core.filter_registry import (
    FilterRegistry,
    default_registry,
    register_sync,
    register_transform,
)
from repro.core.filters import SynchronizationFilter, TransformationFilter


class MyFilter(TransformationFilter):
    def transform(self, packets, ctx):
        return packets[0]


class MySync(SynchronizationFilter):
    def push(self, packet, child, ctx):
        return [[packet]]


class TestRegistration:
    def test_builtins_present(self):
        for name in ("sum", "min", "max", "avg", "count", "concat", "passthrough"):
            assert default_registry.resolve_transform(name)
        for name in ("wait_for_all", "time_out", "null"):
            assert default_registry.resolve_sync(name)

    def test_add_and_make(self):
        reg = FilterRegistry()
        reg.add_transform("mine", MyFilter)
        inst = reg.make_transform("mine", alpha=2)
        assert isinstance(inst, MyFilter)
        assert inst.params == {"alpha": 2}

    def test_duplicate_rejected(self):
        reg = FilterRegistry()
        reg.add_transform("mine", MyFilter)
        with pytest.raises(FilterLoadError):
            reg.add_transform("mine", MyFilter)
        reg.add_transform("mine", MyFilter, replace=True)  # explicit ok

    def test_wrong_base_class_rejected(self):
        reg = FilterRegistry()
        with pytest.raises(FilterLoadError):
            reg.add_transform("bad", MySync)  # type: ignore[arg-type]
        with pytest.raises(FilterLoadError):
            reg.add_sync("bad", MyFilter)  # type: ignore[arg-type]

    def test_decorators(self):
        reg = FilterRegistry()

        @register_transform("deco", reg)
        class Deco(TransformationFilter):
            def transform(self, packets, ctx):
                return None

        @register_sync("deco_sync", reg)
        class DecoSync(SynchronizationFilter):
            def push(self, packet, child, ctx):
                return []

        assert reg.resolve_transform("deco") is Deco
        assert reg.resolve_sync("deco_sync") is DecoSync
        assert Deco.name == "deco"


class TestDynamicLoading:
    """The importlib path — MRNet's dlopen analogue."""

    def test_load_by_module_path(self):
        reg = FilterRegistry()
        cls = reg.resolve_transform(
            "repro.cluster.meanshift_filter:MeanShiftFilter"
        )
        assert cls.__name__ == "MeanShiftFilter"
        # Cached after first load.
        assert (
            reg.resolve_transform("repro.cluster.meanshift_filter:MeanShiftFilter")
            is cls
        )

    def test_load_sync_by_module_path(self):
        reg = FilterRegistry()
        cls = reg.resolve_sync("repro.core.sync_filters:TimeOut")
        assert cls.__name__ == "TimeOut"

    def test_unknown_plain_name(self):
        with pytest.raises(FilterLoadError, match="not registered"):
            FilterRegistry().resolve_transform("no_such_filter")

    def test_missing_module(self):
        with pytest.raises(FilterLoadError, match="cannot import"):
            FilterRegistry().resolve_transform("no.such.module:Thing")

    def test_missing_attribute(self):
        with pytest.raises(FilterLoadError, match="no attribute"):
            FilterRegistry().resolve_transform("repro.core.sync_filters:Nope")

    def test_wrong_type_loaded(self):
        with pytest.raises(FilterLoadError, match="not a TransformationFilter"):
            FilterRegistry().resolve_transform("repro.core.sync_filters:TimeOut")
        with pytest.raises(FilterLoadError, match="not a SynchronizationFilter"):
            FilterRegistry().resolve_sync(
                "repro.cluster.meanshift_filter:MeanShiftFilter"
            )
