"""Tests for the experiment drivers (the bench harness itself).

These assert the *shape acceptance criteria* from DESIGN.md Section 5
using the frozen reference model, so the paper-reproduction claims are
enforced by the test suite, not only printed by benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    run_fig4,
    run_logscale_table,
    run_nodecost_table,
    run_startup_table,
    run_throughput_table,
)
from repro.bench.reporting import SeriesTable, fmt_seconds
from repro.simulate.calibrate import REFERENCE_MODEL

PARSE_COST = 20e-9


class TestSeriesTable:
    def test_render_alignment(self):
        t = SeriesTable("x", ["a", "b"], title="T")
        t.add_row(1, [2.0, 3.0])
        text = t.render()
        assert "T" in text and "x" in text and "2.0" in text

    def test_series_extraction(self):
        t = SeriesTable("x", ["a", "b"])
        t.add_row(1, [10, 20])
        t.add_row(2, [11, 21])
        assert t.series("a") == [10, 11]
        assert t.xs() == [1, 2]

    def test_row_width_checked(self):
        t = SeriesTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1, [1])

    def test_fmt_seconds(self):
        assert fmt_seconds(5e-7) == "0.5 us"
        assert fmt_seconds(0.002) == "2.0 ms"
        assert fmt_seconds(3.5) == "3.50 s"
        assert fmt_seconds(float("nan")) == "-"


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(REFERENCE_MODEL)

    def test_shape_criteria_met(self, result):
        assert result.check_shape() == []

    def test_single_linear(self, result):
        xs = np.array(result.table.xs(), float)
        ratio = np.array(result.single) / xs
        assert ratio.std() / ratio.mean() < 0.01

    def test_flat_bottleneck_window(self, result):
        """Per the paper: flat degrades 'somewhere between a fan-out of
        64 and 128' — growth from 128 on must outpace growth up to 64."""
        xs = result.table.xs()
        flat = dict(zip(xs, result.flat))
        early_slope = (flat[64] - flat[16]) / (64 - 16)
        late_slope = (flat[324] - flat[128]) / (324 - 128)
        assert late_slope > 3 * early_slope

    def test_deep_beats_flat_at_scale(self, result):
        xs = result.table.xs()
        deep = dict(zip(xs, result.deep))
        flat = dict(zip(xs, result.flat))
        assert flat[324] / deep[324] > 10

    def test_deep_growth_proportional_to_fanout(self, result):
        """Paper §3.2: 'beyond 64 leaves ... the run-time is directly
        proportional to the fan-out of the tree.'  The 2-deep tree at
        scale N uses fan-out ~sqrt(N), so deep(324)/deep(64) should
        track sqrt(324/64) = 2.25, not the scale ratio 5.06."""
        xs = result.table.xs()
        deep = dict(zip(xs, result.deep))
        growth = deep[324] / deep[64]
        assert growth < 3.5  # well below the x5 scale ratio
        # ...and through 64 leaves the series is near-constant.
        i64 = xs.index(64)
        assert max(result.deep[: i64 + 1]) < 2 * min(result.deep[: i64 + 1])


class TestStartupTable:
    def test_paper_claims(self):
        t = run_startup_table(parse_cost_per_byte=PARSE_COST)
        row512 = dict(zip(t.xs(), (vals for _x, vals in t.rows)))[512]
        one, tree, speedup = row512
        assert one > 60
        assert tree < 20
        assert 3.0 < speedup < 5.5


class TestThroughputTable:
    def test_knee_between_32_and_64(self):
        t = run_throughput_table(daemon_counts=(16, 32, 48, 512), duration=5.0)
        rows = {x: vals for x, vals in t.rows}
        # flat keeps up at 16-32, saturates by 48, stays saturated.
        assert not rows[32][1]
        assert rows[48][1]
        assert rows[512][1]
        # tree never saturates, even at 512.
        assert not rows[512][3]
        assert rows[512][2] < 0.2


class TestNodeCostTable:
    def test_exact_paper_numbers(self):
        t = run_nodecost_table()
        rows = {x: vals for x, vals in t.rows}
        assert rows[256] == [16, 6.25]
        assert rows[4096][0] == 272
        assert rows[4096][1] == pytest.approx(6.64, abs=0.01)


class TestLogScale:
    def test_flat_linear_tree_logarithmic(self):
        t = run_logscale_table(sizes=(16, 256, 4096))
        rows = {x: vals for x, vals in t.rows}
        # Flat latency grows ~linearly over a 256x size range...
        assert rows[4096][0] / rows[16][0] > 50
        # ...tree latency grows far slower (depth: 1 -> 3).
        assert rows[4096][1] / rows[16][1] < 6
