"""Property-based tests against the live middleware.

Heavier than pure-function property tests (each example spins up a real
threaded network), so example counts stay small; the properties cover
the composition the unit tests cannot: random tree shapes x random
payloads through the full stack.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FIRST_APPLICATION_TAG, Network, Topology

TAG = FIRST_APPLICATION_TAG

_live = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def small_tree(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    children: dict[int, list[int]] = {i: [] for i in range(n)}
    for child, parent in enumerate(parents, start=1):
        children[parent].append(child)
    topo = Topology(children)
    # A network needs at least one back-end that is not the root.
    return topo


@_live
@given(small_tree(), st.lists(st.integers(-1000, 1000), min_size=1, max_size=1))
def test_property_live_sum_matches_expected(topo, salt):
    """Sum over any random tree equals the arithmetic sum."""
    offset = salt[0]
    with Network(topo) as net:
        s = net.new_stream(transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, TAG, "%d", be.rank + offset)

        net.run_backends(leaf)
        total = s.recv(timeout=15).values[0]
        assert total == sum(r + offset for r in topo.backends)
        assert net.node_errors() == {}


@_live
@given(small_tree())
def test_property_live_concat_gathers_exactly_once(topo):
    """Every back-end's contribution appears exactly once at the root."""
    with Network(topo) as net:
        s = net.new_stream(transform="concat", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, TAG, "%d", be.rank)

        net.run_backends(leaf)
        got = sorted(np.atleast_1d(s.recv(timeout=15).values[0]).tolist())
        assert got == sorted(topo.backends)
        assert net.node_errors() == {}


@_live
@given(small_tree(), st.integers(min_value=1, max_value=4))
def test_property_live_avg_exact_on_any_tree(topo, waves):
    """The carried-count avg equals numpy.mean on every shape, per wave."""
    with Network(topo) as net:
        s = net.new_stream(transform="avg", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            for w in range(waves):
                be.send(s.stream_id, TAG, "%f", float(be.rank * (w + 1)))

        net.run_backends(leaf)
        for w in range(waves):
            got = s.recv(timeout=15).values[0]
            expected = float(np.mean([r * (w + 1) for r in topo.backends]))
            assert got == np.float64(expected) or abs(got - expected) < 1e-9
        assert net.node_errors() == {}
