"""Tests for the TBON performance models (phase + streaming)."""

from __future__ import annotations

import pytest

from repro.core.topology import balanced_topology, deep_topology, flat_topology
from repro.simulate.simnet import (
    SimCosts,
    SimStreamingTBON,
    SimTBON,
    WaveMessage,
)


def trivial_leaf(cpu=1.0, nbytes=100.0):
    def leaf_fn(rank):
        return cpu, WaveMessage(nbytes=nbytes, meta=1)

    return leaf_fn


def counting_merge(cpu=0.0, nbytes=100.0):
    def merge_fn(rank, msgs):
        return cpu, WaveMessage(nbytes=nbytes, meta=sum(m.meta for m in msgs))

    return merge_fn


class TestSimTBONPhase:
    def test_root_result_counts_all_leaves(self):
        topo = balanced_topology(3, 2)
        rep = SimTBON(topo, SimCosts(), trivial_leaf(), counting_merge()).run()
        assert rep.root_result.meta == 9

    def test_completion_time_lower_bound(self):
        """Completion >= leaf compute + minimal transit."""
        topo = flat_topology(4)
        costs = SimCosts()
        rep = SimTBON(topo, costs, trivial_leaf(cpu=2.0), counting_merge()).run()
        assert rep.completion_time > 2.0

    def test_parallel_leaves_beat_serial_sum(self):
        """N leaves at 1s each must finish far sooner than N seconds."""
        topo = flat_topology(8)
        rep = SimTBON(topo, SimCosts(), trivial_leaf(cpu=1.0), counting_merge()).run()
        assert rep.completion_time < 2.0

    def test_frontend_serial_ingest_scales_with_fanout(self):
        """Flat root busy time grows linearly with fan-out."""
        costs = SimCosts(per_msg_cpu=1e-3)
        t_small = SimTBON(
            flat_topology(8), costs, trivial_leaf(cpu=0.0), counting_merge()
        ).run()
        t_big = SimTBON(
            flat_topology(64), costs, trivial_leaf(cpu=0.0), counting_merge()
        ).run()
        assert t_big.node_busy[0] > 6 * t_small.node_busy[0]

    def test_deep_tree_distributes_ingest(self):
        costs = SimCosts(per_msg_cpu=1e-3)
        flat = SimTBON(
            flat_topology(64), costs, trivial_leaf(cpu=0.0), counting_merge()
        ).run()
        deep = SimTBON(
            deep_topology(64, 8), costs, trivial_leaf(cpu=0.0), counting_merge()
        ).run()
        assert deep.node_busy[0] < flat.node_busy[0] / 4

    def test_merge_cost_charged_per_node(self):
        topo = balanced_topology(2, 2)
        rep = SimTBON(
            topo, SimCosts(), trivial_leaf(cpu=0.0), counting_merge(cpu=0.5)
        ).run()
        # Three merging nodes (2 internal + root) on the critical path:
        # internal merges run concurrently, root's runs after.
        assert rep.completion_time >= 1.0
        assert rep.completion_time < 1.6

    def test_determinism(self):
        topo = deep_topology(48, 7)
        r1 = SimTBON(topo, SimCosts(), trivial_leaf(), counting_merge()).run()
        r2 = SimTBON(topo, SimCosts(), trivial_leaf(), counting_merge()).run()
        assert r1.completion_time == r2.completion_time
        assert r1.node_busy == r2.node_busy

    def test_busiest_node_is_root_for_flat(self):
        costs = SimCosts(per_msg_cpu=1e-3)
        rep = SimTBON(
            flat_topology(32), costs, trivial_leaf(cpu=0.0), counting_merge()
        ).run()
        rank, _busy = rep.busiest_node()
        assert rank == 0


class TestStreaming:
    def test_unsaturated_small_flat(self):
        s = SimStreamingTBON(
            flat_topology(4),
            SimCosts(),
            report_bytes=512,
            report_interval=0.5,
            duration=5.0,
            aggregate=False,
            frontend_cpu_per_report=1e-3,
        ).run()
        assert not s.saturated
        assert s.delivered_waves > 0

    def test_saturation_under_heavy_analysis(self):
        s = SimStreamingTBON(
            flat_topology(64),
            SimCosts(),
            report_bytes=512,
            report_interval=0.1,
            duration=5.0,
            aggregate=False,
            frontend_cpu_per_report=5e-3,  # 64 * 10/s * 5ms = 3.2x capacity
        ).run()
        assert s.saturated
        assert s.frontend_utilization > 0.99

    def test_aggregation_prevents_saturation(self):
        kwargs = dict(
            report_bytes=512,
            report_interval=0.1,
            duration=5.0,
            frontend_cpu_per_report=5e-3,
        )
        flat = SimStreamingTBON(
            flat_topology(64), SimCosts(), aggregate=False, **kwargs
        ).run()
        tree = SimStreamingTBON(
            deep_topology(64, 8), SimCosts(), aggregate=True, **kwargs
        ).run()
        assert flat.saturated and not tree.saturated
        # The tree front-end consumes one aggregated wave per interval.
        assert tree.frontend_utilization < 0.2

    def test_offered_vs_delivered_accounting(self):
        s = SimStreamingTBON(
            flat_topology(2),
            SimCosts(),
            report_bytes=64,
            report_interval=1.0,
            duration=3.5,
            aggregate=False,
        ).run()
        # Each daemon reports at t=0,1,2,3 -> 8 offered.
        assert s.offered_waves == 8
        assert s.delivered_waves == 8
