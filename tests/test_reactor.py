"""Reactor-transport tests: frame decoding, coalescing, backpressure, trees.

The reactor multiplexes every TCP channel onto one selector thread
(src/repro/transport/reactor.py).  These tests drive the three layers
separately — the :class:`_FrameDecoder` state machine byte by byte, a
single :class:`_ReactorConnection` over a socketpair with the loop
stopped (so queue/drain behaviour is deterministic), and whole live
trees under both ``TBON_TRANSPORT`` modes.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology, flat_topology
from repro.core.errors import ChannelBusyError, ChannelClosedError
from repro.core.events import Direction
from repro.core.packet import Packet
from repro.telemetry.registry import GLOBAL, SIZE_BOUNDS, disable, enable
from repro.transport.base import Inbox
from repro.transport.reactor import Reactor, ReactorTransport, _FrameDecoder, _ReactorConnection
from repro.transport.tcp import _HDR, TCPTransport
from conftest import send_from_all

TAG = FIRST_APPLICATION_TAG


def wire_frame(packet: Packet, direction: Direction = Direction.UPSTREAM, src: int = 3) -> bytes:
    body = packet.to_bytes()
    return _HDR.pack(len(body), direction.wire_code, src) + body


@pytest.fixture
def telemetry():
    enable()
    yield GLOBAL
    disable()


@pytest.fixture
def conn_pair():
    """A _ReactorConnection over a socketpair with the reactor stopped.

    Nothing drains the queue unless the test calls handle_write itself,
    so queue depth and coalescing behaviour are fully deterministic.
    """
    a, b = socket.socketpair()
    inbox = Inbox()
    reactor = Reactor()
    conn = _ReactorConnection(a, inbox, 0, reactor)
    yield conn, b, inbox
    conn.close()
    reactor.stop()
    b.close()


class TestFrameDecoder:
    def test_one_byte_at_a_time(self):
        pkt = Packet(1, TAG, "%d %s", (7, "hello"))
        raw = wire_frame(pkt)
        dec = _FrameDecoder()
        frames = []
        for i in range(len(raw)):
            view = dec.recv_view()
            assert len(view) > 0
            view[0:1] = raw[i : i + 1]
            out = dec.advance(1)
            if out is not None:
                frames.append(out)
                assert i == len(raw) - 1, "frame completed before the last byte"
        assert len(frames) == 1
        dir_code, src, body = frames[0]
        assert dir_code == Direction.UPSTREAM.wire_code
        assert src == 3
        out_pkt = Packet.from_bytes(body)
        assert out_pkt.values == (7, "hello")

    def test_back_to_back_frames_arbitrary_chunks(self):
        pkts = [Packet(1, TAG, "%d", (i,)) for i in range(5)]
        raw = b"".join(wire_frame(p, Direction.DOWNSTREAM, src=i) for i, p in enumerate(pkts))
        decoded = []
        # Prime-sized chunks so frame boundaries never align with reads.
        for chunk_size in (1, 3, 7, 11, len(raw)):
            dec = _FrameDecoder()
            decoded = []
            pos = 0
            while pos < len(raw):
                view = dec.recv_view()
                n = min(len(view), chunk_size, len(raw) - pos)
                view[:n] = raw[pos : pos + n]
                pos += n
                out = dec.advance(n)
                if out is not None:
                    dir_code, src, body = out
                    decoded.append((src, Packet.from_bytes(body).values))
            assert decoded == [(i, (i,)) for i in range(5)], f"chunk={chunk_size}"

    def test_large_frame_grows_buffer(self):
        pkt = Packet(1, TAG, "%s", ("x" * 300_000,))
        raw = wire_frame(pkt)
        dec = _FrameDecoder()
        pos = 0
        out = None
        while pos < len(raw):
            view = dec.recv_view()
            n = min(len(view), 65536, len(raw) - pos)
            view[:n] = raw[pos : pos + n]
            pos += n
            out = dec.advance(n)
        assert out is not None
        assert Packet.from_bytes(out[2]).values == pkt.values

    def test_socketpair_one_byte_at_a_time(self, conn_pair):
        """Satellite requirement: a frame fed byte by byte through a real
        socketpair still decodes exactly once."""
        conn, peer, inbox = conn_pair
        raw = wire_frame(Packet(1, TAG, "%d", (42,)), Direction.DOWNSTREAM, src=-1)
        for i in range(len(raw)):
            # On an AF_UNIX socketpair the byte is readable as soon as
            # sendall returns, so one handle_read per byte is exact.
            peer.sendall(raw[i : i + 1])
            conn.handle_read()
            if i < len(raw) - 1:
                assert inbox.qsize() == 0, f"frame completed early at byte {i}"
        env = inbox.get(timeout=2)
        assert env.packet.values == (42,)
        assert env.direction is Direction.DOWNSTREAM
        assert env.src == -1
        assert inbox.qsize() == 0


class TestWriteCoalescing:
    def test_burst_drains_in_one_sendmsg(self, conn_pair, telemetry):
        """Ten queued frames leave in a single vectored sendmsg."""
        conn, peer, _inbox = conn_pair
        hist = telemetry.histogram("tbon_reactor_frames_per_sendmsg", bounds=SIZE_BOUNDS)
        before = hist.value()
        frames = []
        for i in range(10):
            body = Packet(1, TAG, "%d", (i,)).to_bytes()
            frames.append((len(body), body))
            conn.enqueue(
                _HDR.pack(len(body), Direction.UPSTREAM.wire_code, 0),
                body,
                block=True,
                timeout=5.0,
                high_water=64,
            )
        conn.handle_write()
        after = hist.value()
        assert after["count"] - before["count"] == 1, "expected one coalesced sendmsg"
        assert after["sum"] - before["sum"] == 10
        # Every frame arrived intact on the peer.
        expected = sum(_HDR.size + n for n, _ in frames)
        peer.settimeout(5)
        got = b""
        while len(got) < expected:
            got += peer.recv(65536)
        assert len(got) == expected

    def test_coalesce_max_bounds_vector_size(self, conn_pair, telemetry):
        conn, peer, _inbox = conn_pair
        conn.reactor.coalesce_max = 4
        hist = telemetry.histogram("tbon_reactor_frames_per_sendmsg", bounds=SIZE_BOUNDS)
        before = hist.value()
        body = Packet(1, TAG, "%d", (0,)).to_bytes()
        header = _HDR.pack(len(body), Direction.UPSTREAM.wire_code, 0)
        for _ in range(10):
            conn.enqueue(header, body, block=True, timeout=5.0, high_water=64)
        conn.handle_write()
        after = hist.value()
        assert after["count"] - before["count"] == 3  # 4 + 4 + 2
        assert after["sum"] - before["sum"] == 10

    def test_live_burst_coalesces(self, telemetry):
        """Under a live multicast burst, frames per sendmsg averages > 1."""
        hist = telemetry.histogram("tbon_reactor_frames_per_sendmsg", bounds=SIZE_BOUNDS)
        before = hist.value()
        transport = ReactorTransport()
        topo = flat_topology(8)
        transport.bind(topo)
        try:
            pkt = Packet(1, TAG, "%d", (1,))
            children = list(topo.children(0))
            for _ in range(200):
                transport.multicast(0, children, Direction.DOWNSTREAM, pkt)
            target = 200 * len(children)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if sum(transport.inbox(c).qsize() for c in children) >= target:
                    break
                time.sleep(0.001)
            else:
                pytest.fail("burst not fully delivered")
        finally:
            transport.shutdown()
        after = hist.value()
        sent_frames = after["sum"] - before["sum"]
        sendmsg_calls = after["count"] - before["count"]
        assert sent_frames == 200 * 8
        assert sendmsg_calls < sent_frames, "no coalescing happened under burst"


class TestBackpressure:
    def _fill(self, conn, high_water, nbytes=4096):
        body = bytes(nbytes)
        header = _HDR.pack(len(body), Direction.UPSTREAM.wire_code, 0)
        for _ in range(high_water):
            conn.enqueue(header, body, block=False, timeout=5.0, high_water=high_water)
        return header, body

    def test_nonblocking_full_queue_raises_busy(self, conn_pair):
        conn, _peer, _inbox = conn_pair
        header, body = self._fill(conn, high_water=4)
        with pytest.raises(ChannelBusyError):
            conn.enqueue(header, body, block=False, timeout=5.0, high_water=4)

    def test_blocking_send_stalls_then_drains(self, conn_pair, telemetry):
        conn, peer, _inbox = conn_pair
        stalls = telemetry.counter("tbon_reactor_backpressure_stalls_total")
        depth_gauge = telemetry.gauge("tbon_reactor_send_queue_depth")
        stalls_before = stalls.value()
        header, body = self._fill(conn, high_water=4)
        assert depth_gauge.value() == 4

        done = threading.Event()
        errors: list[Exception] = []

        def blocked_sender():
            try:
                conn.enqueue(header, body, block=True, timeout=20.0, high_water=4)
            except Exception as exc:  # surfaced via the errors list
                errors.append(exc)
            done.set()

        t = threading.Thread(target=blocked_sender, daemon=True)
        t.start()
        time.sleep(0.1)
        assert not done.is_set(), "sender should stall at the high-water mark"
        assert stalls.value() - stalls_before == 1

        # Drain: the test plays the reactor role, flushing the queue while
        # emptying the peer's side so the kernel buffer never wedges.
        peer.setblocking(False)
        deadline = time.monotonic() + 10
        while not done.is_set() and time.monotonic() < deadline:
            conn.handle_write()
            try:
                peer.recv(1 << 20)
            except BlockingIOError:
                pass
            time.sleep(0.001)
        t.join(5)
        assert done.is_set() and not errors, f"blocked sender never drained: {errors}"

    def test_close_releases_blocked_sender(self, conn_pair):
        conn, _peer, _inbox = conn_pair
        header, body = self._fill(conn, high_water=2)
        caught: list[Exception] = []

        def blocked_sender():
            try:
                conn.enqueue(header, body, block=True, timeout=20.0, high_water=2)
            except Exception as exc:  # surfaced via the caught list
                caught.append(exc)

        t = threading.Thread(target=blocked_sender, daemon=True)
        t.start()
        time.sleep(0.05)
        conn.close()
        t.join(5)
        assert len(caught) == 1
        assert isinstance(caught[0], ChannelClosedError)

    def test_transport_surfaces_policy(self):
        transport = ReactorTransport(max_queue_frames=16, block_on_full=False)
        policy = transport.backpressure_policy()
        assert policy == {"send_queue_limit": 16, "blocking_sends": False}
        # The threaded transport advertises unbounded buffering.
        assert TCPTransport().backpressure_policy() == {
            "send_queue_limit": None,
            "blocking_sends": True,
        }

    def test_slow_child_stalls_visible_in_snapshot(self, telemetry):
        """Acceptance: a slow child makes the depth gauge and stall counter
        observable through the same GLOBAL registry `repro.cli stats` prints."""
        stalls = telemetry.counter("tbon_reactor_backpressure_stalls_total")
        stalls_before = stalls.value()
        transport = ReactorTransport(max_queue_frames=4, send_block_timeout=60.0)
        topo = flat_topology(2)
        transport.bind(topo)
        try:
            # 64 KiB frames into a 4-frame queue: the producer outruns the
            # reactor's drain pace immediately and must stall at least once.
            pkt = Packet(1, TAG, "%s", ("x" * 65536,))
            children = list(topo.children(0))
            for _ in range(100):
                transport.multicast(0, children, Direction.DOWNSTREAM, pkt)
        finally:
            transport.shutdown()
        assert stalls.value() - stalls_before > 0
        snap = GLOBAL.snapshot()
        assert "tbon_reactor_send_queue_depth" in snap["gauges"]
        assert "tbon_reactor_backpressure_stalls_total" in snap["counters"]


@pytest.mark.parametrize("mode", ["reactor", "threads"])
class TestLiveTreeBothModes:
    """Satellite requirement: the tier-1 live-tree path under both
    TBON_TRANSPORT modes."""

    def test_env_selects_implementation_and_sum_reduces(self, mode, monkeypatch):
        monkeypatch.setenv("TBON_TRANSPORT", mode)
        with Network(balanced_topology(2, 2), transport="tcp") as net:
            expected_cls = ReactorTransport if mode == "reactor" else TCPTransport
            assert isinstance(net.transport, expected_cls)
            s = net.new_stream(transform="sum", sync="wait_for_all")
            send_from_all(net, s, TAG, "%d", lambda r: r * r)
            expected = sum(r * r for r in net.topology.backends)
            assert s.recv(timeout=15).values[0] == expected
            assert net.node_errors() == {}

    def test_multi_wave_fifo(self, mode, monkeypatch):
        monkeypatch.setenv("TBON_TRANSPORT", mode)
        with Network(flat_topology(4), transport="tcp") as net:
            s = net.new_stream(transform="concat", sync="wait_for_all")

            def leaf(be):
                be.wait_for_stream(s.stream_id)
                for wave in range(10):
                    be.send(s.stream_id, TAG, "%d", wave)

            net.run_backends(leaf)
            for wave in range(10):
                got = np.asarray(s.recv(timeout=15).values).ravel()
                assert got.size == 4 and (got == wave).all(), (
                    f"wave {wave} out of order: {got}"
                )
            assert net.node_errors() == {}


class TestReactorThreadCount:
    def test_io_threads_are_o1(self):
        """Acceptance: reactor I/O threads <= 2 regardless of fanout, where
        the threaded transport needs O(fanout) readers."""
        fanout = 16
        with Network(flat_topology(fanout), transport="reactor") as net:
            s = net.new_stream(transform="sum", sync="wait_for_all")
            send_from_all(net, s, TAG, "%d", lambda r: 1)
            assert s.recv(timeout=15).values[0] == fanout
            reactor_io = [
                t for t in threading.enumerate() if t.name.startswith("tbon-reactor")
            ]
            assert 1 <= len(reactor_io) <= 2
            threaded_readers = [
                t for t in threading.enumerate() if t.name.startswith("tbon-tcp-read")
            ]
            assert not threaded_readers
            assert net.node_errors() == {}

    def test_explicit_kind_bypasses_env(self, monkeypatch):
        monkeypatch.setenv("TBON_TRANSPORT", "threads")
        with Network(flat_topology(2), transport="reactor") as net:
            assert isinstance(net.transport, ReactorTransport)
        monkeypatch.setenv("TBON_TRANSPORT", "reactor")
        with Network(flat_topology(2), transport="tcp-threads") as net:
            assert isinstance(net.transport, TCPTransport)

    def test_unknown_env_value_rejected(self, monkeypatch):
        from repro.core.errors import TransportError

        monkeypatch.setenv("TBON_TRANSPORT", "carrier-pigeon")
        with pytest.raises(TransportError):
            Network(flat_topology(2), transport="tcp")
