"""Equivalence-class filter computation (Figure 2 of the paper).

The paper's central generalization claim: algorithms whose output
"describes relationships amongst the elements in the datasets" reduce to
an *equivalence class filter computation* — "the inputs are elements to
classify (or summarize), the computation is the application of data
model or statistics to classify the data into the classes they
represent, and the output is the classified data (or summary of the
classified data)".

MRNet used exactly this in Paradyn "to suppress redundant information
communicated by the daemons" at startup: hundreds of daemons report
near-identical tables (shared libraries, function lists); classifying
by content collapses them to a handful of classes, each annotated with
its member set.

Packets carry ``"%as %ad %as"``: class keys, member counts, and
member-rank strings (comma-joined, capped at ``max_members_per_class``
representatives so payloads stay bounded).  Merging is a keyed union —
associative and commutative, hence exact on any tree shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.errors import FilterError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet

__all__ = [
    "EquivalenceClasses",
    "EquivalenceClassFilter",
    "EQUIVALENCE_FMT",
    "classify",
]

#: Packet format: class keys, member counts, representative member lists.
EQUIVALENCE_FMT = "%as %ad %as"


@dataclass
class EquivalenceClasses:
    """A set of keyed classes with counts and representative members."""

    counts: dict[str, int] = field(default_factory=dict)
    members: dict[str, list[str]] = field(default_factory=dict)

    def add(self, key: str, member: str, count: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + count
        self.members.setdefault(key, []).append(member)

    def merge(self, other: "EquivalenceClasses", member_cap: int) -> None:
        for key, n in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + n
            mine = self.members.setdefault(key, [])
            room = member_cap - len(mine)
            if room > 0:
                mine.extend(other.members.get(key, [])[:room])

    @property
    def n_classes(self) -> int:
        return len(self.counts)

    @property
    def total_count(self) -> int:
        return sum(self.counts.values())

    # -- packet payload conversion ----------------------------------------
    def to_payload(self) -> tuple[list[str], list[int], list[str]]:
        keys = sorted(self.counts)
        return (
            keys,
            [self.counts[k] for k in keys],
            [",".join(self.members.get(k, [])) for k in keys],
        )

    @classmethod
    def from_payload(
        cls, keys: Sequence[str], counts: Sequence, member_strs: Sequence[str]
    ) -> "EquivalenceClasses":
        ec = cls()
        for k, n, ms in zip(keys, counts, member_strs):
            ec.counts[k] = int(n)
            ec.members[k] = [m for m in ms.split(",") if m]
        return ec


def classify(
    items: Mapping[str, object] | Iterable[tuple[str, object]],
    key_fn=lambda v: str(v),
) -> EquivalenceClasses:
    """Classify ``member -> value`` items by ``key_fn(value)``.

    The leaf-side step of Figure 2: apply the data model (here a key
    function) to map elements onto the classes they represent.
    """
    ec = EquivalenceClasses()
    pairs = items.items() if isinstance(items, Mapping) else items
    for member, value in pairs:
        ec.add(key_fn(value), str(member))
    return ec


@register_transform("equivalence")
class EquivalenceClassFilter(TransformationFilter):
    """Keyed union of children's equivalence classes.

    Parameters:
        max_members_per_class: representative-member cap per class
            (default 16); counts stay exact regardless.
    """

    def __init__(self, **params):
        super().__init__(**params)
        self.member_cap = int(params.get("max_members_per_class", 16))
        if self.member_cap < 0:
            raise FilterError("max_members_per_class must be >= 0")
        self.waves = 0

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        merged = EquivalenceClasses()
        for p in packets:
            if p.fmt != EQUIVALENCE_FMT:
                raise FilterError(
                    f"equivalence filter expects {EQUIVALENCE_FMT!r}, got {p.fmt!r}"
                )
            ec = EquivalenceClasses.from_payload(*p.values)
            merged.merge(ec, self.member_cap)
        self.waves += 1
        keys, counts, members = merged.to_payload()
        return packets[0].with_values([keys, counts, members])
