"""Tree-based clock-skew detection (the Paradyn startup filter).

Section 2.2: "MRNet filters were used to implement an efficient
tree-based clock-skew detection algorithm" — part of what cut Paradyn's
512-daemon startup from over a minute to under 20 seconds.

The tree-based idea: instead of the front-end running a round-trip
handshake with all N daemons (serial at the front-end, O(N)), every
tree node estimates the offset of each of its *children* concurrently
(O(fan-out) per node, O(log N) levels), and offsets compose along the
root-to-leaf path: ``offset(root, leaf) = Σ offset(parent, child)``.

Two layers here:

* the *algorithm*: :func:`estimate_edge_offset` (midpoint round-trip
  estimator over simulated clocks) and :func:`tree_skew_detection`
  (per-edge estimation + path composition);
* the *filter*: :class:`ClockSkewFilter` — children report
  ``(rank, offset-to-parent)`` lists; each node adds its own
  offset-to-parent to every entry and concatenates, so the front-end
  receives each back-end's total offset relative to the root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import FilterError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet
from ..core.topology import Topology

__all__ = [
    "SkewClock",
    "estimate_edge_offset",
    "tree_skew_detection",
    "serial_skew_detection",
    "ClockSkewFilter",
    "CLOCK_SKEW_FMT",
]

#: Packet format: back-end ranks, cumulative offsets (seconds).
CLOCK_SKEW_FMT = "%ad %af"


@dataclass
class SkewClock:
    """A host clock with fixed offset and drift relative to true time.

    ``read(t)`` returns the local reading at true time ``t``.
    """

    offset: float = 0.0
    drift: float = 0.0  # seconds of drift per true second

    def read(self, true_time: float) -> float:
        return true_time + self.offset + self.drift * true_time


def estimate_edge_offset(
    parent: SkewClock,
    child: SkewClock,
    *,
    link_delay: float = 100e-6,
    jitter: float = 20e-6,
    n_samples: int = 8,
    rng: np.random.Generator | None = None,
    start_time: float = 0.0,
) -> float:
    """Round-trip (Cristian-style) estimate of ``child - parent`` offset.

    The parent timestamps a probe at t1, the child stamps receipt t2,
    the parent stamps the reply at t3; the midpoint estimator
    ``t2 - (t1 + t3)/2`` is exact for symmetric delays, and taking the
    sample with the smallest round trip suppresses jitter — the
    standard practice this filter family relies on.
    """
    rng = rng or np.random.default_rng(0)
    best_rtt = np.inf
    best_est = 0.0
    t = start_time
    for _ in range(n_samples):
        d1 = link_delay + float(rng.exponential(jitter))
        d2 = link_delay + float(rng.exponential(jitter))
        t1 = parent.read(t)
        t2 = child.read(t + d1)
        t3 = parent.read(t + d1 + d2)
        rtt = t3 - t1
        if rtt < best_rtt:
            best_rtt = rtt
            best_est = t2 - (t1 + t3) / 2.0
        t += d1 + d2 + 1e-4
    return best_est


def tree_skew_detection(
    topology: Topology,
    clocks: dict[int, SkewClock],
    *,
    link_delay: float = 100e-6,
    jitter: float = 20e-6,
    n_samples: int = 8,
    seed: int = 0,
) -> tuple[dict[int, float], float]:
    """Estimate every node's offset to the root; returns (offsets, time).

    The returned virtual duration models the tree algorithm's critical
    path: each node probes its children *in sequence* (one CPU) but all
    nodes of a level work *concurrently*, so the wall time is the sum
    over the deepest path of ``fanout × probe_cost`` — O(fan-out ×
    depth), versus O(N) for the serial one-to-many version
    (:func:`serial_skew_detection`).
    """
    rng = np.random.default_rng(seed)
    probe_cost = 2 * (link_delay + jitter) * n_samples
    edge_offset: dict[int, float] = {}
    for parent, child in topology.iter_edges():
        edge_offset[child] = estimate_edge_offset(
            clocks[parent],
            clocks[child],
            link_delay=link_delay,
            jitter=jitter,
            n_samples=n_samples,
            rng=rng,
        )
    offsets = {topology.root: 0.0}
    for rank in topology.ranks[1:]:
        offsets[rank] = offsets[topology.parent(rank)] + edge_offset[rank]
    # Critical path: every node probes its own children in sequence, but
    # distinct nodes probe concurrently, so the wall time for a leaf is
    # the sum of (fan-out × probe cost) over its proper ancestors.
    worst = 0.0
    for leaf in topology.backends:
        path_cost = sum(
            topology.fanout(a) * probe_cost for a in topology.ancestors(leaf)
        )
        worst = max(worst, path_cost)
    return offsets, worst


def serial_skew_detection(
    topology: Topology,
    clocks: dict[int, SkewClock],
    *,
    link_delay: float = 100e-6,
    jitter: float = 20e-6,
    n_samples: int = 8,
    seed: int = 0,
) -> tuple[dict[int, float], float]:
    """One-to-many baseline: the root probes every back-end serially.

    Returns (offsets, time); the time is O(N × probe cost) because the
    front-end is the only prober.
    """
    rng = np.random.default_rng(seed)
    probe_cost = 2 * (link_delay + jitter) * n_samples
    offsets = {topology.root: 0.0}
    for be in topology.backends:
        offsets[be] = estimate_edge_offset(
            clocks[topology.root],
            clocks[be],
            link_delay=link_delay,
            jitter=jitter,
            n_samples=n_samples,
            rng=rng,
        )
    return offsets, probe_cost * topology.n_backends


@register_transform("clock_skew")
class ClockSkewFilter(TransformationFilter):
    """Compose per-edge offsets up the tree.

    Children (or child subtrees) report ``(ranks, offsets-to-sender's-
    parent)``; this node adds its *own* edge offset (parameter
    ``edge_offsets``: mapping of child rank → measured offset, supplied
    per node via stream params keyed by node rank) and concatenates.

    In a deployment the per-edge offsets come from live probes; tests
    inject them through ``params["edge_offsets"]`` as
    ``{node_rank: {child_rank: offset}}``.
    """

    def __init__(self, **params):
        super().__init__(**params)
        self.edge_offsets: dict = params.get("edge_offsets", {})

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        my_edges = self.edge_offsets.get(ctx.node_rank, {})
        ranks: list[int] = []
        offs: list[float] = []
        for p in packets:
            if p.fmt != CLOCK_SKEW_FMT:
                raise FilterError(
                    f"clock_skew filter expects {CLOCK_SKEW_FMT!r}, got {p.fmt!r}"
                )
            p_ranks, p_offs = p.values
            # Which child link did this come from?  The sender's rank for
            # a back-end, else the subtree root that forwarded it.
            sender = int(p.src) if p.src >= 0 else None
            edge = 0.0
            if sender is not None:
                edge = float(my_edges.get(sender, 0.0))
            for r, o in zip(p_ranks, p_offs):
                ranks.append(int(r))
                offs.append(float(o) + edge)
        # Stamp this node as the source so the parent can look up *its*
        # edge offset for this child link.
        return Packet(
            packets[0].stream_id,
            packets[0].tag,
            CLOCK_SKEW_FMT,
            [np.asarray(ranks, dtype=np.int64), np.asarray(offs)],
            src=ctx.node_rank,
        )
