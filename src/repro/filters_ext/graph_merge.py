"""Generic graph-merging filter ("graph merging algorithms" — Section 1).

Unions arbitrary directed graphs up the tree: node sets and edge sets
union; numeric node/edge attributes accumulate (sum); set-valued
attributes union.  Unlike :mod:`repro.filters_ext.graph_fold` (which
collapses *similar* structure), this merge preserves every distinct
node — think call-graphs from many hosts union-ed into the program's
global call-graph, with per-edge call counts summed.

Union with attribute summation is associative and commutative, so the
reduction is exact on any tree shape.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..core.errors import FilterError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet

__all__ = ["merge_graphs", "graph_to_payload", "graph_from_payload", "GraphMergeFilter"]


def _merge_attrs(dst: dict, src: dict) -> None:
    for k, v in src.items():
        if k not in dst:
            dst[k] = set(v) if isinstance(v, (set, frozenset)) else v
        elif isinstance(v, (int, float)) and isinstance(dst[k], (int, float)):
            dst[k] = dst[k] + v
        elif isinstance(v, (set, frozenset)):
            dst[k] = set(dst[k]) | set(v)
        # Non-numeric, non-set conflicts keep the first value (stable).


def merge_graphs(graphs: Sequence[nx.DiGraph]) -> nx.DiGraph:
    """Union graphs, summing numeric and union-ing set attributes."""
    if not graphs:
        raise FilterError("merge_graphs needs at least one graph")
    out = nx.DiGraph()
    for g in graphs:
        for n, data in g.nodes(data=True):
            if n not in out:
                out.add_node(n)
            _merge_attrs(out.nodes[n], data)
        for u, v, data in g.edges(data=True):
            if not out.has_edge(u, v):
                out.add_edge(u, v)
            _merge_attrs(out.edges[u, v], data)
    return out


def graph_to_payload(g: nx.DiGraph) -> dict:
    """Serialize a graph for a ``"%o"`` packet slot."""
    return {
        "nodes": [(n, dict(d)) for n, d in g.nodes(data=True)],
        "edges": [(u, v, dict(d)) for u, v, d in g.edges(data=True)],
    }


def graph_from_payload(payload: dict) -> nx.DiGraph:
    g = nx.DiGraph()
    for n, d in payload["nodes"]:
        g.add_node(n, **d)
    for u, v, d in payload["edges"]:
        g.add_edge(u, v, **d)
    return g


@register_transform("graph_merge")
class GraphMergeFilter(TransformationFilter):
    """TBON filter: union children's graphs with attribute accumulation."""

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        graphs = []
        for p in packets:
            payload = p.values[0]
            if not isinstance(payload, dict) or "nodes" not in payload:
                raise FilterError("graph_merge expects graph payloads (%o)")
            graphs.append(graph_from_payload(payload))
        merged = merge_graphs(graphs)
        return packets[0].with_values([graph_to_payload(merged)])
