"""Data-histogram filters ("creating ... data histograms" — Section 1).

Two variants:

* :class:`HistogramFilter` — fixed, pre-agreed bin edges: leaves send
  per-bin counts (:func:`histogram_counts`), the tree sums them.  Exact
  and associative.
* :class:`AdaptiveHistogramFilter` — no pre-agreed edges: leaves send
  compact *equi-width sketches* of their local value range; the filter
  merges sketches by re-binning onto the union range.  The result is an
  approximate histogram whose total count is exact, demonstrating a
  reduction whose *output form equals its input form* (property 3 of
  the paper's data-reduction definition) even when leaves disagree on
  ranges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import FilterError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet

__all__ = [
    "histogram_counts",
    "HistogramFilter",
    "HISTOGRAM_FMT",
    "sketch_values",
    "AdaptiveHistogramFilter",
    "ADAPTIVE_HISTOGRAM_FMT",
]

#: Fixed-edge payload: bin counts only (edges are stream parameters).
HISTOGRAM_FMT = "%ad"
#: Sketch payload: lo, hi, bin counts.
ADAPTIVE_HISTOGRAM_FMT = "%f %f %ad"


def histogram_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per-bin counts of ``values`` under fixed ``edges`` (len k+1)."""
    counts, _ = np.histogram(np.asarray(values, dtype=np.float64), bins=edges)
    return counts.astype(np.int64)


@register_transform("histogram")
class HistogramFilter(TransformationFilter):
    """Sum fixed-edge bin counts up the tree (exact)."""

    def __init__(self, **params):
        super().__init__(**params)
        self.n_bins = int(params["n_bins"]) if "n_bins" in params else None

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        counts = [np.asarray(p.values[0]) for p in packets]
        width = {len(c) for c in counts}
        if len(width) != 1:
            raise FilterError(f"histogram bin counts differ across children: {width}")
        if self.n_bins is not None and width != {self.n_bins}:
            raise FilterError(
                f"histogram expected {self.n_bins} bins, got {width.pop()}"
            )
        return packets[0].with_values([np.sum(counts, axis=0)])


def sketch_values(
    values: np.ndarray, n_bins: int
) -> tuple[float, float, np.ndarray]:
    """Equi-width sketch of a value set: (lo, hi, counts)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return 0.0, 0.0, np.zeros(n_bins, dtype=np.int64)
    lo, hi = float(v.min()), float(v.max())
    if lo == hi:
        hi = lo + 1.0
    counts, _ = np.histogram(v, bins=np.linspace(lo, hi, n_bins + 1))
    return lo, hi, counts.astype(np.int64)


@register_transform("adaptive_histogram")
class AdaptiveHistogramFilter(TransformationFilter):
    """Merge equi-width sketches onto their union range.

    Parameters:
        n_bins: sketch width (default 32; all children must agree).

    Re-binning assigns each source bin's count to the target bin holding
    the source bin's center — total counts are preserved exactly, bin
    placement is approximate within one bin width.
    """

    def __init__(self, **params):
        super().__init__(**params)
        self.n_bins = int(params.get("n_bins", 32))
        if self.n_bins < 1:
            raise FilterError("adaptive_histogram needs n_bins >= 1")

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        sketches = []
        for p in packets:
            if p.fmt != ADAPTIVE_HISTOGRAM_FMT:
                raise FilterError(
                    f"adaptive_histogram expects {ADAPTIVE_HISTOGRAM_FMT!r}, got {p.fmt!r}"
                )
            lo, hi, counts = p.values
            counts = np.asarray(counts)
            if len(counts) != self.n_bins:
                raise FilterError(
                    f"sketch width {len(counts)} != configured {self.n_bins}"
                )
            sketches.append((float(lo), float(hi), counts))
        live = [s for s in sketches if s[2].sum() > 0]
        if not live:
            return packets[0].with_values([0.0, 0.0, np.zeros(self.n_bins, np.int64)])
        lo = min(s[0] for s in live)
        hi = max(s[1] for s in live)
        if lo == hi:
            hi = lo + 1.0
        merged = np.zeros(self.n_bins, dtype=np.int64)
        scale = self.n_bins / (hi - lo)
        for s_lo, s_hi, counts in live:
            src_width = (s_hi - s_lo) / len(counts)
            centers = s_lo + (np.arange(len(counts)) + 0.5) * src_width
            idx = np.clip(((centers - lo) * scale).astype(int), 0, self.n_bins - 1)
            np.add.at(merged, idx, counts)
        return packets[0].with_values([lo, hi, merged])
