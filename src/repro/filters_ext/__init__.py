"""Complex tool filters from Sections 2.2-2.3 of the paper.

Importing this package registers the filters with the default registry:

* ``equivalence`` — equivalence-class computation (Figure 2);
* ``clock_skew`` — tree-based clock-skew composition;
* ``time_align`` — time-aligned aggregation (stateful);
* ``histogram`` / ``adaptive_histogram`` — data histograms;
* ``graph_fold`` — Sub-Graph Folding Algorithm (SGFA);
* ``graph_merge`` — attribute-accumulating graph union.
"""

from .clock_skew import (
    CLOCK_SKEW_FMT,
    ClockSkewFilter,
    SkewClock,
    estimate_edge_offset,
    serial_skew_detection,
    tree_skew_detection,
)
from .equivalence import (
    EQUIVALENCE_FMT,
    EquivalenceClassFilter,
    EquivalenceClasses,
    classify,
)
from .graph_fold import (
    GRAPH_FMT,
    SubGraphFoldFilter,
    composite_from_payload,
    composite_to_payload,
    fold_graphs,
    graph_root,
    label_paths,
    tree_payload,
)
from .graph_merge import (
    GraphMergeFilter,
    graph_from_payload,
    graph_to_payload,
    merge_graphs,
)
from .histogram import (
    ADAPTIVE_HISTOGRAM_FMT,
    AdaptiveHistogramFilter,
    HISTOGRAM_FMT,
    HistogramFilter,
    histogram_counts,
    sketch_values,
)
from .time_align import TIME_ALIGN_IN_FMT, TIME_ALIGN_OUT_FMT, TimeAlignedAggregator

__all__ = [
    "EquivalenceClasses",
    "EquivalenceClassFilter",
    "classify",
    "EQUIVALENCE_FMT",
    "SkewClock",
    "estimate_edge_offset",
    "tree_skew_detection",
    "serial_skew_detection",
    "ClockSkewFilter",
    "CLOCK_SKEW_FMT",
    "TimeAlignedAggregator",
    "TIME_ALIGN_IN_FMT",
    "TIME_ALIGN_OUT_FMT",
    "histogram_counts",
    "HistogramFilter",
    "HISTOGRAM_FMT",
    "sketch_values",
    "AdaptiveHistogramFilter",
    "ADAPTIVE_HISTOGRAM_FMT",
    "graph_root",
    "label_paths",
    "fold_graphs",
    "tree_payload",
    "composite_to_payload",
    "composite_from_payload",
    "SubGraphFoldFilter",
    "GRAPH_FMT",
    "merge_graphs",
    "graph_to_payload",
    "graph_from_payload",
    "GraphMergeFilter",
]
