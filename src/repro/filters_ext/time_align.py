"""Time-aligned data aggregation (a stateful MRNet filter).

"Examples of more complex tree-based computations include ... time-
aligned data aggregation" — aggregating samples from many hosts *by the
time bin they describe*, not by arrival order.  Hosts sample at slightly
different moments and messages arrive with different delays, so a node
must hold partial bins until every child has reported past the bin's
end (a per-child *watermark*), then emit one aggregated packet per
completed bin.  This is the canonical use of MRNet's persistent filter
state.

Packets carry ``"%f %af"``: a sample timestamp and a value vector.
Emitted packets carry ``"%f %af %ud"``: bin start time, the aggregated
vector, and the contribution count.  Aggregation is ``sum`` or ``mean``
(mean is finalized at the root using the carried count — exact on
unbalanced trees, same trick as the built-in ``avg``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.errors import FilterError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet

__all__ = ["TimeAlignedAggregator", "TIME_ALIGN_IN_FMT", "TIME_ALIGN_OUT_FMT"]

TIME_ALIGN_IN_FMT = "%f %af"
TIME_ALIGN_OUT_FMT = "%f %af %ud"


@dataclass
class _Bin:
    total: np.ndarray | None = None
    count: int = 0
    contributors: set[int] = field(default_factory=set)


@register_transform("time_align")
class TimeAlignedAggregator(TransformationFilter):
    """Bin-and-watermark aggregation of timestamped samples.

    Parameters:
        bin_width: seconds per time bin (required, > 0).
        op: ``"sum"`` (default) or ``"mean"``.

    A bin ``[k·w, (k+1)·w)`` is emitted once every child's watermark
    (the newest timestamp seen from that child) has passed the bin's
    end; unfinished bins drain on :meth:`flush` at stream close.
    """

    def __init__(self, **params):
        super().__init__(**params)
        width = params.get("bin_width")
        if width is None or float(width) <= 0:
            raise FilterError("time_align requires bin_width > 0")
        self.bin_width = float(width)
        op = params.get("op", "sum")
        if op not in ("sum", "mean"):
            raise FilterError(f"time_align op must be 'sum' or 'mean', got {op!r}")
        self.op = op
        self._bins: dict[int, _Bin] = {}
        self._watermarks: dict[int, float] = {}
        self._template: Packet | None = None
        self.emitted_bins = 0

    # -- helpers ----------------------------------------------------------
    def _bin_index(self, ts: float) -> int:
        return math.floor(ts / self.bin_width)

    def _accumulate(self, ts: float, values: np.ndarray, count: int, src: int) -> None:
        b = self._bins.setdefault(self._bin_index(ts), _Bin())
        if b.total is None:
            b.total = values.astype(np.float64).copy()
        else:
            if b.total.shape != values.shape:
                raise FilterError(
                    f"time_align: value shape changed within a bin "
                    f"({b.total.shape} vs {values.shape})"
                )
            b.total += values
        b.count += count
        b.contributors.add(src)
        self._watermarks[src] = max(self._watermarks.get(src, -np.inf), ts)

    def _emit_ready(self, ctx: FilterContext) -> list[Packet]:
        if len(self._watermarks) < ctx.n_children:
            return []
        horizon = min(self._watermarks.values())
        ready = sorted(
            k for k in self._bins if (k + 1) * self.bin_width <= horizon
        )
        return [self._emit(k, ctx) for k in ready]

    def _emit(self, k: int, ctx: FilterContext) -> Packet:
        b = self._bins.pop(k)
        total = b.total if b.total is not None else np.empty(0)
        if self.op == "mean" and ctx.is_root and b.count > 0:
            total = total / b.count
        self.emitted_bins += 1
        assert self._template is not None
        return Packet(
            self._template.stream_id,
            self._template.tag,
            TIME_ALIGN_OUT_FMT,
            [k * self.bin_width, total, b.count],
            src=ctx.node_rank,
        )

    # -- TransformationFilter API ---------------------------------------------
    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> None:
        raise AssertionError("TimeAlignedAggregator overrides execute")

    def execute(self, packets: Sequence[Packet], ctx: FilterContext) -> list[Packet]:
        for p in packets:
            if self._template is None:
                self._template = p
            if p.fmt == TIME_ALIGN_IN_FMT:
                ts, values = p.values
                self._accumulate(float(ts), np.asarray(values), 1, p.src)
            elif p.fmt == TIME_ALIGN_OUT_FMT:
                ts, values, count = p.values
                self._accumulate(float(ts), np.asarray(values), int(count), p.src)
            else:
                raise FilterError(
                    f"time_align expects {TIME_ALIGN_IN_FMT!r} or "
                    f"{TIME_ALIGN_OUT_FMT!r}, got {p.fmt!r}"
                )
        return self._emit_ready(ctx)

    def flush(self, ctx: FilterContext) -> list[Packet]:
        """Emit all held bins (stream close)."""
        if self._template is None:
            return []
        return [self._emit(k, ctx) for k in sorted(self._bins)]

    def pending_bins(self) -> int:
        return len(self._bins)
