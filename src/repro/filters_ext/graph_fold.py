"""Sub-Graph Folding Algorithm (SGFA) — Roth & Miller's scalable graphs.

Section 2.2 cites "a sub-graph folding algorithm (SGFA) for combining
sub-graphs of similar qualitative structure into a composite sub-graph"
as an MRNet filter that sustained thousand-node runs.  The context is
Paradyn's Distributed Performance Consultant: every daemon produces a
labelled search-history tree (which hypotheses were tested where), and
most hosts produce *qualitatively identical* trees — so thousands of
graphs fold into one composite annotated with host sets.

Model: rooted, node-labelled trees (:class:`networkx.DiGraph`, ``label``
node attribute, single in-degree-0 root).  Folding identifies nodes by
their **label path** from the root: every distinct root-to-node label
sequence becomes one composite node carrying the union of contributing
hosts and the total fold count.  Path-keyed union makes folding
associative and commutative — ``fold(fold(A, B), C) == fold(A, B, C)``
— which is what lets it run as a TBON filter on any tree shape
(property-tested in the suite).

:class:`SubGraphFoldFilter` is the TBON form: ``"%o"`` payloads, raw
trees from back-ends, composites between communication processes.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..core.errors import FilterError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet

__all__ = [
    "graph_root",
    "label_paths",
    "fold_graphs",
    "composite_to_payload",
    "composite_from_payload",
    "tree_payload",
    "SubGraphFoldFilter",
    "GRAPH_FMT",
]

GRAPH_FMT = "%o"
_SEP = "\x1f"  # unit separator: safe label-path delimiter


def graph_root(g: nx.DiGraph):
    """The unique in-degree-0 node of a rooted tree graph."""
    roots = [n for n in g.nodes if g.in_degree(n) == 0]
    if len(roots) != 1:
        raise FilterError(f"graph must have exactly one root, found {len(roots)}")
    return roots[0]


def label_paths(g: nx.DiGraph) -> dict[str, tuple[set, int]]:
    """Map each label path to its (host set, count) contribution.

    Raw trees contribute count 1 per node and the graph-level host;
    composites contribute their stored per-node hosts and counts.
    """
    root = graph_root(g)
    default_hosts = {str(g.graph.get("host", "?"))}
    out: dict[str, tuple[set, int]] = {}

    def visit(node, path: str) -> None:
        data = g.nodes[node]
        label = str(data.get("label", ""))
        key = path + _SEP + label if path else label
        hosts = set(data.get("hosts") or default_hosts)
        count = int(data.get("count", 1))
        if key in out:
            h, c = out[key]
            h |= hosts
            out[key] = (h, c + count)
        else:
            out[key] = (hosts, count)
        for child in g.successors(node):
            visit(child, key)

    visit(root, "")
    return out


def fold_graphs(graphs: Sequence[nx.DiGraph]) -> nx.DiGraph:
    """Fold labelled trees (or composites) into one composite graph.

    Composite nodes are keyed by label path and carry ``label``,
    ``hosts`` (union over contributors) and ``count`` (total fold
    multiplicity).  Distinct root labels coexist under a synthetic
    ``@root`` node so folding never fails — it merely declines to
    collapse structurally different graphs.
    """
    if not graphs:
        raise FilterError("fold_graphs needs at least one graph")
    merged: dict[str, tuple[set, int]] = {}
    for g in graphs:
        root = graph_root(g)
        paths = (
            label_paths_without_shim(g)
            if g.nodes[root].get("label") == "@root"
            else label_paths(g)
        )
        for key, (hosts, count) in paths.items():
            if key in merged:
                h, c = merged[key]
                merged[key] = (h | hosts, c + count)
            else:
                merged[key] = (set(hosts), count)

    composite = nx.DiGraph()
    composite.add_node("@root", label="@root", hosts=set(), count=0)
    for key in sorted(merged):
        hosts, count = merged[key]
        composite.add_node(key, label=key.rsplit(_SEP, 1)[-1], hosts=hosts, count=count)
        parent = key.rsplit(_SEP, 1)[0] if _SEP in key else "@root"
        composite.add_edge(parent, key)
        composite.nodes["@root"]["hosts"] |= hosts if parent == "@root" else set()
    return composite


def label_paths_without_shim(composite: nx.DiGraph) -> dict[str, tuple[set, int]]:
    """Label paths of a composite, dropping its ``@root`` shim node.

    Composite node ids *are* their label paths, so this is a direct
    read-off — re-folding composites costs O(nodes), not O(source
    trees).
    """
    out: dict[str, tuple[set, int]] = {}
    for n, data in composite.nodes(data=True):
        if n == "@root":
            continue
        out[n] = (set(data.get("hosts") or ()), int(data.get("count", 1)))
    return out


def tree_payload(
    nodes: Sequence[tuple], edges: Sequence[tuple], host: str
) -> dict:
    """Build a back-end ``"%o"`` payload for a raw labelled tree."""
    return {"kind": "tree", "nodes": list(nodes), "edges": list(edges), "host": host}


def composite_to_payload(g: nx.DiGraph) -> dict:
    return {
        "kind": "composite",
        "nodes": [
            (n, d.get("label", ""), sorted(d.get("hosts", ())), d.get("count", 0))
            for n, d in g.nodes(data=True)
        ],
        "edges": list(g.edges()),
    }


def composite_from_payload(payload: dict) -> nx.DiGraph:
    g = nx.DiGraph()
    for n, label, hosts, count in payload["nodes"]:
        g.add_node(n, label=label, hosts=set(hosts), count=count)
    g.add_edges_from(payload["edges"])
    return g


def _tree_from_payload(payload: dict) -> nx.DiGraph:
    g = nx.DiGraph(host=payload.get("host", "?"))
    for nid, label in payload["nodes"]:
        g.add_node(nid, label=label)
    g.add_edges_from(payload["edges"])
    return g


@register_transform("graph_fold")
class SubGraphFoldFilter(TransformationFilter):
    """TBON filter form of SGFA.

    Accepts raw-tree payloads (from back-ends; see :func:`tree_payload`)
    and composite payloads (its own output from lower nodes) in the
    same batch; emits one composite.
    """

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        graphs: list[nx.DiGraph] = []
        for p in packets:
            payload = p.values[0]
            if not isinstance(payload, dict) or "kind" not in payload:
                raise FilterError("graph_fold expects dict payloads with a 'kind'")
            if payload["kind"] == "tree":
                graphs.append(_tree_from_payload(payload))
            elif payload["kind"] == "composite":
                graphs.append(composite_from_payload(payload))
            else:
                raise FilterError(f"unknown graph payload kind {payload['kind']!r}")
        folded = fold_graphs(graphs)
        return packets[0].with_values([composite_to_payload(folded)])
