"""Transport abstraction: FIFO channels between tree processes.

The TBON model connects processes "via FIFO channels [that] serve as
conduits through which application-level packets flow".  A
:class:`Transport` materializes a :class:`~repro.core.topology.Topology`
into per-rank inboxes plus a send primitive along tree edges; everything
above this layer (node event loops, filters, streams) is
transport-independent, so the same middleware runs over in-process
queues (:mod:`repro.transport.local`), real TCP sockets
(:mod:`repro.transport.tcp`) or virtual time
(:mod:`repro.simulate`).

Guarantees every transport must provide:

* **FIFO per channel** — messages between one (src, dst) pair arrive in
  send order;
* **reliable delivery** while the channel is open;
* **close visibility** — receivers unblock with
  :class:`~repro.core.errors.ChannelClosedError` once a channel closes.
"""

from __future__ import annotations

import abc
import queue
from typing import Any, Sequence

from ..core.errors import ChannelClosedError, TransportError
from ..core.events import Direction, Envelope
from ..core.topology import Topology

__all__ = ["Inbox", "Transport", "SHUTDOWN_SENTINEL"]

#: Placed on an inbox to unblock and terminate its consumer.
SHUTDOWN_SENTINEL = object()


class Inbox:
    """A rank's receive queue of :class:`Envelope` objects.

    Thin wrapper over :class:`queue.Queue` adding a shutdown sentinel
    protocol: after :meth:`close`, pending envelopes still drain, then
    every :meth:`get` raises :class:`ChannelClosedError`.
    """

    def __init__(self) -> None:
        self._q: "queue.Queue[Any]" = queue.Queue()
        self._closed = False

    def put(self, env: Envelope) -> None:
        if self._closed:
            raise ChannelClosedError("inbox is closed")
        self._q.put(env)

    def put_many(self, envs: Sequence[Envelope]) -> None:
        """Append several envelopes under one queue-lock round-trip.

        The receive-side mirror of :meth:`get_batch`'s ``_drain_locked``:
        a reader that parsed a burst of frames from one bulk ``recv``
        posts them all with a single lock acquisition and wakeup instead
        of one per packet.
        """
        if self._closed:
            raise ChannelClosedError("inbox is closed")
        if not envs:
            return
        q = self._q
        with q.mutex:
            q.queue.extend(envs)
            q.unfinished_tasks += len(envs)
            q.not_empty.notify(len(envs))

    def get(self, timeout: float | None = None) -> Envelope:
        """Block for the next envelope.

        Raises:
            queue.Empty: the timeout elapsed.
            ChannelClosedError: the inbox was closed and has drained.
        """
        item = self._q.get(timeout=timeout) if timeout is not None else self._q.get()
        if item is SHUTDOWN_SENTINEL:
            self._closed = True
            # Re-post so every other blocked consumer also wakes.
            self._q.put(SHUTDOWN_SENTINEL)
            raise ChannelClosedError("inbox closed")
        return item

    def _drain_locked(self, out: list, max_n: int) -> None:
        """Move up to ``max_n`` ready envelopes into ``out``.

        Takes the queue's internal lock once for the whole drain —
        under load this is the difference between one lock round-trip
        per wakeup and one per packet.  A sentinel encountered mid-drain
        stays queued (behind the already-drained envelopes) so other
        consumers still observe the close.
        """
        q = self._q
        with q.mutex:
            items = q.queue
            while items and len(out) < max_n:
                if items[0] is SHUTDOWN_SENTINEL:
                    self._closed = True
                    break
                out.append(items.popleft())

    def get_batch(self, max_n: int = 64, timeout: float | None = None) -> list[Envelope]:
        """Block for at least one envelope, then drain all ready ones.

        Returns between 1 and ``max_n`` envelopes in arrival order.

        Raises:
            queue.Empty: the timeout elapsed with nothing available.
            ChannelClosedError: the inbox was closed and has drained.
        """
        out: list[Envelope] = []
        self._drain_locked(out, max_n)
        if out:
            return out
        if self._closed:
            raise ChannelClosedError("inbox closed")
        # Nothing ready: block for the first envelope, then sweep again
        # for anything that arrived while we were waking up.
        out.append(self.get(timeout=timeout))
        self._drain_locked(out, max_n)
        return out

    def close(self) -> None:
        self._q.put(SHUTDOWN_SENTINEL)

    def qsize(self) -> int:
        return self._q.qsize()


class Transport(abc.ABC):
    """Factory for the channels of one instantiated network.

    Lifecycle: ``bind(topology)`` once, then :meth:`send` along tree
    edges, then :meth:`shutdown`.  Ranks are the topology's ranks.

    Backpressure contract (docs/PROTOCOL.md §7): transports advertise
    their send-side flow-control policy through two attributes so
    applications can reason about what a slow consumer does to senders:

    * :attr:`send_queue_limit` — frames a bounded transport will queue
      per peer before ``send()`` stops accepting more.  ``None`` means
      unbounded buffering (no transport-level backpressure; the threaded
      TCP transport and the in-process thread transport behave this way,
      bounded only by the kernel socket buffer / memory).
    * :attr:`blocking_sends` — with a bounded queue, ``True`` makes
      ``send()`` block until space frees (backpressure propagates to the
      producing node), ``False`` makes it fail fast with
      :class:`~repro.core.errors.ChannelBusyError`.
    """

    #: Per-peer send-queue bound in frames; ``None`` = unbounded.
    send_queue_limit: int | None = None
    #: Bounded-queue policy: block at the high-water mark (True) or raise
    #: :class:`~repro.core.errors.ChannelBusyError` immediately (False).
    blocking_sends: bool = True

    def __init__(self) -> None:
        self.topology: Topology | None = None

    @property
    def closing(self) -> bool:
        """True once :meth:`shutdown` has begun tearing channels down.

        Node event loops consult this to tell an orderly teardown (a send
        racing shutdown raises :class:`ChannelClosedError`, which is
        expected) from a genuine mid-run channel failure.
        """
        return False

    def backpressure_policy(self) -> dict[str, Any]:
        """The transport's send-side flow-control contract as a dict."""
        return {
            "send_queue_limit": self.send_queue_limit,
            "blocking_sends": self.blocking_sends,
        }

    @abc.abstractmethod
    def bind(self, topology: Topology) -> None:
        """Create channels for every edge of ``topology``."""

    @abc.abstractmethod
    def inbox(self, rank: int) -> Inbox:
        """The receive queue for ``rank``."""

    @abc.abstractmethod
    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        """Enqueue ``packet`` from ``src`` to ``dst`` (must be a tree edge)."""

    def multicast(
        self, src: int, dsts: Sequence[int], direction: Direction, packet: Any
    ) -> None:
        """Send one packet to several destinations (all tree edges).

        Transports override this to share per-packet work across the
        fan-out: the TCP transport serializes the wire frame once for
        all k sockets, the thread transport enqueues one shared
        envelope.  The default is a plain per-destination send loop.
        """
        for dst in dsts:
            self.send(src, dst, direction, packet)

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Close all channels and release transport resources."""

    # -- shared helpers ----------------------------------------------------
    def _check_edge(self, src: int, dst: int) -> None:
        topo = self.topology
        if topo is None:
            raise TransportError("transport is not bound to a topology")
        if topo.parent(dst) != src and topo.parent(src) != dst:
            raise TransportError(f"({src}, {dst}) is not an edge of the tree")
