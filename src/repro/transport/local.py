"""In-process thread transport.

Every rank's inbox is a thread-safe queue; a send is a queue put.  This
is the reference transport for the TBON semantics: channels are FIFO and
reliable by construction, packets move by reference (the in-process
stand-in for MRNet's zero-copy data path — a k-way multicast enqueues
one shared :class:`~repro.core.packet.Packet` object k times and bumps
its counted payload reference accordingly).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.errors import TransportError
from ..core.events import Direction, Envelope
from ..core.topology import Topology
from ..telemetry.registry import GLOBAL as _TELEMETRY, TELEMETRY as _TEL
from .base import Inbox, Transport

__all__ = ["ThreadTransport"]

# Packets move by reference here, so bytes/latency make no sense; a
# delivery counter is the only instrument worth its cost on this path.
_m_delivered = _TELEMETRY.counter(
    "tbon_transport_packets_total", {"transport": "thread"}
)


class ThreadTransport(Transport):
    """Queues-as-channels transport for single-process networks."""

    def __init__(self) -> None:
        super().__init__()
        self._inboxes: dict[int, Inbox] = {}

    def bind(self, topology: Topology) -> None:
        if self.topology is not None:
            raise TransportError("transport already bound")
        self.topology = topology
        self._inboxes = {rank: Inbox() for rank in topology.ranks}

    def rebind(self, topology: Topology) -> None:
        """Adopt a reconfigured topology, creating inboxes for new ranks.

        Used by the recovery machinery: surviving ranks keep their
        queues (no data loss), newly attached ranks get fresh ones.
        """
        if self.topology is None:
            raise TransportError("transport is not bound")
        self.topology = topology
        for rank in topology.ranks:
            self._inboxes.setdefault(rank, Inbox())

    def inbox(self, rank: int) -> Inbox:
        try:
            return self._inboxes[rank]
        except KeyError:
            raise TransportError(f"rank {rank} has no inbox (not bound?)") from None

    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        self._check_edge(src, dst)
        if _TEL.enabled:
            _m_delivered.inc()
        self.inbox(dst).put(Envelope(src=src, direction=direction, packet=packet))

    def multicast(
        self, src: int, dsts: Sequence[int], direction: Direction, packet: Any
    ) -> None:
        # Envelopes are immutable, so one instance serves every child —
        # a k-way multicast allocates one envelope, not k (the in-process
        # analogue of serializing the wire frame once).
        env = Envelope(src=src, direction=direction, packet=packet)
        if _TEL.enabled:
            _m_delivered.inc(len(dsts))
        for dst in dsts:
            self._check_edge(src, dst)
            self.inbox(dst).put(env)

    def shutdown(self) -> None:
        for inbox in self._inboxes.values():
            inbox.close()
