"""Reactor transport: one selector event loop for every TCP channel.

The threaded TCP transport (:mod:`repro.transport.tcp`) spends a parent's
scaling headroom on O(fanout) blocking reader threads and one blocking
``sendmsg`` syscall per frame.  This module keeps the identical wire
format — ``u32 length | u8 direction | i32 src | packet bytes``, the same
rank-hello bind handshake, the same serialize-once multicast — but drives
every socket from a **single** I/O thread:

* **Read side** — sockets are non-blocking, so reads are partial by
  nature; :class:`_FrameDecoder` turns PR 1's ``recv_into`` buffer
  discipline into an explicit state machine (header state, then body
  state) over reusable buffers.  Small frames are read in bulk — one
  ``recv`` into a per-connection scratch buffer can carry hundreds of
  frames, which are fed through the decoder from memory and delivered
  to the rank's inbox as one batch (:meth:`Inbox.put_many`); large
  bodies are received straight into the decoder's body buffer to avoid
  the extra copy.  A completed frame is parsed with
  :meth:`Packet.from_bytes` over a view, exactly like the threaded
  reader.
* **Write side** — ``send()`` never touches the socket.  It packs the
  9-byte frame header, appends ``(header, body)`` to the peer's bounded
  send queue and wakes the reactor (one wakeup byte per queue
  *transition*, not per frame).  The reactor drains a queue with a single
  vectored ``sendmsg`` of up to :attr:`Reactor.coalesce_max` coalesced
  frames, and keeps ``EVENT_WRITE`` interest registered only while the
  queue is non-empty, so an idle tree polls nothing.
* **Backpressure** — the per-peer queue is bounded.  At the high-water
  mark ``send()`` blocks on a condition until the reactor drains frames
  (backpressure propagates to the producing node), or fails fast with
  :class:`ChannelBusyError` when the transport is configured
  non-blocking.  The policy is advertised via
  :attr:`Transport.send_queue_limit` / :attr:`Transport.blocking_sends`.
  Inboxes stay unbounded, so the reactor thread itself can never block —
  a prerequisite for deadlock freedom with one loop serving both
  directions of every edge.

Static discipline: tboncheck rule TB601 forbids direct blocking socket
calls in this module.  All socket I/O goes through the ``_nb_*`` helpers
(which translate EAGAIN into ``None``), and the blocking bind-time
handshake is delegated to :func:`repro.transport.tcp.establish_edges`.

Selected by default for ``transport="tcp"``; set ``TBON_TRANSPORT=threads``
to fall back to the threaded implementation for one release.
"""

from __future__ import annotations

import logging
import selectors
import socket
import threading
import time
from collections import deque
from typing import Any, Optional, Sequence

from ..analysis.locks import make_lock
from ..core.errors import (
    ChannelBusyError,
    ChannelClosedError,
    SerializationError,
    TransportError,
)
from ..core.events import Direction, Envelope
from ..core.packet import Packet
from ..core.topology import Topology
from ..telemetry.registry import GLOBAL as _TELEMETRY, SIZE_BOUNDS, TELEMETRY as _TEL
from .base import Inbox, Transport
from .tcp import _EdgeRepairMixin, _HDR, establish_edges

__all__ = ["ReactorTransport", "Reactor"]

_LOG = logging.getLogger(__name__)

#: Body remainders at least this big are received straight into the
#: decoder's body buffer; smaller reads go through the per-connection
#: scratch buffer so one ``recv`` can carry a whole burst of frames.
_BULK_DIRECT = 65536

# Process-wide reactor instruments (GLOBAL registry, created at import so
# the disabled hot path stays one ``_TEL.enabled`` attribute check).
_m_iterations = _TELEMETRY.counter("tbon_reactor_loop_iterations_total")
_m_coalesced = _TELEMETRY.histogram(
    "tbon_reactor_frames_per_sendmsg", bounds=SIZE_BOUNDS
)
_m_qdepth = _TELEMETRY.gauge("tbon_reactor_send_queue_depth")
_m_stalls = _TELEMETRY.counter("tbon_reactor_backpressure_stalls_total")
_m_tx_bytes = _TELEMETRY.counter(
    "tbon_transport_bytes_total", {"transport": "reactor", "direction": "sent"}
)
_m_rx_bytes = _TELEMETRY.counter(
    "tbon_transport_bytes_total", {"transport": "reactor", "direction": "received"}
)


def _nb_recv_into(sock: socket.socket, view: memoryview) -> Optional[int]:
    """One ``recv_into`` on a non-blocking socket.

    Returns the byte count (0 = orderly EOF from the peer) or ``None``
    when the socket has nothing ready (EAGAIN) — the reactor's signal to
    move on to the next event instead of blocking.
    """
    try:
        return sock.recv_into(view)
    except (BlockingIOError, InterruptedError):
        return None


def _nb_sendmsg(sock: socket.socket, buffers: Sequence[memoryview]) -> Optional[int]:
    """One vectored ``sendmsg`` on a non-blocking socket.

    Returns the bytes accepted by the kernel, or ``None`` when the socket
    buffer is full (EAGAIN) — the queue stays write-registered and the
    selector re-reports writability once the peer drains.
    """
    try:
        return sock.sendmsg(buffers)
    except (BlockingIOError, InterruptedError):
        return None


def _nb_wake_send(sock: socket.socket) -> None:
    """Write one wakeup byte, tolerating a full pipe or concurrent close.

    A full wakeup pipe means the reactor already has a pending wakeup it
    has not drained yet, so dropping the byte loses nothing.
    """
    try:
        sock.send(b"\x01")
    except (BlockingIOError, InterruptedError):
        pass
    except OSError:
        pass  # torn down concurrently with shutdown


class _FrameDecoder:
    """Incremental state machine over the shared frame format.

    Usage from the reactor loop::

        view = decoder.recv_view()      # where the next recv_into lands
        n = _nb_recv_into(sock, view)
        frame = decoder.advance(n)      # (dir_code, src, body_view) | None

    Two states: filling the 9-byte header, then filling the body whose
    length the header announced.  The body buffer is reused across frames
    (grown to the largest frame seen), so steady-state decoding allocates
    nothing beyond the kernel's copy — PR 1's ``recv_into`` discipline
    carried over to partial, non-blocking reads.  The returned body view
    is only valid until the next ``advance`` that re-enters body state;
    :meth:`Packet.from_bytes` copies what it keeps, same as the threaded
    reader.
    """

    __slots__ = ("_hdr", "_body", "_got", "_length", "_dir", "_src", "_in_body")

    def __init__(self) -> None:
        self._hdr = bytearray(_HDR.size)
        self._body = bytearray(65536)
        self._got = 0
        self._length = 0
        self._dir = 0
        self._src = 0
        self._in_body = False

    def recv_view(self) -> memoryview:
        """The slice of the current buffer still waiting for bytes."""
        if self._in_body:
            return memoryview(self._body)[self._got : self._length]
        return memoryview(self._hdr)[self._got :]

    def advance(self, n: int) -> Optional[tuple[int, int, memoryview]]:
        """Consume ``n`` bytes just written into :meth:`recv_view`.

        Returns a completed ``(dir_code, src, body_view)`` frame, or
        ``None`` while the frame is still partial.
        """
        self._got += n
        if not self._in_body:
            if self._got < _HDR.size:
                return None
            self._length, self._dir, self._src = _HDR.unpack(self._hdr)
            if self._length > len(self._body):
                self._body = bytearray(self._length)
            self._got = 0
            self._in_body = True
            if self._length > 0:
                return None
            # Degenerate zero-length body: the frame is already complete.
        if self._got < self._length:
            return None
        view = memoryview(self._body)[: self._length]
        self._got = 0
        self._in_body = False
        return (self._dir, self._src, view)


class _ReactorConnection:
    """One non-blocking socket in the reactor: decoder + bounded send queue.

    Producer threads only touch :meth:`enqueue`; ``handle_read`` /
    ``handle_write`` run exclusively on the reactor thread (plus tests
    that drive them directly with the reactor stopped).
    """

    def __init__(
        self, sock: socket.socket, inbox: Inbox, owner_rank: int, reactor: "Reactor"
    ) -> None:
        self.sock = sock
        self.inbox = inbox
        self.owner_rank = owner_rank
        self.reactor = reactor
        self.decoder = _FrameDecoder()
        self._lock = make_lock("reactor_sendq")
        self._ready = threading.Condition(self._lock)
        # Pending (header, body) frames; depth counts queued + in-flight
        # frames so backpressure releases only on bytes actually flushed.
        self._queue: deque[tuple[bytes, bytes]] = deque()  # tbon: lock=_lock
        self._depth = 0  # tbon: lock=_lock
        self._write_armed = False  # tbon: lock=_lock
        self.closed = False  # tbon: lock=_lock
        # Set (before close) when recovery tears this edge down on
        # purpose, so _drop() does not log it as a peer crash.
        self.expected_close = False
        # Partially written sendmsg vector (reactor thread only).
        self._inflight: list[memoryview] = []
        self._inflight_frames = 0
        # Bulk-read landing zone (reactor thread only).
        self._scratch = memoryview(bytearray(_BULK_DIRECT))
        sock.setblocking(False)

    # -- producer side (any thread) ------------------------------------------
    def enqueue(
        self,
        header: bytes,
        body: bytes,
        *,
        block: bool,
        timeout: float,
        high_water: int,
    ) -> None:
        """Queue one frame, applying the transport's backpressure policy."""
        with self._lock:
            if self._depth >= high_water:
                if not block:
                    raise ChannelBusyError(
                        f"send queue for rank {self.owner_rank} is at its "
                        f"high-water mark ({high_water} frames)"
                    )
                if _TEL.enabled:
                    _m_stalls.inc()
                deadline = time.monotonic() + timeout
                while self._depth >= high_water:
                    if self.closed:
                        raise ChannelClosedError(
                            f"reactor channel for rank {self.owner_rank} closed"
                        )
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ChannelBusyError(
                            f"send to rank {self.owner_rank} stalled for "
                            f"{timeout:.1f}s at the high-water mark "
                            f"({high_water} frames)"
                        )
                    self._ready.wait(remaining)
            if self.closed:
                raise ChannelClosedError(
                    f"reactor channel for rank {self.owner_rank} closed"
                )
            self._queue.append((header, body))
            self._depth += 1
            if _TEL.enabled:
                _m_qdepth.set(self._depth)
            if not self._write_armed:
                self._write_armed = True
                self.reactor.request_write(self)

    # -- reactor side --------------------------------------------------------
    def handle_read(self) -> None:
        """Drain readable bytes, delivering every completed frame.

        Two read strategies per the module docstring: a body with at
        least :data:`_BULK_DIRECT` bytes outstanding is received straight
        into the decoder's body buffer (no extra copy); everything else
        goes through one bulk ``recv`` into the scratch buffer, which is
        then fed through the decoder frame by frame — at 64-byte payloads
        that is two syscalls and one inbox lock round-trip for a burst
        that previously cost two syscalls and a lock *per frame*.
        """
        decoder = self.decoder
        scratch = self._scratch
        while True:
            view = decoder.recv_view()
            if len(view) >= _BULK_DIRECT:
                n = _nb_recv_into(self.sock, view)
                if n is None:
                    return
                if n == 0:
                    raise ConnectionError("peer closed")
                frame = decoder.advance(n)
                if frame is not None:
                    self._deliver_one(frame)
                continue
            n = _nb_recv_into(self.sock, scratch)
            if n is None:
                return
            if n == 0:
                raise ConnectionError("peer closed")
            batch: list[Envelope] = []
            off = 0
            while off < n:
                view = decoder.recv_view()
                take = len(view)
                if take > n - off:
                    take = n - off
                view[:take] = scratch[off : off + take]
                off += take
                frame = decoder.advance(take)
                if frame is not None:
                    dir_code, src, body = frame
                    batch.append(
                        Envelope(
                            src=src,
                            direction=Direction.from_wire(dir_code),
                            packet=Packet.from_bytes(body),
                        )
                    )
                    if _TEL.enabled:
                        _m_rx_bytes.inc(_HDR.size + len(body))
            if len(batch) == 1:
                self.inbox.put(batch[0])
            elif batch:
                self.inbox.put_many(batch)

    def _deliver_one(self, frame: tuple[int, int, memoryview]) -> None:
        dir_code, src, body = frame
        self.inbox.put(
            Envelope(
                src=src,
                direction=Direction.from_wire(dir_code),
                packet=Packet.from_bytes(body),
            )
        )
        if _TEL.enabled:
            _m_rx_bytes.inc(_HDR.size + len(body))

    def handle_write(self) -> None:
        """Flush queued frames: coalesced vectored writes until EAGAIN."""
        while True:
            if not self._inflight:
                with self._lock:
                    take = min(len(self._queue), self.reactor.coalesce_max)
                    if take == 0:
                        # Fully drained: drop EVENT_WRITE interest so an
                        # idle channel costs the selector nothing.
                        self._write_armed = False
                        self.reactor.set_write_interest(self, False)
                        return
                    frames = [self._queue.popleft() for _ in range(take)]
                vector: list[memoryview] = []
                for header, body in frames:
                    vector.append(memoryview(header))
                    vector.append(memoryview(body))
                self._inflight = vector
                self._inflight_frames = take
                if _TEL.enabled:
                    _m_coalesced.observe(take)
            sent = _nb_sendmsg(self.sock, self._inflight)
            if sent is None:
                self.reactor.set_write_interest(self, True)
                return  # kernel buffer full; selector re-reports writable
            if _TEL.enabled:
                _m_tx_bytes.inc(sent)
            vector = self._inflight
            while vector and sent >= len(vector[0]):
                sent -= len(vector[0])
                vector.pop(0)
            if vector:
                if sent:
                    vector[0] = vector[0][sent:]
                self.reactor.set_write_interest(self, True)
                return  # partial write; resume this vector on next wakeup
            done = self._inflight_frames
            self._inflight = []
            self._inflight_frames = 0
            with self._lock:
                self._depth -= done
                if _TEL.enabled:
                    _m_qdepth.set(self._depth)
                self._ready.notify_all()

    def expect_close(self) -> None:
        """Mark the coming teardown of this edge as orderly (recovery)."""
        self.expected_close = True

    def mark_closed(self) -> None:
        """Fail-fast half of :meth:`close`: flag the channel closed and
        release every producer blocked on backpressure, leaving the
        socket itself for the reactor thread to close."""
        with self._lock:
            self.closed = True
            self._ready.notify_all()

    def close(self) -> None:
        """Mark closed and release every producer blocked on backpressure."""
        self.mark_closed()
        try:
            self.sock.close()
        except OSError:
            pass


class Reactor:
    """The single-threaded I/O event loop shared by every connection.

    Producer threads never touch the selector; they append to the
    pending-write list and poke the wakeup pipe (:meth:`request_write`),
    and the reactor thread applies the interest changes itself — selector
    mutation stays single-threaded once the loop runs.
    """

    def __init__(self, *, coalesce_max: int = 32, name: str = "tbon-reactor-io"):
        # Vectored-write coalescing bound; well under IOV_MAX (1024 on
        # Linux) and big enough to amortize syscalls across a burst.
        self.coalesce_max = coalesce_max
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._plock = make_lock("reactor_pending")
        self._pending: list[_ReactorConnection] = []  # tbon: lock=_plock
        self._pending_register: list[_ReactorConnection] = []  # tbon: lock=_plock
        self._pending_drop: list[_ReactorConnection] = []  # tbon: lock=_plock
        self._conns: list[_ReactorConnection] = []
        self._closing = threading.Event()
        self._started = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)

    # -- registration (bind time, before the loop starts) --------------------
    def register(self, conn: _ReactorConnection) -> None:
        self._conns.append(conn)
        self._selector.register(conn.sock, selectors.EVENT_READ, conn)

    def start(self) -> None:
        self._started = True
        self._thread.start()

    # -- live (re-)registration (recovery path, any thread) ------------------
    def register_live(self, conn: _ReactorConnection) -> None:
        """Hand a repaired channel to the running loop.

        Selector mutation stays single-threaded: the connection is
        queued and the loop itself registers it on the next wakeup —
        before it processes any pending write for the same channel, so
        a send racing the repair cannot observe a half-registered
        socket.
        """
        if not self._started:
            self.register(conn)
            return
        with self._plock:
            self._pending_register.append(conn)
        _nb_wake_send(self._wake_w)

    def drop_live(self, conn: _ReactorConnection) -> None:
        """Detach ``conn`` from the running loop and close it (any thread).

        The loop must do the unregistering itself: closing the fd first
        would leave a stale selector entry that collides with the next
        registration when the kernel reuses the fd number.  The
        connection is only *marked* closed here (releasing any producer
        blocked on backpressure); the socket closes on the loop thread.
        """
        if not self._started or self._closing.is_set():
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.close()
            if conn in self._conns:
                self._conns.remove(conn)
            return
        conn.mark_closed()  # sends fail fast from this point on
        with self._plock:
            self._pending_drop.append(conn)
        _nb_wake_send(self._wake_w)

    # -- producer-facing wakeup ----------------------------------------------
    def request_write(self, conn: _ReactorConnection) -> None:
        """Ask the loop to arm EVENT_WRITE for ``conn`` (any thread)."""
        with self._plock:
            self._pending.append(conn)
        _nb_wake_send(self._wake_w)

    # -- reactor thread ------------------------------------------------------
    def set_write_interest(self, conn: _ReactorConnection, on: bool) -> None:
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if on else 0)
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass  # connection already unregistered (teardown race)

    def _drain_wakeups(self) -> None:
        buf = memoryview(bytearray(4096))
        while _nb_recv_into(self._wake_r, buf):
            pass
        with self._plock:
            drops, self._pending_drop = self._pending_drop, []
            registers, self._pending_register = self._pending_register, []
            pending, self._pending = self._pending, []
        # Order matters: drops before registers (a reconnect queues the
        # old channel's drop before the new one's register, and the new
        # socket may reuse the old fd), registers before writes (a send
        # racing the repair must find its socket registered).
        for conn in drops:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.close()
            if conn in self._conns:
                self._conns.remove(conn)
        for conn in registers:
            if conn.closed:
                continue
            self._conns.append(conn)
            try:
                self._selector.register(conn.sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError, OSError) as exc:
                self._drop(conn, OSError(f"live registration failed: {exc}"))
        for conn in pending:
            if conn.closed:
                continue
            try:
                # Flush opportunistically right now; handle_write arms
                # EVENT_WRITE itself if the kernel buffer pushes back.
                conn.handle_write()
            except (ConnectionError, OSError, ChannelClosedError) as exc:
                self._drop(conn, exc)

    def _run(self) -> None:
        while not self._closing.is_set():
            try:
                events = self._selector.select()
            except OSError:
                break  # selector torn down concurrently with stop()
            if _TEL.enabled:
                _m_iterations.inc()
            if self._closing.is_set():
                break
            for key, mask in events:
                conn = key.data
                if conn is None:
                    self._drain_wakeups()
                    continue
                try:
                    if mask & selectors.EVENT_READ:
                        conn.handle_read()
                    if mask & selectors.EVENT_WRITE:
                        conn.handle_write()
                except (
                    ConnectionError,
                    OSError,
                    ChannelClosedError,
                    SerializationError,
                ) as exc:
                    self._drop(conn, exc)

    def _drop(self, conn: _ReactorConnection, exc: Exception) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        conn.close()
        if conn in self._conns:
            self._conns.remove(conn)
        if not self._closing.is_set() and not conn.expected_close:
            _LOG.warning(
                "reactor connection for rank %d terminated: %s",
                conn.owner_rank,
                exc,
            )

    def stop(self) -> None:
        """Stop the loop, close every socket, release blocked senders."""
        self._closing.set()
        _nb_wake_send(self._wake_w)
        if self._started:
            self._thread.join(5.0)
        with self._plock:
            leftovers = self._pending_register + self._pending_drop
            self._pending_register = []
            self._pending_drop = []
        for conn in leftovers:
            conn.close()
        for conn in self._conns:
            conn.close()
        try:
            self._selector.close()
        except OSError:
            pass
        self._wake_r.close()
        self._wake_w.close()


class ReactorTransport(_EdgeRepairMixin, Transport):
    """Localhost-TCP channels multiplexed onto one reactor thread.

    Same wire format, bind handshake and FIFO/delivery guarantees as
    :class:`~repro.transport.tcp.TCPTransport`, with O(1) I/O threads per
    process instead of O(edges), coalesced vectored writes, and bounded
    send queues providing real backpressure (see the module docstring and
    docs/PROTOCOL.md §7).

    Args:
        host: bind address (localhost only, as with the threaded transport).
        connect_timeout: bind-time accept/connect timeout in seconds.
        max_queue_frames: per-peer send-queue high-water mark in frames.
        block_on_full: True → ``send()`` blocks at the high-water mark;
            False → ``send()`` raises :class:`ChannelBusyError`.
        send_block_timeout: cap on one blocking-send stall, after which
            :class:`ChannelBusyError` is raised anyway (guards against a
            wedged peer turning backpressure into a permanent hang).
        coalesce_max: frames coalesced into one vectored ``sendmsg``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        connect_timeout: float = 10.0,
        *,
        max_queue_frames: int = 1024,
        block_on_full: bool = True,
        send_block_timeout: float = 30.0,
        coalesce_max: int = 32,
    ):
        super().__init__()
        if max_queue_frames < 1:
            raise TransportError("max_queue_frames must be >= 1")
        self.host = host
        self.connect_timeout = connect_timeout
        self.send_queue_limit = int(max_queue_frames)
        self.blocking_sends = bool(block_on_full)
        self.send_block_timeout = send_block_timeout
        self._reactor = Reactor(coalesce_max=coalesce_max)
        self._inboxes: dict[int, Inbox] = {}
        # (owner_rank, peer_rank) -> connection used by owner to reach peer
        self._conns: dict[tuple[int, int], _ReactorConnection] = {}
        self._listeners: dict[int, socket.socket] = {}
        self._closing = threading.Event()

    @property
    def closing(self) -> bool:
        return self._closing.is_set()

    def _attach(self, owner: int, peer: int, sock: socket.socket) -> None:
        conn = _ReactorConnection(sock, self._inboxes[owner], owner, self._reactor)
        self._conns[(owner, peer)] = conn
        # register_live degrades to plain register() before the loop
        # starts, so bind and recovery share this one attach path.
        self._reactor.register_live(conn)

    def _drop_conn(
        self, key: tuple[int, int], *, expected: bool = True
    ) -> "_ReactorConnection | None":
        conn = self._conns.pop(key, None)
        if conn is not None:
            if expected:
                conn.expect_close()
            self._reactor.drop_live(conn)
        return conn

    def bind(self, topology: Topology) -> None:
        if self.topology is not None:
            raise TransportError("transport already bound")
        self.topology = topology
        self._inboxes = {rank: Inbox() for rank in topology.ranks}
        self._listeners = establish_edges(
            self.host, self.connect_timeout, topology, self._attach
        )
        missing = [
            e for e in topology.iter_edges() if (e[0], e[1]) not in self._conns
        ]
        if missing:
            raise TransportError(f"reactor edges failed to establish: {missing}")
        self._reactor.start()

    def inbox(self, rank: int) -> Inbox:
        try:
            return self._inboxes[rank]
        except KeyError:
            raise TransportError(f"rank {rank} has no inbox (not bound?)") from None

    def _enqueue(self, src: int, dst: int, header: bytes, body: bytes) -> None:
        conn = self._conns.get((src, dst))
        if conn is None or self._closing.is_set():
            raise ChannelClosedError(f"no reactor connection {src}->{dst}")
        conn.enqueue(
            header,
            body,
            block=self.blocking_sends,
            timeout=self.send_block_timeout,
            high_water=self.send_queue_limit,
        )

    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        self._check_edge(src, dst)
        body = packet.to_bytes()
        header = _HDR.pack(len(body), direction.wire_code, src)
        self._enqueue(src, dst, header, body)

    def multicast(
        self, src: int, dsts: Sequence[int], direction: Direction, packet: Any
    ) -> None:
        """Serialize-once multicast: one ``to_bytes``, one header pack, k
        queue appends — the k ``sendmsg`` calls collapse further through
        coalescing on the reactor thread."""
        body = packet.to_bytes()
        header = _HDR.pack(len(body), direction.wire_code, src)
        for dst in dsts:
            self._check_edge(src, dst)
            self._enqueue(src, dst, header, body)

    def shutdown(self) -> None:
        self._closing.set()
        self._reactor.stop()
        for srv in self._listeners.values():
            srv.close()
        for inbox in self._inboxes.values():
            inbox.close()
