"""Transports: FIFO channel implementations for TBON process trees."""

from .base import Inbox, Transport
from .local import ThreadTransport

__all__ = ["Inbox", "Transport", "ThreadTransport", "TCPTransport"]


def __getattr__(name: str):
    # TCPTransport is imported lazily: it spins up socket machinery that
    # pure in-process users never need.
    if name == "TCPTransport":
        from .tcp import TCPTransport

        return TCPTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
