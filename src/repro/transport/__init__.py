"""Transports: FIFO channel implementations for TBON process trees."""

from .base import Inbox, Transport
from .local import ThreadTransport

__all__ = ["Inbox", "Transport", "ThreadTransport", "TCPTransport", "ReactorTransport"]


def __getattr__(name: str):
    # The socket transports are imported lazily: they spin up socket
    # machinery that pure in-process users never need.
    if name == "TCPTransport":
        from .tcp import TCPTransport

        return TCPTransport
    if name == "ReactorTransport":
        from .reactor import ReactorTransport

        return ReactorTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
