"""TCP transport: the process tree over real localhost sockets.

The paper's TBONs "use network transport protocols, like TCP, to
implement data multicast, gather and reduction services"; this transport
runs the identical middleware over genuine TCP connections.  One
listening socket per rank, one connection per tree edge (established
child→parent at bind time), one reader thread per connection side.

Wire format per frame (all little-endian)::

    u32 length | u8 direction (0=up, 1=down) | i32 src rank | packet bytes

Packets are serialized with :meth:`repro.core.packet.Packet.to_bytes`,
which exercises the counted-payload-reference path: a k-way multicast
serializes the payload once and writes the same buffer to k sockets.

The transport binds 127.0.0.1 only; it demonstrates the real-socket data
path, not multi-host deployment (see DESIGN.md, out of scope).
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any

from ..core.errors import ChannelClosedError, TransportError
from ..core.events import Direction, Envelope
from ..core.packet import Packet
from ..core.topology import Topology
from .base import Inbox, Transport

__all__ = ["TCPTransport"]

_HDR = struct.Struct("<IBi")
_RANK_HELLO = struct.Struct("<i")

_DIR_CODE = {Direction.UPSTREAM: 0, Direction.DOWNSTREAM: 1}
_CODE_DIR = {0: Direction.UPSTREAM, 1: Direction.DOWNSTREAM}


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed")
        buf.extend(chunk)
    return bytes(buf)


class _Connection:
    """One side of a TCP channel: framed writes plus a reader thread."""

    def __init__(self, sock: socket.socket, inbox: Inbox, owner_rank: int):
        self.sock = sock
        self.inbox = inbox
        self.owner_rank = owner_rank
        self._wlock = threading.Lock()
        self._closed = threading.Event()
        self.reader = threading.Thread(
            target=self._read_loop, name=f"tbon-tcp-read-{owner_rank}", daemon=True
        )
        self.reader.start()

    def _read_loop(self) -> None:
        try:
            while not self._closed.is_set():
                header = _recv_exact(self.sock, _HDR.size)
                length, dir_code, src = _HDR.unpack(header)
                body = _recv_exact(self.sock, length)
                packet = Packet.from_bytes(body)
                self.inbox.put(
                    Envelope(src=src, direction=_CODE_DIR[dir_code], packet=packet)
                )
        except (ConnectionError, OSError, ChannelClosedError):
            pass  # normal at shutdown

    def send(self, src: int, direction: Direction, packet: Packet) -> None:
        body = packet.to_bytes()
        frame = _HDR.pack(len(body), _DIR_CODE[direction], src) + body
        with self._wlock:
            try:
                self.sock.sendall(frame)
            except OSError as exc:
                raise ChannelClosedError(f"TCP send failed: {exc}") from exc

    def close(self) -> None:
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class TCPTransport(Transport):
    """Localhost-TCP channels for every edge of the tree."""

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 10.0):
        super().__init__()
        self.host = host
        self.connect_timeout = connect_timeout
        self._inboxes: dict[int, Inbox] = {}
        # (owner_rank, peer_rank) -> connection used by owner to reach peer
        self._conns: dict[tuple[int, int], _Connection] = {}
        self._listeners: dict[int, socket.socket] = {}

    def bind(self, topology: Topology) -> None:
        if self.topology is not None:
            raise TransportError("transport already bound")
        self.topology = topology
        self._inboxes = {rank: Inbox() for rank in topology.ranks}

        # One listener per rank that has children.
        ports: dict[int, int] = {}
        for rank in topology.ranks:
            if topology.children(rank):
                srv = socket.create_server((self.host, 0))
                srv.settimeout(self.connect_timeout)
                self._listeners[rank] = srv
                ports[rank] = srv.getsockname()[1]

        # Parents accept on their own threads; children connect from here.
        accept_errors: list[Exception] = []

        def accept_all(rank: int, srv: socket.socket, n: int) -> None:
            try:
                for _ in range(n):
                    conn, _addr = srv.accept()
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    (child,) = _RANK_HELLO.unpack(_recv_exact(conn, _RANK_HELLO.size))
                    self._conns[(rank, child)] = _Connection(
                        conn, self._inboxes[rank], rank
                    )
            except Exception as exc:  # surfaced after join
                accept_errors.append(exc)

        acceptors = []
        for rank, srv in self._listeners.items():
            t = threading.Thread(
                target=accept_all,
                args=(rank, srv, len(topology.children(rank))),
                name=f"tbon-tcp-accept-{rank}",
                daemon=True,
            )
            t.start()
            acceptors.append(t)

        for parent, child in topology.iter_edges():
            sock = socket.create_connection(
                (self.host, ports[parent]), timeout=self.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(_RANK_HELLO.pack(child))
            self._conns[(child, parent)] = _Connection(
                sock, self._inboxes[child], child
            )

        for t in acceptors:
            t.join(self.connect_timeout)
        if accept_errors:
            raise TransportError(f"TCP accept failed: {accept_errors[0]}")
        missing = [
            e for e in topology.iter_edges() if (e[0], e[1]) not in self._conns
        ]
        if missing:
            raise TransportError(f"TCP edges failed to establish: {missing}")

    def inbox(self, rank: int) -> Inbox:
        try:
            return self._inboxes[rank]
        except KeyError:
            raise TransportError(f"rank {rank} has no inbox (not bound?)") from None

    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        self._check_edge(src, dst)
        conn = self._conns.get((src, dst))
        if conn is None:
            raise ChannelClosedError(f"no TCP connection {src}->{dst}")
        conn.send(src, direction, packet)

    def shutdown(self) -> None:
        for conn in self._conns.values():
            conn.close()
        for srv in self._listeners.values():
            srv.close()
        for inbox in self._inboxes.values():
            inbox.close()
