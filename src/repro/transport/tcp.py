"""TCP transport: the process tree over real localhost sockets.

The paper's TBONs "use network transport protocols, like TCP, to
implement data multicast, gather and reduction services"; this transport
runs the identical middleware over genuine TCP connections.  One
listening socket per rank, one connection per tree edge (established
child→parent at bind time), one reader thread per connection side.

Wire format per frame (all little-endian)::

    u32 length | u8 direction (0=up, 1=down) | i32 src rank | packet bytes

Packets are serialized with :meth:`repro.core.packet.Packet.to_bytes`,
which memoizes the whole wire frame (header + counted payload buffer):
:meth:`TCPTransport.multicast` calls ``to_bytes`` exactly once per
k-way multicast and writes the identical buffer to k sockets.  Sends use
scatter-gather ``socket.sendmsg([frame_header, body])`` so the 9-byte
transport header is never concatenated onto the packet bytes, and each
reader thread fills a reusable receive buffer with ``recv_into`` —
no per-chunk allocations on either side of a frame.

The transport binds 127.0.0.1 only; it demonstrates the real-socket data
path, not multi-host deployment (see DESIGN.md, out of scope).
"""

from __future__ import annotations

import logging
import socket
import struct
import threading
import time
from typing import Any, Sequence

from ..analysis.locks import make_lock
from ..core.errors import ChannelClosedError, TransportError
from ..core.events import Direction, Envelope
from ..core.packet import Packet
from ..core.topology import Topology
from ..telemetry.registry import GLOBAL as _TELEMETRY, TELEMETRY as _TEL
from .base import Inbox, Transport

__all__ = [
    "TCPTransport",
    "establish_edges",
    "send_rank_hello",
    "recv_rank_hello",
]

_LOG = logging.getLogger(__name__)

# Process-wide transport instruments (GLOBAL registry: sockets are shared
# process infrastructure, not per-node state).  Created once at import so
# the disabled hot path stays a single ``_TEL.enabled`` attribute check.
_m_tx_bytes = _TELEMETRY.counter(
    "tbon_transport_bytes_total", {"transport": "tcp", "direction": "sent"}
)
_m_rx_bytes = _TELEMETRY.counter(
    "tbon_transport_bytes_total", {"transport": "tcp", "direction": "received"}
)
_m_send_lat = _TELEMETRY.histogram(
    "tbon_transport_send_seconds", {"transport": "tcp"}
)
_m_recv_lat = _TELEMETRY.histogram(
    "tbon_transport_recv_seconds", {"transport": "tcp"}
)

_HDR = struct.Struct("<IBi")
_RANK_HELLO = struct.Struct("<i")

# Direction <-> u8 wire code; the codes themselves live on Direction so
# the threaded and reactor framers share one encoding.
_DIR_CODE = {d: d.wire_code for d in Direction}
_CODE_DIR = {d.wire_code: d for d in Direction}


def _recv_into_exact(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket (no intermediate buffers)."""
    while view:
        got = sock.recv_into(view)
        if not got:
            raise ConnectionError("peer closed")
        view = view[got:]


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Compatibility helper for fixed-size reads (handshake, tests)."""
    buf = bytearray(n)
    _recv_into_exact(sock, memoryview(buf))
    return bytes(buf)


def send_rank_hello(sock: socket.socket, rank: int) -> None:
    """Blocking half of the connect handshake: announce our rank.

    Lives here (not in the reactor module) because bind-time sockets are
    still blocking; the reactor package is forbidden from issuing direct
    blocking socket calls (tboncheck TB601).
    """
    sock.sendall(_RANK_HELLO.pack(rank))


def recv_rank_hello(sock: socket.socket) -> int:
    """Blocking accept half of the handshake: read the peer's rank."""
    (rank,) = _RANK_HELLO.unpack(_recv_exact(sock, _RANK_HELLO.size))
    return rank


def establish_edges(
    host: str,
    connect_timeout: float,
    topology: Topology,
    on_connection: Any,
) -> dict[int, socket.socket]:
    """Open every tree-edge socket pair and hand them to ``on_connection``.

    One listening socket per rank with children; children connect
    child→parent and announce themselves with the rank hello.  Each
    established socket (TCP_NODELAY set, still blocking) is passed to
    ``on_connection(owner_rank, peer_rank, sock)`` — once for the
    parent-side socket and once for the child-side socket of each edge.
    Accepting runs on transient per-listener threads so a wide flat
    topology binds in one round trip, not fanout round trips.

    Shared by the threaded and reactor transports; returns the listener
    sockets by rank (the caller owns closing them at shutdown).
    """
    listeners: dict[int, socket.socket] = {}
    ports: dict[int, int] = {}
    for rank in topology.ranks:
        if topology.children(rank):
            srv = socket.create_server((host, 0))
            srv.settimeout(connect_timeout)
            listeners[rank] = srv
            ports[rank] = srv.getsockname()[1]

    accept_errors: list[Exception] = []

    def accept_all(rank: int, srv: socket.socket, n: int) -> None:
        try:
            for _ in range(n):
                conn, _addr = srv.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                child = recv_rank_hello(conn)
                on_connection(rank, child, conn)
        except Exception as exc:  # surfaced after join
            accept_errors.append(exc)

    acceptors = []
    for rank, srv in listeners.items():
        t = threading.Thread(
            target=accept_all,
            args=(rank, srv, len(topology.children(rank))),
            name=f"tbon-tcp-accept-{rank}",
            daemon=True,
        )
        t.start()
        acceptors.append(t)

    for parent, child in topology.iter_edges():
        sock = socket.create_connection(
            (host, ports[parent]), timeout=connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_rank_hello(sock, child)
        on_connection(child, parent, sock)

    for t in acceptors:
        t.join(connect_timeout)
    if accept_errors:
        for srv in listeners.values():
            srv.close()
        raise TransportError(f"TCP accept failed: {accept_errors[0]}")
    return listeners


class _Connection:
    """One side of a TCP channel: framed writes plus a reader thread."""

    def __init__(
        self,
        sock: socket.socket,
        inbox: Inbox,
        owner_rank: int,
        closing: threading.Event | None = None,
    ):
        self.sock = sock
        self.inbox = inbox
        self.owner_rank = owner_rank
        self._wlock = make_lock("tcp_write")
        self._closed = threading.Event()
        # Transport-wide teardown flag: during an orderly shutdown the
        # peer's FIN may beat our own close(), and that is not an error.
        self._transport_closing = closing or threading.Event()
        self.reader = threading.Thread(
            target=self._read_loop, name=f"tbon-tcp-read-{owner_rank}", daemon=True
        )
        self.reader.start()

    def _read_loop(self) -> None:
        # One reusable receive buffer per connection, grown to the
        # largest frame seen; recv_into writes socket data straight into
        # it and Packet.from_bytes parses a view over it, so a frame
        # costs zero transport-side copies beyond the kernel's.
        hdr_buf = bytearray(_HDR.size)
        hdr_view = memoryview(hdr_buf)
        body_buf = bytearray(65536)
        try:
            # Gate on the transport-wide closing flag *before* blocking in
            # recv, not only in the except clause below: at high fanout,
            # shutdown() closes hundreds of sockets while their readers
            # are parked mid-``recv_into``, and a reader that re-entered
            # the loop just before its socket died would otherwise race
            # past the post-hoc check and log a spurious "terminated".
            while not self._closed.is_set() and not self._transport_closing.is_set():
                _recv_into_exact(self.sock, hdr_view)
                t0 = time.perf_counter() if _TEL.enabled else 0.0
                length, dir_code, src = _HDR.unpack(hdr_buf)
                if length > len(body_buf):
                    body_buf = bytearray(length)
                body_view = memoryview(body_buf)[:length]
                _recv_into_exact(self.sock, body_view)
                packet = Packet.from_bytes(body_view)
                self.inbox.put(
                    Envelope(src=src, direction=_CODE_DIR[dir_code], packet=packet)
                )
                if _TEL.enabled:
                    # Frame-processing latency: body recv + parse + enqueue
                    # (the header wait above is idle time, not work).
                    _m_recv_lat.observe(time.perf_counter() - t0)
                    _m_rx_bytes.inc(_HDR.size + length)
        except (ConnectionError, OSError, ChannelClosedError) as exc:
            # Expected when close() tore the connection down; anything
            # else (peer crash, malformed frame killing from_bytes) must
            # not vanish with the reader thread.
            if not self._closed.is_set() and not self._transport_closing.is_set():
                _LOG.warning(
                    "tcp reader for rank %d terminated: %s", self.owner_rank, exc
                )

    def send(self, src: int, direction: Direction, packet: Packet) -> None:
        self.send_frame(src, direction, packet.to_bytes())

    def send_frame(self, src: int, direction: Direction, body: bytes) -> None:
        """Write one frame via scatter-gather (header and body uncopied)."""
        header = _HDR.pack(len(body), _DIR_CODE[direction], src)
        t0 = time.perf_counter() if _TEL.enabled else 0.0
        with self._wlock:
            try:
                sent = self.sock.sendmsg((header, body))
                total = len(header) + len(body)
                if sent < total:  # rare partial write: finish with sendall
                    rest = (header + body)[sent:]
                    self.sock.sendall(rest)
            except OSError as exc:
                raise ChannelClosedError(f"TCP send failed: {exc}") from exc
        if _TEL.enabled:
            _m_send_lat.observe(time.perf_counter() - t0)
            _m_tx_bytes.inc(len(header) + len(body))

    def close(self) -> None:
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class TCPTransport(Transport):
    """Localhost-TCP channels for every edge of the tree."""

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 10.0):
        super().__init__()
        self.host = host
        self.connect_timeout = connect_timeout
        self._inboxes: dict[int, Inbox] = {}
        # (owner_rank, peer_rank) -> connection used by owner to reach peer
        self._conns: dict[tuple[int, int], _Connection] = {}
        self._listeners: dict[int, socket.socket] = {}
        self._closing = threading.Event()

    @property
    def closing(self) -> bool:
        return self._closing.is_set()

    def bind(self, topology: Topology) -> None:
        if self.topology is not None:
            raise TransportError("transport already bound")
        self.topology = topology
        self._inboxes = {rank: Inbox() for rank in topology.ranks}

        def attach(owner: int, peer: int, sock: socket.socket) -> None:
            self._conns[(owner, peer)] = _Connection(
                sock, self._inboxes[owner], owner, closing=self._closing
            )

        self._listeners = establish_edges(
            self.host, self.connect_timeout, topology, attach
        )
        missing = [
            e for e in topology.iter_edges() if (e[0], e[1]) not in self._conns
        ]
        if missing:
            raise TransportError(f"TCP edges failed to establish: {missing}")

    def inbox(self, rank: int) -> Inbox:
        try:
            return self._inboxes[rank]
        except KeyError:
            raise TransportError(f"rank {rank} has no inbox (not bound?)") from None

    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        self._check_edge(src, dst)
        conn = self._conns.get((src, dst))
        if conn is None:
            raise ChannelClosedError(f"no TCP connection {src}->{dst}")
        conn.send(src, direction, packet)

    def multicast(
        self, src: int, dsts: Sequence[int], direction: Direction, packet: Any
    ) -> None:
        """Serialize-once multicast: one ``to_bytes``, k socket writes."""
        body = packet.to_bytes()
        for dst in dsts:
            self._check_edge(src, dst)
            conn = self._conns.get((src, dst))
            if conn is None:
                raise ChannelClosedError(f"no TCP connection {src}->{dst}")
            conn.send_frame(src, direction, body)

    def shutdown(self) -> None:
        self._closing.set()
        for conn in self._conns.values():
            conn.close()
        for srv in self._listeners.values():
            srv.close()
        for inbox in self._inboxes.values():
            inbox.close()
