"""TCP transport: the process tree over real localhost sockets.

The paper's TBONs "use network transport protocols, like TCP, to
implement data multicast, gather and reduction services"; this transport
runs the identical middleware over genuine TCP connections.  One
listening socket per rank, one connection per tree edge (established
child→parent at bind time), one reader thread per connection side.

Wire format per frame (all little-endian)::

    u32 length | u8 direction (0=up, 1=down) | i32 src rank | packet bytes

Packets are serialized with :meth:`repro.core.packet.Packet.to_bytes`,
which memoizes the whole wire frame (header + counted payload buffer):
:meth:`TCPTransport.multicast` calls ``to_bytes`` exactly once per
k-way multicast and writes the identical buffer to k sockets.  Sends use
scatter-gather ``socket.sendmsg([frame_header, body])`` so the 9-byte
transport header is never concatenated onto the packet bytes, and each
reader thread fills a reusable receive buffer with ``recv_into`` —
no per-chunk allocations on either side of a frame.

The transport binds 127.0.0.1 only; it demonstrates the real-socket data
path, not multi-host deployment (see DESIGN.md, out of scope).
"""

from __future__ import annotations

import logging
import random
import socket
import struct
import threading
import time
from typing import Any, Sequence

from ..analysis.locks import make_lock
from ..core.errors import ChannelClosedError, TransportError
from ..core.events import Direction, Envelope
from ..core.packet import Packet
from ..core.topology import Topology
from ..telemetry.registry import GLOBAL as _TELEMETRY, TELEMETRY as _TEL
from .base import Inbox, Transport

__all__ = [
    "TCPTransport",
    "establish_edges",
    "connect_with_backoff",
    "send_rank_hello",
    "recv_rank_hello",
]

_LOG = logging.getLogger(__name__)

# Process-wide transport instruments (GLOBAL registry: sockets are shared
# process infrastructure, not per-node state).  Created once at import so
# the disabled hot path stays a single ``_TEL.enabled`` attribute check.
_m_tx_bytes = _TELEMETRY.counter(
    "tbon_transport_bytes_total", {"transport": "tcp", "direction": "sent"}
)
_m_rx_bytes = _TELEMETRY.counter(
    "tbon_transport_bytes_total", {"transport": "tcp", "direction": "received"}
)
_m_send_lat = _TELEMETRY.histogram(
    "tbon_transport_send_seconds", {"transport": "tcp"}
)
_m_recv_lat = _TELEMETRY.histogram(
    "tbon_transport_recv_seconds", {"transport": "tcp"}
)
# Recovery instruments shared by both socket transports (the Registry's
# get-or-create semantics make this the same counter object the reactor
# module and docs/RELIABILITY.md refer to).
_m_reconnects = _TELEMETRY.counter("tbon_recovery_reconnects_total")

_HDR = struct.Struct("<IBi")
_RANK_HELLO = struct.Struct("<i")

# Direction <-> u8 wire code; the codes themselves live on Direction so
# the threaded and reactor framers share one encoding.
_DIR_CODE = {d: d.wire_code for d in Direction}
_CODE_DIR = {d.wire_code: d for d in Direction}


def _recv_into_exact(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket (no intermediate buffers)."""
    while view:
        got = sock.recv_into(view)
        if not got:
            raise ConnectionError("peer closed")
        view = view[got:]


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Compatibility helper for fixed-size reads (handshake, tests)."""
    buf = bytearray(n)
    _recv_into_exact(sock, memoryview(buf))
    return bytes(buf)


def send_rank_hello(sock: socket.socket, rank: int) -> None:
    """Blocking half of the connect handshake: announce our rank.

    Lives here (not in the reactor module) because bind-time sockets are
    still blocking; the reactor package is forbidden from issuing direct
    blocking socket calls (tboncheck TB601).
    """
    sock.sendall(_RANK_HELLO.pack(rank))


def recv_rank_hello(sock: socket.socket) -> int:
    """Blocking accept half of the handshake: read the peer's rank."""
    (rank,) = _RANK_HELLO.unpack(_recv_exact(sock, _RANK_HELLO.size))
    return rank


def establish_edges(
    host: str,
    connect_timeout: float,
    topology: Topology,
    on_connection: Any,
) -> dict[int, socket.socket]:
    """Open every tree-edge socket pair and hand them to ``on_connection``.

    One listening socket per rank with children; children connect
    child→parent and announce themselves with the rank hello.  Each
    established socket (TCP_NODELAY set, still blocking) is passed to
    ``on_connection(owner_rank, peer_rank, sock)`` — once for the
    parent-side socket and once for the child-side socket of each edge.
    Accepting runs on transient per-listener threads so a wide flat
    topology binds in one round trip, not fanout round trips.

    Shared by the threaded and reactor transports; returns the listener
    sockets by rank (the caller owns closing them at shutdown).
    """
    listeners: dict[int, socket.socket] = {}
    ports: dict[int, int] = {}
    for rank in topology.ranks:
        if topology.children(rank):
            srv = socket.create_server((host, 0))
            srv.settimeout(connect_timeout)
            listeners[rank] = srv
            ports[rank] = srv.getsockname()[1]

    accept_errors: list[Exception] = []

    def accept_all(rank: int, srv: socket.socket, n: int) -> None:
        try:
            for _ in range(n):
                conn, _addr = srv.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                child = recv_rank_hello(conn)
                on_connection(rank, child, conn)
        except Exception as exc:  # surfaced after join
            accept_errors.append(exc)

    acceptors = []
    for rank, srv in listeners.items():
        t = threading.Thread(
            target=accept_all,
            args=(rank, srv, len(topology.children(rank))),
            name=f"tbon-tcp-accept-{rank}",
            daemon=True,
        )
        t.start()
        acceptors.append(t)

    for parent, child in topology.iter_edges():
        sock = socket.create_connection(
            (host, ports[parent]), timeout=connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_rank_hello(sock, child)
        on_connection(child, parent, sock)

    for t in acceptors:
        t.join(connect_timeout)
    if accept_errors:
        for srv in listeners.values():
            srv.close()
        raise TransportError(f"TCP accept failed: {accept_errors[0]}")
    return listeners


def connect_with_backoff(
    host: str,
    port: int,
    rank: int,
    *,
    connect_timeout: float,
    attempts: int = 6,
    base_delay: float = 0.05,
    max_delay: float = 1.0,
    rng: random.Random | None = None,
) -> socket.socket:
    """Connect to a listener and announce ``rank``, retrying with backoff.

    Recovery-path counterpart of the bind-time ``create_connection``:
    while an edge is being repaired the peer's accept thread may not be
    up yet, so connection refusals are retried with capped exponential
    backoff plus jitter (``delay = min(base * 2^n, cap) * U[0.5, 1.0)``
    — the jitter keeps k children re-parented onto one grandparent from
    hammering its listener in lockstep).  Raises
    :class:`TransportError` once the attempts are exhausted.
    """
    jitter = (rng or random).random
    last: Exception | None = None
    for attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_rank_hello(sock, rank)
            return sock
        except OSError as exc:
            last = exc
            delay = min(base_delay * (2**attempt), max_delay)
            time.sleep(delay * (0.5 + jitter() / 2))
    raise TransportError(
        f"rank {rank} could not reconnect to {host}:{port} "
        f"after {attempts} attempts: {last}"
    )


class _Connection:
    """One side of a TCP channel: framed writes plus a reader thread."""

    def __init__(
        self,
        sock: socket.socket,
        inbox: Inbox,
        owner_rank: int,
        closing: threading.Event | None = None,
    ):
        self.sock = sock
        self.inbox = inbox
        self.owner_rank = owner_rank
        self._wlock = make_lock("tcp_write")
        self._closed = threading.Event()
        # Per-edge teardown flag: recovery tears individual channels down
        # (dead-node disconnect, rebind dropping stale edges) while the
        # transport as a whole keeps running, so the reader needs an
        # edge-local analogue of the transport-wide flag below.
        self._expected = threading.Event()
        # Transport-wide teardown flag: during an orderly shutdown the
        # peer's FIN may beat our own close(), and that is not an error.
        self._transport_closing = closing or threading.Event()
        self.reader = threading.Thread(
            target=self._read_loop, name=f"tbon-tcp-read-{owner_rank}", daemon=True
        )
        self.reader.start()

    def expect_close(self) -> None:
        """Mark the coming teardown of this edge as orderly.

        Both sides of a recovered edge live in this process, so the
        peer's reader would otherwise observe our close as a peer crash
        and log a spurious termination warning.
        """
        self._expected.set()

    @property
    def _teardown(self) -> bool:
        return (
            self._closed.is_set()
            or self._expected.is_set()
            or self._transport_closing.is_set()
        )

    def _read_loop(self) -> None:
        # One reusable receive buffer per connection, grown to the
        # largest frame seen; recv_into writes socket data straight into
        # it and Packet.from_bytes parses a view over it, so a frame
        # costs zero transport-side copies beyond the kernel's.
        hdr_buf = bytearray(_HDR.size)
        hdr_view = memoryview(hdr_buf)
        body_buf = bytearray(65536)
        try:
            # Gate on the transport-wide closing flag *before* blocking in
            # recv, not only in the except clause below: at high fanout,
            # shutdown() closes hundreds of sockets while their readers
            # are parked mid-``recv_into``, and a reader that re-entered
            # the loop just before its socket died would otherwise race
            # past the post-hoc check and log a spurious "terminated".
            while not self._teardown:
                _recv_into_exact(self.sock, hdr_view)
                t0 = time.perf_counter() if _TEL.enabled else 0.0
                length, dir_code, src = _HDR.unpack(hdr_buf)
                if length > len(body_buf):
                    body_buf = bytearray(length)
                body_view = memoryview(body_buf)[:length]
                _recv_into_exact(self.sock, body_view)
                packet = Packet.from_bytes(body_view)
                self.inbox.put(
                    Envelope(src=src, direction=_CODE_DIR[dir_code], packet=packet)
                )
                if _TEL.enabled:
                    # Frame-processing latency: body recv + parse + enqueue
                    # (the header wait above is idle time, not work).
                    _m_recv_lat.observe(time.perf_counter() - t0)
                    _m_rx_bytes.inc(_HDR.size + length)
        except (ConnectionError, OSError, ChannelClosedError) as exc:
            # Expected when close() tore the connection down; anything
            # else (peer crash, malformed frame killing from_bytes) must
            # not vanish with the reader thread.
            if not self._teardown:
                _LOG.warning(
                    "tcp reader for rank %d terminated: %s", self.owner_rank, exc
                )

    def send(self, src: int, direction: Direction, packet: Packet) -> None:
        self.send_frame(src, direction, packet.to_bytes())

    def send_frame(self, src: int, direction: Direction, body: bytes) -> None:
        """Write one frame via scatter-gather (header and body uncopied)."""
        header = _HDR.pack(len(body), _DIR_CODE[direction], src)
        t0 = time.perf_counter() if _TEL.enabled else 0.0
        with self._wlock:
            try:
                sent = self.sock.sendmsg((header, body))
                total = len(header) + len(body)
                if sent < total:  # rare partial write: finish with sendall
                    rest = (header + body)[sent:]
                    self.sock.sendall(rest)
            except OSError as exc:
                raise ChannelClosedError(f"TCP send failed: {exc}") from exc
        if _TEL.enabled:
            _m_send_lat.observe(time.perf_counter() - t0)
            _m_tx_bytes.inc(len(header) + len(body))

    def close(self) -> None:
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class _EdgeRepairMixin:
    """Live-reconfiguration machinery shared by the socket transports.

    Both the threaded and reactor transports keep the same bookkeeping —
    ``_conns[(owner, peer)]``, ``_listeners[rank]``, ``_inboxes[rank]`` —
    so everything recovery needs (dropping the dead node's channels,
    re-listening, reconnecting re-parented children with backoff) is
    implementation-independent; subclasses supply only the two hooks
    that differ, :meth:`_attach` (wrap an established socket in their
    connection type) and :meth:`_drop_conn` (tear one channel down).

    The blocking accept/connect calls here run on the recovery caller's
    thread, never on a reactor event loop — which is also why this lives
    in the tcp module and not the reactor one (tboncheck TB601).
    """

    host: str
    connect_timeout: float
    _inboxes: dict[int, Inbox]
    _listeners: dict[int, socket.socket]
    _conns: dict[tuple[int, int], Any]
    topology: Topology | None

    def _attach(self, owner: int, peer: int, sock: socket.socket) -> None:
        raise NotImplementedError

    def _drop_conn(self, key: tuple[int, int], *, expected: bool = True) -> Any:
        raise NotImplementedError

    def _listener_for(self, rank: int) -> socket.socket:
        """The rank's listening socket, created lazily for new parents
        (a back-end promoted to carry re-parented children, or a rank
        whose listener died with the crash being repaired)."""
        srv = self._listeners.get(rank)
        if srv is None:
            srv = socket.create_server((self.host, 0))
            srv.settimeout(self.connect_timeout)
            self._listeners[rank] = srv
        return srv

    def _establish_missing(self, edges: Sequence[tuple[int, int]]) -> None:
        """Open sockets for ``edges`` (parent, child), hello-handshaken.

        Mirrors bind-time :func:`establish_edges` — transient accept
        thread per parent, child side connecting with
        :func:`connect_with_backoff` — but against the live transport's
        connection table.
        """
        if not edges:
            return
        by_parent: dict[int, list[int]] = {}
        for parent, child in edges:
            by_parent.setdefault(parent, []).append(child)
        errors: list[Exception] = []

        def accept_n(rank: int, srv: socket.socket, n: int) -> None:
            try:
                for _ in range(n):
                    sock, _addr = srv.accept()
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    child = recv_rank_hello(sock)
                    self._attach(rank, child, sock)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        acceptors = []
        ports: dict[int, int] = {}
        for parent, kids in by_parent.items():
            srv = self._listener_for(parent)
            ports[parent] = srv.getsockname()[1]
            t = threading.Thread(
                target=accept_n,
                args=(parent, srv, len(kids)),
                name=f"tbon-reaccept-{parent}",
                daemon=True,
            )
            t.start()
            acceptors.append(t)
        for parent, kids in by_parent.items():
            for child in kids:
                sock = connect_with_backoff(
                    self.host, ports[parent], child,
                    connect_timeout=self.connect_timeout,
                )
                self._attach(child, parent, sock)
        for t in acceptors:
            t.join(self.connect_timeout)
        if errors:
            raise TransportError(f"edge repair failed: {errors[0]}")
        still = [e for e in edges if e not in self._conns]
        if still:
            raise TransportError(f"edges failed to re-establish: {still}")
        if _TEL.enabled:
            _m_reconnects.inc(len(edges))

    #: True while :meth:`rebind` swaps edges — the new topology is
    #: visible before its connections exist, and senders (node event
    #: loops) use this to classify failures in that window as the
    #: documented reconfiguration loss, not node errors.
    rebinding = False

    def _mark_expected(self, keys: list[tuple[int, int]]) -> None:
        """Flag every channel in ``keys`` as expecting an orderly close.

        Must happen *before* the first socket of the batch is closed:
        closing one direction delivers EOF on its paired reverse channel,
        and the reader/reactor must already know that close is expected
        or it logs a spurious termination warning (the teardown race).
        """
        for key in keys:
            conn = self._conns.get(key)
            if conn is not None:
                conn.expect_close()

    def rebind(self, topology: Topology) -> None:
        """Adopt a reconfigured topology on live sockets.

        Surviving edges keep their connections (and any frames queued on
        them — no data loss on channels that did not break); channels to
        ranks that left the tree are closed orderly; edges the new tree
        introduces (children re-parented onto the grandparent, attached
        back-ends) are established with backoff, so a subsequent
        topology push can travel over the repaired channels themselves.
        """
        if self.topology is None:
            raise TransportError("transport is not bound")
        self.rebinding = True
        try:
            keep: set[tuple[int, int]] = set()
            for parent, child in topology.iter_edges():
                keep.add((parent, child))
                keep.add((child, parent))
            stale = [k for k in self._conns if k not in keep]
            self._mark_expected(stale)
            for key in stale:
                self._drop_conn(key)
            for rank in [r for r in self._listeners if r not in topology]:
                self._listeners.pop(rank).close()
            for rank in topology.ranks:
                self._inboxes.setdefault(rank, Inbox())
            self.topology = topology
            self._establish_missing(
                [e for e in topology.iter_edges() if e not in self._conns]
            )
        finally:
            self.rebinding = False

    def disconnect_rank(self, rank: int) -> None:
        """Sever every channel touching ``rank`` (crash semantics).

        Used by failure injection before the node's inbox closes: a
        crashed process takes its sockets with it.  Surviving peers'
        readers see the close as orderly (per-edge expected flag) — the
        recovery layer, not a log warning, is what reports the failure.
        """
        keys = [k for k in self._conns if rank in k]
        self._mark_expected(keys)
        for key in keys:
            self._drop_conn(key)
        srv = self._listeners.pop(rank, None)
        if srv is not None:
            srv.close()

    def reset_edge(self, a: int, b: int) -> None:
        """Tear down the channel pair of edge ``(a, b)`` mid-run.

        The chaos engine's connection-reset fault: frames queued on the
        edge are lost, subsequent sends raise
        :class:`ChannelClosedError` until :meth:`reconnect_edge`
        repairs it.
        """
        self._mark_expected([(a, b), (b, a)])
        found = False
        for key in ((a, b), (b, a)):
            if self._drop_conn(key) is not None:
                found = True
        if not found:
            raise TransportError(f"({a}, {b}) has no live connection to reset")

    def reconnect_edge(self, parent: int, child: int) -> None:
        """Re-establish one tree edge (the repair half of a reset)."""
        self._mark_expected([(parent, child), (child, parent)])
        for key in ((parent, child), (child, parent)):
            self._drop_conn(key)
        self._establish_missing([(parent, child)])


class TCPTransport(_EdgeRepairMixin, Transport):
    """Localhost-TCP channels for every edge of the tree."""

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 10.0):
        super().__init__()
        self.host = host
        self.connect_timeout = connect_timeout
        self._inboxes: dict[int, Inbox] = {}
        # (owner_rank, peer_rank) -> connection used by owner to reach peer
        self._conns: dict[tuple[int, int], _Connection] = {}
        self._listeners: dict[int, socket.socket] = {}
        self._closing = threading.Event()

    @property
    def closing(self) -> bool:
        return self._closing.is_set()

    def _attach(self, owner: int, peer: int, sock: socket.socket) -> None:
        self._conns[(owner, peer)] = _Connection(
            sock, self._inboxes[owner], owner, closing=self._closing
        )

    def _drop_conn(
        self, key: tuple[int, int], *, expected: bool = True
    ) -> _Connection | None:
        conn = self._conns.pop(key, None)
        if conn is not None:
            if expected:
                conn.expect_close()
            conn.close()
        return conn

    def bind(self, topology: Topology) -> None:
        if self.topology is not None:
            raise TransportError("transport already bound")
        self.topology = topology
        self._inboxes = {rank: Inbox() for rank in topology.ranks}
        self._listeners = establish_edges(
            self.host, self.connect_timeout, topology, self._attach
        )
        missing = [
            e for e in topology.iter_edges() if (e[0], e[1]) not in self._conns
        ]
        if missing:
            raise TransportError(f"TCP edges failed to establish: {missing}")

    def inbox(self, rank: int) -> Inbox:
        try:
            return self._inboxes[rank]
        except KeyError:
            raise TransportError(f"rank {rank} has no inbox (not bound?)") from None

    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        self._check_edge(src, dst)
        conn = self._conns.get((src, dst))
        if conn is None:
            raise ChannelClosedError(f"no TCP connection {src}->{dst}")
        conn.send(src, direction, packet)

    def multicast(
        self, src: int, dsts: Sequence[int], direction: Direction, packet: Any
    ) -> None:
        """Serialize-once multicast: one ``to_bytes``, k socket writes."""
        body = packet.to_bytes()
        for dst in dsts:
            self._check_edge(src, dst)
            conn = self._conns.get((src, dst))
            if conn is None:
                raise ChannelClosedError(f"no TCP connection {src}->{dst}")
            conn.send_frame(src, direction, body)

    def shutdown(self) -> None:
        self._closing.set()
        for conn in self._conns.values():
            conn.close()
        for srv in self._listeners.values():
            srv.close()
        for inbox in self._inboxes.values():
            inbox.close()
