"""Agglomerative (hierarchical) clustering, single-node and as a filter.

Section 2.3: "In agglomerative clustering [15], a data set with N
elements is initially partitioned into N clusters each containing a
single element.  Larger clusters are formed by iteratively merging
nearest-neighbor clusters."  The TBON mapping (Figure 2) reduces this to
an equivalence-class filter: leaves summarize local points into weighted
cluster summaries; internal nodes merge their children's summaries and
re-agglomerate, so the output has the same *form* as the input — the
defining property of a TBON-friendly data reduction.

Cluster summaries are ``(centroid, weight)`` pairs; merging two
summaries produces the weighted centroid of their union, which keeps
the reduction exact for centroid positions (centroid linkage on
summaries approximates centroid linkage on raw points — the standard
trade-off in distributed agglomeration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import TBONError
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet

__all__ = [
    "ClusterSummary",
    "agglomerate",
    "summarize_points",
    "AgglomerativeFilter",
    "AGGLOMERATIVE_FMT",
]

#: Packet format: centroid matrix (k, 2) + weights vector (k,).
AGGLOMERATIVE_FMT = "%am %af"


@dataclass
class ClusterSummary:
    """Weighted cluster summaries: (k, d) centroids and (k,) weights."""

    centroids: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.centroids = np.asarray(self.centroids, dtype=np.float64).reshape(
            -1, self.centroids.shape[-1] if np.ndim(self.centroids) > 1 else 2
        )
        self.weights = np.asarray(self.weights, dtype=np.float64).ravel()
        if len(self.centroids) != len(self.weights):
            raise TBONError(
                f"{len(self.centroids)} centroids vs {len(self.weights)} weights"
            )

    @property
    def k(self) -> int:
        return len(self.weights)


def agglomerate(summary: ClusterSummary, merge_distance: float) -> ClusterSummary:
    """Merge nearest clusters until all pairs are ``merge_distance`` apart.

    Classic greedy nearest-neighbor agglomeration with centroid linkage:
    repeatedly merge the closest pair while its distance is below the
    threshold; the merged centroid is the weight-weighted mean.
    """
    cents = summary.centroids.copy()
    wts = summary.weights.copy()
    if len(cents) <= 1:
        return ClusterSummary(cents, wts)
    alive = np.ones(len(cents), dtype=bool)
    while alive.sum() > 1:
        idx = np.nonzero(alive)[0]
        sub = cents[idx]
        d = np.linalg.norm(sub[:, None, :] - sub[None, :, :], axis=2)
        np.fill_diagonal(d, np.inf)
        flat = d.argmin()
        i, j = np.unravel_index(flat, d.shape)
        if d[i, j] >= merge_distance:
            break
        a, b = idx[i], idx[j]
        total = wts[a] + wts[b]
        cents[a] = (cents[a] * wts[a] + cents[b] * wts[b]) / total
        wts[a] = total
        alive[b] = False
    return ClusterSummary(cents[alive], wts[alive])


def summarize_points(
    points: np.ndarray, merge_distance: float
) -> ClusterSummary:
    """Leaf step: every point starts as its own weight-1 cluster.

    For large inputs a grid pre-pass bins points into cells of size
    ``merge_distance`` first (same result regime, avoids the O(n²) pair
    scan on raw points).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise TBONError(f"expected (n, d) points, got {pts.shape}")
    if len(pts) > 256:
        # Grid pre-aggregation: points sharing a cell merge immediately.
        cells = np.floor(pts / merge_distance).astype(np.int64)
        order = np.lexsort(tuple(cells[:, c] for c in range(cells.shape[1] - 1, -1, -1)))
        sc, sp = cells[order], pts[order]
        boundaries = np.any(np.diff(sc, axis=0) != 0, axis=1)
        starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1, [len(sp)]))
        cents = np.array([sp[a:b].mean(axis=0) for a, b in zip(starts[:-1], starts[1:])])
        wts = (starts[1:] - starts[:-1]).astype(np.float64)
        summary = ClusterSummary(cents, wts)
    else:
        summary = ClusterSummary(pts, np.ones(len(pts)))
    return agglomerate(summary, merge_distance)


@register_transform("agglomerative")
class AgglomerativeFilter(TransformationFilter):
    """Equivalence-class merge of children's cluster summaries.

    Parameters:
        merge_distance: centroid-linkage threshold (required).
    """

    def __init__(self, **params):
        super().__init__(**params)
        if "merge_distance" not in params:
            raise TBONError("agglomerative filter requires merge_distance")
        self.merge_distance = float(params["merge_distance"])
        self.waves = 0

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        cents = np.concatenate([p.values[0] for p in packets], axis=0)
        wts = np.concatenate([p.values[1] for p in packets], axis=0)
        merged = agglomerate(ClusterSummary(cents, wts), self.merge_distance)
        self.waves += 1
        return packets[0].with_values(
            [merged.centroids, merged.weights], fmt=AGGLOMERATIVE_FMT
        )
