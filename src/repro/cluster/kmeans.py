"""K-means clustering, single-node and TBON-distributed.

Section 2.3 maps partitioning clusterers onto the TBON equivalence-class
filter computation (Figure 2): "K-means ... defines and iteratively
refines k centroids, one for each cluster, associating each data point
with its nearest centroid based on distance measures."

The distributed form is the classic reduction: per Lloyd iteration each
back-end assigns its local points to the current centroids and ships the
per-centroid ``(sum, count)`` statistics upstream; the tree's ``sum``
filter adds them level by level, and the front-end recomputes centroids
and multicasts them back down.  The result is *bit-identical* to the
single-node Lloyd iteration on the union of the leaf data — asserted by
the test suite — because summation is associative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network

__all__ = ["KMeansResult", "kmeans", "assign", "distributed_kmeans"]

_TAG_CENTROIDS = FIRST_APPLICATION_TAG + 10
_TAG_STATS = FIRST_APPLICATION_TAG + 11


@dataclass
class KMeansResult:
    """Converged centroids plus iteration metadata."""

    centroids: np.ndarray
    iterations: int
    inertia: float


def assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for every point."""
    pts = np.asarray(points, dtype=np.float64)
    cen = np.asarray(centroids, dtype=np.float64)
    d = ((pts[:, None, :] - cen[None, :, :]) ** 2).sum(axis=2)
    return d.argmin(axis=1)


def _stats(points: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-centroid coordinate sums and counts for one assignment pass."""
    k = len(centroids)
    labels = assign(points, centroids)
    sums = np.zeros((k, points.shape[1]))
    counts = np.zeros(k, dtype=np.int64)
    np.add.at(sums, labels, points)
    np.add.at(counts, labels, 1)
    return sums, counts


def _update(
    centroids: np.ndarray, sums: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """New centroids from summed statistics (empty clusters keep position)."""
    new = centroids.copy()
    nonzero = counts > 0
    new[nonzero] = sums[nonzero] / counts[nonzero, None]
    return new


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int = 0,
    init: np.ndarray | None = None,
) -> KMeansResult:
    """Single-node Lloyd's algorithm [14, 20].

    Initialization is a deterministic sample of ``k`` distinct points
    (or an explicit ``init`` array so distributed runs can share it).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise TBONError(f"kmeans expects (n, d) data, got shape {pts.shape}")
    if not 1 <= k <= len(pts):
        raise TBONError(f"k must be in [1, {len(pts)}], got {k}")
    if init is None:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(pts), size=k, replace=False)
        centroids = pts[idx].copy()
    else:
        centroids = np.asarray(init, dtype=np.float64).copy()
        if centroids.shape != (k, pts.shape[1]):
            raise TBONError(
                f"init must be ({k}, {pts.shape[1]}), got {centroids.shape}"
            )
    iters = 0
    for _ in range(max_iter):
        iters += 1
        sums, counts = _stats(pts, centroids)
        new = _update(centroids, sums, counts)
        delta = np.linalg.norm(new - centroids)
        centroids = new
        if delta < tol:
            break
    labels = assign(pts, centroids)
    inertia = float(((pts - centroids[labels]) ** 2).sum())
    return KMeansResult(centroids=centroids, iterations=iters, inertia=inertia)


def distributed_kmeans(
    net: Network,
    leaf_points: dict[int, np.ndarray],
    k: int,
    init: np.ndarray,
    *,
    max_iter: int = 100,
    tol: float = 1e-6,
    timeout: float = 30.0,
) -> KMeansResult:
    """Lloyd's algorithm over a live TBON.

    Args:
        net: an instantiated network.
        leaf_points: local data per back-end rank (every back-end of
            ``net`` must be present).
        k: cluster count.
        init: (k, d) initial centroids (shared with the single-node run
            for equivalence testing).
        max_iter/tol: identical to :func:`kmeans`.
        timeout: per-iteration receive timeout.

    Protocol per iteration: the front-end multicasts the centroids
    downstream; every back-end answers with flattened ``(sums, counts)``
    on a ``sum``-filtered stream; the front-end updates and repeats.
    """
    dim = init.shape[1]
    missing = [r for r in net.topology.backends if r not in leaf_points]
    if missing:
        raise TBONError(f"leaf_points missing back-end ranks {missing}")

    stream = net.new_stream(transform="sum", sync="wait_for_all")

    def leaf_loop(be) -> None:
        be.wait_for_stream(stream.stream_id)
        pts = np.asarray(leaf_points[be.rank], dtype=np.float64)
        while True:
            pkt = be.recv(timeout=timeout, stream_id=stream.stream_id)
            if pkt.tag != _TAG_CENTROIDS:
                continue
            flat = pkt.values[0]
            if flat.size == 0:  # termination signal
                return
            centroids = flat.reshape(k, dim)
            sums, counts = _stats(pts, centroids)
            be.send(
                stream.stream_id,
                _TAG_STATS,
                "%af %ad",
                sums.ravel(),
                counts,
            )

    threads = net.run_backends(leaf_loop, join=False)
    centroids = np.asarray(init, dtype=np.float64).copy()
    iters = 0
    try:
        for _ in range(max_iter):
            iters += 1
            stream.send(_TAG_CENTROIDS, "%af", centroids.ravel())
            pkt = stream.recv(timeout=timeout)
            sums = pkt.values[0].reshape(k, dim)
            counts = pkt.values[1]
            new = _update(centroids, sums, counts)
            delta = np.linalg.norm(new - centroids)
            centroids = new
            if delta < tol:
                break
    finally:
        stream.send(_TAG_CENTROIDS, "%af", np.empty(0))  # release leaf loops
        for t in threads:
            t.join(timeout)
        stream.close(timeout)

    # Inertia over the union (computed at the front-end from leaf data
    # the caller already holds; a production tool would reduce this too).
    all_pts = np.concatenate([leaf_points[r] for r in net.topology.backends])
    labels = assign(all_pts, centroids)
    inertia = float(((all_pts - centroids[labels]) ** 2).sum())
    return KMeansResult(centroids=centroids, iterations=iters, inertia=inertia)
