"""Synthetic feature-space data for the mean-shift case study.

Section 3.1: "The data at the leaf nodes is synthetically generated.
The data about each cluster center is generated using a random Gaussian
distribution.  The cluster centers are slightly shifted in each leaf
node as they might be in feature tracking in video processing or when
processing images with non-uniform illumination."

All generation is deterministic from an explicit seed (one
:class:`numpy.random.Generator` per call), and a leaf's dataset depends
only on ``(seed, leaf_index)`` so distributed and single-node runs can
operate on exactly the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import TBONError

__all__ = ["ClusterSpec", "make_clusters", "leaf_dataset", "full_dataset"]

#: Default cluster layout: well-separated modes in a 1000x1000 "image",
#: scaled for the paper's bandwidth of 50.
DEFAULT_CENTERS = np.array(
    [[200.0, 200.0], [800.0, 250.0], [500.0, 700.0], [250.0, 820.0]]
)
DEFAULT_STD = 30.0


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters of one synthetic feature-space workload.

    Attributes:
        centers: (k, 2) base cluster centers.
        std: Gaussian standard deviation around each center.
        points_per_cluster: samples drawn per cluster per leaf.
        center_jitter: per-leaf shift scale applied to every center (the
            paper's "slightly shifted in each leaf node").
        noise_fraction: fraction of points drawn uniformly over the
            bounding box (background clutter; 0 disables).
    """

    centers: np.ndarray = None  # type: ignore[assignment]
    std: float = DEFAULT_STD
    points_per_cluster: int = 500
    center_jitter: float = 10.0
    noise_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.centers is None:
            object.__setattr__(self, "centers", DEFAULT_CENTERS.copy())
        c = np.asarray(self.centers, dtype=np.float64)
        if c.ndim != 2 or c.shape[1] != 2:
            raise TBONError(f"centers must be (k, 2), got {c.shape}")
        object.__setattr__(self, "centers", c)
        if self.points_per_cluster < 1:
            raise TBONError("points_per_cluster must be >= 1")
        if not 0.0 <= self.noise_fraction < 1.0:
            raise TBONError("noise_fraction must be in [0, 1)")


def make_clusters(
    centers: np.ndarray,
    std: float,
    points_per_cluster: int,
    rng: np.random.Generator,
    noise_fraction: float = 0.0,
) -> np.ndarray:
    """Draw Gaussian blobs (plus optional uniform clutter) around centers."""
    centers = np.asarray(centers, dtype=np.float64)
    blobs = [
        rng.normal(loc=c, scale=std, size=(points_per_cluster, 2)) for c in centers
    ]
    pts = np.concatenate(blobs, axis=0)
    if noise_fraction > 0:
        n_noise = int(len(pts) * noise_fraction / (1 - noise_fraction))
        lo = pts.min(axis=0) - 2 * std
        hi = pts.max(axis=0) + 2 * std
        noise = rng.uniform(lo, hi, size=(n_noise, 2))
        pts = np.concatenate([pts, noise], axis=0)
    return pts


def leaf_dataset(
    leaf_index: int, spec: ClusterSpec = ClusterSpec(), seed: int = 0
) -> np.ndarray:
    """The dataset generated *at* one leaf.

    Deterministic in ``(seed, leaf_index)``; the cluster centers are
    jittered per leaf with scale ``spec.center_jitter``, modelling an
    array of cameras viewing slightly different scenes [28].
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, leaf_index]))
    shifts = rng.normal(scale=spec.center_jitter, size=spec.centers.shape)
    return make_clusters(
        spec.centers + shifts,
        spec.std,
        spec.points_per_cluster,
        rng,
        spec.noise_fraction,
    )


def full_dataset(
    n_leaves: int, spec: ClusterSpec = ClusterSpec(), seed: int = 0
) -> np.ndarray:
    """Union of all leaf datasets — the single-node workload.

    The paper scales the problem with the leaf count ("the input size
    scales with the number of back-ends"), so the single-node series at
    scale factor *s* processes the concatenation of *s* leaf datasets.
    """
    if n_leaves < 1:
        raise TBONError("n_leaves must be >= 1")
    return np.concatenate(
        [leaf_dataset(i, spec, seed) for i in range(n_leaves)], axis=0
    )
