"""Distributed mean-shift as a TBON transformation filter.

Section 3.1's distributed algorithm: "each leaf node gets a part of the
data set.  Each node applies the mean shift procedure then sends the
resulting data set and the list of peaks to the next higher node in the
network.  Each parent node merges the data sets of its children and then
applies the mean shift procedure to the new data set using the peaks
determined by child nodes as the starting points."

The "resulting data set" a node forwards is the mean-shift-*reduced*
form of its input: after the shift the data has concentrated near the
modes, so it is collapsed to weighted grid representatives
(:func:`repro.cluster.meanshift.collapse_points`).  This is what makes
mean-shift a TBON data reduction (output smaller than input) and what
bounds an internal node's work by its fan-out rather than its subtree
size — the property behind the paper's near-constant deep-tree times.
Setting ``collapse_cell=0`` disables the reduction and forwards raw
merged data (useful for studying the non-reducing variant).

Packets on a mean-shift stream carry ``"%am %af %am"``: the data
matrix (n, 2), per-point weights (n,), and the peak list (k, 2).
:func:`leaf_mean_shift` produces a back-end's payload;
:class:`MeanShiftFilter` is the parent-node merge, registered as
``mean_shift`` (and loadable dynamically as
``"repro.cluster.meanshift_filter:MeanShiftFilter"``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet
from .meanshift import (
    DEFAULT_BANDWIDTH,
    MeanShiftResult,
    collapse_points,
    mean_shift,
    merge_peaks,
)

__all__ = ["leaf_mean_shift", "MeanShiftFilter", "MEANSHIFT_FMT"]

#: Stream packet format: data matrix, weights vector, peaks matrix.
MEANSHIFT_FMT = "%am %af %am"


def leaf_mean_shift(
    points: np.ndarray,
    bandwidth: float = DEFAULT_BANDWIDTH,
    kernel: str = "gaussian",
    density_threshold: float = 3.0,
    collapse_cell: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, MeanShiftResult]:
    """Run the local mean-shift step at a back-end.

    Returns ``(data, weights, peaks, result)`` where the first three are
    the upstream payload: the collapsed data set, its weights, and the
    local peaks.  ``collapse_cell`` defaults to ``bandwidth / 2``; pass
    ``0`` to forward the raw points with unit weights.
    """
    pts = np.asarray(points, dtype=np.float64)
    res = mean_shift(
        pts,
        bandwidth=bandwidth,
        kernel=kernel,
        density_threshold=density_threshold,
    )
    cell = bandwidth / 2 if collapse_cell is None else collapse_cell
    if cell > 0:
        data, weights = collapse_points(pts, cell=cell)
    else:
        data, weights = pts, np.ones(len(pts))
    return data, weights, res.peaks, res


@register_transform("mean_shift")
class MeanShiftFilter(TransformationFilter):
    """Parent-node merge step of the distributed mean-shift.

    Parameters (via stream ``transform_params``):
        bandwidth: window scale (default 50, the paper's choice).
        kernel: shape function name (default ``"gaussian"``).
        collapse_cell: grid resolution for the forwarded data set
            (default ``bandwidth / 2``); ``0`` forwards raw merged data,
            which makes upstream packets grow with subtree size — the
            non-reducing variant whose front-end consolidation cost is
            the flat-tree bottleneck.

    Persistent state: cumulative iteration/work counters, exposed for
    calibration and tests.
    """

    def __init__(self, **params):
        super().__init__(**params)
        self.bandwidth = float(params.get("bandwidth", DEFAULT_BANDWIDTH))
        self.kernel = params.get("kernel", "gaussian")
        cc = params.get("collapse_cell")
        self.collapse_cell = self.bandwidth / 2 if cc is None else float(cc)
        self.total_iterations = 0
        self.total_point_iter = 0
        self.waves = 0

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        datasets = [p.values[0] for p in packets if len(p.values[0])]
        weight_lists = [p.values[1] for p in packets if len(p.values[1])]
        peak_lists = [p.values[2] for p in packets if len(p.values[2])]
        merged_data = np.concatenate(datasets or [np.empty((0, 2))], axis=0)
        merged_w = np.concatenate(weight_lists or [np.empty(0)], axis=0)
        seed_peaks = np.concatenate(peak_lists or [np.empty((0, 2))], axis=0)

        if len(seed_peaks) == 0 or len(merged_data) == 0:
            out_peaks = merge_peaks(seed_peaks, radius=self.bandwidth / 2)
        else:
            res = mean_shift(
                merged_data,
                bandwidth=self.bandwidth,
                kernel=self.kernel,
                starts=seed_peaks,
                weights=merged_w,
            )
            out_peaks = res.peaks
            self.total_iterations += res.iterations
            self.total_point_iter += res.point_iter_products
        if self.collapse_cell > 0 and len(merged_data):
            out_data, out_w = collapse_points(
                merged_data, merged_w, cell=self.collapse_cell
            )
        else:
            out_data, out_w = merged_data, merged_w
        self.waves += 1
        return packets[0].with_values(
            [out_data, out_w, out_peaks], fmt=MEANSHIFT_FMT
        )
