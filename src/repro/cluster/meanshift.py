"""The mean-shift mode-seeking algorithm (Fukunaga & Hostetler [12]).

Mean-shift is "an iterative procedure that shifts the center of a search
window in the direction of greatest increase in the density of the data
set being explored ... until the window is centered on a region of
maximum density"; it is non-parametric — no a-priori cluster count.

This is the paper's single-node implementation for two-dimensional data
(Section 3.1), vectorized with NumPy:

* a *kernel* (shape function) weights the window — Gaussian by default
  ("gives greater weight to points nearer the center; this effectively
  smooths the data"), with uniform, triangular and quadratic options as
  the paper lists;
* a *density threshold* selects starting points: "we scan across the
  data and calculate the density of the data using a fixed window; the
  regions where the density is above our chosen threshold are used as
  the starting points";
* a *bandwidth* parameter sets the window scale — "we choose a fixed
  bandwidth of 50 which seems to work well with our data";
* each search runs "until it converges on a local maximum that we keep
  as a peak" (or a maximum-iteration threshold is hit).

:class:`MeanShiftResult` carries the work counters (points scanned,
point×iteration products) that calibrate the discrete-event performance
model in :mod:`repro.simulate.calibrate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.errors import TBONError

__all__ = [
    "KERNELS",
    "gaussian_kernel",
    "uniform_kernel",
    "triangular_kernel",
    "quadratic_kernel",
    "density_starts",
    "collapse_points",
    "mean_shift_search",
    "merge_peaks",
    "mean_shift",
    "MeanShiftResult",
    "assign_labels",
]

DEFAULT_BANDWIDTH = 50.0
DEFAULT_MAX_ITER = 100
DEFAULT_TOL = 1e-3


def gaussian_kernel(u: np.ndarray) -> np.ndarray:
    """Gaussian shape function: weight = exp(-u²/2), u = distance/bandwidth."""
    return np.exp(-0.5 * u * u)


def uniform_kernel(u: np.ndarray) -> np.ndarray:
    """Uniform (flat) shape function: weight 1 inside the window, 0 outside."""
    return (u <= 1.0).astype(np.float64)


def triangular_kernel(u: np.ndarray) -> np.ndarray:
    """Triangular shape function: weight falls linearly to 0 at the edge."""
    return np.clip(1.0 - u, 0.0, None)


def quadratic_kernel(u: np.ndarray) -> np.ndarray:
    """Quadratic (Epanechnikov) shape function: 1 - u² inside the window."""
    return np.clip(1.0 - u * u, 0.0, None)


KERNELS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "gaussian": gaussian_kernel,
    "uniform": uniform_kernel,
    "triangular": triangular_kernel,
    "quadratic": quadratic_kernel,
}


@dataclass
class MeanShiftResult:
    """Outcome of a mean-shift run plus work counters for calibration.

    Attributes:
        peaks: (k, 2) array of density modes found.
        starts: (m, 2) array of starting points used.
        iterations: total mean-shift iterations across all searches.
        point_iter_products: Σ over iterations of the dataset size — the
            dominant cost term (each iteration weighs every point).
        points_scanned: points touched by the density scan.
    """

    peaks: np.ndarray
    starts: np.ndarray
    iterations: int = 0
    point_iter_products: int = 0
    points_scanned: int = 0


def _as_points(data: np.ndarray) -> np.ndarray:
    pts = np.asarray(data, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise TBONError(f"mean-shift expects (n, 2) data, got shape {pts.shape}")
    return pts


def _as_weights(weights: np.ndarray | None, n: int) -> np.ndarray:
    if weights is None:
        return np.ones(n)
    w = np.asarray(weights, dtype=np.float64).ravel()
    if len(w) != n:
        raise TBONError(f"weights length {len(w)} != point count {n}")
    if np.any(w < 0):
        raise TBONError("weights must be non-negative")
    return w


def density_starts(
    data: np.ndarray,
    bandwidth: float = DEFAULT_BANDWIDTH,
    density_threshold: float = 3.0,
    weights: np.ndarray | None = None,
    cell: float | None = None,
) -> np.ndarray:
    """Scan the data for high-density start regions.

    This is the paper's "we scan across the data and calculate the
    density of the data using a fixed window; the regions where the
    density is above our chosen threshold are used as the starting
    points for the mean shift search".  The scan bins points into cells
    of size ``cell`` (default ``bandwidth / 5`` — a fine scan, so every
    dense region seeds its own search and the subsequent searches
    dominate the run time, as in the paper's measurements); cells
    holding at least ``density_threshold`` total weight yield their
    weighted centroid as a start point.  Weights default to 1 per
    point; collapsed data (see :func:`collapse_points`) carries its
    multiplicity here.
    """
    pts = _as_points(data)
    if len(pts) == 0:
        return np.empty((0, 2))
    if bandwidth <= 0:
        raise TBONError(f"bandwidth must be positive, got {bandwidth}")
    cell_size = bandwidth / 5 if cell is None else float(cell)
    if cell_size <= 0:
        raise TBONError(f"scan cell must be positive, got {cell_size}")
    w = _as_weights(weights, len(pts))
    cells = np.floor(pts / cell_size).astype(np.int64)
    # Group points by cell via lexicographic sort.
    order = np.lexsort((cells[:, 1], cells[:, 0]))
    sorted_cells = cells[order]
    sorted_pts = pts[order]
    sorted_w = w[order]
    boundaries = np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)
    group_starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1, [len(pts)]))
    starts = []
    for a, b in zip(group_starts[:-1], group_starts[1:]):
        cell_w = sorted_w[a:b]
        total = cell_w.sum()
        if total >= density_threshold:
            starts.append((sorted_pts[a:b] * cell_w[:, None]).sum(axis=0) / total)
    if not starts:
        return np.empty((0, 2))
    return np.asarray(starts)


def collapse_points(
    data: np.ndarray,
    weights: np.ndarray | None = None,
    cell: float = DEFAULT_BANDWIDTH / 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce a point set to weighted grid representatives.

    Mean-shift is a *data reduction* in the paper's sense — its output
    must be "lesser in size than its total inputs".  After the shift,
    data concentrates near modes, so a grid dedupe at sub-bandwidth
    resolution loses almost no density information: every occupied cell
    becomes one representative at the cell's weighted center of mass
    carrying the cell's total weight.  This is what keeps upstream
    packets small and deep-tree node work bounded by fan-out (Section
    3.2's observed behaviour).
    """
    pts = _as_points(data)
    if len(pts) == 0:
        return np.empty((0, 2)), np.empty(0)
    if cell <= 0:
        raise TBONError(f"cell must be positive, got {cell}")
    w = _as_weights(weights, len(pts))
    cells = np.floor(pts / cell).astype(np.int64)
    order = np.lexsort((cells[:, 1], cells[:, 0]))
    sc, sp, sw = cells[order], pts[order], w[order]
    boundaries = np.any(np.diff(sc, axis=0) != 0, axis=1)
    starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1, [len(sp)]))
    reps = np.empty((len(starts) - 1, 2))
    rep_w = np.empty(len(starts) - 1)
    for i, (a, b) in enumerate(zip(starts[:-1], starts[1:])):
        cw = sw[a:b]
        total = cw.sum()
        rep_w[i] = total
        reps[i] = (
            (sp[a:b] * cw[:, None]).sum(axis=0) / total if total > 0 else sp[a:b].mean(axis=0)
        )
    return reps, rep_w


def mean_shift_search(
    data: np.ndarray,
    start: np.ndarray,
    bandwidth: float = DEFAULT_BANDWIDTH,
    kernel: str = "gaussian",
    max_iter: int = DEFAULT_MAX_ITER,
    tol: float = DEFAULT_TOL,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Shift one window from ``start`` to its density mode.

    Implements Figure 3 of the paper: per iteration, compute each
    point's distance to the current centroid, weight with the shape
    function, and move the centroid to the weighted mean ("the mean-
    shift density estimator calculates a vector that will move the
    current centroid toward higher density areas").  Stops when the
    shift magnitude drops below ``tol`` ("successive iterations do not
    yield a new centroid") or after ``max_iter`` iterations.

    Returns the converged centroid and the iteration count.
    """
    pts = _as_points(data)
    if kernel not in KERNELS:
        raise TBONError(f"unknown kernel {kernel!r}; options: {sorted(KERNELS)}")
    kfn = KERNELS[kernel]
    pw = _as_weights(weights, len(pts))
    centroid = np.asarray(start, dtype=np.float64).copy()
    if centroid.shape != (2,):
        raise TBONError(f"start must be a 2-vector, got shape {centroid.shape}")
    iters = 0
    for _ in range(max_iter):
        iters += 1
        d = np.linalg.norm(pts - centroid, axis=1)
        w = kfn(d / bandwidth) * pw
        total = w.sum()
        if total <= 0:
            break  # empty window: no density information here
        new_centroid = (pts * w[:, None]).sum(axis=0) / total
        shift = np.linalg.norm(new_centroid - centroid)
        centroid = new_centroid
        if shift < tol:
            break
    return centroid, iters


def merge_peaks(peaks: np.ndarray, radius: float) -> np.ndarray:
    """Deduplicate peaks closer than ``radius``, keeping cluster means.

    Multiple starts converging to the same mode land within numerical
    wobble of each other; greedy agglomeration in discovery order is
    deterministic and O(k²) in the (small) peak count.
    """
    if len(peaks) == 0:
        return np.empty((0, 2))
    merged: list[np.ndarray] = []
    counts: list[int] = []
    for p in np.asarray(peaks, dtype=np.float64):
        for i, m in enumerate(merged):
            if np.linalg.norm(p - m) < radius:
                counts[i] += 1
                merged[i] = m + (p - m) / counts[i]
                break
        else:
            merged.append(p.copy())
            counts.append(1)
    return np.asarray(merged)


def mean_shift(
    data: np.ndarray,
    bandwidth: float = DEFAULT_BANDWIDTH,
    kernel: str = "gaussian",
    density_threshold: float = 3.0,
    starts: np.ndarray | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    tol: float = DEFAULT_TOL,
    weights: np.ndarray | None = None,
) -> MeanShiftResult:
    """Full single-node mean-shift: density scan, searches, peak merge.

    Args:
        data: (n, 2) points.
        bandwidth: window scale (the paper's fixed 50 by default).
        kernel: shape-function name from :data:`KERNELS`.
        density_threshold: minimum points per grid cell to seed a search
            ("low density areas are poor candidates for modes").
        starts: optional explicit start points — the distributed
            algorithm seeds parents with the peaks of their children.
        max_iter: per-search iteration cap.
        tol: convergence tolerance on the shift magnitude.
        weights: optional per-point multiplicities (collapsed data).
    """
    pts = _as_points(data)
    scanned = 0
    if starts is None:
        start_arr = density_starts(pts, bandwidth, density_threshold, weights=weights)
        scanned = len(pts)
    else:
        start_arr = np.asarray(starts, dtype=np.float64).reshape(-1, 2)
    peaks = []
    total_iters = 0
    point_iter = 0
    for s in start_arr:
        mode, iters = mean_shift_search(
            pts,
            s,
            bandwidth=bandwidth,
            kernel=kernel,
            max_iter=max_iter,
            tol=tol,
            weights=weights,
        )
        peaks.append(mode)
        total_iters += iters
        point_iter += iters * len(pts)
    merged = merge_peaks(np.asarray(peaks).reshape(-1, 2), radius=bandwidth / 2)
    return MeanShiftResult(
        peaks=merged,
        starts=start_arr,
        iterations=total_iters,
        point_iter_products=point_iter,
        points_scanned=scanned,
    )


def assign_labels(data: np.ndarray, peaks: np.ndarray) -> np.ndarray:
    """Label each point with its nearest peak (image-segmentation use).

    Returns an int array of peak indices; -1 when there are no peaks.
    """
    pts = _as_points(data)
    if len(peaks) == 0:
        return np.full(len(pts), -1, dtype=np.int64)
    pk = np.asarray(peaks, dtype=np.float64).reshape(-1, 2)
    d = np.linalg.norm(pts[:, None, :] - pk[None, :, :], axis=2)
    return d.argmin(axis=1)
