"""Data-clustering algorithms: the paper's case study and Figure-2 kin.

* :mod:`repro.cluster.meanshift` — the single-node mean-shift kernel
  (Section 3.1);
* :mod:`repro.cluster.meanshift_filter` — its distributed TBON form;
* :mod:`repro.cluster.kmeans` — distributed k-means (the partitioning
  clusterer of Section 2.3);
* :mod:`repro.cluster.agglomerative` — distributed agglomerative
  clustering (the agglomeration clusterer of Section 2.3);
* :mod:`repro.cluster.datagen` — the synthetic Gaussian workloads.

Importing this package registers the ``mean_shift`` and
``agglomerative`` filters with the default registry.
"""

from .agglomerative import (
    AGGLOMERATIVE_FMT,
    AgglomerativeFilter,
    ClusterSummary,
    agglomerate,
    summarize_points,
)
from .datagen import ClusterSpec, full_dataset, leaf_dataset, make_clusters
from .kmeans import KMeansResult, assign, distributed_kmeans, kmeans
from .meanshift import (
    KERNELS,
    MeanShiftResult,
    assign_labels,
    density_starts,
    mean_shift,
    mean_shift_search,
    merge_peaks,
)
from .meanshift_filter import MEANSHIFT_FMT, MeanShiftFilter, leaf_mean_shift

__all__ = [
    "KERNELS",
    "MeanShiftResult",
    "mean_shift",
    "mean_shift_search",
    "density_starts",
    "merge_peaks",
    "assign_labels",
    "MeanShiftFilter",
    "leaf_mean_shift",
    "MEANSHIFT_FMT",
    "KMeansResult",
    "kmeans",
    "assign",
    "distributed_kmeans",
    "ClusterSummary",
    "agglomerate",
    "summarize_points",
    "AgglomerativeFilter",
    "AGGLOMERATIVE_FMT",
    "ClusterSpec",
    "make_clusters",
    "leaf_dataset",
    "full_dataset",
]
