"""Tree reconfiguration after a communication-process failure.

The paper's dynamic-topology extension: "communication and back-end
processes can show up or leave at any time ... and the network properly
reconfigures and re-routes traffic without any data loss" for data still
in surviving queues.  Recovery here re-parents the failed node's
children onto its parent (the minimal structure-preserving repair),
pushes the new topology to every surviving process, rebinds the
transport, and rechecks blocked synchronization waves so reductions
waiting on the lost subtree release.

Guarantees (asserted by the test suite):

* **liveness** — open streams keep working after recovery: new waves
  from all surviving members aggregate and reach the front-end;
* **membership consistency** — every surviving process agrees on the
  new tree; close handshakes complete;
* packets queued *at* the dead node are lost (the window reference [2]
  closes with filter-state compensation; that compensation is out of
  scope here and documented as such in DESIGN.md).

Only the thread transport supports recovery (its ``rebind`` keeps
surviving queues intact); the TCP transport raises.
"""

from __future__ import annotations

from ..core.errors import RecoveryError
from ..core.events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    TAG_TOPOLOGY_ATTACH,
)
from ..core.network import Network
from ..core.packet import Packet
from ..core.topology import Topology

__all__ = ["recover_from_failure"]


def recover_from_failure(network: Network, failed_rank: int) -> Topology:
    """Repair the tree after ``failed_rank`` died; returns the new topology.

    The failed node's children are adopted by its parent.  Every
    surviving communication process and back-end receives the new
    topology as a control message delivered directly to its inbox (the
    tree itself cannot route it — the tree is what broke).
    """
    transport = network.transport
    if not hasattr(transport, "rebind"):
        raise RecoveryError(
            f"{type(transport).__name__} does not support live reconfiguration"
        )
    old_topo = network.topology
    if failed_rank not in old_topo:
        raise RecoveryError(f"rank {failed_rank} not in topology")
    new_topo = old_topo.replace_subtree_parent(failed_rank)
    transport.rebind(new_topo)
    network.topology = new_topo

    dead_node = network.nodes.pop(failed_rank, None)
    if dead_node is not None and dead_node.running:
        raise RecoveryError(f"rank {failed_rank} is still running; kill it first")

    reconfig = Packet(
        CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (new_topo,)
    )
    for rank, node in network.nodes.items():
        transport.inbox(rank).put(
            Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
        )
    for rank in new_topo.backends:
        transport.inbox(rank).put(
            Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
        )
    return new_topo
