"""Tree reconfiguration after a communication-process failure.

The paper's dynamic-topology extension: "communication and back-end
processes can show up or leave at any time ... and the network properly
reconfigures and re-routes traffic without any data loss" for data still
in surviving queues.  Recovery here re-parents the failed node's
children onto its parent (the minimal structure-preserving repair),
rebinds the transport — the thread transport remaps queues; the socket
transports reconnect the surviving edges with capped exponential backoff
plus jitter (:func:`repro.transport.tcp.connect_with_backoff`), the
reactor re-registering each repaired channel with its event loop — then
replays the topology push and rechecks blocked synchronization waves so
reductions waiting on the lost subtree release.

Guarantees (asserted by the test suite):

* **liveness** — open streams keep working after recovery: new waves
  from all surviving members aggregate and reach the front-end
  (``test_chaos.py::test_liveness_after_recovery``);
* **membership consistency** — every surviving process agrees on the
  new tree; close handshakes complete
  (``test_chaos.py::test_membership_consistency``);
* packets queued *at* the dead node are lost (the window reference [2]
  closes with filter-state compensation; that compensation is out of
  scope here and documented as such in DESIGN.md), and packets sent
  while an edge is being rebound fall into the same documented loss
  window.
"""

from __future__ import annotations

import time

from ..core.errors import RecoveryError, TransportError
from ..core.events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    TAG_TOPOLOGY_ATTACH,
)
from ..core.network import Network
from ..core.packet import Packet
from ..core.topology import Topology
from ..telemetry.registry import GLOBAL as _REGISTRY, TELEMETRY as _TEL

__all__ = ["broadcast_topology", "recover_from_failure"]

_m_latency = _REGISTRY.histogram("tbon_recovery_latency_seconds")


def _topology_packet(topo: Topology) -> Packet:
    return Packet(CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (topo,))


def broadcast_topology(network: Network) -> None:
    """Push the network's current topology to every process's inbox.

    Anti-entropy pass: delivered directly (not routed through the tree)
    so it works even while tree edges are degraded.  Used after chaos
    storms to guarantee convergence on the final membership.
    """
    transport = network.transport
    reconfig = _topology_packet(network.topology)
    env = Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
    for rank in network.nodes:
        transport.inbox(rank).put(env)
    for rank in network.topology.backends:
        transport.inbox(rank).put(env)


def recover_from_failure(network: Network, failed_rank: int) -> Topology:
    """Repair the tree after ``failed_rank`` died; returns the new topology.

    The failed node's children are adopted by its parent.  The new
    topology is replayed over the repaired tree edges where possible
    (exercising the reconnected channels); any edge that cannot carry it
    yet falls back to direct inbox delivery — the tree is what broke,
    so the push must not depend on it.
    """
    t0 = time.perf_counter()
    transport = network.transport
    old_topo = network.topology
    if failed_rank not in old_topo:
        raise RecoveryError(f"rank {failed_rank} not in topology")
    dead_node = network.nodes.get(failed_rank)
    if dead_node is not None and dead_node.running:
        raise RecoveryError(f"rank {failed_rank} is still running; kill it first")
    if not hasattr(transport, "rebind"):
        raise RecoveryError(
            f"{type(transport).__name__} does not support live reconfiguration"
        )

    new_topo = old_topo.replace_subtree_parent(failed_rank)
    transport.rebind(new_topo)
    network.topology = new_topo
    network.nodes.pop(failed_rank, None)

    reconfig = _topology_packet(new_topo)
    root = new_topo.root
    transport.inbox(root).put(
        Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
    )
    for rank in list(network.nodes) + list(new_topo.backends):
        if rank == root:
            continue
        parent = new_topo.parent(rank)
        try:
            # Replay over the repaired edge — proves the reconnected
            # channel carries traffic, as the paper's TCP push would.
            transport.send(parent, rank, Direction.DOWNSTREAM, reconfig)
        except TransportError:
            transport.inbox(rank).put(
                Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
            )
    if _TEL.enabled:
        _m_latency.observe(time.perf_counter() - t0)
    return new_topo
