"""Failure injection and tree recovery (the paper's dynamic-topology work)."""

from .chaos import (
    ChaosEngine,
    ChaosReport,
    ChaosSchedule,
    ChaosTransport,
    CrashFault,
    EdgeFault,
    generate_schedule,
    run_chaos,
)
from .failure import FailureInjector
from .recovery import broadcast_topology, recover_from_failure

__all__ = [
    "ChaosEngine",
    "ChaosReport",
    "ChaosSchedule",
    "ChaosTransport",
    "CrashFault",
    "EdgeFault",
    "FailureInjector",
    "broadcast_topology",
    "generate_schedule",
    "recover_from_failure",
    "run_chaos",
]
