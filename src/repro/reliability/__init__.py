"""Failure injection and tree recovery (the paper's dynamic-topology work)."""

from .failure import FailureInjector
from .recovery import recover_from_failure

__all__ = ["FailureInjector", "recover_from_failure"]
