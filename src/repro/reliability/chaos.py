"""Seeded, deterministic fault injection for live TBON networks.

The paper's dynamic-topology claim — processes "show up or leave at any
time ... and the network properly reconfigures and re-routes traffic" —
is only testable if faults are *reproducible*.  This module provides the
chaos half of the reliability package: a fault **schedule** generated
from ``random.Random(seed)`` (pure in the seed — same seed, same
schedule, same fault trace) executed by a :class:`ChaosEngine` through a
:class:`ChaosTransport` wrapper that interposes on every data send of
any transport (thread, threaded TCP, reactor).

Fault model (docs/RELIABILITY.md):

* ``drop`` — the Nth data packet on a directed edge is discarded;
* ``delay`` — the Nth packet is held in the sender's thread for
  ``arg`` seconds (FIFO per channel is preserved);
* ``duplicate`` — the Nth packet is sent twice;
* ``reorder`` — the Nth packet is held and released *after* the edge's
  next packet (one-packet inversion, the minimal FIFO violation);
* ``partition`` — a seq-window of ``span`` packets is dropped on both
  directions of one edge (a transient link partition);
* ``reset`` — the edge's connections are torn down mid-run
  (ECONNRESET semantics) and then repaired via
  ``reset_edge``/``reconnect_edge`` (no-op on transports without
  per-edge connections);
* ``crash`` — an internal communication process is killed after its
  Nth data send, then :func:`~repro.reliability.recovery.recover_from_failure`
  repairs the tree.

Faults count **data** packets only: control packets (stream create,
close handshake, topology pushes) travel unharmed, mirroring reference
[2]'s assumption that the recovery plane outlives the data plane.

Determinism: fault *decisions* depend only on per-edge data-packet
ordinals, which are fixed by the schedule plus count-based
synchronization — so ``trace()`` (canonically sorted) is byte-identical
across runs of the same seed (``test_chaos.py::test_same_seed_identical_trace``);
``crash``/``reset`` execute on a controller thread whose wall-clock
timing is *not* part of the trace contract.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..analysis.locks import make_lock
from ..core.errors import (
    ChannelClosedError,
    NodeFailureError,
    RecoveryError,
    TopologyError,
    TransportError,
)
from ..core.events import CONTROL_STREAM_ID, Direction, FIRST_APPLICATION_TAG
from ..core.network import Network, _make_socket_transport
from ..core.topology import Topology, balanced_topology
from ..telemetry.registry import GLOBAL as _REGISTRY, TELEMETRY as _TEL
from ..transport.base import Inbox, Transport
from .failure import FailureInjector
from .recovery import broadcast_topology, recover_from_failure

__all__ = [
    "ALL_KINDS",
    "ChaosEngine",
    "ChaosReport",
    "ChaosSchedule",
    "ChaosTransport",
    "CrashFault",
    "EdgeFault",
    "generate_schedule",
    "run_chaos",
]

#: Point faults hit one (edge, seq) coordinate.
POINT_KINDS = ("drop", "delay", "duplicate", "reorder", "reset")
ALL_KINDS = POINT_KINDS + ("partition", "crash")
DEFAULT_KINDS = ("drop", "delay", "duplicate", "reorder")

_m_faults = {
    kind: _REGISTRY.counter("tbon_reliability_faults_total", labels={"kind": kind})
    for kind in ("drop", "delay", "duplicate", "reorder", "partition", "reset")
}


# -- schedule ---------------------------------------------------------------
@dataclass(frozen=True)
class EdgeFault:
    """One fault on directed edge ``(src, dst)`` at data-packet ordinal ``seq``.

    ``seq`` is 1-based and counts only data packets sent on that
    direction of the edge.  ``arg`` is the delay in seconds for
    ``delay`` faults; ``span`` widens ``partition`` faults to the
    ordinal window ``[seq, seq + span)``.
    """

    kind: str
    src: int
    dst: int
    seq: int
    arg: float = 0.0
    span: int = 1


@dataclass(frozen=True)
class CrashFault:
    """Kill internal process ``rank`` right after its ``after``-th data send."""

    rank: int
    after: int


@dataclass(frozen=True)
class ChaosSchedule:
    """A complete, replayable fault plan (pure function of its seed)."""

    seed: int
    edge_faults: tuple[EdgeFault, ...] = ()
    crashes: tuple[CrashFault, ...] = ()


def generate_schedule(
    seed: int,
    topology: Topology,
    kinds: Sequence[str] = DEFAULT_KINDS,
    *,
    events: int = 12,
    horizon: int = 40,
) -> ChaosSchedule:
    """Derive a fault schedule from ``seed`` — and from nothing else.

    ``random.Random(seed)`` drives every choice, so the same
    (seed, topology, kinds, events, horizon) tuple always yields the
    same schedule: a CI failure replays locally with one flag
    (``--chaos-seed``).  ``horizon`` bounds the per-edge packet ordinals
    faults may target; schedule traffic of at least that many packets
    per edge to realize every fault.
    """
    bad = [k for k in kinds if k not in ALL_KINDS]
    if bad:
        raise ValueError(f"unknown fault kinds {bad}; choose from {list(ALL_KINDS)}")
    rng = random.Random(seed)
    dir_edges: list[tuple[int, int]] = []
    for parent, child in topology.iter_edges():
        dir_edges.append((child, parent))  # upstream direction first: more traffic
        dir_edges.append((parent, child))
    faults: list[EdgeFault] = []
    if "partition" in kinds and dir_edges:
        parent, child = rng.choice(list(topology.iter_edges()))
        start = rng.randrange(1, max(2, horizon // 2))
        span = rng.randrange(2, 7)
        faults.append(EdgeFault("partition", child, parent, start, span=span))
        faults.append(EdgeFault("partition", parent, child, start, span=span))
    point_kinds = [k for k in kinds if k in POINT_KINDS]
    used: set[tuple[int, int, int]] = set()
    if point_kinds and dir_edges:
        for _ in range(events):
            kind = rng.choice(point_kinds)
            src, dst = rng.choice(dir_edges)
            seq = rng.randrange(1, horizon)
            if (src, dst, seq) in used:
                continue  # keep one fault per (edge, seq) coordinate
            used.add((src, dst, seq))
            arg = round(rng.uniform(0.002, 0.02), 6) if kind == "delay" else 0.0
            faults.append(EdgeFault(kind, src, dst, seq, arg=arg))
    crashes: tuple[CrashFault, ...] = ()
    if "crash" in kinds and topology.internals:
        victim = rng.choice(topology.internals)
        crashes = (CrashFault(victim, rng.randrange(2, max(3, horizon // 2))),)
    faults.sort(key=lambda f: (f.kind, f.src, f.dst, f.seq))
    return ChaosSchedule(seed, tuple(faults), crashes)


# -- engine -----------------------------------------------------------------
_STOP = object()


class ChaosEngine:
    """Executes a :class:`ChaosSchedule` against live sends.

    Fault decisions happen under one lock keyed on per-directed-edge
    data-packet ordinals; the wrapped transport send always runs
    *outside* the lock (the engine never serializes the data plane).
    Structural faults (``crash``, ``reset``) are only *triggered* on the
    send path — a controller thread executes them, because killing a
    node joins its event-loop thread and must not run on it.
    """

    def __init__(self, schedule: ChaosSchedule):
        self.schedule = schedule
        self._lock = make_lock("chaos_engine")
        self._active = True
        self._seq: dict[tuple[int, int], int] = {}  # tbon: lock=_lock
        self._sent_by: dict[int, int] = {}  # tbon: lock=_lock
        self._held: dict[tuple[int, int], tuple] = {}  # tbon: lock=_lock
        self._point: dict[tuple[int, int], dict[int, EdgeFault]] = {}
        self._windows: list[EdgeFault] = []
        for f in schedule.edge_faults:
            if f.kind == "partition":
                self._windows.append(f)
            else:
                self._point.setdefault((f.src, f.dst), {})[f.seq] = f
        self._crashes: dict[int, CrashFault] = {c.rank: c for c in schedule.crashes}
        self._trace: list[str] = []  # tbon: lock=_lock
        self.errors: list[str] = []  # tbon: lock=_lock
        self._network: Network | None = None
        self._tasks: "queue.Queue[Any]" = queue.Queue()
        self._stopped = False
        self._controller = threading.Thread(
            target=self._run_tasks, name="tbon-chaos-controller", daemon=True
        )
        self._controller.start()

    def attach(self, network: Network) -> None:
        """Give the engine the network handle structural faults act on."""
        self._network = network

    # -- the sanctioned fault hook (tboncheck TB701) --------------------
    def _chaos_apply(
        self,
        send: Callable[[int, int, Direction, Any], None],
        src: int,
        dst: int,
        direction: Direction,
        packet: Any,
    ) -> None:
        """Interpose on one send: decide under the lock, act outside it."""
        if packet.stream_id == CONTROL_STREAM_ID:
            send(src, dst, direction, packet)  # control plane is never faulted
            return
        key = (src, dst)
        fault: EdgeFault | None = None
        held_prev: tuple | None = None
        crash: CrashFault | None = None
        with self._lock:
            if self._active:
                seq = self._seq.get(key, 0) + 1
                self._seq[key] = seq
                for w in self._windows:
                    if (w.src, w.dst) == key and w.seq <= seq < w.seq + w.span:
                        fault = w
                        break
                if fault is None:
                    fault = self._point.get(key, {}).pop(seq, None)
                held_prev = self._held.pop(key, None)
                n = self._sent_by.get(src, 0) + 1
                self._sent_by[src] = n
                pending = self._crashes.get(src)
                if pending is not None and n >= pending.after:
                    crash = self._crashes.pop(src)
                if fault is not None:
                    self._fire(fault.kind, src, dst, seq)
                if crash is not None:
                    self._trace.append(
                        f"crash rank={crash.rank} after={crash.after}"
                    )
        kind = fault.kind if fault is not None else ""
        if kind == "reorder":
            # Hold this packet; it rides out behind the edge's next send.
            with self._lock:
                self._held[key] = (send, src, dst, direction, packet)
        elif kind not in ("drop", "partition"):
            if kind == "delay":
                time.sleep(fault.arg)  # in the sender's thread: FIFO preserved
            send(src, dst, direction, packet)
            if kind == "duplicate":
                send(src, dst, direction, packet)
        if held_prev is not None:
            h_send, h_src, h_dst, h_dir, h_pkt = held_prev
            h_send(h_src, h_dst, h_dir, h_pkt)
        if kind == "reset":
            self._tasks.put(("reset", src, dst))
        if crash is not None:
            self._tasks.put(("crash", crash.rank))

    def _fire(self, kind: str, src: int, dst: int, seq: int) -> None:
        self._trace.append(f"{kind} {src}->{dst} seq={seq}")
        if _TEL.enabled and kind in _m_faults:
            _m_faults[kind].inc()

    def trace(self) -> tuple[str, ...]:
        """Canonically sorted fault trace (stable across thread timings)."""
        with self._lock:
            return tuple(sorted(self._trace))

    # -- controller ------------------------------------------------------
    def _run_tasks(self) -> None:
        while True:
            task = self._tasks.get()
            if task is _STOP:
                self._tasks.task_done()
                return
            try:
                if task[0] == "crash":
                    self._do_crash(task[1])
                else:
                    self._do_reset(task[1], task[2])
            finally:
                self._tasks.task_done()

    def _do_crash(self, rank: int) -> None:
        net = self._network
        if net is None or rank not in net.nodes or rank == net.topology.root:
            return
        try:
            FailureInjector(net).kill_node(rank)
            recover_from_failure(net, rank)
        except (NodeFailureError, TopologyError, RecoveryError, TransportError) as exc:
            with self._lock:
                self.errors.append(f"crash rank={rank} failed: {exc!r}")

    def _do_reset(self, src: int, dst: int) -> None:
        net = self._network
        if net is None:
            return
        reset = getattr(net.transport, "reset_edge", None)
        reconnect = getattr(net.transport, "reconnect_edge", None)
        if reset is None or reconnect is None:
            return  # thread transport has no per-edge connections
        topo = net.topology
        if src not in topo or dst not in topo:
            return  # edge vanished (a crash beat this reset)
        parent, child = (src, dst) if topo.parent(dst) == src else (dst, src)
        if topo.parent(child) != parent:
            return
        try:
            reset(parent, child)
            reconnect(parent, child)
        except (TransportError, TopologyError, ChannelClosedError):
            pass  # a reset racing recovery is a no-op, not an error

    # -- lifecycle -------------------------------------------------------
    def heal(self, *, converge_timeout: float = 10.0) -> None:
        """End the storm: stop faulting, flush holds, repair, converge.

        Releases any reorder-held packets, waits for in-flight
        structural faults (crash recovery, edge resets) to finish, then
        broadcasts the final topology to every process (anti-entropy)
        and polls until all survivors agree on it.
        """
        with self._lock:
            self._active = False
            held = list(self._held.values())
            self._held.clear()
        for h_send, h_src, h_dst, h_dir, h_pkt in held:
            try:
                h_send(h_src, h_dst, h_dir, h_pkt)
            except (TransportError, TopologyError, ChannelClosedError):
                pass  # held across a repair: documented loss window
        self._tasks.join()  # controller finished every pending fault
        net = self._network
        if net is None:
            return
        broadcast_topology(net)
        deadline = time.monotonic() + converge_timeout
        while not self.membership_consistent():
            if time.monotonic() >= deadline:
                with self._lock:
                    self.errors.append(
                        f"survivors did not converge on the topology "
                        f"within {converge_timeout}s"
                    )
                return
            time.sleep(0.01)

    def membership_consistent(self) -> bool:
        """Do all surviving processes agree on the network's topology?"""
        net = self._network
        if net is None:
            return False
        want = net.topology
        for node in net.nodes.values():
            if not _same_tree(node.topology, want):
                return False
        for be in net.backends:
            if not _same_tree(be.topology, want):
                return False
        return True

    def stop(self) -> None:
        """Terminate the controller thread (idempotent)."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._active = False
        self._tasks.put(_STOP)
        self._controller.join(5.0)


def _same_tree(a: Topology, b: Topology) -> bool:
    if a is b:
        return True
    if a.root != b.root or set(a.ranks) != set(b.ranks):
        return False
    return all(tuple(a.children(r)) == tuple(b.children(r)) for r in a.ranks)


# -- transport wrapper ------------------------------------------------------
class ChaosTransport(Transport):
    """The sanctioned fault-injection wrapper around a real transport.

    Every data send funnels through the engine's ``_chaos_apply`` hook
    (tboncheck rule TB701 rejects that hook anywhere else); everything
    the wrapper does not explicitly interpose — ``rebind``,
    ``disconnect_rank``, backpressure attributes, inboxes — delegates to
    the wrapped transport, so recovery and chaos compose on any backend.
    """

    def __init__(self, inner: Transport, engine: ChaosEngine):
        # No super().__init__(): ``topology`` must track the inner
        # transport (rebind happens there), so it is a property here.
        self.inner = inner
        self.engine = engine

    @property
    def topology(self) -> Topology | None:
        return self.inner.topology

    @property
    def closing(self) -> bool:
        return self.inner.closing

    @property
    def send_queue_limit(self) -> int | None:  # type: ignore[override]
        return self.inner.send_queue_limit

    @property
    def blocking_sends(self) -> bool:  # type: ignore[override]
        return self.inner.blocking_sends

    def bind(self, topology: Topology) -> None:
        self.inner.bind(topology)

    def inbox(self, rank: int) -> Inbox:
        return self.inner.inbox(rank)

    def send(self, src: int, dst: int, direction: Direction, packet: Any) -> None:
        self.engine._chaos_apply(self.inner.send, src, dst, direction, packet)

    def multicast(
        self, src: int, dsts: Sequence[int], direction: Direction, packet: Any
    ) -> None:
        # Decomposed so each recipient gets an independent fault decision
        # (serialize-once is a perf optimisation; chaos prefers coverage).
        for dst in dsts:
            self.send(src, dst, direction, packet)

    def shutdown(self) -> None:
        self.engine.stop()
        self.inner.shutdown()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


# -- harness ----------------------------------------------------------------
@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run (what ``repro.cli chaos`` prints)."""

    seed: int
    transport: str
    schedule: ChaosSchedule
    trace: tuple[str, ...]
    invariants: dict[str, bool]
    errors: tuple[str, ...]
    node_errors: dict[int, str] = field(default_factory=dict)
    n_processes_before: int = 0
    n_processes_after: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors and all(self.invariants.values())

    def format(self) -> str:
        lines = [
            f"chaos seed={self.seed} transport={self.transport} "
            f"faults={len(self.schedule.edge_faults)} "
            f"crashes={len(self.schedule.crashes)}",
            f"processes: {self.n_processes_before} -> {self.n_processes_after}",
            "invariants:",
        ]
        for name, okay in sorted(self.invariants.items()):
            lines.append(f"  [{'PASS' if okay else 'FAIL'}] {name}")
        if self.errors:
            lines.append("errors:")
            lines.extend(f"  {e}" for e in self.errors)
        if self.node_errors:
            lines.append("node errors during the storm (expected noise):")
            lines.extend(f"  rank {r}: {e}" for r, e in sorted(self.node_errors.items()))
        lines.append(f"fault trace ({len(self.trace)} fired):")
        lines.extend(f"  {t}" for t in self.trace)
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _make_inner_transport(kind: str) -> Transport:
    if kind == "thread":
        from ..transport.local import ThreadTransport

        return ThreadTransport()
    if kind in ("tcp", "reactor", "tcp-threads"):
        return _make_socket_transport(kind)
    raise ValueError(f"unknown transport {kind!r}")


def _recv_tolerant(stream: Any, timeout: float) -> Any | None:
    """recv() riding out filter errors (storm noise forwarded to the root)."""
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        try:
            return stream.recv(timeout=remaining)
        except TimeoutError:
            return None
        except Exception:  # tbon: allow-broad-except(forwarded storm noise is the point; drain past it)
            continue


def run_chaos(
    seed: int,
    *,
    topology: Topology | None = None,
    transport: str = "thread",
    kinds: Sequence[str] = DEFAULT_KINDS,
    waves: int = 4,
    events: int = 12,
    schedule: ChaosSchedule | None = None,
    verify_waves: int = 3,
) -> ChaosReport:
    """One full chaos experiment: storm, heal, verify, report.

    Phases:

    1. **storm** — ``waves`` aggregation waves run while the engine
       executes the schedule; losses and errors here are the point;
    2. **heal** — :meth:`ChaosEngine.heal`: holds flushed, structural
       faults completed, topology broadcast, convergence awaited;
    3. **verify** — a *fresh* stream checks the recovery invariants
       cross-linked from docs/RELIABILITY.md: liveness
       (``all_waves_arrive``), exactness (``wave_sums_exact``), no
       duplicate delivery (``no_duplicate_delivery``), and membership
       agreement (``membership_consistent``).
    """
    if topology is None:
        shape = random.Random(seed)
        topology = balanced_topology(fanout=2 + shape.randrange(3), depth=2)
    if schedule is None:
        # Horizon tracks the storm length so scheduled ordinals actually
        # occur: each edge carries about one data packet per wave.
        schedule = generate_schedule(
            seed, topology, kinds, events=events, horizon=max(2, waves + 1)
        )
    engine = ChaosEngine(schedule)
    inner = _make_inner_transport(transport)
    net = Network(topology, transport=ChaosTransport(inner, engine))
    engine.attach(net)
    errors: list[str] = []
    invariants: dict[str, bool] = {}
    node_errors: dict[int, str] = {}
    n_before = len(net.nodes)
    try:
        storm = net.new_stream(transform="sum", sync="wait_for_all")
        sid = storm.stream_id

        def storm_fn(be: Any) -> None:
            try:
                be.wait_for_stream(sid, timeout=5.0)
                for _ in range(waves):
                    be.send(sid, FIRST_APPLICATION_TAG, "%d", 1)
            except Exception:  # tbon: allow-broad-except(storm-phase sends hitting injected faults are expected)
                pass

        # Downstream storm traffic so both directions of every edge see
        # data packets (upstream waves alone leave half the schedule
        # unrealized).  Back-ends just queue these; nothing reads them.
        for w in range(waves):
            storm.send(FIRST_APPLICATION_TAG, "%d", w)
        net.run_backends(storm_fn, timeout=30.0)
        for _ in range(waves):  # drain what survives; blocked waves are fine
            if _recv_tolerant(storm, 0.3) is None:
                break

        engine.heal()

        verify = net.new_stream(transform="sum", sync="wait_for_all")
        vid = verify.stream_id
        n_be = len(net.topology.backends)
        values = [3, 5, 7, 11, 13][:verify_waves]

        def verify_fn(be: Any) -> None:
            be.wait_for_stream(vid, timeout=10.0)
            for v in values:
                be.send(vid, FIRST_APPLICATION_TAG, "%d", v)

        try:
            net.run_backends(verify_fn, timeout=60.0)
        except Exception as exc:
            errors.append(f"verify-phase backend failed: {exc!r}")
        got = []
        for _ in values:
            pkt = _recv_tolerant(verify, 15.0)
            if pkt is None:
                break
            got.append(int(pkt.values[0]))
        invariants["all_waves_arrive"] = len(got) == len(values)
        invariants["wave_sums_exact"] = got == [v * n_be for v in values]
        invariants["no_duplicate_delivery"] = _recv_tolerant(verify, 0.5) is None
        invariants["membership_consistent"] = engine.membership_consistent()
        node_errors = {r: repr(e) for r, e in net.node_errors().items()}
    finally:
        try:
            net.shutdown()
        except Exception as exc:
            errors.append(f"shutdown failed: {exc!r}")
    with engine._lock:
        errors.extend(engine.errors)
    return ChaosReport(
        seed=seed,
        transport=transport,
        schedule=schedule,
        trace=engine.trace(),
        invariants=invariants,
        errors=tuple(errors),
        node_errors=node_errors,
        n_processes_before=n_before,
        n_processes_after=len(net.nodes),
    )
