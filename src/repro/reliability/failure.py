"""Failure injection for live TBON networks.

MRNet's roadmap (Section 2.2) covers "communication and back-end
processes [that] show up or leave at any time (perhaps as a response to
failures, recoveries, or load balancing)"; reference [2] is the authors'
zero-cost reliability work.  This module provides the *failure* half:
killing a communication process in a running network so the recovery
machinery (:mod:`repro.reliability.recovery`) can be exercised.

A killed node stops consuming its inbox and its channels close; packets
queued at the dead node are lost (exactly the failure mode reference [2]
compensates for with filter state), while packets already forwarded are
safe.
"""

from __future__ import annotations

from ..core.errors import NodeFailureError, TopologyError
from ..core.network import Network
from ..telemetry.registry import GLOBAL as _REGISTRY, TELEMETRY as _TEL

__all__ = ["FailureInjector"]

_m_crashes = _REGISTRY.counter(
    "tbon_reliability_faults_total", labels={"kind": "crash"}
)


class FailureInjector:
    """Inject communication-process failures into a live network.

    Only internal nodes may be killed: the paper's model keeps the
    front-end alive (it is the application), and back-end failures are
    membership changes, not tree failures (use
    :meth:`repro.core.topology.Topology.detach_backend`).
    """

    def __init__(self, network: Network):
        self.network = network
        self.failed: set[int] = set()

    def kill_node(self, rank: int) -> None:
        """Crash the communication process at ``rank``.

        The node's event loop halts and its inbox closes — subsequent
        sends to it raise, as writes to a dead TCP peer would.
        """
        net = self.network
        if rank == net.topology.root:
            raise NodeFailureError("cannot kill the front-end's root process")
        if rank not in net.nodes:
            raise TopologyError(f"rank {rank} is not a communication process")
        if rank in self.failed:
            raise NodeFailureError(f"rank {rank} already failed")
        node = net.nodes[rank]
        node.running = False
        # On socket transports, sever the dead rank's connections as an
        # *expected* close first, so surviving peers log an orderly
        # disconnect rather than a reader/reactor error (teardown race).
        disconnect = getattr(net.transport, "disconnect_rank", None)
        if disconnect is not None:
            disconnect(rank)
        net.transport.inbox(rank).close()  # unblocks the loop, closes channel
        node.join(timeout=2.0)
        self.failed.add(rank)
        if _TEL.enabled:
            _m_crashes.inc()

    def is_failed(self, rank: int) -> bool:
        return rank in self.failed
