"""Snapshot exposition: Prometheus text format and JSON.

Snapshots (see :mod:`.registry`) key every series by a Prometheus-style
string ``name{label="value",...}``, so rendering is mostly a matter of
grouping series by metric name and, for histograms, splicing the ``le``
label into the existing label set for the cumulative ``_bucket`` lines.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Tuple

__all__ = ["to_prometheus", "to_json", "format_trace"]


def _split_key(key: str) -> Tuple[str, str]:
    """``name{a="b"}`` -> ``("name", 'a="b"')``; bare names get ``""``."""
    name, brace, body = key.partition("{")
    return (name, body[:-1] if brace else "")


def _fmt_value(v: float) -> str:
    if isinstance(v, bool) or not isinstance(v, float):
        return str(v)
    return repr(v)


def _fmt_bound(b: float) -> str:
    return str(int(b)) if float(b).is_integer() else repr(float(b))


def to_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    def emit(kind: str, series: Mapping[str, object], render) -> None:
        groups: Dict[str, List[str]] = {}
        for key in sorted(series):
            name, labels = _split_key(key)
            groups.setdefault(name, []).extend(render(name, labels, series[key]))
        for name in sorted(groups):
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(groups[name])

    def render_scalar(name: str, labels: str, value: object) -> List[str]:
        label_part = f"{{{labels}}}" if labels else ""
        return [f"{name}{label_part} {_fmt_value(value)}"]

    def render_hist(name: str, labels: str, h: object) -> List[str]:
        out: List[str] = []
        cumulative = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cumulative += count
            le = f'le="{_fmt_bound(bound)}"'
            body = f"{labels},{le}" if labels else le
            out.append(f"{name}_bucket{{{body}}} {cumulative}")
        body = f'{labels},le="+Inf"' if labels else 'le="+Inf"'
        out.append(f"{name}_bucket{{{body}}} {h['count']}")
        label_part = f"{{{labels}}}" if labels else ""
        out.append(f"{name}_sum{label_part} {_fmt_value(float(h['sum']))}")
        out.append(f"{name}_count{label_part} {h['count']}")
        return out

    emit("counter", snapshot.get("counters", {}), render_scalar)
    emit("gauge", snapshot.get("gauges", {}), render_scalar)
    emit("histogram", snapshot.get("histograms", {}), render_hist)
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: Mapping[str, object], indent: int = 2) -> str:
    """Render a snapshot as deterministic (sorted-key) JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def format_trace(trace) -> str:
    """Human-readable hop table for a :class:`~.trace.TraceContext`."""
    lines = [f"trace {trace.trace_id:#018x} ({len(trace.hops)} hops)"]
    if not trace.hops:
        return lines[0]
    t0 = trace.hops[0].t_in
    for i, hop in enumerate(trace.hops):
        dwell = hop.t_out - hop.t_in
        lines.append(
            f"  hop {i}: node {hop.node:>3}  filter={hop.filter:<16} "
            f"t_in=+{hop.t_in - t0:.6f}s  t_out=+{hop.t_out - t0:.6f}s  "
            f"dwell={dwell * 1e3:.3f}ms"
        )
    lines.append(f"  end-to-end: {(trace.hops[-1].t_out - t0) * 1e3:.3f}ms")
    return "\n".join(lines)
