"""Lock-cheap metrics core: counters, gauges, histograms, registries.

Design constraints (ISSUE 3 / docs/OBSERVABILITY.md):

* **Disabled must be free.**  Every hot-path call site guards on
  ``TELEMETRY.enabled`` — a single attribute load on a module-level
  singleton — so the telemetry plane cannot regress PR 1's fast path.
  The flag defaults to the ``TBON_TELEMETRY`` environment variable and
  can be flipped at runtime with :func:`enable`/:func:`disable`.
* **Enabled must be cheap.**  Counters and histograms shard per thread
  (keyed by ``threading.get_ident()``): an increment is two dict
  operations on a shard no other thread touches, so there is no lock
  and no cross-core cache ping-pong on the data plane.  ``value()``
  folds the shards — reads are the rare path.
* **Snapshots must reduce.**  A registry snapshot is a plain picklable
  dict whose merge is associative and commutative (sum counters, merge
  histogram bucket counts, max gauges), so per-node snapshots can be
  aggregated *up the tree it measures* by the built-in
  ``telemetry_merge`` filter — Paradyn-style tree-aggregated
  performance data.

This module must stay import-light (stdlib + ``repro.analysis.locks``
only): ``core/packet.py`` imports it.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from threading import get_ident
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..analysis.locks import make_lock

__all__ = [
    "TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "GLOBAL",
    "DEFAULT_LATENCY_BOUNDS",
    "SIZE_BOUNDS",
    "enable",
    "disable",
    "telemetry_enabled",
    "empty_snapshot",
    "merge_snapshots",
    "snapshot_delta",
]

#: Environment variable that enables the telemetry plane at import time
#: (mirrors ``TBON_LOCKCHECK`` from the analysis package).
ENV_VAR = "TBON_TELEMETRY"

#: Log-scale (power-of-two) bucket upper bounds for latencies in seconds:
#: ~1 microsecond up to 32 s, 26 buckets + overflow.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(2.0**e for e in range(-20, 6))

#: Log-scale bounds for sizes/counts (batch sizes, queue depths): 1..64Ki.
SIZE_BOUNDS: Tuple[float, ...] = tuple(2.0**e for e in range(0, 17))


class _TelemetryState:
    """Module-level enable flag; hot paths read ``TELEMETRY.enabled``."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


TELEMETRY = _TelemetryState(os.environ.get(ENV_VAR, "") not in ("", "0"))


def enable() -> None:
    """Turn the telemetry plane on for this process."""
    TELEMETRY.enabled = True


def disable() -> None:
    """Turn the telemetry plane off (instruments become no-ops at call sites)."""
    TELEMETRY.enabled = False


def telemetry_enabled() -> bool:
    return TELEMETRY.enabled


def _key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Prometheus-style series key: ``name{k="v",...}`` with sorted labels."""
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """Monotonic counter, sharded per thread (lock-free under the GIL)."""

    __slots__ = ("key", "_shards")

    def __init__(self, key: str) -> None:
        self.key = key
        self._shards: Dict[int, int] = {}

    def inc(self, n: int = 1) -> None:
        shards = self._shards
        tid = get_ident()
        # try/except beats .get(): the steady state (shard exists) is two
        # subscript ops with no method call, and the miss happens once per
        # thread lifetime.
        try:
            shards[tid] += n
        except KeyError:
            shards[tid] = n

    def value(self) -> int:
        return sum(self._shards.values())

    def reset(self) -> None:
        self._shards.clear()


class Gauge:
    """Last-write-wins sampled value; cross-node merge takes the max."""

    __slots__ = ("key", "_value")

    def __init__(self, key: str) -> None:
        self.key = key
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class _HistShard:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Fixed log-scale-bound histogram, sharded per thread.

    ``bounds`` are upper bucket bounds with Prometheus ``le`` semantics:
    an observation ``v`` lands in the first bucket whose bound ``>= v``;
    values above the last bound land in the implicit ``+Inf`` overflow
    bucket, so ``counts`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("key", "bounds", "_shards")

    def __init__(self, key: str, bounds: Tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds!r}")
        self.key = key
        self.bounds = tuple(float(b) for b in bounds)
        self._shards: Dict[int, _HistShard] = {}

    def observe(self, value: float) -> None:
        shards = self._shards
        tid = get_ident()
        shard = shards.get(tid)
        if shard is None:
            shard = shards[tid] = _HistShard(len(self.bounds) + 1)
        shard.counts[bisect_left(self.bounds, value)] += 1
        shard.sum += value
        shard.count += 1

    def value(self) -> Dict[str, object]:
        counts = [0] * (len(self.bounds) + 1)
        total = 0.0
        n = 0
        for shard in list(self._shards.values()):
            for i, c in enumerate(shard.counts):
                counts[i] += c
            total += shard.sum
            n += shard.count
        return {"bounds": list(self.bounds), "counts": counts, "sum": total, "count": n}

    def reset(self) -> None:
        self._shards.clear()


class Registry:
    """Get-or-create instrument store; one per node plus a process global.

    Instruments are created through the registry (enforced by tboncheck
    rule TB501) so every series appears in :meth:`snapshot` and therefore
    in the in-tree stats reduction.  Creation takes a lock; the returned
    instrument is then used lock-free on the hot path.
    """

    def __init__(self, source: str = "process") -> None:
        self.source = source
        self._lock = make_lock("telemetry_registry")
        with self._lock:
            self._counters: Dict[str, Counter] = {}  # tbon: lock=_lock
            self._gauges: Dict[str, Gauge] = {}  # tbon: lock=_lock
            self._histograms: Dict[str, Histogram] = {}  # tbon: lock=_lock

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        key = _key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(key)
        return inst

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = _key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(key)
        return inst

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> Histogram:
        key = _key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(key, bounds)
            elif inst.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {key!r} re-registered with different bounds"
                )
        return inst

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict snapshot; associative input to :func:`merge_snapshots`."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "sources": [self.source],
            "counters": {c.key: c.value() for c in counters},
            "gauges": {g.key: g.value() for g in gauges},
            "histograms": {h.key: h.value() for h in histograms},
        }

    def reset(self) -> None:
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for inst in instruments:
            inst.reset()


#: Process-wide registry for instruments that cannot be attributed to a
#: single node (packet frame cache, transport socket path).
GLOBAL = Registry("process")


def empty_snapshot() -> Dict[str, object]:
    return {"sources": [], "counters": {}, "gauges": {}, "histograms": {}}


def _hist_copy(h: Mapping[str, object]) -> Dict[str, object]:
    return {
        "bounds": list(h["bounds"]),
        "counts": list(h["counts"]),
        "sum": float(h["sum"]),
        "count": int(h["count"]),
    }


def _hist_add(into: Dict[str, object], other: Mapping[str, object]) -> None:
    if list(into["bounds"]) != list(other["bounds"]):
        raise ValueError("cannot merge histograms with different bounds")
    counts: List[int] = into["counts"]
    for i, c in enumerate(other["counts"]):
        counts[i] += c
    into["sum"] = float(into["sum"]) + float(other["sum"])
    into["count"] = int(into["count"]) + int(other["count"])


def merge_snapshots(snapshots: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Fold snapshots: sum counters, merge histogram buckets, max gauges.

    Associative and commutative, so partial merges computed at internal
    nodes compose into the same root result regardless of tree shape.
    """
    sources: List[str] = []
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snap in snapshots:
        sources.extend(snap.get("sources", []))
        for key, v in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + v
        for key, v in snap.get("gauges", {}).items():
            prev = gauges.get(key)
            gauges[key] = v if prev is None else max(prev, v)
        for key, h in snap.get("histograms", {}).items():
            mine = histograms.get(key)
            if mine is None:
                histograms[key] = _hist_copy(h)
            else:
                _hist_add(mine, h)
    sources.sort()
    return {
        "sources": sources,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def snapshot_delta(
    before: Mapping[str, object], after: Mapping[str, object]
) -> Dict[str, object]:
    """``after - before`` for counters/histograms; gauges keep ``after``.

    Used by the benchmark harness to report instrument deltas alongside
    timings without resetting live registries.
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    before_counters = before.get("counters", {})
    before_hists = before.get("histograms", {})
    for key, v in after.get("counters", {}).items():
        counters[key] = v - before_counters.get(key, 0)
    for key, h in after.get("histograms", {}).items():
        prev = before_hists.get(key)
        if prev is None:
            histograms[key] = _hist_copy(h)
        else:
            histograms[key] = {
                "bounds": list(h["bounds"]),
                "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
                "sum": float(h["sum"]) - float(prev["sum"]),
                "count": int(h["count"]) - int(prev["count"]),
            }
    return {
        "sources": list(after.get("sources", [])),
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }
