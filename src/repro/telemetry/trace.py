"""Sampled causal tracing for reduction waves.

A :class:`TraceContext` rides a packet up the tree: the originating
back-end starts one (sampled), and every communication process that the
wave traverses appends a ``(node, t_in, t_out, filter)`` hop record.
Because waves *merge* at internal nodes — many input packets become one
output packet — the trace that propagates is the **critical path**: of
the traced inputs feeding a transform, the one that arrived last (its
``t_in`` is what gated the wave).  Reading the hop list of the packet
that reaches the front-end therefore gives end-to-end latency
attribution: time in flight between hops, time parked in the
synchronization filter, and time inside each transformation filter.

Trace contexts are immutable (every mark returns a new context) so they
compose with the serialize-once contract: ``Packet.attach_trace`` is the
single sanctioned attachment point and invalidates the frame memo.

Timestamps are ``time.monotonic()`` values; within one process (both
bundled transports) they are mutually comparable, which is why the
acceptance check "every hop with non-decreasing timestamps" is sound.

Import-light by design (stdlib only): ``core/packet.py`` imports this.
"""

from __future__ import annotations

import itertools
import os
import struct
from typing import Iterator, List, NamedTuple, Optional, Tuple

__all__ = [
    "TraceHop",
    "TraceContext",
    "Tracer",
    "TRACER",
    "set_trace_sampling",
    "new_trace_id",
]


class TraceHop(NamedTuple):
    """One completed visit: entered ``node`` at ``t_in``, left at ``t_out``."""

    node: int
    t_in: float
    t_out: float
    filter: str


_HOP_HEAD = struct.Struct("<iddH")  # node, t_in, t_out, len(filter)
_TRACE_HEAD = struct.Struct("<QH")  # trace_id, n_hops

_ids = itertools.count(1)


def new_trace_id() -> int:
    """Process-unique 64-bit trace id (pid in the high bits)."""
    return ((os.getpid() & 0xFFFFFFFF) << 32) | (next(_ids) & 0xFFFFFFFF)


class TraceContext:
    """Immutable trace: an id, completed hops, and an optional open arrival."""

    __slots__ = ("trace_id", "hops", "pending")

    def __init__(
        self,
        trace_id: int,
        hops: Tuple[TraceHop, ...] = (),
        pending: Optional[Tuple[int, float]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.hops = hops
        self.pending = pending

    @classmethod
    def start(cls, node: int, t: float, label: str = "send") -> "TraceContext":
        """Begin a trace at the originating back-end."""
        return cls(new_trace_id(), (TraceHop(node, t, t, label),))

    def mark_arrival(self, node: int, t_in: float) -> "TraceContext":
        """Record entry into a node; completed by :meth:`complete`."""
        return TraceContext(self.trace_id, self.hops, (node, t_in))

    def complete(self, filter_name: str, t_out: float) -> "TraceContext":
        """Close the pending arrival into a hop record (at transform emit)."""
        if self.pending is None:
            return self
        node, t_in = self.pending
        hop = TraceHop(node, t_in, t_out, filter_name)
        return TraceContext(self.trace_id, self.hops + (hop,))

    @property
    def t_latest(self) -> float:
        """Most recent timestamp on this context (critical-path ordering)."""
        if self.pending is not None:
            return self.pending[1]
        return self.hops[-1].t_out if self.hops else 0.0

    def to_bytes(self) -> bytes:
        """Wire encoding (completed hops only; pending never crosses a link)."""
        parts: List[bytes] = [_TRACE_HEAD.pack(self.trace_id, len(self.hops))]
        for hop in self.hops:
            name = hop.filter.encode("utf-8")
            parts.append(_HOP_HEAD.pack(hop.node, hop.t_in, hop.t_out, len(name)))
            parts.append(name)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TraceContext":
        trace_id, n_hops = _TRACE_HEAD.unpack_from(data, 0)
        offset = _TRACE_HEAD.size
        hops: List[TraceHop] = []
        for _ in range(n_hops):
            node, t_in, t_out, name_len = _HOP_HEAD.unpack_from(data, offset)
            offset += _HOP_HEAD.size
            name = data[offset : offset + name_len].decode("utf-8")
            offset += name_len
            hops.append(TraceHop(node, t_in, t_out, name))
        if offset != len(data):
            raise ValueError(
                f"trailing bytes in trace encoding ({len(data) - offset})"
            )
        return cls(trace_id, tuple(hops))

    def __iter__(self) -> Iterator[TraceHop]:
        return iter(self.hops)

    def __repr__(self) -> str:
        return f"TraceContext(id={self.trace_id:#x}, hops={len(self.hops)})"


class Tracer:
    """Deterministic 1-in-N sampler (no RNG on the data plane)."""

    __slots__ = ("rate", "_period", "_n")

    def __init__(self, rate: float = 0.0) -> None:
        self.rate = 0.0
        self._period = 0
        self._n = 0
        self.set_rate(rate)

    def set_rate(self, rate: float) -> None:
        if rate < 0.0 or rate > 1.0:
            raise ValueError(f"sampling rate must be in [0, 1]: {rate}")
        self.rate = rate
        self._period = 0 if rate == 0.0 else max(1, round(1.0 / rate))

    def sample(self) -> bool:
        if self._period == 0:
            return False
        self._n += 1
        return self._n % self._period == 0


#: Process-wide sampler consulted by back-ends when starting traces.
TRACER = Tracer(0.0)


def set_trace_sampling(rate: float) -> None:
    """Set the global trace sampling rate (0 disables, 1 traces everything)."""
    TRACER.set_rate(rate)
