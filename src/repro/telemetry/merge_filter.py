"""The built-in ``telemetry_merge`` transformation filter.

Telemetry snapshots ride the tree they measure: every node answers a
``TAG_TELEMETRY`` request with a ``"%d %o"`` packet — request id plus a
registry snapshot dict — and internal nodes fold their children's
replies together with their own using this filter (sum counters, merge
histogram buckets, max gauges; see
:func:`repro.telemetry.registry.merge_snapshots`).  Because the merge is
associative and commutative, the root's aggregate equals the flat sum
over all per-node snapshots regardless of tree shape — the property the
``repro.cli stats`` command checks.

The filter is registered under ``telemetry_merge`` by
:mod:`repro.core.filter_registry`, so applications can also use it on
ordinary streams to reduce their own snapshot-shaped payloads.

Kept out of ``telemetry/__init__`` imports: this module depends on
``repro.core.filters``, while the rest of the telemetry package must
stay importable from ``core/packet.py`` (no cycle).
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import FilterError
from ..core.filters import FilterContext, TransformationFilter
from ..core.packet import Packet
from .registry import merge_snapshots

__all__ = ["TelemetryMergeFilter"]


class TelemetryMergeFilter(TransformationFilter):
    """Merge ``(req_id, snapshot)`` packets into one aggregated packet."""

    name = "telemetry_merge"

    def transform(
        self, packets: Sequence[Packet], ctx: FilterContext
    ) -> Packet:
        first = packets[0]
        for p in packets:
            if p.fmt != first.fmt:
                raise FilterError(
                    f"telemetry_merge: mixed formats {first.fmt!r} / {p.fmt!r}"
                )
            if len(p.values) != 2:
                raise FilterError(
                    "telemetry_merge expects (req_id, snapshot) payloads"
                )
        merged = merge_snapshots(p.values[1] for p in packets)
        return first.with_values((first.values[0], merged))
