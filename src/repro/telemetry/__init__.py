"""Self-hosted telemetry plane: metrics, causal tracing, in-tree reduction.

Three layers (docs/OBSERVABILITY.md):

* :mod:`.registry` — lock-cheap ``Counter``/``Gauge``/``Histogram``
  instruments behind the module-level ``TELEMETRY.enabled`` flag
  (``TBON_TELEMETRY=1``); per-node registries plus a process-global one.
* :mod:`.trace` — sampled per-packet trace contexts recording
  ``(node, t_in, t_out, filter)`` hops for critical-path latency
  attribution of a reduction wave.
* :mod:`.merge_filter` — the ``telemetry_merge`` filter that aggregates
  registry snapshots up the tree (exposed via
  ``Network.telemetry_snapshot()`` and ``repro.cli stats``).

This package (minus :mod:`.merge_filter`) sits *below* ``repro.core`` in
the import graph — core modules instrument themselves by importing it —
so nothing here may import from ``repro.core``.  ``merge_filter`` is the
one exception and is therefore loaded lazily.
"""

from __future__ import annotations

from .export import format_trace, to_json, to_prometheus
from .registry import (
    DEFAULT_LATENCY_BOUNDS,
    GLOBAL,
    SIZE_BOUNDS,
    TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    disable,
    empty_snapshot,
    enable,
    merge_snapshots,
    snapshot_delta,
    telemetry_enabled,
)
from .trace import TRACER, TraceContext, TraceHop, Tracer, set_trace_sampling

__all__ = [
    "TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "GLOBAL",
    "DEFAULT_LATENCY_BOUNDS",
    "SIZE_BOUNDS",
    "enable",
    "disable",
    "telemetry_enabled",
    "empty_snapshot",
    "merge_snapshots",
    "snapshot_delta",
    "TraceContext",
    "TraceHop",
    "Tracer",
    "TRACER",
    "set_trace_sampling",
    "to_prometheus",
    "to_json",
    "format_trace",
    "TelemetryMergeFilter",
]


def __getattr__(name: str):
    if name == "TelemetryMergeFilter":
        from .merge_filter import TelemetryMergeFilter

        return TelemetryMergeFilter
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
