"""repro — Tree-Based Overlay Networks for Scalable Applications.

A production-quality Python reproduction of Arnold, Pack & Miller,
"Tree-based Overlay Networks for Scalable Applications" (IPPS 2006):
an MRNet-style TBON middleware (:mod:`repro.core`,
:mod:`repro.transport`), a discrete-event performance simulator
(:mod:`repro.simulate`), the paper's complex tool filters
(:mod:`repro.filters_ext`), the distributed mean-shift case study
(:mod:`repro.cluster`), failure handling (:mod:`repro.reliability`),
and tool-domain applications (:mod:`repro.tools`).

Quickstart::

    from repro import Network, balanced_topology, FIRST_APPLICATION_TAG

    topo = balanced_topology(fanout=4, depth=2)   # 16 back-ends
    with Network(topo) as net:
        s = net.new_stream(transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.send(s.stream_id, FIRST_APPLICATION_TAG, "%d", be.rank)

        net.run_backends(leaf)
        print(s.recv(timeout=5.0).values[0])
"""

from .core import *  # noqa: F401,F403 — the core package curates __all__
from .core import __all__ as _core_all

__version__ = "1.0.0"
__all__ = list(_core_all) + ["__version__"]
