"""A Distributed-Performance-Consultant-style diagnosis tool.

Section 2.2 credits MRNet's sub-graph folding filter to "the distributed
performance consultant ... on-line automated performance diagnosis on
thousands of processes" [24]: every daemon runs a hypothesis search
("is this host CPU-bound?  in which function?"), producing a labelled
*search history graph*; most hosts produce structurally identical
graphs, so SGFA folds thousands of them into one composite the analyst
can actually read.

This module implements the miniature end to end:

* :class:`HostBehaviour` — a synthetic host with per-function CPU/IO
  profiles (deterministic per rank);
* :func:`run_search` — the per-daemon hypothesis refinement: start at
  ``TopLevelHypothesis``, test children (CPU-bound? sync-bound?
  IO-bound?), descend into per-function hypotheses where a test
  exceeds its threshold — exactly the search-history-graph shape of the
  Performance Consultant;
* :class:`PerformanceConsultant` — the front-end: broadcasts the search
  request, folds the per-host graphs with the ``graph_fold`` filter,
  and reports which hypothesis paths are true on which hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.errors import TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network
from ..filters_ext.graph_fold import (
    GRAPH_FMT,
    composite_from_payload,
    label_paths_without_shim,
    tree_payload,
)

__all__ = ["HostBehaviour", "run_search", "DiagnosisReport", "PerformanceConsultant"]

_TAG_SEARCH = FIRST_APPLICATION_TAG + 80
_TAG_GRAPH = FIRST_APPLICATION_TAG + 81

_FUNCTIONS = ("solve", "exchange", "checkpoint")


@dataclass
class HostBehaviour:
    """Synthetic per-host metrics driving the hypothesis tests.

    ``profile`` picks one of a few behaviours: most hosts are
    ``cpu/solve``-bound (the normal case); an unlucky few are
    ``io/checkpoint``-bound (the anomaly the analyst is hunting).
    """

    rank: int
    profile: str = "cpu_solve"

    _PROFILES = {
        # profile -> (cpu_frac, sync_frac, io_frac, hot_function)
        "cpu_solve": (0.80, 0.10, 0.05, "solve"),
        "sync_exchange": (0.30, 0.60, 0.05, "exchange"),
        "io_checkpoint": (0.20, 0.10, 0.65, "checkpoint"),
    }

    def __post_init__(self) -> None:
        if self.profile not in self._PROFILES:
            raise TBONError(f"unknown profile {self.profile!r}")

    def metric(self, kind: str, function: str | None = None) -> float:
        """Fraction of time in ``kind`` (cpu/sync/io), optionally by function."""
        cpu, sync, io, hot = self._PROFILES[self.profile]
        base = {"cpu": cpu, "sync": sync, "io": io}[kind]
        rng = np.random.default_rng(
            np.random.SeedSequence([self.rank, hash((kind, function)) & 0xFFFF])
        )
        noise = float(rng.uniform(-0.02, 0.02))
        if function is None:
            return base + noise
        # The hot function carries most of its kind's time.
        share = 0.8 if function == hot else 0.2 / (len(_FUNCTIONS) - 1)
        return base * share + noise


def run_search(host: HostBehaviour, threshold: float = 0.5) -> dict:
    """One daemon's hypothesis search; returns a ``%o`` tree payload.

    The search history graph: root ``TopLevel``, children per resource
    kind that exceeded the threshold, grandchildren per function that
    carried the time.  Labels are hypothesis names, so structurally
    identical searches fold across hosts.
    """
    nodes = [(0, "TopLevel")]
    edges = []
    next_id = 1
    for kind in ("cpu", "sync", "io"):
        kind_val = host.metric(kind)
        kind_id = next_id
        next_id += 1
        label = f"{kind}_bound" if kind_val >= threshold else f"{kind}_ok"
        nodes.append((kind_id, label))
        edges.append((0, kind_id))
        if kind_val >= threshold:
            for fn in _FUNCTIONS:
                if host.metric(kind, fn) >= threshold * 0.5:
                    nodes.append((next_id, f"{kind}_in_{fn}"))
                    edges.append((kind_id, next_id))
                    next_id += 1
    return tree_payload(nodes, edges, host=f"host{host.rank}")


@dataclass
class DiagnosisReport:
    """The folded, cluster-wide diagnosis.

    Attributes:
        composite: the folded search-history graph.
        findings: hypothesis path -> (n_hosts, example hosts) for every
            *positive* leaf hypothesis (``*_in_*`` labels).
        n_hosts: hosts that contributed a search graph.
    """

    composite: nx.DiGraph
    findings: dict[str, tuple[int, list[str]]]
    n_hosts: int

    def anomalies(self, majority_fraction: float = 0.5) -> dict[str, tuple[int, list[str]]]:
        """Positive findings on a minority of hosts — the needles."""
        cutoff = self.n_hosts * majority_fraction
        return {k: v for k, v in self.findings.items() if v[0] < cutoff}


class PerformanceConsultant:
    """Front-end for cluster-wide automated diagnosis.

    Args:
        net: the network; each back-end hosts one daemon.
        profile_of: rank -> behaviour profile (default: all hosts
            CPU-bound in ``solve`` except one IO-bound straggler).
    """

    def __init__(self, net: Network, profile_of: dict[int, str] | None = None):
        self.net = net
        backends = net.topology.backends
        if profile_of is None:
            profile_of = {r: "cpu_solve" for r in backends}
            if len(backends) > 1:
                profile_of[backends[-1]] = "io_checkpoint"
        self.hosts = {r: HostBehaviour(r, profile_of[r]) for r in backends}

    def diagnose(self, threshold: float = 0.5, timeout: float = 30.0) -> DiagnosisReport:
        """Run one cluster-wide search and fold the history graphs."""
        stream = self.net.new_stream(transform="graph_fold", sync="wait_for_all")

        def daemon(be) -> None:
            be.wait_for_stream(stream.stream_id)
            pkt = be.recv(timeout=timeout, stream_id=stream.stream_id)
            thr = pkt.values[0]
            be.send(
                stream.stream_id, _TAG_GRAPH, GRAPH_FMT,
                run_search(self.hosts[be.rank], thr),
            )

        threads = self.net.run_backends(daemon, join=False)
        try:
            stream.send(_TAG_SEARCH, "%f", threshold)
            pkt = stream.recv(timeout=timeout)
        finally:
            for t in threads:
                t.join(timeout)
            stream.close(timeout)
        composite = composite_from_payload(pkt.values[0])
        paths = label_paths_without_shim(composite)
        findings = {}
        n_hosts = 0
        for key, (hosts, _count) in paths.items():
            labels = key.split("\x1f")
            if labels == ["TopLevel"]:
                n_hosts = len(hosts)
            if "_in_" in labels[-1]:
                findings[" > ".join(labels[1:])] = (len(hosts), sorted(hosts)[:8])
        return DiagnosisReport(
            composite=composite, findings=findings, n_hosts=n_hosts
        )
