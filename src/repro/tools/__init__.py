"""Tool-domain TBON applications (the paper's home turf, Section 2.2-2.3).

* :mod:`repro.tools.profiler` — Paradyn-like startup + aggregation;
* :mod:`repro.tools.monitor` — Ganglia/Supermon-like cluster monitor;
* :mod:`repro.tools.admin` — Lilith-like task launcher.
"""

from .admin import TaskRegistry, TaskResult, default_task_registry, run_task
from .concentrator import Concentrator, ConcentratorFilter, parse_sexpr
from .consultant import (
    DiagnosisReport,
    HostBehaviour,
    PerformanceConsultant,
    run_search,
)
from .debugger import ParallelDebugger, StackClassReport, SyntheticProcess
from .monitor import ClusterMonitor, MetricsSnapshot, NodeMetrics
from .tag import QueryResult, TagService, parse_query
from .profiler import (
    StartupReport,
    calibrate_parse_cost,
    live_startup,
    make_symbol_table,
    parse_symbol_table,
    simulate_startup,
)

__all__ = [
    "StartupReport",
    "live_startup",
    "simulate_startup",
    "make_symbol_table",
    "parse_symbol_table",
    "calibrate_parse_cost",
    "ClusterMonitor",
    "MetricsSnapshot",
    "NodeMetrics",
    "TaskRegistry",
    "TaskResult",
    "run_task",
    "default_task_registry",
    "ParallelDebugger",
    "StackClassReport",
    "SyntheticProcess",
    "TagService",
    "QueryResult",
    "parse_query",
    "PerformanceConsultant",
    "DiagnosisReport",
    "HostBehaviour",
    "run_search",
    "Concentrator",
    "ConcentratorFilter",
    "parse_sexpr",
]
