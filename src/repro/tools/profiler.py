"""A Paradyn-like distributed performance profiler on TBONs.

Section 2.2 reports MRNet's first integration: Paradyn, "a distributed
performance profiling tool organized into a central manager that
controls, collects, and analyzes performance data from remote daemons",
where tree filters for clock-skew detection and equivalence-class
suppression cut 512-daemon startup "from over 1 minute to under 20
seconds (3.4 speedup)", and tree aggregation let the front-end process
loads that saturated the one-to-many organization beyond 32 daemons.

This module provides both layers:

* a **live** miniature of the tool — synthetic daemons with skewed
  clocks and symbol tables, started over a real
  :class:`~repro.core.network.Network`, using the ``clock_skew`` and
  ``equivalence`` filters (functional demonstration, runs in tests and
  examples at tens of daemons);
* a **simulated** version at the paper's 512-daemon scale
  (:func:`simulate_startup`), whose cost constants are measured from
  the live implementation's actual parse function
  (:func:`calibrate_parse_cost`) and rescaled by ``cpu_scale`` to the
  paper's Pentium-4 era (documented substitution; the *ratio* between
  one-to-many and tree startup is scale-free).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.errors import TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network
from ..core.topology import Topology, deep_topology, flat_topology
from ..filters_ext.clock_skew import (
    CLOCK_SKEW_FMT,
    SkewClock,
    estimate_edge_offset,
    serial_skew_detection,
    tree_skew_detection,
)
from ..filters_ext.equivalence import EQUIVALENCE_FMT, EquivalenceClasses, classify

__all__ = [
    "make_symbol_table",
    "parse_symbol_table",
    "calibrate_parse_cost",
    "StartupReport",
    "live_startup",
    "simulate_startup",
]

_TAG_TABLE = FIRST_APPLICATION_TAG + 20
_TAG_SKEW = FIRST_APPLICATION_TAG + 21


def make_symbol_table(
    n_functions: int, host: str = "host0", variant: int = 0
) -> str:
    """A daemon's startup report: one line per instrumentable function.

    ``variant`` selects one of a few table contents — most daemons of a
    homogeneous cluster report identical tables (that redundancy is what
    the equivalence filter suppresses).
    """
    lines = [f"# symbol table from {host} variant {variant}"]
    for i in range(n_functions):
        addr = 0x400000 + 64 * i + variant * 7
        lines.append(f"func_{variant}_{i:05d} 0x{addr:08x} module_{i % 13}.so")
    return "\n".join(lines)


def parse_symbol_table(text: str) -> dict[str, tuple[int, str]]:
    """Parse a symbol table into ``name -> (address, module)``.

    This is the real work a front-end does per received table; its
    measured per-byte cost calibrates the startup simulation.
    """
    out: dict[str, tuple[int, str]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, addr, module = line.split()
        out[name] = (int(addr, 16), module)
    return out


def calibrate_parse_cost(n_functions: int = 4000, repeats: int = 3) -> float:
    """Measured seconds per byte of :func:`parse_symbol_table`."""
    table = make_symbol_table(n_functions)
    nbytes = len(table.encode())
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        parse_symbol_table(table)
        best = min(best, time.perf_counter() - t0)
    return best / nbytes


@dataclass
class StartupReport:
    """Result of a (live or simulated) tool startup.

    Attributes:
        n_daemons: back-end count.
        total_time: end-to-end startup seconds (virtual for simulated).
        skew_time: clock-skew detection phase seconds.
        table_time: symbol-table collection/suppression phase seconds.
        n_classes: distinct symbol-table classes seen at the front-end.
        skew_error: max abs error of recovered clock offsets (live runs
            with known injected skews; NaN otherwise).
    """

    n_daemons: int
    total_time: float
    skew_time: float
    table_time: float
    n_classes: int
    skew_error: float = float("nan")


def live_startup(
    net: Network,
    *,
    n_functions: int = 256,
    n_variants: int = 3,
    skew_scale: float = 5e-3,
    seed: int = 0,
    timeout: float = 30.0,
) -> StartupReport:
    """Run the two-phase tool startup on a live network.

    Phase 1 — clock skew: per-edge offsets are estimated with the
    round-trip estimator over injected :class:`SkewClock` instances,
    then composed up the tree by the ``clock_skew`` filter.
    Phase 2 — symbol tables: every daemon classifies its table and the
    ``equivalence`` filter suppresses duplicates.
    """
    topo = net.topology
    rng = np.random.default_rng(seed)
    clocks = {r: SkewClock(offset=float(rng.normal(scale=skew_scale))) for r in topo.ranks}
    clocks[topo.root] = SkewClock(0.0)

    # Per-edge offsets measured by each parent (concurrently in a real
    # deployment; here precomputed and handed to the filter as params).
    edge_offsets: dict[int, dict[int, float]] = {}
    for parent, child in topo.iter_edges():
        edge_offsets.setdefault(parent, {})[child] = estimate_edge_offset(
            clocks[parent], clocks[child], rng=rng
        )

    t0 = time.perf_counter()
    skew_stream = net.new_stream(
        transform="clock_skew",
        sync="wait_for_all",
        transform_params={"edge_offsets": edge_offsets},
    )
    table_stream = net.new_stream(
        transform="equivalence",
        sync="wait_for_all",
        transform_params={"max_members_per_class": 1024},
    )

    def daemon(be) -> None:
        be.wait_for_stream(skew_stream.stream_id)
        be.wait_for_stream(table_stream.stream_id)
        # Phase 1: this daemon reports offset 0 to itself; its parent
        # edge offset is added as the packet climbs.
        be.send(
            skew_stream.stream_id,
            _TAG_SKEW,
            CLOCK_SKEW_FMT,
            np.array([be.rank], dtype=np.int64),
            np.array([0.0]),
        )
        # Phase 2: classify the local symbol table by content.
        variant = be.rank % n_variants
        table = make_symbol_table(n_functions, host=f"host{be.rank}", variant=variant)
        parse_symbol_table(table)  # daemons parse their own tables too
        # Classify by table *content* (comment header names the host and
        # must not split otherwise-identical tables into classes).
        def table_key(t: str) -> str:
            body = "\n".join(l for l in t.splitlines() if not l.startswith("#"))
            return f"v{hash(body) & 0xFFFFFFFF:x}"

        ec = classify({f"host{be.rank}": table}, key_fn=table_key)
        be.send(table_stream.stream_id, _TAG_TABLE, EQUIVALENCE_FMT, *ec.to_payload())

    net.run_backends(daemon, timeout=timeout)

    t_phase = time.perf_counter()
    skew_pkt = skew_stream.recv(timeout=timeout)
    skew_time = time.perf_counter() - t_phase

    t_phase = time.perf_counter()
    table_pkt = table_stream.recv(timeout=timeout)
    table_time = time.perf_counter() - t_phase
    total = time.perf_counter() - t0

    ranks, offsets = skew_pkt.values
    recovered = dict(zip((int(r) for r in ranks), offsets))
    if set(recovered) != set(topo.backends):
        raise TBONError(
            f"skew phase covered {len(recovered)} of {topo.n_backends} daemons"
        )
    skew_error = max(
        abs(recovered[r] - (clocks[r].offset - clocks[topo.root].offset))
        for r in topo.backends
    )
    classes = EquivalenceClasses.from_payload(*table_pkt.values)
    skew_stream.close(timeout)
    table_stream.close(timeout)
    return StartupReport(
        n_daemons=topo.n_backends,
        total_time=total,
        skew_time=skew_time,
        table_time=table_time,
        n_classes=classes.n_classes,
        skew_error=skew_error,
    )


def simulate_startup(
    n_daemons: int,
    *,
    aggregate: bool,
    fanout: int = 16,
    n_functions: int = 5000,
    n_variants: int = 3,
    app_binary_mb: float = 33.0,
    parse_cost_per_byte: float | None = None,
    link_latency: float = 100e-6,
    probe_samples: int = 8,
    cpu_scale: float = 25.0,
    era_parse_cost_per_byte: float = 500e-9,
) -> StartupReport:
    """The T-startup experiment at the paper's 512-daemon scale.

    Both organizations pay the *daemon-local* startup work — every
    daemon parses the application binary (``app_binary_mb``) to build
    its symbol table; this runs concurrently across daemons, so it is a
    fixed floor the tree cannot remove (and why the paper's speedup is
    3.4×, not unbounded).  The organizations differ in the *collection*
    phases:

    * one-to-many (``aggregate=False``): the front-end serially probes
      every daemon's clock and serially parses every daemon's reported
      symbol table — both O(N) at the front-end;
    * tree (``aggregate=True``): clock probes run per-edge concurrently
      (critical path = fan-out × depth), and the equivalence filter
      collapses identical tables so a node parses at most
      ``n_variants`` distinct tables per level.

    Absolute times are pinned to a P4-era parse cost
    (``era_parse_cost_per_byte``, default 500 ns/byte ≈ a typical modern
    measurement of :func:`calibrate_parse_cost` times ``cpu_scale`` =
    25), so the reported seconds are reproducible across machines.
    Passing an explicitly measured ``parse_cost_per_byte`` overrides the
    era constant with ``measured × cpu_scale`` instead.  Either way the
    one-to-many/tree *ratio* depends only on the workload structure.
    """
    if parse_cost_per_byte is None:
        parse_cost = era_parse_cost_per_byte
    else:
        parse_cost = parse_cost_per_byte * cpu_scale
    table_bytes = len(make_symbol_table(n_functions).encode())
    probe_cost = 2 * (link_latency + 20e-6) * probe_samples
    # Daemon-local floor: each daemon digests the application binary
    # (concurrent across daemons — counted once on the critical path).
    local_time = app_binary_mb * 1e6 * parse_cost

    if not aggregate:
        skew_time = probe_cost * n_daemons
        # The front-end parses every daemon's table serially.
        table_time = local_time + n_daemons * (
            table_bytes * parse_cost + link_latency
        )
        n_classes = n_variants
    else:
        topo = deep_topology(n_daemons, max_fanout=fanout)
        # Clock skew: per-level concurrent probing (critical path).
        clocks = {r: SkewClock(0.0) for r in topo.ranks}
        _, skew_time = tree_skew_detection(
            topo, clocks, link_delay=link_latency, n_samples=probe_samples
        )
        # Tables: duplicates collapse at every level, so a node parses at
        # most min(fanout, variants) tables; levels run concurrently, so
        # only the critical path counts.
        depth = topo.depth()
        per_level = min(fanout, n_variants) * table_bytes * parse_cost
        table_time = local_time + depth * (fanout * link_latency + per_level)
        n_classes = n_variants
    return StartupReport(
        n_daemons=n_daemons,
        total_time=skew_time + table_time,
        skew_time=skew_time,
        table_time=table_time,
        n_classes=n_classes,
    )
