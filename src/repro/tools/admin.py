"""A Lilith-like scalable task launcher on a TBON.

Section 2.3: Lilith "provides a platform for distributing user code,
generally system administrative tasks, and launching these tasks across
heterogeneous systems ... task output is propagated to the root of the
tree and can be modified en-route by a single user-specified filter."

:func:`run_task` multicasts a task specification down the tree, executes
it on every back-end, and concatenates per-host outputs upstream —
optionally through a user-supplied output filter (Lilith's single
en-route filter).  Tasks are named functions from an explicit
:class:`TaskRegistry` — never pickled code — so a network cannot be made
to execute arbitrary payloads (the kind of hygiene a production tool
would need).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..analysis.locks import make_lock
from ..core.errors import TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network

__all__ = ["TaskRegistry", "TaskResult", "run_task", "default_task_registry"]

_TAG_TASK = FIRST_APPLICATION_TAG + 40
_TAG_OUTPUT = FIRST_APPLICATION_TAG + 41


class TaskRegistry:
    """Named task functions ``fn(rank, **kwargs) -> str`` back-ends may run."""

    def __init__(self) -> None:
        self._tasks: dict[str, Callable[..., str]] = {}
        self._lock = make_lock("task_registry")

    def register(self, name: str, fn: Callable[..., str]) -> None:
        with self._lock:
            if name in self._tasks:
                raise TBONError(f"task {name!r} already registered")
            self._tasks[name] = fn

    def get(self, name: str) -> Callable[..., str]:
        with self._lock:
            if name not in self._tasks:
                raise TBONError(f"unknown task {name!r}; registered: {sorted(self._tasks)}")
            return self._tasks[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tasks)


#: Registry with a few built-in demonstration tasks.
default_task_registry = TaskRegistry()
default_task_registry.register(
    "echo", lambda rank, text="": f"host{rank}: {text}"
)
default_task_registry.register(
    "uname", lambda rank: f"host{rank} tbon-sim 1.0 x86_64"
)
default_task_registry.register(
    "disk_usage", lambda rank, path="/": f"host{rank} {path} {42 + rank}% used"
)


@dataclass
class TaskResult:
    """Collected task outputs, one line per back-end."""

    task: str
    outputs: dict[int, str]

    @property
    def n_hosts(self) -> int:
        return len(self.outputs)


def run_task(
    net: Network,
    task: str,
    kwargs: dict[str, Any] | None = None,
    *,
    registry: TaskRegistry | None = None,
    timeout: float = 30.0,
) -> TaskResult:
    """Execute ``task`` on every back-end; gather outputs at the root.

    Outputs travel on a ``concat`` stream, so the front-end receives one
    packet with every host's line regardless of tree shape.
    """
    registry = registry or default_task_registry
    registry.get(task)  # fail fast at the front-end for unknown names
    kwargs = kwargs or {}
    stream = net.new_stream(transform="concat", sync="wait_for_all")

    def worker(be) -> None:
        be.wait_for_stream(stream.stream_id)
        pkt = be.recv(timeout=timeout, stream_id=stream.stream_id)
        if pkt.tag != _TAG_TASK:
            raise TBONError(f"back-end {be.rank} expected a task, got tag {pkt.tag}")
        name, kw = pkt.values[0], pkt.values[1]
        fn = registry.get(name)
        try:
            output = fn(be.rank, **kw)
        except Exception as exc:  # report failures as output lines
            output = f"host{be.rank} ERROR: {exc}"
        be.send(stream.stream_id, _TAG_OUTPUT, "%as", [f"{be.rank}\t{output}"])

    threads = net.run_backends(worker, join=False)
    stream.send(_TAG_TASK, "%s %o", task, kwargs)
    pkt = stream.recv(timeout=timeout)
    for t in threads:
        t.join(timeout)
    stream.close(timeout)
    outputs: dict[int, str] = {}
    for line in pkt.values[0]:
        rank_str, _, text = line.partition("\t")
        outputs[int(rank_str)] = text
    if set(outputs) != set(net.topology.backends):
        raise TBONError(
            f"task covered {len(outputs)} of {net.topology.n_backends} back-ends"
        )
    return TaskResult(task=task, outputs=outputs)
