"""A TAG-style declarative aggregation interface (Madden et al. [21]).

Section 2.3: "TAG [21] is a tree-based, aggregation infrastructure for
sensor networks; TAG provides a database-like SQL interface that allows
users to express simple, declarative queries that execute in a
distributed manner on the nodes of the sensor network ... TAG supports
multiple simultaneous aggregation operations and supports streams of
aggregated data in response to an aggregation request."

This module maps that interface onto the TBON middleware: a tiny SQL
dialect compiles to streams + built-in filters, with selection
predicates evaluated at the leaves (in-network filtering) and
aggregation in-flight:

    SELECT avg(cpu), max(mem) FROM sensors WHERE cpu > 20 EPOCH 3

grammar::

    query   := SELECT agg ("," agg)* FROM name [WHERE pred] [EPOCH n]
    agg     := (min|max|avg|sum|count) "(" attr ")"
    pred    := attr (<|<=|>|>=|=|!=) number

``EPOCH n`` asks for *n* rounds of the aggregate (TAG's "streams of
aggregated data in response to an aggregation request"); each round the
leaves sample their sensor, apply the predicate locally, and the tree
reduces only the surviving readings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.errors import TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network

__all__ = ["Query", "parse_query", "TagService", "QueryResult"]

_TAG_SAMPLE = FIRST_APPLICATION_TAG + 70
_TAG_DATA = FIRST_APPLICATION_TAG + 71

_AGGS = ("min", "max", "avg", "sum", "count")
_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_QUERY_RE = re.compile(
    r"^\s*SELECT\s+(?P<aggs>.+?)\s+FROM\s+(?P<table>\w+)"
    r"(?:\s+WHERE\s+(?P<attr>\w+)\s*(?P<op><=|>=|!=|<|>|=)\s*(?P<val>-?[\d.]+))?"
    r"(?:\s+EPOCH\s+(?P<epochs>\d+))?\s*$",
    re.IGNORECASE,
)
_AGG_RE = re.compile(r"^(?P<fn>\w+)\s*\(\s*(?P<attr>\w+)\s*\)$")


@dataclass(frozen=True)
class Query:
    """A parsed TAG query."""

    aggregates: tuple[tuple[str, str], ...]  # (fn, attribute)
    table: str
    predicate: tuple[str, str, float] | None  # (attr, op, value)
    epochs: int = 1

    def matches(self, row: dict[str, float]) -> bool:
        if self.predicate is None:
            return True
        attr, op, val = self.predicate
        if attr not in row:
            raise TBONError(f"predicate attribute {attr!r} not in row {sorted(row)}")
        return _OPS[op](row[attr], val)


def parse_query(sql: str) -> Query:
    """Parse the TAG dialect; raises :class:`TBONError` on bad syntax."""
    m = _QUERY_RE.match(sql)
    if not m:
        raise TBONError(f"cannot parse query {sql!r}")
    aggs = []
    for part in m.group("aggs").split(","):
        am = _AGG_RE.match(part.strip())
        if not am:
            raise TBONError(f"bad aggregate expression {part.strip()!r}")
        fn = am.group("fn").lower()
        if fn not in _AGGS:
            raise TBONError(f"unknown aggregate {fn!r}; options: {_AGGS}")
        aggs.append((fn, am.group("attr")))
    predicate = None
    if m.group("attr"):
        predicate = (m.group("attr"), m.group("op"), float(m.group("val")))
    epochs = int(m.group("epochs") or 1)
    if epochs < 1:
        raise TBONError("EPOCH must be >= 1")
    return Query(
        aggregates=tuple(aggs),
        table=m.group("table"),
        predicate=predicate,
        epochs=epochs,
    )


@dataclass
class QueryResult:
    """One epoch's answer: aggregate name -> value (NaN if no rows)."""

    epoch: int
    values: dict[str, float]
    n_rows: int


class TagService:
    """Run TAG queries over a live network of sensor back-ends.

    Args:
        net: the network; back-ends are the sensor nodes.
        sampler: ``(rank, epoch) -> row dict`` producing one reading
            (defaults to a deterministic synthetic sensor).
    """

    def __init__(
        self,
        net: Network,
        sampler: Callable[[int, int], dict[str, float]] | None = None,
    ):
        self.net = net
        self.sampler = sampler or self._default_sampler

    @staticmethod
    def _default_sampler(rank: int, epoch: int) -> dict[str, float]:
        rng = np.random.default_rng(np.random.SeedSequence([rank, epoch]))
        return {
            "cpu": float(rng.uniform(0, 100)),
            "mem": float(rng.uniform(100, 2000)),
            "temp": float(rng.uniform(20, 90)),
        }

    def execute(self, sql: str, timeout: float = 30.0) -> list[QueryResult]:
        """Run one query; returns one :class:`QueryResult` per epoch.

        Implementation: each requested aggregate becomes its own stream
        (TAG's "multiple simultaneous aggregation operations"); leaves
        evaluate the WHERE clause locally and contribute
        ``(value, matched)`` so empty selections stay well-defined.
        ``count`` counts matching rows; ``avg`` divides the summed
        values by the summed match count at the front-end.
        """
        query = parse_query(sql)
        # One stream per aggregate (TAG's simultaneous aggregations) plus
        # a hidden match-count stream that doubles as the epoch-trigger
        # control channel and avg's denominator.
        count_stream = self.net.new_stream(transform="sum", sync="wait_for_all")
        streams = {}
        for fn, attr in query.aggregates:
            base = {"min": "min", "max": "max", "avg": "sum", "sum": "sum"}.get(fn)
            if base is not None:
                streams[(fn, attr)] = self.net.new_stream(
                    transform=base, sync="wait_for_all"
                )

        def sensor(be) -> None:
            be.wait_for_stream(count_stream.stream_id)
            for s in streams.values():
                be.wait_for_stream(s.stream_id)
            for _epoch in range(query.epochs):
                pkt = be.recv(timeout=timeout, stream_id=count_stream.stream_id)
                epoch = pkt.values[0]
                row = self.sampler(be.rank, epoch)
                matched = query.matches(row)
                be.send(count_stream.stream_id, _TAG_DATA, "%d", int(matched))
                for (fn, attr), s in streams.items():
                    if attr not in row:
                        raise TBONError(
                            f"attribute {attr!r} not in sensor row {sorted(row)}"
                        )
                    if fn == "min":
                        v = row[attr] if matched else np.inf
                    elif fn == "max":
                        v = row[attr] if matched else -np.inf
                    else:  # sum / avg contribute 0 when filtered out
                        v = row[attr] if matched else 0.0
                    be.send(s.stream_id, _TAG_DATA, "%f", v)

        threads = self.net.run_backends(sensor, join=False)
        results = []
        try:
            for epoch in range(query.epochs):
                count_stream.send(_TAG_SAMPLE, "%d", epoch)
                n_rows = int(count_stream.recv(timeout=timeout).values[0])
                values: dict[str, float] = {}
                for (fn, attr), s in streams.items():
                    total = float(s.recv(timeout=timeout).values[0])
                    name = f"{fn}({attr})"
                    if fn == "avg":
                        values[name] = total / n_rows if n_rows else float("nan")
                    elif fn in ("min", "max"):
                        values[name] = total if n_rows else float("nan")
                    else:
                        values[name] = total
                for fn, attr in query.aggregates:
                    if fn == "count":
                        values[f"count({attr})"] = float(n_rows)
                results.append(QueryResult(epoch=epoch, values=values, n_rows=n_rows))
            return results
        finally:
            for t in threads:
                t.join(timeout)
            for s in [count_stream, *streams.values()]:
                if not s.is_closed:
                    s.close(timeout)
