"""A Ladebug/Ygdrasil-style parallel debugger front-end on a TBON.

Section 2.3: Ygdrasil (from the Ladebug parallel debugger [4]) "uses a
tree of aggregator nodes to apply user-specified plug-ins to in-flight
data" with "a synchronous request/response communication model, where
data flows upward in response to downward control or request messages."

This module reproduces that model: the front-end issues debugger
commands (request downstream), every debuggee process answers
(response upstream), and aggregation plug-ins collapse the responses —
the classic one is grouping thousands of stack traces into a handful of
equivalence classes ("where is my job stuck?").

The debuggees are synthetic: each back-end hosts a
:class:`SyntheticProcess` with a deterministic call stack, variables,
and a program counter, modelling an MPI job with a few distinct
behaviours (workers in a compute loop, one rank stuck in I/O...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.errors import ChannelClosedError, NetworkShutdownError, TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network
from ..filters_ext.equivalence import EQUIVALENCE_FMT, EquivalenceClasses, classify

__all__ = ["SyntheticProcess", "StackClassReport", "ParallelDebugger"]

_TAG_CMD = FIRST_APPLICATION_TAG + 60
_TAG_REPLY = FIRST_APPLICATION_TAG + 61

#: Behaviour profiles a synthetic debuggee can be in.
_PROFILES = {
    "compute": ["main", "solver_loop", "stencil_kernel"],
    "exchange": ["main", "solver_loop", "halo_exchange", "MPI_Waitall"],
    "io_stuck": ["main", "checkpoint", "write_block", "fsync"],
}


@dataclass
class SyntheticProcess:
    """A fake debuggee: stack, pc and a couple of variables."""

    rank: int
    profile: str

    def __post_init__(self) -> None:
        if self.profile not in _PROFILES:
            raise TBONError(f"unknown profile {self.profile!r}")

    @property
    def stack(self) -> list[str]:
        return list(_PROFILES[self.profile])

    def read_variable(self, name: str) -> float:
        rng = np.random.default_rng(np.random.SeedSequence([self.rank, hash(name) & 0xFFFF]))
        return float(np.round(rng.uniform(0, 100), 3))

    @property
    def pc(self) -> int:
        return 0x400000 + 64 * len(self.stack) + self.rank % 4


@dataclass
class StackClassReport:
    """Aggregated where-is-everyone answer.

    Attributes:
        classes: stack signature -> (count, example ranks).
        n_processes: total debuggees that answered.
    """

    classes: dict[str, tuple[int, list[int]]]
    n_processes: int

    def dominant(self) -> str:
        return max(self.classes, key=lambda k: self.classes[k][0])

    def outliers(self) -> dict[str, tuple[int, list[int]]]:
        """Classes covering < 10% of processes — the stuck-rank detector."""
        cutoff = max(1, self.n_processes // 10)
        return {k: v for k, v in self.classes.items() if v[0] <= cutoff}


class ParallelDebugger:
    """Synchronous request/response debugging over a live network.

    Args:
        net: the network whose back-ends host the debuggees.
        profile_of: rank -> behaviour profile name; defaults to an
            "everyone computing except one rank stuck in I/O" job.
    """

    def __init__(self, net: Network, profile_of: dict[int, str] | None = None):
        self.net = net
        backends = net.topology.backends
        if profile_of is None:
            profile_of = {r: "compute" for r in backends}
            if len(backends) > 2:
                profile_of[backends[1]] = "exchange"
                profile_of[backends[-1]] = "io_stuck"
        self.processes = {
            r: SyntheticProcess(r, profile_of[r]) for r in backends
        }
        # Stack aggregation rides the equivalence filter; variable reads
        # ride concat.  Both streams stay open across commands.
        self._stack_stream = net.new_stream(
            transform="equivalence",
            sync="wait_for_all",
            transform_params={"max_members_per_class": 64},
        )
        self._var_stream = net.new_stream(transform="concat", sync="wait_for_all")
        self._threads = net.run_backends(self._debuggee, join=False)

    # -- debuggee side ------------------------------------------------------
    def _debuggee(self, be) -> None:
        proc = self.processes[be.rank]
        be.wait_for_stream(self._stack_stream.stream_id)
        be.wait_for_stream(self._var_stream.stream_id)
        while True:
            try:
                pkt = be.recv(timeout=0.5, stream_id=self._stack_stream.stream_id)
            except TimeoutError:
                try:
                    pkt = be.recv(timeout=0.0, stream_id=self._var_stream.stream_id)
                except TimeoutError:
                    continue
                except (ChannelClosedError, NetworkShutdownError):
                    return
            except (ChannelClosedError, NetworkShutdownError):
                return  # shutdown
            if pkt.stream_id == self._stack_stream.stream_id:
                cmd = pkt.values[0]
                if cmd == "quit":
                    return
                ec = classify(
                    {str(be.rank): proc}, key_fn=lambda p: ">".join(p.stack)
                )
                be.send(
                    self._stack_stream.stream_id, _TAG_REPLY, EQUIVALENCE_FMT,
                    *ec.to_payload(),
                )
            else:
                var = pkt.values[0]
                be.send(
                    self._var_stream.stream_id, _TAG_REPLY, "%af",
                    np.array([proc.read_variable(var)]),
                )

    # -- front-end commands -----------------------------------------------------
    def where(self, timeout: float = 15.0) -> StackClassReport:
        """'where' on every process at once, aggregated by stack shape."""
        self._stack_stream.send(_TAG_CMD, "%s", "where")
        pkt = self._stack_stream.recv(timeout=timeout)
        ec = EquivalenceClasses.from_payload(*pkt.values)
        classes = {
            key: (ec.counts[key], sorted(int(m) for m in ec.members.get(key, [])))
            for key in ec.counts
        }
        return StackClassReport(classes=classes, n_processes=ec.total_count)

    def print_variable(self, name: str, timeout: float = 15.0) -> np.ndarray:
        """Gather one variable's value from every process (concat)."""
        self._var_stream.send(_TAG_CMD, "%s", name)
        pkt = self._var_stream.recv(timeout=timeout)
        return pkt.values[0]

    def close(self, timeout: float = 10.0) -> None:
        try:
            self._stack_stream.send(_TAG_CMD, "%s", "quit")
        except Exception:  # tbon: allow-broad-except(best-effort quit during teardown; the stream or network may already be down)
            pass
        for t in self._threads:
            t.join(timeout)
        for s in (self._stack_stream, self._var_stream):
            if not s.is_closed:
                s.close(timeout)
