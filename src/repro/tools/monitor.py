"""A Ganglia/Supermon-like distributed system monitor on a TBON.

Section 2.3 describes cluster monitors as natural TBON applications:
Ganglia's "multi-level hierarchy in which the level furthest from the
root ... represent[s] a cluster of nodes and the higher levels represent
federations of clusters", and Supermon's hierarchies of servers running
"data concentrators" on monitored data.

:class:`ClusterMonitor` drives periodic metric collection over a live
network using three *concurrent, overlapping streams* (an MRNet
flexible-communication-model showcase): one stream reduces with ``min``,
one with ``max``, one with ``avg`` — same members, different
aggregations, simultaneously in flight.  A ``time_out`` synchronization
filter keeps snapshots responsive when stragglers lag.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.errors import ChannelClosedError, NetworkShutdownError, TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network

__all__ = ["NodeMetrics", "MetricsSnapshot", "ClusterMonitor"]

_TAG_SAMPLE = FIRST_APPLICATION_TAG + 30
_TAG_REPLY = FIRST_APPLICATION_TAG + 31

#: Metric vector layout: [cpu_pct, mem_mb, net_mbps, load].
METRIC_NAMES = ("cpu_pct", "mem_mb", "net_mbps", "load")


@dataclass
class NodeMetrics:
    """One host's metric sample."""

    cpu_pct: float
    mem_mb: float
    net_mbps: float
    load: float

    def to_vector(self) -> np.ndarray:
        return np.array([self.cpu_pct, self.mem_mb, self.net_mbps, self.load])


@dataclass
class MetricsSnapshot:
    """One cluster-wide aggregated snapshot.

    ``captured_at`` is the monotonic clock reading taken when the
    aggregated waves landed at the front-end — the same clock the
    telemetry trace hops use, so snapshot ages compose with trace
    timestamps.  It is *not* wall-clock time; compare it only against
    other monotonic readings in this process.
    """

    minimum: np.ndarray
    maximum: np.ndarray
    average: np.ndarray
    n_reporting: int
    captured_at: float = field(default_factory=time.monotonic)

    def staleness(self, now: float | None = None) -> float:
        """Seconds elapsed since capture (monotonic ``now`` overridable)."""
        return (time.monotonic() if now is None else now) - self.captured_at

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "min": float(self.minimum[i]),
                "max": float(self.maximum[i]),
                "avg": float(self.average[i]),
            }
            for i, name in enumerate(METRIC_NAMES)
        }


def synthetic_sampler(rank: int, seed: int = 0) -> Callable[[], NodeMetrics]:
    """A deterministic per-host metric source for examples and tests."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, rank]))

    def sample() -> NodeMetrics:
        return NodeMetrics(
            cpu_pct=float(rng.uniform(5, 95)),
            mem_mb=float(rng.uniform(256, 2048)),
            net_mbps=float(rng.uniform(0, 940)),
            load=float(rng.uniform(0, 16)),
        )

    return sample


class ClusterMonitor:
    """Snapshot-oriented monitor over a live network.

    Args:
        net: the network whose back-ends are the monitored hosts.
        sampler_factory: rank → zero-arg callable producing
            :class:`NodeMetrics` (defaults to the synthetic source).
        sync_window: ``time_out`` window for straggler tolerance.
    """

    def __init__(
        self,
        net: Network,
        sampler_factory: Callable[[int], Callable[[], NodeMetrics]] | None = None,
        sync_window: float = 0.5,
    ):
        self.net = net
        factory = sampler_factory or synthetic_sampler
        self._samplers = {r: factory(r) for r in net.topology.backends}
        # Three concurrent overlapping streams: same members, different
        # aggregations — MRNet's flexible communication model.
        self.min_stream = net.new_stream(
            transform="min", sync="time_out", sync_params={"window": sync_window}
        )
        self.max_stream = net.new_stream(
            transform="max", sync="time_out", sync_params={"window": sync_window}
        )
        self.avg_stream = net.new_stream(transform="avg", sync="wait_for_all")
        self._stop = threading.Event()
        self._threads = net.run_backends(self._daemon, join=False)

    def _daemon(self, be) -> None:
        for s in (self.min_stream, self.max_stream, self.avg_stream):
            be.wait_for_stream(s.stream_id)
        sampler = self._samplers[be.rank]
        while not self._stop.is_set():
            try:
                # Targeted receive: the monitor owns only its own streams
                # and must not steal packets bound for other components.
                pkt = be.recv(timeout=0.5, stream_id=self.avg_stream.stream_id)
            except TimeoutError:
                continue
            except (ChannelClosedError, NetworkShutdownError):
                return  # network shut down
            if pkt.tag != _TAG_SAMPLE:
                continue
            vec = sampler().to_vector()
            be.send(self.min_stream.stream_id, _TAG_REPLY, "%af", vec)
            be.send(self.max_stream.stream_id, _TAG_REPLY, "%af", vec)
            be.send(self.avg_stream.stream_id, _TAG_REPLY, "%af", vec)

    def snapshot(self, timeout: float = 10.0) -> MetricsSnapshot:
        """Trigger one cluster-wide sample and aggregate it."""
        # The sample trigger multicasts on the avg stream (any stream
        # reaches all members; they reply on all three).
        self.avg_stream.send(_TAG_SAMPLE, "%d", 0)
        mn = self.min_stream.recv(timeout=timeout).values[0]
        mx = self.max_stream.recv(timeout=timeout).values[0]
        av = self.avg_stream.recv(timeout=timeout).values[0]
        captured_at = time.monotonic()
        if not (np.all(mn <= av + 1e-9) and np.all(av <= mx + 1e-9)):
            raise TBONError("aggregation invariant violated: min <= avg <= max")
        return MetricsSnapshot(
            minimum=mn,
            maximum=mx,
            average=av,
            n_reporting=self.net.topology.n_backends,
            captured_at=captured_at,
        )

    def watch(
        self, n_snapshots: int, interval: float = 0.0, timeout: float = 10.0
    ) -> list[MetricsSnapshot]:
        """Collect a series of snapshots (a monitoring session).

        ``interval`` seconds elapse between trigger broadcasts; 0 means
        back-to-back rounds (rounds are still wave-aligned per stream).
        """
        import time as _time

        out = []
        for i in range(n_snapshots):
            if i and interval > 0:
                _time.sleep(interval)
            out.append(self.snapshot(timeout=timeout))
        return out

    def close(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for s in (self.min_stream, self.max_stream, self.avg_stream):
            if not s.is_closed:
                s.close(timeout)
