"""Supermon-style symbolic data concentrators (Sottile & Minnich [26]).

Section 2.3: in Supermon, "monitoring servers can also act as clients
allowing the system to be configured into hierarchies of servers.  These
servers can execute data concentrators, implemented using functional
symbolic expressions from Lisp, on monitored data."

This module reproduces that flavour: a tiny s-expression language is
compiled into a TBON transformation filter, so the *expression itself*
is the aggregation program shipped to every communication process.
Unlike TAG (:mod:`repro.tools.tag`), which plans one stream per SQL
aggregate at the front-end, a concentrator is a single programmable
filter evaluated *at each node* over its children's vectors.

Language (s-expressions over named metric vectors)::

    expr := number
          | symbol                      ; a metric name
          | (op expr ...)               ; op in + - * / min max
          | (sum expr) | (avg expr)     ; vector -> scalar collapse
          | (count)                     ; contributing back-ends
          | (if (cmp expr expr) expr expr)   ; cmp in < <= > >= =

Per wave, each back-end sends its metric row; each node evaluates the
expression over the *concatenation* of its children's rows, collapsing
vectors with ``sum``/``avg``/``min``/``max``.  Collapses are computed
from carried sufficient statistics (sum + count, min, max), so nesting
levels compose exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..core.errors import FilterError, TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.filter_registry import register_transform
from ..core.filters import FilterContext, TransformationFilter
from ..core.network import Network
from ..core.packet import Packet

__all__ = ["parse_sexpr", "Concentrator", "ConcentratorFilter", "CONCENTRATOR_FMT"]

_TAG_ROW = FIRST_APPLICATION_TAG + 90
_TAG_TRIGGER = FIRST_APPLICATION_TAG + 91

#: Packet payload: metric names, [sum per metric, min per metric,
#: max per metric] flattened, contributing row count.
CONCENTRATOR_FMT = "%as %af %ud"


# ---------------------------------------------------------------------------
# S-expression parsing
# ---------------------------------------------------------------------------

def _tokenize(text: str) -> list[str]:
    return text.replace("(", " ( ").replace(")", " ) ").split()


def parse_sexpr(text: str):
    """Parse one s-expression into nested tuples/atoms."""
    tokens = _tokenize(text)
    if not tokens:
        raise TBONError("empty expression")
    pos = 0

    def read():
        nonlocal pos
        if pos >= len(tokens):
            raise TBONError(f"unexpected end of expression in {text!r}")
        tok = tokens[pos]
        pos += 1
        if tok == "(":
            items = []
            while pos < len(tokens) and tokens[pos] != ")":
                items.append(read())
            if pos >= len(tokens):
                raise TBONError(f"unbalanced parentheses in {text!r}")
            pos += 1  # consume ")"
            return tuple(items)
        if tok == ")":
            raise TBONError(f"unexpected ')' in {text!r}")
        try:
            return float(tok)
        except ValueError:
            return tok

    expr = read()
    if pos != len(tokens):
        raise TBONError(f"trailing tokens in {text!r}")
    return expr


# ---------------------------------------------------------------------------
# Evaluation over aggregated statistics
# ---------------------------------------------------------------------------

@dataclass
class _Stats:
    """Carried sufficient statistics per metric: sum, min, max + count."""

    names: list[str]
    sums: np.ndarray
    mins: np.ndarray
    maxs: np.ndarray
    count: int

    def metric_index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise FilterError(
                f"unknown metric {name!r}; available: {self.names}"
            ) from None

    @classmethod
    def from_row(cls, names: Sequence[str], row: np.ndarray) -> "_Stats":
        row = np.asarray(row, dtype=np.float64)
        return cls(list(names), row.copy(), row.copy(), row.copy(), 1)

    @classmethod
    def merge(cls, parts: Sequence["_Stats"]) -> "_Stats":
        first = parts[0]
        for p in parts[1:]:
            if p.names != first.names:
                raise FilterError(
                    f"metric names differ across children: {p.names} vs {first.names}"
                )
        return cls(
            first.names,
            np.sum([p.sums for p in parts], axis=0),
            np.min([p.mins for p in parts], axis=0),
            np.max([p.maxs for p in parts], axis=0),
            sum(p.count for p in parts),
        )

    # -- payload conversion ------------------------------------------------
    def to_payload(self) -> tuple[list[str], np.ndarray, int]:
        return (
            self.names,
            np.concatenate([self.sums, self.mins, self.maxs]),
            self.count,
        )

    @classmethod
    def from_payload(cls, names, flat, count) -> "_Stats":
        k = len(names)
        flat = np.asarray(flat)
        return cls(list(names), flat[:k].copy(), flat[k : 2 * k].copy(),
                   flat[2 * k :].copy(), int(count))


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else float("nan"),
}
_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
}


def _eval(expr, stats: _Stats) -> float:
    """Evaluate an expression to a scalar over the aggregated stats.

    Bare metric symbols are only legal inside a collapse
    (``sum``/``avg``/``min``/``max``) — a metric is a vector across
    back-ends, not a scalar.
    """
    if isinstance(expr, float):
        return expr
    if isinstance(expr, str):
        raise FilterError(
            f"metric {expr!r} used as a scalar; wrap it in sum/avg/min/max"
        )
    if not isinstance(expr, tuple) or not expr:
        raise FilterError(f"malformed expression {expr!r}")
    op = expr[0]
    args = expr[1:]
    if op in ("sum", "avg", "min", "max"):
        if len(args) != 1 or not isinstance(args[0], str):
            raise FilterError(f"({op} ...) takes exactly one metric name")
        i = stats.metric_index(args[0])
        if op == "sum":
            return float(stats.sums[i])
        if op == "avg":
            return float(stats.sums[i] / stats.count) if stats.count else float("nan")
        if op == "min":
            return float(stats.mins[i])
        return float(stats.maxs[i])
    if op == "count":
        if args:
            raise FilterError("(count) takes no arguments")
        return float(stats.count)
    if op in _ARITH:
        if len(args) < 2:
            raise FilterError(f"({op} ...) needs at least two arguments")
        acc = _eval(args[0], stats)
        for a in args[1:]:
            acc = _ARITH[op](acc, _eval(a, stats))
        return acc
    if op == "if":
        if len(args) != 3:
            raise FilterError("(if cond then else) takes three arguments")
        cond = args[0]
        if (
            not isinstance(cond, tuple)
            or len(cond) != 3
            or cond[0] not in _CMP
        ):
            raise FilterError(f"if-condition must be (cmp a b), got {cond!r}")
        test = _CMP[cond[0]](_eval(cond[1], stats), _eval(cond[2], stats))
        return _eval(args[1] if test else args[2], stats)
    raise FilterError(f"unknown operator {op!r}")


@register_transform("concentrator")
class ConcentratorFilter(TransformationFilter):
    """Merge children's metric statistics (the in-tree half).

    The statistics are sufficient for every language construct, so the
    expression only needs evaluating once, at the front-end — but it
    *could* be evaluated at any node (``params["expr"]`` is shipped to
    all of them), which is how Supermon's concentrators thin data
    mid-tree.  When ``params["emit_scalar"]`` is true, non-root nodes
    still forward statistics while the root emits the final scalar.
    """

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        parts = [_Stats.from_payload(*p.values) for p in packets]
        merged = _Stats.merge(parts)
        expr_text = self.params.get("expr")
        if ctx.is_root and expr_text and self.params.get("emit_scalar", True):
            value = _eval(parse_sexpr(expr_text), merged)
            return Packet(
                packets[0].stream_id, packets[0].tag, "%f %ud",
                (value, merged.count), src=-1,
            )
        return packets[0].with_values(list(merged.to_payload()))


class Concentrator:
    """Run concentrator expressions over a live network of metric hosts.

    Args:
        net: the network.
        metrics: metric names every host reports (order matters).
        sampler: ``(rank, wave) -> list of metric values``.
    """

    def __init__(self, net: Network, metrics: Sequence[str], sampler):
        self.net = net
        self.metrics = list(metrics)
        self.sampler = sampler

    def evaluate(self, expression: str, timeout: float = 30.0) -> tuple[float, int]:
        """One collection wave + evaluation; returns (value, n_hosts)."""
        parse_sexpr(expression)  # fail fast on syntax errors
        stream = self.net.new_stream(
            transform="concentrator",
            sync="wait_for_all",
            transform_params={"expr": expression},
        )

        def host(be) -> None:
            be.wait_for_stream(stream.stream_id)
            pkt = be.recv(timeout=timeout, stream_id=stream.stream_id)
            wave = pkt.values[0]
            row = np.asarray(self.sampler(be.rank, wave), dtype=np.float64)
            if len(row) != len(self.metrics):
                raise TBONError(
                    f"sampler returned {len(row)} values for "
                    f"{len(self.metrics)} metrics"
                )
            stats = _Stats.from_row(self.metrics, row)
            be.send(stream.stream_id, _TAG_ROW, CONCENTRATOR_FMT, *stats.to_payload())

        threads = self.net.run_backends(host, join=False)
        try:
            stream.send(_TAG_TRIGGER, "%d", 0)
            pkt = stream.recv(timeout=timeout)
            value, count = pkt.values
            return float(value), int(count)
        finally:
            for t in threads:
                t.join(timeout)
            stream.close(timeout)
