"""Command-line interface: ``python -m repro.cli <command>``.

Exposes the experiment harness and a few live demos without writing any
code — the shape a downstream user pokes first.

Commands:

* ``fig4``        — the paper's Figure 4 (simulated at paper scale).
* ``startup``     — T-startup, the 512-daemon Paradyn startup claim.
* ``throughput``  — T-throughput, front-end saturation vs daemon count.
* ``nodecost``    — T-nodecost, internal-node overhead.
* ``logscale``    — A-logscale, tree vs flat latency scaling.
* ``meanshift``   — live distributed mean-shift on this machine.
* ``topology``    — build and inspect a tree (prints the MRNet-style
  topology file).
* ``tboncheck``   — TBON-aware static analysis (wire formats, filter
  protocol, serialize-once contract, lock discipline, exception
  hygiene); see docs/ANALYSIS.md.
* ``stats``       — live telemetry demo: run reduction waves on a real
  tree, gather every node's metrics registry up the tree and print the
  aggregate (Prometheus text + JSON) plus a sampled causal trace; see
  docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _cmd_fig4(args: argparse.Namespace) -> int:
    from .bench.harness import run_fig4
    from .bench.reporting import fmt_seconds
    from .simulate.calibrate import REFERENCE_MODEL, calibrate_mean_shift

    model = REFERENCE_MODEL if args.reference else calibrate_mean_shift()
    scales = tuple(args.scales) if args.scales else (16, 32, 48, 64, 128, 256, 324)
    result = run_fig4(model, scales=scales)
    print(result.table.render(fmt_seconds))
    violations = result.check_shape() if not args.scales else []
    if violations:
        print("\nSHAPE VIOLATIONS:")
        for v in violations:
            print(f"  - {v}")
        return 1
    print("\nshape criteria: OK (single linear; flat bottleneck past 64; "
          "deep ~constant)")
    return 0


def _cmd_startup(args: argparse.Namespace) -> int:
    from .bench.harness import run_startup_table

    table = run_startup_table(daemon_counts=tuple(args.daemons))
    print(table.render(lambda v: f"{v:.2f}"))
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from .bench.harness import run_throughput_table

    print(run_throughput_table(daemon_counts=tuple(args.daemons), duration=args.duration))
    return 0


def _cmd_nodecost(_args: argparse.Namespace) -> int:
    from .bench.harness import run_nodecost_table

    print(run_nodecost_table())
    return 0


def _cmd_logscale(_args: argparse.Namespace) -> int:
    from .bench.harness import run_logscale_table
    from .bench.reporting import fmt_seconds

    table = run_logscale_table()
    print(table.render(lambda v: fmt_seconds(v) if isinstance(v, float) else str(v)))
    return 0


def _cmd_meanshift(args: argparse.Namespace) -> int:
    from .core.events import FIRST_APPLICATION_TAG
    from .core.network import Network
    from .core.topology import deep_topology
    from .cluster import (
        ClusterSpec,
        MEANSHIFT_FMT,
        full_dataset,
        leaf_dataset,
        leaf_mean_shift,
        mean_shift,
    )

    spec = ClusterSpec()
    n = args.leaves
    topo = deep_topology(n, max_fanout=max(2, int(np.ceil(np.sqrt(n)))))
    print(f"running distributed mean-shift on {topo}")
    t0 = time.perf_counter()
    single = mean_shift(full_dataset(n, spec, seed=args.seed))
    t_single = time.perf_counter() - t0

    with Network(topo) as net:
        s = net.new_stream(
            transform="mean_shift",
            sync="wait_for_all",
            transform_params={"bandwidth": 50.0},
        )
        order = {r: i for i, r in enumerate(topo.backends)}

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.recv(timeout=120, stream_id=s.stream_id)
            d, w, pk, _ = leaf_mean_shift(leaf_dataset(order[be.rank], spec, args.seed))
            be.send(s.stream_id, FIRST_APPLICATION_TAG, MEANSHIFT_FMT, d, w, pk)

        threads = net.run_backends(leaf, join=False)
        t0 = time.perf_counter()
        s.send(FIRST_APPLICATION_TAG, "%d", 0)
        pkt = s.recv(timeout=600)
        t_dist = time.perf_counter() - t0
        for t in threads:
            t.join(60)
        peaks = pkt.values[2]
    print(f"single node : {t_single:.2f}s, {len(single.peaks)} peaks")
    print(f"distributed : {t_dist:.2f}s, {len(peaks)} peaks "
          f"(speedup {t_single / t_dist:.2f}x)")
    for p in np.sort(peaks, axis=0):
        print(f"  peak at ({p[0]:.1f}, {p[1]:.1f})")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from .core.topology import balanced_topology, deep_topology, flat_topology

    if args.shape == "flat":
        topo = flat_topology(args.backends)
    elif args.shape == "balanced":
        depth = args.depth or 2
        topo = balanced_topology(args.fanout, depth)
    else:
        topo = deep_topology(args.backends, args.fanout)
    print(f"# {topo}")
    print(f"# depth={topo.depth()} max_fanout={topo.max_fanout} "
          f"internal_overhead={100 * topo.internal_overhead():.2f}%")
    print(topo.to_spec(), end="")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .core.events import FIRST_APPLICATION_TAG
    from .core.network import Network
    from .core.topology import balanced_topology
    from .telemetry import (
        enable as telemetry_enable,
        format_trace,
        merge_snapshots,
        set_trace_sampling,
        to_json,
        to_prometheus,
    )

    telemetry_enable()
    set_trace_sampling(1.0)
    topo = balanced_topology(args.fanout, args.depth)
    print(f"# live telemetry gather on {topo} over {args.transport}, "
          f"{args.waves} sum waves")
    traces = []
    with Network(topo, transport=args.transport) as net:
        s = net.new_stream(transform="sum", sync="wait_for_all")

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            for wave in range(args.waves):
                be.send(s.stream_id, FIRST_APPLICATION_TAG, "%d", wave + 1)

        threads = net.run_backends(leaf, join=False)
        for _ in range(args.waves):
            pkt = s.recv(timeout=60)
            if pkt.trace is not None:
                traces.append(pkt.trace)
        for t in threads:
            t.join(30)

        # The in-tree reduction covers per-node registries; the process
        # registry (frame cache, transport sockets, reactor loop /
        # send-queue instruments) is merged into both sides so transport
        # backpressure is visible here and the equality check below
        # still compares like with like.
        from .telemetry.registry import GLOBAL as process_registry

        process_snap = process_registry.snapshot()
        aggregated = merge_snapshots([net.telemetry_snapshot(), process_snap])
        local = merge_snapshots(
            [n.telemetry.snapshot() for n in net.nodes.values()]
            + [be.telemetry.snapshot() for be in net.backends]
            + [process_snap]
        )
        errors = net.node_errors()

    if args.format in ("prom", "both"):
        print("\n== aggregated snapshot (Prometheus text) ==")
        print(to_prometheus(aggregated))
    if args.format in ("json", "both"):
        print("\n== aggregated snapshot (JSON) ==")
        print(to_json(aggregated))
    if traces:
        print("\n== sampled causal trace (critical path of one wave) ==")
        print(format_trace(traces[0]))

    # The root's aggregate must equal the flat sum of every per-node
    # registry — the associativity property the in-tree reduction relies on.
    ok = True
    if errors:
        print(f"\nnode errors: {errors}")
        ok = False
    if aggregated["counters"] != local["counters"]:
        print("\nMISMATCH: tree-aggregated counters != flat per-node sum")
        for key in sorted(set(aggregated["counters"]) | set(local["counters"])):
            a = aggregated["counters"].get(key, 0)
            b = local["counters"].get(key, 0)
            if a != b:
                print(f"  {key}: aggregated={a} flat_sum={b}")
        ok = False
    else:
        up_in = aggregated["counters"].get(
            'tbon_node_packets_total{direction="up",point="in"}', 0
        )
        print(f"\ncheck: tree aggregate == flat per-node sum over "
              f"{len(aggregated['sources'])} sources "
              f"({len(aggregated['counters'])} counters; e.g. "
              f"up/in packets = {up_in}): OK")
    for tr in traces:
        ts = [t for hop in tr.hops for t in (hop.t_in, hop.t_out)]
        if ts != sorted(ts):
            print(f"check: trace {tr.trace_id:#x} hop timestamps decrease: FAIL")
            ok = False
    if traces:
        print(f"check: {len(traces)} sampled trace(s), hop timestamps "
              f"non-decreasing: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .core.topology import balanced_topology
    from .reliability.chaos import ALL_KINDS, run_chaos
    from .telemetry import enable as telemetry_enable

    kinds = tuple(k.strip() for k in args.faults.split(",") if k.strip())
    bad = [k for k in kinds if k not in ALL_KINDS]
    if bad:
        print(f"chaos: unknown fault kinds {bad}; choose from {list(ALL_KINDS)}")
        return 2
    telemetry_enable()  # fault/recovery counters show up in `repro stats`
    topo = balanced_topology(args.fanout, args.depth)
    print(f"# chaos storm on {topo} over {args.transport}: "
          f"seed={args.seed} faults={','.join(kinds)}")
    report = run_chaos(
        args.seed,
        topology=topo,
        transport=args.transport,
        kinds=kinds,
        waves=args.waves,
        events=args.events,
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_tboncheck(args: argparse.Namespace) -> int:
    from .analysis.engine import main as tboncheck_main

    if not args.list_rules and not args.paths:
        print("tboncheck: no paths given (try: tboncheck src/)")
        return 2
    return tboncheck_main(args.paths, list_rules_only=args.list_rules)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="TBON paper-reproduction harness"
    )
    sub = p.add_subparsers(dest="command", required=True)

    f4 = sub.add_parser("fig4", help="reproduce Figure 4")
    f4.add_argument("--scales", type=int, nargs="*", help="leaf counts to sweep")
    f4.add_argument(
        "--reference", action="store_true",
        help="use the frozen reference calibration instead of measuring",
    )
    f4.set_defaults(fn=_cmd_fig4)

    st = sub.add_parser("startup", help="T-startup (Paradyn 512 daemons)")
    st.add_argument("--daemons", type=int, nargs="*", default=[32, 128, 512])
    st.set_defaults(fn=_cmd_startup)

    tp = sub.add_parser("throughput", help="T-throughput (front-end saturation)")
    tp.add_argument("--daemons", type=int, nargs="*", default=[16, 32, 48, 64, 128, 512])
    tp.add_argument("--duration", type=float, default=5.0)
    tp.set_defaults(fn=_cmd_throughput)

    sub.add_parser("nodecost", help="T-nodecost (internal-node overhead)").set_defaults(
        fn=_cmd_nodecost
    )
    sub.add_parser("logscale", help="A-logscale (tree vs flat)").set_defaults(
        fn=_cmd_logscale
    )

    ms = sub.add_parser("meanshift", help="live distributed mean-shift")
    ms.add_argument("--leaves", type=int, default=9)
    ms.add_argument("--seed", type=int, default=42)
    ms.set_defaults(fn=_cmd_meanshift)

    tg = sub.add_parser("topology", help="build and print a topology")
    tg.add_argument("shape", choices=["flat", "balanced", "deep"])
    tg.add_argument("--backends", type=int, default=16)
    tg.add_argument("--fanout", type=int, default=4)
    tg.add_argument("--depth", type=int)
    tg.set_defaults(fn=_cmd_topology)

    ss = sub.add_parser(
        "stats", help="live telemetry gather demo (docs/OBSERVABILITY.md)"
    )
    ss.add_argument("--fanout", type=int, default=3)
    ss.add_argument("--depth", type=int, default=2)
    ss.add_argument("--waves", type=int, default=3)
    ss.add_argument(
        "--transport",
        choices=["tcp", "reactor", "tcp-threads", "thread"],
        default="tcp",
        help="'tcp' resolves via TBON_TRANSPORT (reactor by default); "
        "'reactor'/'tcp-threads' pick a socket implementation explicitly",
    )
    ss.add_argument("--format", choices=["prom", "json", "both"], default="both")
    ss.set_defaults(fn=_cmd_stats)

    ch = sub.add_parser(
        "chaos", help="seeded fault-injection run (docs/RELIABILITY.md)"
    )
    ch.add_argument("--seed", type=int, default=1)
    ch.add_argument(
        "--faults",
        default="drop,delay,duplicate,reorder",
        help="comma-separated fault kinds: "
        "drop,delay,duplicate,reorder,partition,reset,crash",
    )
    ch.add_argument("--fanout", type=int, default=3)
    ch.add_argument("--depth", type=int, default=2)
    ch.add_argument("--waves", type=int, default=6)
    ch.add_argument("--events", type=int, default=12)
    ch.add_argument(
        "--transport",
        choices=["tcp", "reactor", "tcp-threads", "thread"],
        default="tcp",
        help="'tcp' resolves via TBON_TRANSPORT (reactor by default)",
    )
    ch.set_defaults(fn=_cmd_chaos)

    tc = sub.add_parser(
        "tboncheck", help="TBON-aware static analysis (docs/ANALYSIS.md)"
    )
    tc.add_argument("paths", nargs="*", help="files or directories to analyze")
    tc.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    tc.set_defaults(fn=_cmd_tboncheck)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
