"""Workload builders: paper experiments expressed as simulator inputs.

Each builder turns a calibrated cost model into the ``leaf_fn``/
``merge_fn`` callbacks of :class:`repro.simulate.simnet.SimTBON`, or
configures :class:`~repro.simulate.simnet.SimStreamingTBON` for the
continuous-load experiments.  The experiment ids match DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.topology import Topology, deep_topology, flat_topology
from .calibrate import MeanShiftCostModel
from .simnet import SimCosts, SimTBON, SimStreamingTBON, WaveMessage

__all__ = [
    "MeanShiftMeta",
    "meanshift_sim",
    "meanshift_deep_topology",
    "fig4_scales",
    "paradyn_report_stream",
]

#: The paper's Figure 4 x-axis: input scale factor == back-end count.
FIG4_SCALES = (16, 32, 48, 64, 128, 256, 324)


def fig4_scales() -> tuple[int, ...]:
    return FIG4_SCALES


@dataclass(frozen=True)
class MeanShiftMeta:
    """Metadata riding on simulated mean-shift messages."""

    n_points: int
    n_peaks: int


def meanshift_deep_topology(n_backends: int) -> Topology:
    """The paper's "2-deep" tree: one internal level, √N fan-out."""
    import math

    f = max(2, math.ceil(math.sqrt(n_backends)))
    topo = deep_topology(n_backends, max_fanout=f)
    return topo


def meanshift_sim(
    topology: Topology,
    model: MeanShiftCostModel,
    costs: SimCosts | None = None,
) -> SimTBON:
    """Simulated distributed mean-shift phase over ``topology``.

    Leaves charge the measured per-leaf time and emit the measured
    collapsed payload; parents charge the model's merge prediction
    (seeded searches over the concatenated child data, then collapse)
    and emit the collapsed union with the workload's true mode count as
    peaks — exactly the data flow of
    :class:`repro.cluster.meanshift_filter.MeanShiftFilter`.
    """
    costs = costs or SimCosts()

    def leaf_fn(rank: int) -> tuple[float, WaveMessage]:
        meta = MeanShiftMeta(model.leaf_out_points, model.leaf_out_peaks)
        return model.leaf_time, WaveMessage(
            nbytes=model.payload_bytes(meta.n_points, meta.n_peaks), meta=meta
        )

    def merge_fn(rank: int, msgs: list[WaveMessage]) -> tuple[float, WaveMessage]:
        n_in = sum(m.meta.n_points for m in msgs)
        seeds = sum(m.meta.n_peaks for m in msgs)
        cpu = model.merge_cpu(n_in, seeds)
        out = MeanShiftMeta(model.collapsed_size(n_in), model.n_modes)
        return cpu, WaveMessage(
            nbytes=model.payload_bytes(out.n_points, out.n_peaks), meta=out
        )

    return SimTBON(topology, costs, leaf_fn, merge_fn)


def paradyn_report_stream(
    n_daemons: int,
    *,
    aggregate: bool,
    fanout: int = 16,
    n_functions: int = 32,
    report_interval: float = 0.2,
    duration: float = 20.0,
    frontend_analysis_per_function: float = 190e-6,
    costs: SimCosts | None = None,
) -> SimStreamingTBON:
    """The Section 2.2 data-aggregation load (experiment T-throughput).

    Every daemon periodically reports performance data for
    ``n_functions`` functions (~16 bytes of counters per function).
    ``aggregate=False`` is Paradyn's original one-to-many organization
    (a flat tree, every report hits the front-end); ``aggregate=True``
    is the MRNet organization (fan-out-``fanout`` tree whose filters
    merge one report per child into one).

    The front-end pays ``frontend_analysis_per_function`` of analysis
    per function per report it consumes (curve updates, display — the
    work that actually saturated Paradyn's central manager; the default
    puts the one-to-many knee near the paper's 32 daemons on P4-era
    hardware).  The *structural* result is parameter-free: one-to-many
    front-end load grows ∝ N while the tree's stays ~constant, so for
    any analysis cost there is a daemon count where only the tree keeps
    up.
    """
    report_bytes = 16.0 * n_functions + 64
    if aggregate:
        topo = deep_topology(n_daemons, max_fanout=fanout)
    else:
        topo = flat_topology(n_daemons)
    return SimStreamingTBON(
        topo,
        costs or SimCosts(),
        report_bytes=report_bytes,
        report_interval=report_interval,
        duration=duration,
        aggregate=aggregate,
        # Merging k function-profiles costs ~linear work in bytes seen.
        merge_cpu=lambda k, nbytes: 10e-6 + 1e-9 * nbytes,
        # Aggregated profiles stay one report wide.
        agg_bytes=lambda k, total: total / k,
        frontend_cpu_per_report=frontend_analysis_per_function * n_functions,
    )
