"""Deterministic discrete-event simulation engine.

A minimal but complete event core: a priority queue of timestamped
callbacks plus a serial-server resource.  Determinism matters more than
features here — events with equal timestamps fire in schedule order
(the queue is keyed ``(time, seq)``), no wall clock or global RNG is
consulted, so every simulated experiment is exactly reproducible.

The simulator provides *virtual seconds*; the TBON performance models in
:mod:`repro.simulate.simnet` schedule link transfers and CPU service on
top of it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..core.errors import SimulationError

__all__ = ["Simulator", "Server"]


class Simulator:
    """Event loop over virtual time."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), fn))

    def schedule_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Drain the event queue; returns the final virtual time.

        Args:
            until: stop once virtual time would exceed this (events at
                exactly ``until`` still run).
            max_events: safety valve against runaway models.
        """
        while self._queue:
            time, _seq, fn = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            fn()
            self._events_run += 1
            if self._events_run > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway model?")
        return self._now


class Server:
    """A serial FIFO resource (one CPU, one NIC...) in virtual time.

    Work submitted while the server is busy queues behind it; service is
    non-preemptive and in submission order, which is exactly the
    behaviour that makes a flat tree's front-end the bottleneck: every
    arriving message must be serviced serially.
    """

    def __init__(self, sim: Simulator, name: str = "server"):
        self.sim = sim
        self.name = name
        self._free_at = 0.0
        self.busy_time = 0.0
        self.jobs = 0
        self.max_backlog = 0.0

    def submit(
        self, duration: float, then: Callable[[], None] | None = None
    ) -> float:
        """Enqueue ``duration`` seconds of work; returns completion time.

        ``then`` (if given) runs at the completion instant.
        """
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        start = max(self.sim.now, self._free_at)
        backlog = start - self.sim.now
        if backlog > self.max_backlog:
            self.max_backlog = backlog
        finish = start + duration
        self._free_at = finish
        self.busy_time += duration
        self.jobs += 1
        if then is not None:
            self.sim.schedule_at(finish, then)
        return finish

    @property
    def free_at(self) -> float:
        return self._free_at

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` this server spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
