"""Calibration of the performance model from the real mean-shift kernel.

The paper measured wall-clock times on a Pentium-4/GigE cluster we do
not have; DESIGN.md's substitution rule says the simulator's constants
must instead be *measured from the real implementation on this machine*,
so that simulated series are honest rescalings of real compute, not
invented numbers.

:func:`calibrate_mean_shift` times the actual NumPy kernels
(:func:`repro.cluster.meanshift.mean_shift_search`,
:func:`~repro.cluster.meanshift.density_starts`,
:func:`~repro.cluster.meanshift.collapse_points`) and a real leaf and
merge step on probe data, yielding a :class:`MeanShiftCostModel` whose
predictions drive :class:`repro.simulate.simnet.SimTBON`.

:data:`REFERENCE_MODEL` is a frozen calibration (recorded from a
development machine) used by unit tests so they stay timing-independent;
benchmarks always re-calibrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..cluster.datagen import ClusterSpec, leaf_dataset
from ..cluster.meanshift import (
    collapse_points,
    density_starts,
    mean_shift,
)
from ..cluster.meanshift_filter import leaf_mean_shift

__all__ = ["MeanShiftCostModel", "calibrate_mean_shift", "REFERENCE_MODEL"]

#: Wire bytes per (x, y, weight) data point plus framing amortization.
BYTES_PER_POINT = 24.0
BYTES_PER_PEAK = 16.0


@dataclass(frozen=True)
class MeanShiftCostModel:
    """Measured cost constants for the distributed mean-shift.

    Attributes:
        per_point_iter: seconds per point×iteration of a window search.
        per_scan_point: seconds per point of the density scan.
        per_collapse_point: seconds per point of the grid collapse.
        seeded_iters: mean iterations a peak-seeded search needs.
        leaf_time: measured seconds for one full leaf step at
            ``points_per_leaf``.
        points_per_leaf: leaf dataset size the model was calibrated at.
        leaf_out_points: representatives a leaf forwards upstream.
        leaf_out_peaks: peaks a leaf forwards upstream.
        collapse_cap: asymptotic collapsed-set size (occupied cells of
            the feature space at the collapse resolution).
        n_modes: true cluster count of the workload.
    """

    per_point_iter: float
    per_scan_point: float
    per_collapse_point: float
    seeded_iters: float
    leaf_time: float
    points_per_leaf: int
    leaf_out_points: int
    leaf_out_peaks: int
    collapse_cap: int
    n_modes: int

    # -- predictions used by the simulator -------------------------------
    def merge_cpu(self, n_in_points: int, n_seeds: int) -> float:
        """Predicted seconds for a parent merge: seeded searches + collapse."""
        search = self.per_point_iter * n_in_points * n_seeds * self.seeded_iters
        return search + self.per_collapse_point * n_in_points

    def collapsed_size(self, n_in_points: int) -> int:
        """Collapsed representative count: saturates at the cell budget."""
        return int(min(n_in_points, self.collapse_cap))

    def payload_bytes(self, n_points: int, n_peaks: int) -> float:
        return BYTES_PER_POINT * n_points + BYTES_PER_PEAK * n_peaks + 64

    def single_node_time(self, n_leaves: int) -> float:
        """Predicted single-node time on the union of ``n_leaves`` datasets.

        The density scan and every window search sweep the full data
        set, and the number of dense start cells is scale-invariant
        (same feature-space area), so cost is linear in the data size —
        the paper's observed single-node behaviour.
        """
        n = n_leaves * self.points_per_leaf
        scan = self.per_scan_point * n
        # Each of the workload's dense regions seeds a search; searches
        # iterate ~seeded_iters times over all n points.
        searches = (
            self.per_point_iter * n * self.leaf_out_peaks * self.seeded_iters
        )
        # The leaf_time anchor captures constants the terms above miss
        # (peak merging, array bookkeeping) — rescale to this n.
        anchor = self.leaf_time * n / self.points_per_leaf
        return max(scan + searches, anchor)


#: Frozen dev-machine calibration for timing-independent tests
#: (recorded from a `calibrate_mean_shift()` run; benchmarks always
#: re-calibrate live).
REFERENCE_MODEL = MeanShiftCostModel(
    per_point_iter=7.1e-8,
    per_scan_point=5.0e-7,
    per_collapse_point=7.1e-7,
    seeded_iters=8.75,
    leaf_time=0.30,
    points_per_leaf=2040,
    leaf_out_points=205,
    leaf_out_peaks=4,
    collapse_cap=869,
    n_modes=4,
)


def _time_best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_mean_shift(
    spec: ClusterSpec | None = None,
    bandwidth: float = 50.0,
    seed: int = 42,
    probe_children: int = 4,
    repeats: int = 3,
) -> MeanShiftCostModel:
    """Measure a :class:`MeanShiftCostModel` on this machine.

    Runs real leaf steps on ``probe_children`` leaf datasets and one
    real parent merge over their outputs; every constant is extracted
    from those runs (no magic numbers).
    """
    spec = spec or ClusterSpec()
    leaf_data = [leaf_dataset(i, spec, seed) for i in range(probe_children)]
    n_leaf = len(leaf_data[0])

    # Leaf step: full pipeline time plus output sizes.
    leaf_outs = []
    t_leaf = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        leaf_outs = [leaf_mean_shift(d, bandwidth=bandwidth) for d in leaf_data]
        t_leaf = min(t_leaf, (time.perf_counter() - t0) / probe_children)
    out_points = int(np.mean([len(o[0]) for o in leaf_outs]))
    out_peaks = int(np.mean([len(o[2]) for o in leaf_outs]))

    # Density scan cost per point.
    probe_all = np.concatenate(leaf_data)
    t_scan = _time_best_of(lambda: density_starts(probe_all, bandwidth), repeats)
    per_scan_point = t_scan / len(probe_all)

    # Collapse cost per point.
    t_collapse = _time_best_of(
        lambda: collapse_points(probe_all, cell=bandwidth / 4), repeats
    )
    per_collapse_point = t_collapse / len(probe_all)

    # Parent merge: real seeded mean-shift over the children's outputs.
    merged = np.concatenate([o[0] for o in leaf_outs])
    merged_w = np.concatenate([o[1] for o in leaf_outs])
    seeds = np.concatenate([o[2] for o in leaf_outs])
    res_holder = {}

    def run_merge():
        res_holder["res"] = mean_shift(
            merged, bandwidth=bandwidth, starts=seeds, weights=merged_w
        )

    t_merge = _time_best_of(run_merge, repeats)
    res = res_holder["res"]
    per_point_iter = t_merge / max(1, res.point_iter_products)
    seeded_iters = res.iterations / max(1, len(seeds))

    # Collapse cap: occupied cells when all probe data is collapsed.
    cap_reps, _ = collapse_points(probe_all, cell=bandwidth / 4)
    n_modes = len(res.peaks)

    return MeanShiftCostModel(
        per_point_iter=per_point_iter,
        per_scan_point=per_scan_point,
        per_collapse_point=per_collapse_point,
        seeded_iters=max(1.0, seeded_iters),
        leaf_time=t_leaf,
        points_per_leaf=n_leaf,
        leaf_out_points=out_points,
        leaf_out_peaks=max(1, out_peaks),
        collapse_cap=max(len(cap_reps), out_points),
        n_modes=max(1, n_modes),
    )


def scaled_model(model: MeanShiftCostModel, cpu_scale: float) -> MeanShiftCostModel:
    """A model on a machine ``cpu_scale``× slower (e.g. the paper's P4s)."""
    return replace(
        model,
        per_point_iter=model.per_point_iter * cpu_scale,
        per_scan_point=model.per_scan_point * cpu_scale,
        per_collapse_point=model.per_collapse_point * cpu_scale,
        leaf_time=model.leaf_time * cpu_scale,
    )
