"""Performance simulation of TBON reductions.

The functional middleware (:mod:`repro.core`) runs real packets through
real threads or sockets; this module answers the *performance* questions
at scales a single machine cannot host as OS processes — the paper's
experiments go to 324 leaves on a Pentium-4/GigE cluster, and its
overhead argument reaches 4096 back-ends.

:class:`SimTBON` executes one reduction *phase* over an arbitrary
:class:`~repro.core.topology.Topology` in virtual time, reproducing the
measurement protocol of Section 3.2: "the measured processing time
starts with the broadcast of a control message from the front-end that
instructs the back-ends to initiate [the computation] and ends when the
results ... are available at the front-end process."

The model (calibrated constants in :class:`SimCosts`):

* every process is a serial server (one CPU): receiving a message costs
  ``per_msg_cpu + per_byte_cpu × size`` — this serial ingest is what
  saturates a flat front-end at high fan-out;
* links have latency plus bandwidth (GigE defaults);
* leaf work and merge work come from application *cost callbacks*
  operating on lightweight metadata, so the same harness simulates
  mean-shift, Paradyn startup, or any other reduction.

A second entry point, :class:`SimStreamingTBON`, models a continuous
offered load (periodic reports from every back-end) and reports
front-end utilization and queue growth — the Section 2.2 throughput
claim ("the front-end could not process data at the rate it was being
produced by more than 32 daemons").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import SimulationError
from ..core.topology import Topology
from .engine import Server, Simulator

__all__ = [
    "SimCosts",
    "WaveMessage",
    "PhaseReport",
    "SimTBON",
    "StreamingReport",
    "SimStreamingTBON",
]


@dataclass(frozen=True)
class SimCosts:
    """Calibrated machine constants for the performance model.

    Defaults approximate the paper's testbed: ~3 GHz P4 nodes on
    Gigabit Ethernet.

    Attributes:
        link_latency: one-way message latency in seconds.
        link_bandwidth: link bandwidth in bytes/second (1 Gb/s default).
        per_msg_cpu: fixed CPU cost to receive/dispatch one message.
        per_byte_cpu: CPU cost per received byte (deserialize + copy).
        per_byte_serialize: CPU cost per byte to produce one wire frame.
            Charged **once per multicast**, not once per child — the
            middleware memoizes the serialized frame and writes the same
            buffer to every child socket (serialize-once multicast).
            Default 0 preserves the historical calibration.
        control_msg_bytes: size of the start-phase control message.
    """

    link_latency: float = 100e-6
    link_bandwidth: float = 125e6
    per_msg_cpu: float = 30e-6
    per_byte_cpu: float = 2e-9
    per_byte_serialize: float = 0.0
    control_msg_bytes: int = 64

    def transfer_time(self, nbytes: float) -> float:
        return self.link_latency + nbytes / self.link_bandwidth

    def recv_time(self, nbytes: float) -> float:
        return self.per_msg_cpu + nbytes * self.per_byte_cpu

    def serialize_time(self, nbytes: float) -> float:
        """One-time frame serialization cost for a send or k-way multicast."""
        return nbytes * self.per_byte_serialize


@dataclass
class WaveMessage:
    """An upstream result in flight: wire size plus application metadata."""

    nbytes: float
    meta: Any


#: Callback computing a leaf's work:  (leaf_rank) -> (cpu_seconds, WaveMessage)
LeafFn = Callable[[int], tuple[float, WaveMessage]]
#: Callback computing a merge: (rank, list[WaveMessage]) -> (cpu_seconds, WaveMessage)
MergeFn = Callable[[int, list[WaveMessage]], tuple[float, WaveMessage]]


@dataclass
class PhaseReport:
    """Result of one simulated reduction phase."""

    completion_time: float
    root_result: WaveMessage
    node_busy: dict[int, float]
    node_jobs: dict[int, int]
    max_backlog: dict[int, float]

    def busiest_node(self) -> tuple[int, float]:
        rank = max(self.node_busy, key=lambda r: self.node_busy[r])
        return rank, self.node_busy[rank]


class SimTBON:
    """One-phase reduction simulator over a process tree.

    Args:
        topology: the process tree (any shape).
        costs: machine constants.
        leaf_fn: per-leaf compute model.
        merge_fn: per-node merge model (runs at every non-leaf node on
            the full set of child results — wait_for_all semantics).
    """

    def __init__(
        self,
        topology: Topology,
        costs: SimCosts,
        leaf_fn: LeafFn,
        merge_fn: MergeFn,
        node_speed: Callable[[int], float] | None = None,
    ):
        self.topology = topology
        self.costs = costs
        self.leaf_fn = leaf_fn
        self.merge_fn = merge_fn
        # Per-host CPU speed multiplier (the paper's testbed mixed 2.8
        # and 3.2 GHz Pentium 4s — heterogeneity matters because
        # wait_for_all waves complete at the *slowest* child).
        self.node_speed = node_speed or (lambda rank: 1.0)

    def _cpu(self, rank: int, seconds: float) -> float:
        speed = self.node_speed(rank)
        if speed <= 0:
            raise SimulationError(f"node {rank} speed must be positive, got {speed}")
        return seconds / speed

    def run(self) -> PhaseReport:
        topo = self.topology
        costs = self.costs
        sim = Simulator()
        servers = {rank: Server(sim, f"node-{rank}") for rank in topo.ranks}
        pending: dict[int, list[WaveMessage]] = {r: [] for r in topo.ranks}
        expected = {r: len(topo.children(r)) for r in topo.ranks}
        done: dict[str, Any] = {"time": None, "result": None}

        def send_up(rank: int) -> Callable[[WaveMessage], None]:
            parent = topo.parent(rank)

            def _send(msg: WaveMessage) -> None:
                if parent is None:
                    done["time"] = sim.now
                    done["result"] = msg
                    return
                sim.schedule(
                    costs.transfer_time(msg.nbytes), lambda: arrive(parent, msg)
                )

            return _send

        def arrive(rank: int, msg: WaveMessage) -> None:
            # Serial ingest at the receiving node.
            def ingested() -> None:
                pending[rank].append(msg)
                if len(pending[rank]) == expected[rank]:
                    start_merge(rank)

            servers[rank].submit(self._cpu(rank, costs.recv_time(msg.nbytes)), ingested)

        def start_merge(rank: int) -> None:
            msgs = pending[rank]
            cpu, out = self.merge_fn(rank, msgs)
            servers[rank].submit(self._cpu(rank, cpu), lambda: send_up(rank)(out))

        def start_leaf(rank: int) -> None:
            cpu, out = self.leaf_fn(rank)
            servers[rank].submit(self._cpu(rank, cpu), lambda: send_up(rank)(out))

        # Phase start: broadcast the control message down the tree.
        ctrl = costs.control_msg_bytes

        def broadcast(rank: int) -> None:
            def dispatched() -> None:
                kids = topo.children(rank)
                if not kids:
                    start_leaf(rank)
                    return
                # Serialize-once: the frame cost is paid a single time
                # here, regardless of the fan-out below.
                servers[rank].submit(self._cpu(rank, costs.serialize_time(ctrl)))
                for c in kids:
                    sim.schedule(
                        costs.transfer_time(ctrl),
                        lambda c=c: broadcast(c),
                    )

            servers[rank].submit(self._cpu(rank, costs.recv_time(ctrl)), dispatched)

        broadcast(topo.root)
        sim.run()
        if done["time"] is None:
            raise SimulationError("phase never completed (model bug?)")
        return PhaseReport(
            completion_time=done["time"],
            root_result=done["result"],
            node_busy={r: s.busy_time for r, s in servers.items()},
            node_jobs={r: s.jobs for r, s in servers.items()},
            max_backlog={r: s.max_backlog for r, s in servers.items()},
        )


@dataclass
class StreamingReport:
    """Result of a simulated streaming (continuous-load) run.

    Attributes:
        horizon: simulated duration in seconds.
        frontend_utilization: busy fraction of the front-end server.
        frontend_backlog: front-end queue delay at the horizon (seconds
            of unprocessed work) — grows without bound when saturated.
        delivered_waves: aggregated waves the front-end consumed.
        offered_waves: waves offered by the back-ends.
        saturated: True when the front-end cannot keep up.
    """

    horizon: float
    frontend_utilization: float
    frontend_backlog: float
    delivered_waves: int
    offered_waves: int
    saturated: bool


class SimStreamingTBON:
    """Continuous offered load: every back-end reports at a fixed rate.

    With ``aggregate=True`` internal nodes combine one report per child
    into a single parent-bound report of size ``agg_bytes(k, child
    sizes)`` (filter aggregation); with ``aggregate=False`` every report
    travels to the front-end individually (the one-to-many baseline —
    internal nodes, if any, merely forward).
    """

    def __init__(
        self,
        topology: Topology,
        costs: SimCosts,
        *,
        report_bytes: float,
        report_interval: float,
        duration: float,
        aggregate: bool,
        merge_cpu: Callable[[int, int], float] | None = None,
        agg_bytes: Callable[[int, float], float] | None = None,
        frontend_cpu_per_report: float = 0.0,
    ):
        self.topology = topology
        self.costs = costs
        self.report_bytes = report_bytes
        self.report_interval = report_interval
        self.duration = duration
        self.aggregate = aggregate
        # merge_cpu(k_children, total_bytes) -> seconds
        self.merge_cpu = merge_cpu or (lambda k, nbytes: 5e-6 * k)
        # agg_bytes(k_children, total_child_bytes) -> merged size
        self.agg_bytes = agg_bytes or (lambda k, total: total / k)
        # Application-level analysis cost the front-end pays per report
        # it consumes (Paradyn: updating per-function curves, display).
        # Aggregation's whole point is cutting the *number* of reports
        # the front-end must analyze.
        self.frontend_cpu_per_report = frontend_cpu_per_report

    def run(self) -> StreamingReport:
        topo = self.topology
        costs = self.costs
        sim = Simulator()
        servers = {rank: Server(sim, f"node-{rank}") for rank in topo.ranks}
        root = topo.root
        delivered = {"n": 0}
        offered = {"n": 0}
        # Per-node wave alignment: wave index -> messages so far.
        waves: dict[int, dict[int, list[float]]] = {
            r: {} for r in topo.ranks
        }
        expected = {r: len(topo.covering_children(r, topo.backends)) for r in topo.ranks}

        def send_to_parent(rank: int, nbytes: float, wave: int) -> None:
            parent = topo.parent(rank)
            if parent is None:
                return
            sim.schedule(
                costs.transfer_time(nbytes),
                lambda: arrive(parent, nbytes, wave),
            )

        def deliver_at_root() -> None:
            if self.frontend_cpu_per_report > 0:
                servers[root].submit(
                    self.frontend_cpu_per_report,
                    lambda: delivered.__setitem__("n", delivered["n"] + 1),
                )
            else:
                delivered["n"] += 1

        def arrive(rank: int, nbytes: float, wave: int) -> None:
            def ingested() -> None:
                if rank == root and not self.aggregate:
                    deliver_at_root()
                    return
                bucket = waves[rank].setdefault(wave, [])
                bucket.append(nbytes)
                if not self.aggregate:
                    # Forward immediately (no aggregation anywhere).
                    send_to_parent(rank, nbytes, wave)
                    waves[rank].pop(wave, None)
                    return
                if len(bucket) == expected[rank]:
                    total = sum(bucket)
                    waves[rank].pop(wave)
                    merged = self.agg_bytes(len(bucket), total)
                    cpu = self.merge_cpu(len(bucket), int(total))

                    def merged_done() -> None:
                        if rank == root:
                            deliver_at_root()
                        else:
                            send_to_parent(rank, merged, wave)

                    servers[rank].submit(cpu, merged_done)

            servers[rank].submit(costs.recv_time(nbytes), ingested)

        def leaf_report(rank: int, wave: int) -> None:
            if sim.now > self.duration:
                return
            offered["n"] += 1
            send_to_parent(rank, self.report_bytes, wave)
            sim.schedule(self.report_interval, lambda: leaf_report(rank, wave + 1))

        for be in topo.backends:
            sim.schedule(0.0, lambda be=be: leaf_report(be, 0))
        sim.run(until=self.duration)

        fe = servers[root]
        backlog = max(0.0, fe.free_at - self.duration)
        util = fe.utilization(self.duration)
        # Saturated if the front-end ends the run with a growing backlog
        # worth more than a handful of report intervals.
        saturated = backlog > 2 * self.report_interval or util >= 0.999
        return StreamingReport(
            horizon=self.duration,
            frontend_utilization=util,
            frontend_backlog=backlog,
            delivered_waves=delivered["n"],
            offered_waves=offered["n"],
            saturated=saturated,
        )
