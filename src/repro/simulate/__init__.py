"""Discrete-event performance simulation of TBON experiments.

The functional middleware runs for real (threads/TCP); this package
answers performance questions at the paper's scales (hundreds to
thousands of back-ends) with a deterministic event simulator whose cost
constants are calibrated from the real kernels on this machine — see
DESIGN.md's substitution table.
"""

from .calibrate import (
    MeanShiftCostModel,
    REFERENCE_MODEL,
    calibrate_mean_shift,
    scaled_model,
)
from .engine import Server, Simulator
from .simnet import (
    PhaseReport,
    SimCosts,
    SimStreamingTBON,
    SimTBON,
    StreamingReport,
    WaveMessage,
)
from .workload import (
    FIG4_SCALES,
    MeanShiftMeta,
    fig4_scales,
    meanshift_deep_topology,
    meanshift_sim,
    paradyn_report_stream,
)

__all__ = [
    "Simulator",
    "Server",
    "SimCosts",
    "SimTBON",
    "SimStreamingTBON",
    "PhaseReport",
    "StreamingReport",
    "WaveMessage",
    "MeanShiftCostModel",
    "REFERENCE_MODEL",
    "calibrate_mean_shift",
    "scaled_model",
    "FIG4_SCALES",
    "fig4_scales",
    "MeanShiftMeta",
    "meanshift_sim",
    "meanshift_deep_topology",
    "paradyn_report_stream",
]
