"""Synthetic datasets for the distributed learning extension.

Deterministic, shard-aware generators in the style of
:mod:`repro.cluster.datagen`: a shard depends only on
``(seed, shard_index)``, so distributed and single-node fits operate on
exactly the same union.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import TBONError

__all__ = ["make_classification_shard", "make_regression_shard", "union_shards"]


def make_classification_shard(
    shard: int,
    n_samples: int = 200,
    n_features: int = 4,
    n_classes: int = 3,
    class_sep: float = 3.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian class blobs in feature space; returns (X, y).

    Class centers are fixed by the seed (shared across shards); each
    shard draws its own samples, modelling per-host data collection.
    """
    if n_classes < 2:
        raise TBONError("need at least 2 classes")
    center_rng = np.random.default_rng(seed)
    centers = center_rng.normal(scale=class_sep, size=(n_classes, n_features))
    rng = np.random.default_rng(np.random.SeedSequence([seed, 1000 + shard]))
    labels = rng.integers(0, n_classes, size=n_samples)
    X = centers[labels] + rng.normal(size=(n_samples, n_features))
    return X, labels.astype(np.float64)


def make_regression_shard(
    shard: int,
    n_samples: int = 200,
    n_features: int = 3,
    noise: float = 0.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A piecewise-constant target (tree-learnable); returns (X, y).

    The target depends on threshold rules over two features, so an
    axis-aligned tree of depth >= 2 can represent it exactly up to
    noise.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 2000 + shard]))
    X = rng.uniform(-1, 1, size=(n_samples, n_features))
    y = np.where(
        X[:, 0] <= 0.0,
        np.where(X[:, 1] <= -0.3, -2.0, 1.0),
        np.where(X[:, 1] <= 0.4, 0.5, 3.0),
    )
    return X, y + rng.normal(scale=noise, size=n_samples)


def union_shards(shards: list[tuple[np.ndarray, np.ndarray]]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate (X, y) shards — the single-node view of the data."""
    X = np.concatenate([s[0] for s in shards])
    y = np.concatenate([s[1] for s in shards])
    return X, y
