"""Distributed decision/regression trees — the paper's future work, built.

Section 4: "As future work we are looking at using TB̄ONs as a general
tool that can support other clustering algorithms, or data models such
as decision and regression trees that can be built by passing data both
directions in the tree.  This bidirectional communication allows model
cross-validation or refinement via operations performed directly on the
models."

This module implements exactly that pattern over a live
:class:`~repro.core.network.Network`:

* **downstream**: the front-end broadcasts the partial model (the tree
  grown so far), the frontier node to expand, and the candidate split
  bins;
* **upstream**: every back-end routes its local samples through the
  partial tree, accumulates per-(feature, bin) statistics for the
  frontier node — class-count histograms for classification,
  (count, sum, sum-of-squares) for regression — and the built-in
  ``sum`` filter reduces them;
* the front-end scores every candidate split from the *global*
  statistics, grows the tree one node, and repeats.

Because the per-bin statistics are sums, the distributed fit is
**exactly** the single-node greedy CART fit on the union of the data
(given the same candidate bins) — asserted by the test suite.  Model
cross-validation is the same bidirectional pattern
(:func:`distributed_score`): broadcast the model, reduce
(correct-count, n) or (squared-error, n).

Candidate bins are equal-width per feature between the *global* minima
and maxima, themselves obtained with one ``min``/``max`` reduction pair
— so the whole pipeline, including preprocessing, is TBON-native.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.errors import TBONError
from ..core.events import FIRST_APPLICATION_TAG
from ..core.network import Network

__all__ = [
    "TreeNode",
    "DecisionTree",
    "fit_single",
    "fit_distributed",
    "distributed_score",
]

_TAG_QUERY = FIRST_APPLICATION_TAG + 50
_TAG_STATS = FIRST_APPLICATION_TAG + 51

_LEAF = -1


@dataclass
class TreeNode:
    """One node of a (binary) decision tree.

    Attributes:
        feature: split feature index, or -1 for a leaf.
        threshold: split threshold (samples with value <= go left).
        left/right: child indices into :attr:`DecisionTree.nodes`.
        prediction: leaf output — class label (classification) or mean
            target (regression); also kept on internal nodes for pruning.
        n_samples: training samples that reached this node.
        impurity: node impurity at fit time (gini or variance).
    """

    feature: int = _LEAF
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    prediction: float = 0.0
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature == _LEAF


@dataclass
class DecisionTree:
    """A fitted CART model (classification or regression).

    ``nodes[0]`` is the root.  The structure is a plain picklable value
    so it can ride ``%o`` packet slots (models are data in the TBON
    reading — they flow down the tree like any other multicast).
    """

    task: str  # "classify" | "regress"
    n_features: int
    nodes: list[TreeNode] = field(default_factory=list)
    classes: np.ndarray | None = None  # label values (classification)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized prediction for (n, d) inputs."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise TBONError(
                f"expected (n, {self.n_features}) inputs, got {X.shape}"
            )
        out = np.empty(len(X))
        idx = np.zeros(len(X), dtype=np.int64)
        active = np.arange(len(X))
        while len(active):
            node_ids = idx[active]
            done = []
            for nid in np.unique(node_ids):
                node = self.nodes[nid]
                members = active[node_ids == nid]
                if node.is_leaf:
                    out[members] = node.prediction
                    done.append(members)
                else:
                    goes_left = X[members, node.feature] <= node.threshold
                    idx[members[goes_left]] = node.left
                    idx[members[~goes_left]] = node.right
            if done:
                active = np.setdiff1d(active, np.concatenate(done), assume_unique=True)
        return out

    def route(self, X: np.ndarray, target_node: int) -> np.ndarray:
        """Boolean mask of samples whose path reaches ``target_node``."""
        X = np.asarray(X, dtype=np.float64)
        mask = np.zeros(len(X), dtype=bool)
        path = self._path_to(target_node)
        current = np.ones(len(X), dtype=bool)
        for nid, go_left in path:
            node = self.nodes[nid]
            side = X[:, node.feature] <= node.threshold
            current &= side if go_left else ~side
        mask[:] = current
        return mask

    def _path_to(self, target: int) -> list[tuple[int, bool]]:
        """(ancestor, went_left) decisions from the root to ``target``."""
        parent: dict[int, tuple[int, bool]] = {}
        for i, node in enumerate(self.nodes):
            if not node.is_leaf:
                parent[node.left] = (i, True)
                parent[node.right] = (i, False)
        path = []
        nid = target
        while nid in parent:
            ancestor, went_left = parent[nid]
            path.append((ancestor, went_left))
            nid = ancestor
        return list(reversed(path))

    @property
    def depth(self) -> int:
        def d(nid: int) -> int:
            node = self.nodes[nid]
            if node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(0) if self.nodes else 0

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.nodes if n.is_leaf)


# ---------------------------------------------------------------------------
# Statistics and split scoring (shared by single-node and distributed)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _FitParams:
    task: str
    max_depth: int
    min_samples_split: int
    min_gain: float
    n_bins: int


def _bin_edges(lo: np.ndarray, hi: np.ndarray, n_bins: int) -> np.ndarray:
    """Equal-width candidate thresholds per feature: (d, n_bins - 1)."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    span = np.where(hi > lo, hi - lo, 1.0)
    steps = np.arange(1, n_bins) / n_bins
    return lo[:, None] + span[:, None] * steps[None, :]


def _bin_index(X: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin id per (sample, feature): values <= edge k land in bins <= k."""
    d = X.shape[1]
    out = np.empty(X.shape, dtype=np.int64)
    for f in range(d):
        out[:, f] = np.searchsorted(edges[f], X[:, f], side="left")
    return out


def _classify_stats(
    X: np.ndarray, y: np.ndarray, mask: np.ndarray, edges: np.ndarray, n_classes: int
) -> np.ndarray:
    """Per-(feature, bin, class) counts for the masked samples."""
    d, b = edges.shape[0], edges.shape[1] + 1
    stats = np.zeros((d, b, n_classes))
    if not mask.any():
        return stats
    bins = _bin_index(X[mask], edges)
    labels = y[mask].astype(np.int64)
    for f in range(d):
        np.add.at(stats[f], (bins[:, f], labels), 1.0)
    return stats


def _regress_stats(
    X: np.ndarray, y: np.ndarray, mask: np.ndarray, edges: np.ndarray
) -> np.ndarray:
    """Per-(feature, bin) [count, sum, sumsq] for the masked samples."""
    d, b = edges.shape[0], edges.shape[1] + 1
    stats = np.zeros((d, b, 3))
    if not mask.any():
        return stats
    bins = _bin_index(X[mask], edges)
    ym = y[mask]
    for f in range(d):
        np.add.at(stats[f, :, 0], bins[:, f], 1.0)
        np.add.at(stats[f, :, 1], bins[:, f], ym)
        np.add.at(stats[f, :, 2], bins[:, f], ym * ym)
    return stats


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


def _best_split_classify(
    stats: np.ndarray, edges: np.ndarray, min_gain: float
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, gain) from global class-count stats."""
    d, b, _c = stats.shape
    node_counts = stats[0].sum(axis=0)
    total = node_counts.sum()
    if total <= 0:
        return None
    parent_impurity = _gini(node_counts)
    best: tuple[int, float, float] | None = None
    for f in range(d):
        left = np.cumsum(stats[f], axis=0)  # counts with bin <= k
        for k in range(b - 1):
            nl = left[k].sum()
            nr = total - nl
            if nl == 0 or nr == 0:
                continue
            gain = parent_impurity - (
                nl / total * _gini(left[k])
                + nr / total * _gini(node_counts - left[k])
            )
            if gain > min_gain and (best is None or gain > best[2]):
                best = (f, float(edges[f, k]), float(gain))
    return best


def _best_split_regress(
    stats: np.ndarray, edges: np.ndarray, min_gain: float
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, variance reduction) from moment stats."""
    d, b, _ = stats.shape
    agg = stats[0].sum(axis=0)
    total, s, ss = agg
    if total <= 0:
        return None
    parent_var = ss / total - (s / total) ** 2
    best: tuple[int, float, float] | None = None
    for f in range(d):
        left = np.cumsum(stats[f], axis=0)
        for k in range(b - 1):
            nl, sl, ssl = left[k]
            nr, sr, ssr = total - nl, s - sl, ss - ssl
            if nl == 0 or nr == 0:
                continue
            var_l = ssl / nl - (sl / nl) ** 2
            var_r = ssr / nr - (sr / nr) ** 2
            gain = parent_var - (nl / total * var_l + nr / total * var_r)
            if gain > min_gain and (best is None or gain > best[2]):
                best = (f, float(edges[f, k]), float(gain))
    return best


def _node_from_stats(task: str, stats: np.ndarray, classes) -> TreeNode:
    """Leaf-style node summary (prediction, count, impurity) from stats."""
    agg = stats[0].sum(axis=0)
    if task == "classify":
        total = agg.sum()
        pred = float(classes[int(np.argmax(agg))]) if total > 0 else 0.0
        return TreeNode(prediction=pred, n_samples=int(total), impurity=_gini(agg))
    total, s, ss = agg
    mean = s / total if total > 0 else 0.0
    var = ss / total - mean**2 if total > 0 else 0.0
    return TreeNode(prediction=float(mean), n_samples=int(total), impurity=float(var))


# ---------------------------------------------------------------------------
# The generic grower: stats come from a callback, so single-node and
# distributed fits share every line of the split logic.
# ---------------------------------------------------------------------------

def _grow(
    tree: DecisionTree,
    params: _FitParams,
    edges: np.ndarray,
    stats_fn,
) -> DecisionTree:
    """Grow ``tree`` breadth-first; ``stats_fn(tree, node_id)`` returns
    the global frontier-node statistics (however they are gathered)."""
    classes = tree.classes
    frontier = [(0, 0)]  # (node id, depth)
    tree.nodes.append(TreeNode())
    while frontier:
        nid, depth = frontier.pop(0)
        stats = stats_fn(tree, nid)
        summary = _node_from_stats(params.task, stats, classes)
        node = tree.nodes[nid]
        node.prediction = summary.prediction
        node.n_samples = summary.n_samples
        node.impurity = summary.impurity
        if (
            depth >= params.max_depth
            or summary.n_samples < params.min_samples_split
            or summary.impurity <= 1e-12
        ):
            continue
        if params.task == "classify":
            best = _best_split_classify(stats, edges, params.min_gain)
        else:
            best = _best_split_regress(stats, edges, params.min_gain)
        if best is None:
            continue
        f, thr, _gain = best
        node.feature = f
        node.threshold = thr
        node.left = len(tree.nodes)
        tree.nodes.append(TreeNode())
        node.right = len(tree.nodes)
        tree.nodes.append(TreeNode())
        frontier.append((node.left, depth + 1))
        frontier.append((node.right, depth + 1))
    return tree


def _prepare(task: str, y: np.ndarray) -> np.ndarray | None:
    if task not in ("classify", "regress"):
        raise TBONError(f"task must be 'classify' or 'regress', got {task!r}")
    if task == "classify":
        return np.unique(np.asarray(y))
    return None


def fit_single(
    X: np.ndarray,
    y: np.ndarray,
    task: str = "classify",
    *,
    max_depth: int = 5,
    min_samples_split: int = 2,
    min_gain: float = 1e-9,
    n_bins: int = 16,
    edges: np.ndarray | None = None,
) -> DecisionTree:
    """Single-node greedy CART on binned candidate splits (the baseline)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or len(X) != len(y):
        raise TBONError(f"bad shapes X{X.shape} y{y.shape}")
    params = _FitParams(task, max_depth, min_samples_split, min_gain, n_bins)
    classes = _prepare(task, y)
    if edges is None:
        edges = _bin_edges(X.min(axis=0), X.max(axis=0), n_bins)
    tree = DecisionTree(task=task, n_features=X.shape[1], classes=classes)
    label_idx = (
        np.searchsorted(classes, y) if task == "classify" else None
    )

    def stats_fn(t: DecisionTree, nid: int) -> np.ndarray:
        mask = t.route(X, nid)
        if task == "classify":
            return _classify_stats(X, label_idx, mask, edges, len(classes))
        return _regress_stats(X, y, mask, edges)

    return _grow(tree, params, edges, stats_fn)


# ---------------------------------------------------------------------------
# Distributed fit over a live network
# ---------------------------------------------------------------------------

def fit_distributed(
    net: Network,
    leaf_data: dict[int, tuple[np.ndarray, np.ndarray]],
    task: str = "classify",
    *,
    max_depth: int = 5,
    min_samples_split: int = 2,
    min_gain: float = 1e-9,
    n_bins: int = 16,
    timeout: float = 60.0,
) -> DecisionTree:
    """Fit a CART over the union of per-back-end ``(X, y)`` shards.

    Identical output to :func:`fit_single` on the concatenated data
    (same bins; statistics are associative sums).  Three TBON uses:

    1. ``min``/``max`` reductions establish global per-feature ranges;
    2. per frontier node: model broadcast down, statistic sums up;
    3. termination broadcast releases the back-end workers.
    """
    backends = net.topology.backends
    missing = [r for r in backends if r not in leaf_data]
    if missing:
        raise TBONError(f"leaf_data missing back-end ranks {missing}")
    ref_X, ref_y = leaf_data[backends[0]]
    d = np.asarray(ref_X).shape[1]
    params = _FitParams(task, max_depth, min_samples_split, min_gain, n_bins)
    all_y = np.concatenate([np.asarray(leaf_data[r][1], dtype=np.float64) for r in backends])
    classes = _prepare(task, all_y)

    s_min = net.new_stream(transform="min", sync="wait_for_all")
    s_max = net.new_stream(transform="max", sync="wait_for_all")
    s_stats = net.new_stream(transform="sum", sync="wait_for_all")

    def worker(be) -> None:
        X = np.asarray(leaf_data[be.rank][0], dtype=np.float64)
        y = np.asarray(leaf_data[be.rank][1], dtype=np.float64)
        label_idx = np.searchsorted(classes, y) if task == "classify" else None
        for s in (s_min, s_max, s_stats):
            be.wait_for_stream(s.stream_id)
        # Phase 1: global feature ranges.
        if len(X):
            be.send(s_min.stream_id, _TAG_STATS, "%af", X.min(axis=0))
            be.send(s_max.stream_id, _TAG_STATS, "%af", X.max(axis=0))
        else:
            be.send(s_min.stream_id, _TAG_STATS, "%af", np.full(d, np.inf))
            be.send(s_max.stream_id, _TAG_STATS, "%af", np.full(d, -np.inf))
        # Phase 2: answer frontier queries until the stop signal.
        while True:
            pkt = be.recv(timeout=timeout, stream_id=s_stats.stream_id)
            if pkt.tag != _TAG_QUERY:
                continue
            payload = pkt.values[0]
            if payload is None:
                return
            tree, nid, edges = payload
            mask = tree.route(X, nid) if len(X) else np.zeros(0, dtype=bool)
            if task == "classify":
                stats = _classify_stats(X, label_idx, mask, edges, len(classes))
            else:
                stats = _regress_stats(X, y, mask, edges)
            be.send(s_stats.stream_id, _TAG_STATS, "%af", stats.ravel())

    threads = net.run_backends(worker, join=False)
    try:
        # min/max of per-leaf minima/maxima: elementwise slot reduction.
        lo = s_min.recv(timeout=timeout).values[0]
        hi = s_max.recv(timeout=timeout).values[0]
        edges = _bin_edges(lo, hi, n_bins)
        if task == "classify":
            shape = (d, n_bins, len(classes))
        else:
            shape = (d, n_bins, 3)
        tree = DecisionTree(task=task, n_features=d, classes=classes)

        def stats_fn(t: DecisionTree, nid: int) -> np.ndarray:
            s_stats.send(_TAG_QUERY, "%o", (t, nid, edges))
            pkt = s_stats.recv(timeout=timeout)
            return pkt.values[0].reshape(shape)

        _grow(tree, params, edges, stats_fn)
        s_stats.send(_TAG_QUERY, "%o", None)  # release the workers
        return tree
    finally:
        for t in threads:
            t.join(timeout)
        for s in (s_min, s_max, s_stats):
            if not s.is_closed:
                s.close(timeout)


def distributed_score(
    net: Network,
    tree: DecisionTree,
    leaf_data: dict[int, tuple[np.ndarray, np.ndarray]],
    timeout: float = 60.0,
) -> float:
    """Cross-validate a model over distributed holdout shards.

    Broadcasts the fitted model downstream; every back-end evaluates it
    on its local data and a ``sum`` reduction gathers
    (hits, n) for classification or (squared error, n) for regression.
    Returns accuracy (classify) or MSE (regress) over the union —
    the paper's "model cross-validation ... via operations performed
    directly on the models".
    """
    s = net.new_stream(transform="sum", sync="wait_for_all")

    def worker(be) -> None:
        be.wait_for_stream(s.stream_id)
        pkt = be.recv(timeout=timeout, stream_id=s.stream_id)
        model: DecisionTree = pkt.values[0]
        X, y = leaf_data[be.rank]
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0:
            be.send(s.stream_id, _TAG_STATS, "%f %d", 0.0, 0)
            return
        pred = model.predict(X)
        if model.task == "classify":
            metric = float((pred == y).sum())
        else:
            metric = float(((pred - y) ** 2).sum())
        be.send(s.stream_id, _TAG_STATS, "%f %d", metric, len(X))

    threads = net.run_backends(worker, join=False)
    try:
        s.send(_TAG_QUERY, "%o", tree)
        pkt = s.recv(timeout=timeout)
        metric, n = pkt.values
        if n == 0:
            raise TBONError("no holdout samples on any back-end")
        return metric / n
    finally:
        for t in threads:
            t.join(timeout)
        if not s.is_closed:
            s.close(timeout)
