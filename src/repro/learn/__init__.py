"""Distributed model building on TBONs (the paper's Section-4 future work).

Decision and regression trees "built by passing data both directions in
the tree": model broadcasts flow downstream, statistic reductions flow
upstream, and cross-validation runs directly on the broadcast models.
"""

from .datasets import (
    make_classification_shard,
    make_regression_shard,
    union_shards,
)
from .dtree import (
    DecisionTree,
    TreeNode,
    distributed_score,
    fit_distributed,
    fit_single,
)

__all__ = [
    "DecisionTree",
    "TreeNode",
    "fit_single",
    "fit_distributed",
    "distributed_score",
    "make_classification_shard",
    "make_regression_shard",
    "union_shards",
]
