"""Exception hierarchy for the TBON middleware.

Every error raised by :mod:`repro` derives from :class:`TBONError` so
applications can catch middleware failures with a single handler while
still distinguishing configuration errors (bad topologies, unknown
filters) from runtime errors (broken channels, dead nodes).
"""

from __future__ import annotations

__all__ = [
    "TBONError",
    "TopologyError",
    "SerializationError",
    "FormatStringError",
    "FilterError",
    "FilterLoadError",
    "StreamError",
    "StreamClosedError",
    "TransportError",
    "ChannelClosedError",
    "ChannelBusyError",
    "NetworkShutdownError",
    "NodeFailureError",
    "RecoveryError",
    "SimulationError",
    "ProtocolError",
]


class TBONError(Exception):
    """Base class for all errors raised by the TBON middleware."""


class TopologyError(TBONError):
    """A topology specification is malformed or violates tree invariants.

    Raised for cycles, multiple parents, orphaned nodes, empty trees,
    duplicate node identifiers, or parse errors in topology files.
    """


class SerializationError(TBONError):
    """A packet payload could not be packed or unpacked."""


class FormatStringError(SerializationError):
    """A packet format string contains an unknown or malformed directive."""


class FilterError(TBONError):
    """A filter raised during execution or produced an invalid output."""


class FilterLoadError(FilterError):
    """A filter could not be resolved or dynamically loaded.

    The dynamic loader mirrors MRNet's ``dlopen``-style interface; this
    is the Python equivalent of a failed ``dlopen``/``dlsym``.
    """


class StreamError(TBONError):
    """A stream operation is invalid (unknown stream, bad membership...)."""


class StreamClosedError(StreamError):
    """An operation was attempted on a closed stream."""


class TransportError(TBONError):
    """A transport-level failure (socket error, thread death...)."""


class ChannelClosedError(TransportError):
    """A send or receive was attempted on a closed FIFO channel."""


class ChannelBusyError(TransportError):
    """A non-blocking send found a bounded send queue at its high-water mark.

    Only transports with bounded per-peer send queues raise this, and only
    when configured to fail fast (``blocking_sends=False``) or when a
    blocking send exceeds its stall timeout; the blocking default applies
    backpressure by waiting for the queue to drain instead.  See
    docs/PROTOCOL.md §7 (transport architectures / backpressure).
    """


class NetworkShutdownError(TBONError):
    """An operation was attempted on a network that has been shut down."""


class NodeFailureError(TBONError):
    """A communication process failed (used by failure injection)."""


class RecoveryError(TBONError):
    """Tree reconfiguration after a failure could not be completed."""


class SimulationError(TBONError):
    """The discrete-event simulator reached an inconsistent state."""


class ProtocolError(TBONError):
    """A control-plane message violated the TBON wire protocol."""
