"""MRNet-style format-string packet serialization.

MRNet describes application-level packets by *format strings* similar to
``printf`` directives; a packet's payload is a sequence of typed values
matching its format string.  This module implements that wire format for
the Python reproduction:

==========  =====================================  ==================
Directive   Python value                           Wire encoding
==========  =====================================  ==================
``%c``      1-character :class:`str`               1 byte (latin-1)
``%b``      :class:`bool`                          1 byte
``%d``      :class:`int` (signed, 64-bit range)    ``<q``
``%ud``     :class:`int` (unsigned, 64-bit range)  ``<Q``
``%f``      :class:`float`                         ``<d``
``%s``      :class:`str` (UTF-8)                   ``<I`` length + bytes
``%ac``     :class:`bytes`                         ``<I`` length + bytes
``%ad``     1-D ``int64``  :class:`numpy.ndarray`  ``<I`` count + raw
``%aud``    1-D ``uint64`` :class:`numpy.ndarray`  ``<I`` count + raw
``%af``     1-D ``float64`` :class:`numpy.ndarray` ``<I`` count + raw
``%ad32``   1-D ``int32``  :class:`numpy.ndarray`  ``<I`` count + raw
``%af32``   1-D ``float32`` :class:`numpy.ndarray` ``<I`` count + raw
``%as``     list of :class:`str`                   ``<I`` count + strings
``%am``     2-D ``float64`` :class:`numpy.ndarray` ``<II`` shape + raw
``%o``      any picklable object (extension)       ``<I`` length + pickle
==========  =====================================  ==================

All multi-byte integers are little-endian.  Array directives accept any
sequence convertible by :func:`numpy.asarray` and always yield contiguous
NumPy arrays on unpack, so payloads can be consumed with zero further
copies (a Python stand-in for MRNet's zero-copy data paths).

``%o`` is a Python-native extension used by complex filters (e.g. graph
folding) whose state does not map onto flat arrays; it is documented as
such and never required by the core protocol.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Sequence

import numpy as np
import numpy.typing as npt

from .errors import FormatStringError, SerializationError

__all__ = [
    "Directive",
    "parse_format",
    "pack_payload",
    "unpack_payload",
    "payload_nbytes",
    "validate_values",
    "FORMAT_DIRECTIVES",
]

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_SHAPE2 = struct.Struct("<II")

_MAX_LEN = 2**32 - 1


@dataclass(frozen=True)
class Directive:
    """One parsed format directive.

    Attributes:
        code: the directive text without the ``%`` (e.g. ``"ad"``).
        packer: function serializing one value to bytes.
        unpacker: function ``(buf, offset) -> (value, new_offset)``.
        checker: validates/coerces a value before packing; raises
            :class:`SerializationError` on type mismatch.
    """

    code: str
    packer: Callable[[Any], bytes]
    unpacker: Callable[[bytes, int], tuple[Any, int]]
    checker: Callable[[Any], Any]


def _check_char(v: Any) -> str:
    if not isinstance(v, str) or len(v) != 1:
        raise SerializationError(f"%c expects a 1-character str, got {v!r}")
    if ord(v) > 0xFF:
        raise SerializationError(
            f"%c is a single byte (latin-1); {v!r} does not fit — use %s"
        )
    return v


def _check_bool(v: Any) -> bool:
    if isinstance(v, (bool, np.bool_)):
        return bool(v)
    raise SerializationError(f"%b expects a bool, got {type(v).__name__}")


def _check_int(v: Any) -> int:
    if isinstance(v, bool):
        raise SerializationError("%d expects an int, got bool")
    if isinstance(v, (int, np.integer)):
        i = int(v)
        if -(2**63) <= i < 2**63:
            return i
        raise SerializationError(f"%d value {i} out of signed 64-bit range")
    raise SerializationError(f"%d expects an int, got {type(v).__name__}")


def _check_uint(v: Any) -> int:
    if isinstance(v, bool):
        raise SerializationError("%ud expects an int, got bool")
    if isinstance(v, (int, np.integer)):
        i = int(v)
        if 0 <= i < 2**64:
            return i
        raise SerializationError(f"%ud value {i} out of unsigned 64-bit range")
    raise SerializationError(f"%ud expects an int, got {type(v).__name__}")


def _check_float(v: Any) -> float:
    if isinstance(v, bool):
        raise SerializationError("%f expects a float, got bool")
    if isinstance(v, (int, float, np.integer, np.floating)):
        return float(v)
    raise SerializationError(f"%f expects a float, got {type(v).__name__}")


def _check_str(v: Any) -> str:
    if not isinstance(v, str):
        raise SerializationError(f"%s expects a str, got {type(v).__name__}")
    return v


def _check_bytes(v: Any) -> bytes:
    if isinstance(v, (bytes, bytearray, memoryview)):
        return bytes(v)
    raise SerializationError(f"%ac expects bytes, got {type(v).__name__}")


def _check_array(dtype: np.dtype[Any], code: str) -> Callable[[Any], npt.NDArray[Any]]:
    def check(v: Any) -> npt.NDArray[Any]:
        try:
            arr = np.ascontiguousarray(v, dtype=dtype)
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"%{code} expects a {dtype} array: {exc}") from exc
        if arr.ndim != 1:
            raise SerializationError(f"%{code} expects a 1-D array, got ndim={arr.ndim}")
        return arr

    return check


def _check_matrix(v: Any) -> npt.NDArray[np.float64]:
    try:
        arr = np.ascontiguousarray(v, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"%am expects a float64 matrix: {exc}") from exc
    if arr.ndim != 2:
        raise SerializationError(f"%am expects a 2-D array, got ndim={arr.ndim}")
    return arr


def _check_strlist(v: Any) -> list[str]:
    if not isinstance(v, (list, tuple)):
        raise SerializationError(f"%as expects a list of str, got {type(v).__name__}")
    out: list[str] = []
    for item in v:
        if not isinstance(item, str):
            raise SerializationError(f"%as expects str items, got {type(item).__name__}")
        out.append(item)
    return out


def _pack_len_bytes(data: bytes) -> bytes:
    if len(data) > _MAX_LEN:
        raise SerializationError(f"payload item too large: {len(data)} bytes")
    return _U32.pack(len(data)) + data


def _unpack_len_bytes(buf: bytes, off: int) -> tuple[bytes, int]:
    (n,) = _U32.unpack_from(buf, off)
    off += _U32.size
    if off + n > len(buf):
        raise SerializationError("truncated payload (length prefix exceeds buffer)")
    # bytes() is a no-op copy for bytes input and materializes memoryview
    # slices (the TCP receive path hands us views over a reused buffer).
    return bytes(buf[off : off + n]), off + n


def _pack_array(arr: npt.NDArray[Any]) -> bytes:
    return _U32.pack(arr.shape[0]) + arr.tobytes()


def _unpack_array(
    dtype: np.dtype[Any],
) -> Callable[[bytes, int], tuple[npt.NDArray[Any], int]]:
    itemsize = dtype.itemsize

    def unpack(buf: bytes, off: int) -> tuple[npt.NDArray[Any], int]:
        (n,) = _U32.unpack_from(buf, off)
        off += _U32.size
        nbytes = n * itemsize
        if off + nbytes > len(buf):
            raise SerializationError("truncated array payload")
        arr = np.frombuffer(buf, dtype=dtype, count=n, offset=off).copy()
        return arr, off + nbytes

    return unpack


def _pack_matrix(arr: npt.NDArray[np.float64]) -> bytes:
    rows, cols = arr.shape
    return _SHAPE2.pack(rows, cols) + arr.tobytes()


def _unpack_matrix(buf: bytes, off: int) -> tuple[npt.NDArray[np.float64], int]:
    rows, cols = _SHAPE2.unpack_from(buf, off)
    off += _SHAPE2.size
    nbytes = rows * cols * 8
    if off + nbytes > len(buf):
        raise SerializationError("truncated matrix payload")
    arr = np.frombuffer(buf, dtype=np.float64, count=rows * cols, offset=off)
    return arr.reshape(rows, cols).copy(), off + nbytes


def _pack_strlist(items: list[str]) -> bytes:
    parts = [_U32.pack(len(items))]
    for s in items:
        parts.append(_pack_len_bytes(s.encode("utf-8")))
    return b"".join(parts)


def _unpack_strlist(buf: bytes, off: int) -> tuple[list[str], int]:
    (n,) = _U32.unpack_from(buf, off)
    off += _U32.size
    out: list[str] = []
    for _ in range(n):
        raw, off = _unpack_len_bytes(buf, off)
        out.append(raw.decode("utf-8"))
    return out, off


def _unpack_scalar(st: struct.Struct) -> Callable[[bytes, int], tuple[Any, int]]:
    def unpack(buf: bytes, off: int) -> tuple[Any, int]:
        (v,) = st.unpack_from(buf, off)
        return v, off + st.size

    return unpack


def _pack_object(v: Any) -> bytes:
    try:
        return _pack_len_bytes(pickle.dumps(v, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # pickling failures carry many types
        raise SerializationError(f"%o value is not picklable: {exc}") from exc


def _unpack_object(buf: bytes, off: int) -> tuple[Any, int]:
    raw, off = _unpack_len_bytes(buf, off)
    try:
        return pickle.loads(raw), off
    except Exception as exc:
        raise SerializationError(f"%o payload failed to unpickle: {exc}") from exc


#: Mapping from directive code (without ``%``) to its :class:`Directive`.
FORMAT_DIRECTIVES: dict[str, Directive] = {
    "c": Directive(
        "c",
        packer=lambda v: v.encode("latin-1"),
        unpacker=lambda buf, off: (buf[off : off + 1].decode("latin-1"), off + 1),
        checker=_check_char,
    ),
    "b": Directive(
        "b",
        packer=lambda v: b"\x01" if v else b"\x00",
        unpacker=lambda buf, off: (buf[off] != 0, off + 1),
        checker=_check_bool,
    ),
    "d": Directive(
        "d",
        packer=_I64.pack,
        unpacker=_unpack_scalar(_I64),
        checker=_check_int,
    ),
    "ud": Directive(
        "ud",
        packer=_U64.pack,
        unpacker=_unpack_scalar(_U64),
        checker=_check_uint,
    ),
    "f": Directive(
        "f",
        packer=_F64.pack,
        unpacker=_unpack_scalar(_F64),
        checker=_check_float,
    ),
    "s": Directive(
        "s",
        packer=lambda v: _pack_len_bytes(v.encode("utf-8")),
        unpacker=lambda buf, off: (
            (lambda raw_off: (raw_off[0].decode("utf-8"), raw_off[1]))(
                _unpack_len_bytes(buf, off)
            )
        ),
        checker=_check_str,
    ),
    "ac": Directive(
        "ac",
        packer=_pack_len_bytes,
        unpacker=_unpack_len_bytes,
        checker=_check_bytes,
    ),
    "ad": Directive(
        "ad",
        packer=_pack_array,
        unpacker=_unpack_array(np.dtype(np.int64)),
        checker=_check_array(np.dtype(np.int64), "ad"),
    ),
    # 32-bit array variants: half the wire size when the application
    # knows its range/precision — MRNet's "high-performance means
    # controlling both space and time usage".
    "ad32": Directive(
        "ad32",
        packer=_pack_array,
        unpacker=_unpack_array(np.dtype(np.int32)),
        checker=_check_array(np.dtype(np.int32), "ad32"),
    ),
    "af32": Directive(
        "af32",
        packer=_pack_array,
        unpacker=_unpack_array(np.dtype(np.float32)),
        checker=_check_array(np.dtype(np.float32), "af32"),
    ),
    "aud": Directive(
        "aud",
        packer=_pack_array,
        unpacker=_unpack_array(np.dtype(np.uint64)),
        checker=_check_array(np.dtype(np.uint64), "aud"),
    ),
    "af": Directive(
        "af",
        packer=_pack_array,
        unpacker=_unpack_array(np.dtype(np.float64)),
        checker=_check_array(np.dtype(np.float64), "af"),
    ),
    "as": Directive(
        "as",
        packer=_pack_strlist,
        unpacker=_unpack_strlist,
        checker=_check_strlist,
    ),
    "am": Directive(
        "am",
        packer=_pack_matrix,
        unpacker=_unpack_matrix,
        checker=_check_matrix,
    ),
    "o": Directive(
        "o",
        packer=_pack_object,
        unpacker=_unpack_object,
        checker=lambda v: v,
    ),
}

# Longest-match-first ordering for the parser ("aud" before "ad" etc.).
_CODES_BY_LENGTH = sorted(FORMAT_DIRECTIVES, key=len, reverse=True)

# -- fixed-width fast path ----------------------------------------------------
#
# Formats made of fixed-width scalar directives (optionally ending in one
# variable-length %s/%ac) compile to a single precompiled struct.Struct,
# so the whole payload packs/unpacks in one C call instead of one Python
# call per directive.  The control-plane packet header
# ("%d %d %d %d %s") is on every wire frame, so this path runs per frame.

_FIXED_STRUCT_CODES = {"b": "?", "d": "q", "ud": "Q", "f": "d"}


class _FastPath:
    """Precompiled pack/unpack for a fixed-width (+ optional tail) format."""

    __slots__ = ("st", "checkers", "tail", "n")

    def __init__(
        self,
        st: struct.Struct,
        checkers: tuple[Callable[[Any], Any], ...],
        tail: str | None,
    ) -> None:
        self.st = st
        self.checkers = checkers
        self.tail = tail
        self.n = len(checkers) + (1 if tail else 0)

    def pack(self, fmt: str, values: Sequence[Any]) -> bytes:
        if len(values) != self.n:
            raise SerializationError(
                f"format {fmt!r} expects {self.n} values, got {len(values)}"
            )
        try:
            if self.tail is None:
                return self.st.pack(
                    *(c(v) for c, v in zip(self.checkers, values))
                )
            tail_d = FORMAT_DIRECTIVES[self.tail]
            raw = tail_d.checker(values[-1])
            if self.tail == "s":
                raw = raw.encode("utf-8")
            return b"".join(
                (
                    self.st.pack(*(c(v) for c, v in zip(self.checkers, values))),
                    _U32.pack(len(raw)),
                    raw,
                )
            )
        except struct.error as exc:  # pragma: no cover - checkers coerce first
            raise SerializationError(f"fixed-width pack failed: {exc}") from exc

    def unpack(self, fmt: str, data: bytes) -> tuple[Any, ...]:
        st = self.st
        if self.tail is None:
            if len(data) != st.size:
                raise SerializationError(
                    f"payload size mismatch for {fmt!r}: "
                    f"expected {st.size} bytes, got {len(data)}"
                )
            return st.unpack(data)
        try:
            head = st.unpack_from(data, 0)
        except struct.error as exc:
            raise SerializationError(f"truncated payload for {fmt!r}: {exc}") from exc
        raw, off = _unpack_len_bytes(data, st.size)
        if off != len(data):
            raise SerializationError(
                f"trailing bytes after payload: consumed {off} of {len(data)}"
            )
        tail = raw.decode("utf-8") if self.tail == "s" else bytes(raw)
        return (*head, tail)

    def nbytes(self, fmt: str, values: Sequence[Any]) -> int:
        if len(values) != self.n:
            raise SerializationError(
                f"format {fmt!r} expects {self.n} values, got {len(values)}"
            )
        if self.tail is None:
            return self.st.size
        v = values[-1]
        tail_len = len(v.encode("utf-8")) if self.tail == "s" else len(v)
        return self.st.size + 4 + tail_len


@lru_cache(maxsize=1024)
def _fast_path(fmt: str) -> _FastPath | None:
    """The precompiled fast path for ``fmt``, or None if it doesn't qualify."""
    codes = [d.code for d in parse_format(fmt)]
    tail: str | None = None
    if codes and codes[-1] in ("s", "ac"):
        tail = codes[-1]
        codes = codes[:-1]
    if any(c not in _FIXED_STRUCT_CODES for c in codes):
        return None
    st = struct.Struct("<" + "".join(_FIXED_STRUCT_CODES[c] for c in codes))
    checkers = tuple(FORMAT_DIRECTIVES[c].checker for c in codes)
    return _FastPath(st, checkers, tail)


@lru_cache(maxsize=1024)
def parse_format(fmt: str) -> tuple[Directive, ...]:
    """Parse a format string into a tuple of :class:`Directive`.

    Directives are ``%``-prefixed and may be separated by whitespace
    (``"%d %f %as"``); whitespace is optional (``"%d%f"``).  Raises
    :class:`FormatStringError` for unknown directives or stray text.
    """
    if not isinstance(fmt, str):
        raise FormatStringError(f"format must be a str, got {type(fmt).__name__}")
    directives: list[Directive] = []
    i = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch.isspace():
            i += 1
            continue
        if ch != "%":
            raise FormatStringError(f"unexpected character {ch!r} at position {i} in {fmt!r}")
        i += 1
        for code in _CODES_BY_LENGTH:
            if fmt.startswith(code, i):
                directives.append(FORMAT_DIRECTIVES[code])
                i += len(code)
                break
        else:
            raise FormatStringError(f"unknown directive at position {i - 1} in {fmt!r}")
    return tuple(directives)


def validate_values(fmt: str, values: Sequence[Any]) -> tuple[Any, ...]:
    """Validate and coerce ``values`` against ``fmt``.

    Returns the coerced values (arrays become contiguous ndarrays,
    numpy scalars become Python scalars).  Raises
    :class:`SerializationError` on arity or type mismatch.
    """
    directives = parse_format(fmt)
    if len(values) != len(directives):
        raise SerializationError(
            f"format {fmt!r} expects {len(directives)} values, got {len(values)}"
        )
    return tuple(d.checker(v) for d, v in zip(directives, values))


def pack_payload(fmt: str, values: Sequence[Any]) -> bytes:
    """Serialize ``values`` according to ``fmt`` into a byte string."""
    fast = _fast_path(fmt)
    if fast is not None:
        return fast.pack(fmt, values)
    directives = parse_format(fmt)
    if len(values) != len(directives):
        raise SerializationError(
            f"format {fmt!r} expects {len(directives)} values, got {len(values)}"
        )
    parts: list[bytes] = []
    for d, v in zip(directives, values):
        parts.append(d.packer(d.checker(v)))
    return b"".join(parts)


def unpack_payload(fmt: str, data: bytes) -> tuple[Any, ...]:
    """Deserialize a byte string produced by :func:`pack_payload`.

    Raises :class:`SerializationError` if the buffer is truncated or has
    trailing bytes (both indicate a format/payload mismatch).
    """
    fast = _fast_path(fmt)
    if fast is not None:
        return fast.unpack(fmt, data)
    directives = parse_format(fmt)
    values: list[Any] = []
    off = 0
    for d in directives:
        try:
            v, off = d.unpacker(data, off)
        except struct.error as exc:
            raise SerializationError(f"truncated payload for %{d.code}: {exc}") from exc
        values.append(v)
    if off != len(data):
        raise SerializationError(
            f"trailing bytes after payload: consumed {off} of {len(data)}"
        )
    return tuple(values)


def payload_nbytes(fmt: str, values: Sequence[Any]) -> int:
    """Return the serialized size of a payload without materializing it.

    Used by the discrete-event simulator's link models, which charge
    transfer time proportional to wire size.
    """
    fast = _fast_path(fmt)
    if fast is not None:
        return fast.nbytes(fmt, values)
    directives = parse_format(fmt)
    if len(values) != len(directives):
        raise SerializationError(
            f"format {fmt!r} expects {len(directives)} values, got {len(values)}"
        )
    total = 0
    for d, v in zip(directives, values):
        code = d.code
        if code in ("c", "b"):
            total += 1
        elif code in ("d", "ud", "f"):
            total += 8
        elif code == "s":
            total += 4 + len(v.encode("utf-8"))
        elif code == "ac":
            total += 4 + len(v)
        elif code in ("ad", "aud", "af"):
            total += 4 + 8 * len(v)
        elif code in ("ad32", "af32"):
            total += 4 + 4 * len(v)
        elif code == "am":
            arr = np.asarray(v)
            total += 8 + 8 * arr.size
        elif code == "as":
            total += 4 + sum(4 + len(s.encode("utf-8")) for s in v)
        elif code == "o":
            total += 4 + len(pickle.dumps(v, protocol=pickle.HIGHEST_PROTOCOL))
        else:  # pragma: no cover - new directives must extend this table
            total += len(d.packer(d.checker(v)))
    return total
