"""Core TBON model: packets, topologies, filters, streams, networks.

This package implements the paper's primary contribution — the
tree-based overlay network computational model of Section 2 — as a
reusable middleware.  See :mod:`repro.core.network` for the entry-point
API.
"""

from .backend import BackEnd
from .builtin_filters import (
    AverageFilter,
    ConcatFilter,
    CountFilter,
    MaxFilter,
    MinFilter,
    SumFilter,
)
from .errors import (
    ChannelClosedError,
    FilterError,
    FilterLoadError,
    FormatStringError,
    NetworkShutdownError,
    NodeFailureError,
    ProtocolError,
    RecoveryError,
    SerializationError,
    SimulationError,
    StreamClosedError,
    StreamError,
    TBONError,
    TopologyError,
    TransportError,
)
from .events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    FIRST_APPLICATION_TAG,
    StreamSpec,
)
from .filter_registry import (
    FilterRegistry,
    default_registry,
    register_sync,
    register_transform,
)
from .filters import (
    FilterContext,
    FunctionFilter,
    PassthroughFilter,
    SuperFilter,
    SynchronizationFilter,
    TransformationFilter,
)
from .network import Network
from .packet import Packet, PayloadRef, make_packet
from .serialization import pack_payload, parse_format, unpack_payload
from .stream import Stream
from .sync_filters import NullSync, TimeOut, WaitForAll
from .topology import (
    NodeDesc,
    NodeRole,
    Topology,
    assign_hosts,
    balanced_topology,
    deep_topology,
    flat_topology,
    internal_node_overhead,
    knomial_topology,
    parse_topology_file,
)

__all__ = [
    "BackEnd",
    "Network",
    "Stream",
    "Packet",
    "PayloadRef",
    "make_packet",
    "Topology",
    "NodeDesc",
    "NodeRole",
    "balanced_topology",
    "deep_topology",
    "flat_topology",
    "knomial_topology",
    "parse_topology_file",
    "assign_hosts",
    "internal_node_overhead",
    "FilterContext",
    "TransformationFilter",
    "SynchronizationFilter",
    "FunctionFilter",
    "PassthroughFilter",
    "SuperFilter",
    "SumFilter",
    "MinFilter",
    "MaxFilter",
    "CountFilter",
    "AverageFilter",
    "ConcatFilter",
    "WaitForAll",
    "TimeOut",
    "NullSync",
    "FilterRegistry",
    "default_registry",
    "register_transform",
    "register_sync",
    "StreamSpec",
    "Direction",
    "Envelope",
    "CONTROL_STREAM_ID",
    "FIRST_APPLICATION_TAG",
    "pack_payload",
    "unpack_payload",
    "parse_format",
    "TBONError",
    "TopologyError",
    "SerializationError",
    "FormatStringError",
    "FilterError",
    "FilterLoadError",
    "StreamError",
    "StreamClosedError",
    "TransportError",
    "ChannelClosedError",
    "NetworkShutdownError",
    "NodeFailureError",
    "RecoveryError",
    "SimulationError",
    "ProtocolError",
]
