"""TBON process-tree topologies.

A topology is a rooted tree of processes: the root is the application
*front-end*, the leaves are *back-ends*, and every other node is a
*communication process* (MRNet calls these internal processes).  This
module provides:

* builders for the topology shapes the paper calls out — *flat* (the
  "1-deep" one-to-many organization), *balanced k-ary* trees of any
  depth, and *skewed k-nomial* trees;
* a parser/serializer for MRNet-style topology files
  (``parent:idx => child:idx child:idx ;``);
* validation of tree invariants (single root, acyclic, connected);
* the accounting used in Section 3.2's internal-node overhead claim
  (fan-out 16 ⇒ 16 extra nodes for 256 back-ends = 6.25%); and
* dynamic attach/detach of back-ends (MRNet's dynamic topology model).

Nodes are identified by dense integer *ranks*; rank 0 is always the
front-end.  Each rank also carries a :class:`NodeDesc` naming a host and
per-host index, mirroring MRNet's ``host:index`` notation (all hosts are
``"localhost"`` unless a topology file says otherwise).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx

from .errors import TopologyError

__all__ = [
    "NodeDesc",
    "NodeRole",
    "Topology",
    "flat_topology",
    "balanced_topology",
    "knomial_topology",
    "parse_topology_file",
    "assign_hosts",
    "internal_node_overhead",
]


@dataclass(frozen=True)
class NodeDesc:
    """Host placement of one process, MRNet's ``host:index`` notation."""

    host: str = "localhost"
    index: int = 0

    def __str__(self) -> str:
        return f"{self.host}:{self.index}"


class NodeRole(Enum):
    """Role of a process in the TBON (see Figure 1 of the paper)."""

    FRONT_END = "front_end"
    INTERNAL = "internal"
    BACK_END = "back_end"


class Topology:
    """An immutable-by-convention rooted process tree.

    The constructor validates all tree invariants; mutation goes through
    :meth:`attach_backend` / :meth:`detach_backend`, which re-validate.

    Args:
        children: mapping from parent rank to an ordered sequence of
            child ranks.  Every rank mentioned anywhere must appear as a
            key or a child; rank 0 must be the unique root.
        descs: optional mapping from rank to :class:`NodeDesc`.
    """

    def __init__(
        self,
        children: Mapping[int, Sequence[int]],
        descs: Mapping[int, NodeDesc] | None = None,
    ):
        child_map: dict[int, tuple[int, ...]] = {
            int(p): tuple(int(c) for c in cs) for p, cs in children.items()
        }
        ranks: set[int] = set(child_map)
        for cs in child_map.values():
            ranks.update(cs)
        if not ranks:
            raise TopologyError("topology is empty")
        if 0 not in ranks:
            raise TopologyError("rank 0 (front-end) missing from topology")

        parent: dict[int, int] = {}
        for p, cs in child_map.items():
            seen_children: set[int] = set()
            for c in cs:
                if c in seen_children:
                    raise TopologyError(f"rank {c} listed twice under parent {p}")
                seen_children.add(c)
                if c in parent:
                    raise TopologyError(
                        f"rank {c} has two parents ({parent[c]} and {p})"
                    )
                if c == p:
                    raise TopologyError(f"rank {p} is its own child")
                parent[c] = p
        roots = ranks - set(parent)
        if roots != {0}:
            raise TopologyError(
                f"topology must have exactly rank 0 as root, found roots {sorted(roots)}"
            )

        # Reachability / acyclicity: BFS from the root must visit all ranks.
        order: list[int] = [0]
        seen = {0}
        for r in order:
            for c in child_map.get(r, ()):
                if c in seen:
                    raise TopologyError(f"cycle detected at rank {c}")
                seen.add(c)
                order.append(c)
        if seen != ranks:
            raise TopologyError(f"unreachable ranks: {sorted(ranks - seen)}")

        self._children = {r: child_map.get(r, ()) for r in ranks}
        self._parent = parent
        self._bfs_order = order
        self._descs = dict(descs) if descs else {}
        for r in ranks:
            self._descs.setdefault(r, NodeDesc("localhost", r))
        self._depth_cache: dict[int, int] | None = None
        self._subtree_cache: dict[int, frozenset[int]] | None = None

    # -- basic accessors ------------------------------------------------
    @property
    def ranks(self) -> list[int]:
        """All ranks in BFS (root-first) order."""
        return list(self._bfs_order)

    @property
    def root(self) -> int:
        return 0

    def parent(self, rank: int) -> int | None:
        """Parent rank, or None for the root."""
        self._check_rank(rank)
        return self._parent.get(rank)

    def children(self, rank: int) -> tuple[int, ...]:
        self._check_rank(rank)
        return self._children[rank]

    def desc(self, rank: int) -> NodeDesc:
        self._check_rank(rank)
        return self._descs[rank]

    def __contains__(self, rank: int) -> bool:
        return rank in self._children

    def __len__(self) -> int:
        return len(self._children)

    def _check_rank(self, rank: int) -> None:
        if rank not in self._children:
            raise TopologyError(f"rank {rank} not in topology")

    # -- roles ------------------------------------------------------------
    def role(self, rank: int) -> NodeRole:
        self._check_rank(rank)
        if rank == 0:
            return NodeRole.FRONT_END
        if not self._children[rank]:
            return NodeRole.BACK_END
        return NodeRole.INTERNAL

    @property
    def backends(self) -> list[int]:
        """Ranks of all back-ends (leaves), in BFS order."""
        return [r for r in self._bfs_order if r != 0 and not self._children[r]]

    @property
    def internals(self) -> list[int]:
        """Ranks of all internal communication processes (non-endpoints)."""
        return [r for r in self._bfs_order if r != 0 and self._children[r]]

    @property
    def n_backends(self) -> int:
        return len(self.backends)

    @property
    def n_internal(self) -> int:
        return len(self.internals)

    # -- shape metrics -----------------------------------------------------
    def depth(self, rank: int | None = None) -> int:
        """Depth (edge count from the root) of ``rank``, or tree height."""
        if self._depth_cache is None:
            cache = {0: 0}
            for r in self._bfs_order[1:]:
                cache[r] = cache[self._parent[r]] + 1
            self._depth_cache = cache
        if rank is None:
            return max(self._depth_cache.values())
        self._check_rank(rank)
        return self._depth_cache[rank]

    def fanout(self, rank: int) -> int:
        return len(self.children(rank))

    @property
    def max_fanout(self) -> int:
        return max(len(cs) for cs in self._children.values())

    def fanout_histogram(self) -> dict[int, int]:
        """Mapping fan-out -> number of non-leaf nodes with that fan-out."""
        hist: dict[int, int] = {}
        for r, cs in self._children.items():
            if cs:
                hist[len(cs)] = hist.get(len(cs), 0) + 1
        return hist

    def internal_overhead(self) -> float:
        """Extra (non-endpoint) nodes as a fraction of back-end count.

        This is the Section 3.2 metric: a fan-out-16 tree over 256
        back-ends needs 16 internal nodes, an overhead of 6.25%.
        """
        if self.n_backends == 0:
            raise TopologyError("topology has no back-ends")
        return self.n_internal / self.n_backends

    # -- structure queries ---------------------------------------------------
    def ancestors(self, rank: int) -> list[int]:
        """Ranks on the path from ``rank``'s parent up to the root."""
        self._check_rank(rank)
        path = []
        r = rank
        while (p := self._parent.get(r)) is not None:
            path.append(p)
            r = p
        return path

    def path(self, rank: int) -> list[int]:
        """Ranks from the root down to and including ``rank``."""
        return list(reversed(self.ancestors(rank))) + [rank]

    def subtree_backends(self, rank: int) -> frozenset[int]:
        """The set of back-end ranks in the subtree rooted at ``rank``."""
        if self._subtree_cache is None:
            cache: dict[int, frozenset[int]] = {}
            for r in reversed(self._bfs_order):
                cs = self._children[r]
                if not cs and r != 0:
                    cache[r] = frozenset((r,))
                else:
                    acc: set[int] = set()
                    for c in cs:
                        acc |= cache[c]
                    cache[r] = frozenset(acc)
            self._subtree_cache = cache
        self._check_rank(rank)
        return self._subtree_cache[rank]

    def covering_children(self, rank: int, members: Iterable[int]) -> list[int]:
        """Children of ``rank`` whose subtrees contain stream members.

        This is the per-node routing computation for both multicast
        (downstream) and reduction membership (upstream).
        """
        member_set = frozenset(members)
        return [
            c for c in self.children(rank) if self.subtree_backends(c) & member_set
        ]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """All (parent, child) edges in BFS order."""
        for r in self._bfs_order:
            for c in self._children[r]:
                yield (r, c)

    # -- dynamic topology (MRNet dynamic back-end attach) ---------------------
    def attach_backend(
        self, parent_rank: int, desc: NodeDesc | None = None
    ) -> tuple["Topology", int]:
        """Return a new topology with one more back-end under ``parent_rank``.

        MRNet "supports a more dynamic topology model in which ... back-end
        processes may join after the internal tree has been instantiated".
        The new back-end gets the smallest unused rank.
        """
        self._check_rank(parent_rank)
        if self.role(parent_rank) == NodeRole.BACK_END:
            raise TopologyError(
                f"cannot attach under rank {parent_rank}: it is a back-end"
            )
        new_rank = max(self._children) + 1
        children = {r: list(cs) for r, cs in self._children.items()}
        children[parent_rank].append(new_rank)
        children[new_rank] = []
        descs = dict(self._descs)
        descs[new_rank] = desc or NodeDesc("localhost", new_rank)
        return Topology(children, descs), new_rank

    def detach_backend(self, rank: int) -> "Topology":
        """Return a new topology with back-end ``rank`` removed."""
        if self.role(rank) != NodeRole.BACK_END:
            raise TopologyError(f"rank {rank} is not a back-end")
        children = {
            r: [c for c in cs if c != rank]
            for r, cs in self._children.items()
            if r != rank
        }
        descs = {r: d for r, d in self._descs.items() if r != rank}
        return Topology(children, descs)

    def replace_subtree_parent(self, failed: int) -> "Topology":
        """Remove a failed internal node, re-parenting its children.

        The children of ``failed`` are adopted by ``failed``'s parent —
        the simplest data-preserving reconfiguration from the paper's
        reliability discussion (ref [2]).  The front-end cannot fail.
        """
        if failed == 0:
            raise TopologyError("cannot remove the front-end")
        self._check_rank(failed)
        p = self._parent[failed]
        children = {r: list(cs) for r, cs in self._children.items() if r != failed}
        idx = children[p].index(failed)
        children[p] = (
            children[p][:idx] + list(self._children[failed]) + children[p][idx + 1 :]
        )
        descs = {r: d for r, d in self._descs.items() if r != failed}
        return Topology(children, descs)

    # -- conversions -----------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """The tree as a networkx DiGraph with parent→child edges."""
        g = nx.DiGraph()
        for r in self._bfs_order:
            g.add_node(r, desc=str(self._descs[r]), role=self.role(r).value)
        g.add_edges_from(self.iter_edges())
        return g

    def to_spec(self) -> str:
        """Serialize to the MRNet topology-file format."""
        lines = []
        for r in self._bfs_order:
            cs = self._children[r]
            if cs:
                kids = " ".join(str(self._descs[c]) for c in cs)
                lines.append(f"{self._descs[r]} => {kids} ;")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology(n={len(self)}, backends={self.n_backends}, "
            f"internal={self.n_internal}, depth={self.depth()}, "
            f"max_fanout={self.max_fanout})"
        )


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def flat_topology(n_backends: int) -> Topology:
    """The paper's "1-deep" (shallow) tree: front-end directly over leaves.

    This is the one-to-many organization whose front-end consolidation
    cost becomes the bottleneck at large fan-out.
    """
    if n_backends < 1:
        raise TopologyError("flat topology needs at least one back-end")
    return Topology({0: list(range(1, n_backends + 1))})


def balanced_topology(fanout: int, depth: int) -> Topology:
    """A fully-balanced ``fanout``-ary tree of the given depth.

    ``depth`` counts edge levels below the front-end: depth 1 is the flat
    tree, depth 2 is the paper's "2-deep" tree with one layer of
    communication processes, etc.  The number of back-ends is
    ``fanout ** depth``.
    """
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    if depth < 1:
        raise TopologyError(f"depth must be >= 1, got {depth}")
    children: dict[int, list[int]] = {0: []}
    next_rank = 1
    frontier = [0]
    for _level in range(depth):
        new_frontier = []
        for r in frontier:
            kids = list(range(next_rank, next_rank + fanout))
            next_rank += fanout
            children[r] = kids
            for k in kids:
                children[k] = []
            new_frontier.extend(kids)
        frontier = new_frontier
    return Topology(children)


def deep_topology(n_backends: int, max_fanout: int) -> Topology:
    """A minimal-depth tree over ``n_backends`` with bounded fan-out.

    Unlike :func:`balanced_topology` this accepts an arbitrary back-end
    count: internal levels are added until every node's fan-out is at
    most ``max_fanout``, keeping the tree as shallow as possible.  This
    is how the paper sizes its "deep" trees for leaf counts like 48 or
    324 that are not perfect powers.
    """
    if n_backends < 1:
        raise TopologyError("need at least one back-end")
    if max_fanout < 2:
        raise TopologyError("max_fanout must be >= 2")
    # Smallest depth such that max_fanout ** depth >= n_backends.
    depth = 1
    while max_fanout**depth < n_backends:
        depth += 1
    if depth == 1:
        return flat_topology(n_backends)

    children: dict[int, list[int]] = {0: []}
    next_rank = 1

    def build(rank: int, leaves: int, levels_remaining: int) -> None:
        nonlocal next_rank
        if levels_remaining == 1:
            kids = list(range(next_rank, next_rank + leaves))
            next_rank += leaves
            children[rank] = kids
            for k in kids:
                children[k] = []
            return
        capacity = max_fanout ** (levels_remaining - 1)
        n_groups = min(max_fanout, math.ceil(leaves / capacity))
        # Skip internal levels that would have a single child chain when
        # the whole group already fits one level down.
        if n_groups == 1 and leaves <= max_fanout:
            build(rank, leaves, 1)
            return
        base, extra = divmod(leaves, n_groups)
        kids = []
        for i in range(n_groups):
            group = base + (1 if i < extra else 0)
            if group == 0:
                continue
            k = next_rank
            next_rank += 1
            kids.append(k)
            children[k] = []
            build(k, group, levels_remaining - 1)
        children[rank] = kids

    build(0, n_backends, depth)
    return Topology(children)


def knomial_topology(k: int, order: int) -> Topology:
    """A skewed k-nomial tree (the paper's ``k-nomial`` shape).

    A k-nomial tree of the given order has ``k ** order`` nodes in
    total; the root has ``order * (k - 1)`` children whose subtrees
    shrink geometrically (the binomial tree is ``k=2``).  In the TBON
    reading, every node of the k-nomial tree is also given a dedicated
    back-end leaf so that all k-nomial nodes act as communication
    processes over ``k ** order`` back-ends.
    """
    if k < 2:
        raise TopologyError(f"k-nomial k must be >= 2, got {k}")
    if order < 0:
        raise TopologyError(f"k-nomial order must be >= 0, got {order}")
    children: dict[int, list[int]] = {0: []}
    next_rank = 1

    def build(rank: int, o: int) -> None:
        nonlocal next_rank
        # Children of a k-nomial node of order o: for each level j < o,
        # (k-1) subtrees of order j.
        for j in range(o):
            for _ in range(k - 1):
                c = next_rank
                next_rank += 1
                children[rank].append(c)
                children[c] = []
                build(c, j)

    build(0, order)
    # Give every comm node (including the root) a back-end leaf.
    comm_ranks = list(children)
    for r in comm_ranks:
        leaf = next_rank
        next_rank += 1
        children[r].append(leaf)
        children[leaf] = []
    return Topology(children)


# ---------------------------------------------------------------------------
# Topology-file parsing (MRNet format)
# ---------------------------------------------------------------------------

_NODE_RE = re.compile(r"^(?P<host>[A-Za-z0-9_.\-]+):(?P<index>\d+)$")


def parse_topology_file(text: str) -> Topology:
    """Parse an MRNet-style topology specification.

    The grammar (one statement per ``;``)::

        stmt := node "=>" node+ ";"
        node := host ":" index

    Comments start with ``#`` and run to end of line.  The first parent
    of the first statement is the front-end.  Ranks are assigned in
    order of first appearance.
    """
    text = re.sub(r"#[^\n]*", "", text)
    statements = [s.strip() for s in text.split(";")]
    statements = [s for s in statements if s]
    if not statements:
        raise TopologyError("topology file contains no statements")

    rank_of: dict[str, int] = {}
    descs: dict[int, NodeDesc] = {}
    children: dict[int, list[int]] = {}

    def intern(token: str) -> int:
        m = _NODE_RE.match(token)
        if not m:
            raise TopologyError(f"malformed node {token!r} (expected host:index)")
        if token not in rank_of:
            rank = len(rank_of)
            rank_of[token] = rank
            descs[rank] = NodeDesc(m.group("host"), int(m.group("index")))
            children[rank] = []
        return rank_of[token]

    for stmt in statements:
        parts = stmt.split("=>")
        if len(parts) != 2:
            raise TopologyError(f"malformed statement {stmt!r} (expected 'parent => children')")
        parent_tok = parts[0].strip()
        child_toks = parts[1].split()
        if not child_toks:
            raise TopologyError(f"statement {stmt!r} lists no children")
        p = intern(parent_tok)
        for tok in child_toks:
            c = intern(tok)
            children[p].append(c)
    return Topology(children, descs)


# ---------------------------------------------------------------------------
# Host placement
# ---------------------------------------------------------------------------

def assign_hosts(
    topology: Topology,
    hosts: Sequence[str],
    *,
    processes_per_host: int | None = None,
) -> Topology:
    """Assign tree processes to hosts, MRNet-topology-file style.

    Ranks are placed breadth-first round-robin over ``hosts`` (the
    front-end always lands on ``hosts[0]``); each process gets the next
    free index on its host, producing the ``host:index`` identities the
    topology-file format serializes.  ``processes_per_host`` caps the
    processes placed on one host (raises if the cluster is too small).

    The result is a *new* topology with identical structure and fresh
    :class:`NodeDesc` placements.
    """
    if not hosts:
        raise TopologyError("need at least one host")
    per_host_counts: dict[str, int] = {h: 0 for h in hosts}
    descs: dict[int, NodeDesc] = {}
    order = topology.ranks  # BFS: root first
    for i, rank in enumerate(order):
        host = hosts[0] if rank == topology.root else hosts[i % len(hosts)]
        if processes_per_host is not None:
            # Find the next host with capacity, starting at the hash slot.
            probe = i
            while per_host_counts[hosts[probe % len(hosts)]] >= processes_per_host:
                probe += 1
                if probe - i > len(hosts):
                    raise TopologyError(
                        f"cannot place {len(order)} processes on {len(hosts)} "
                        f"hosts at {processes_per_host} per host"
                    )
            host = hosts[probe % len(hosts)]
        descs[rank] = NodeDesc(host, per_host_counts[host])
        per_host_counts[host] += 1
    children = {r: list(topology.children(r)) for r in topology.ranks}
    return Topology(children, descs)


# ---------------------------------------------------------------------------
# Overhead accounting (Section 3.2)
# ---------------------------------------------------------------------------

def internal_node_overhead(fanout: int, n_backends: int) -> tuple[int, float]:
    """Internal nodes needed to connect ``n_backends`` with bounded fan-out.

    Returns ``(n_internal, fraction)`` where ``fraction`` is the paper's
    overhead metric: internal nodes as a fraction of back-ends.  For
    fan-out 16 this yields 16 nodes (6.25%) at 256 back-ends and 272
    nodes (~6.6%) at 4096 back-ends, matching Section 3.2.
    """
    if fanout < 2:
        raise TopologyError("fanout must be >= 2")
    if n_backends < 1:
        raise TopologyError("need at least one back-end")
    n_internal = 0
    level = n_backends
    while level > fanout:
        level = math.ceil(level / fanout)
        n_internal += level
    return n_internal, n_internal / n_backends
