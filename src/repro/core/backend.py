"""Back-end (leaf) application endpoint.

A back-end is an *application* process at a leaf of the tree: it
receives multicast packets from the front-end and sends data upstream
into the reduction fabric.  :class:`BackEnd` runs a small listener
thread that handles control traffic promptly (stream registration,
close acknowledgement, shutdown) even when the application is not
blocked in :meth:`recv`, and queues data packets for the application.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any

from ..analysis.locks import make_lock
from ..telemetry.registry import Registry, TELEMETRY as _TEL
from ..telemetry.trace import TRACER as _TRACER, TraceContext
from .errors import (
    ChannelClosedError,
    NetworkShutdownError,
    StreamClosedError,
    StreamError,
)
from .events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    StreamSpec,
    TAG_P2P,
    TAG_SHUTDOWN,
    TAG_STREAM_CLOSE,
    TAG_STREAM_CREATE,
    TAG_TELEMETRY,
    TAG_TOPOLOGY_ATTACH,
)
from .packet import Packet
from .topology import Topology

__all__ = ["BackEnd"]


class BackEnd:
    """Application handle for one leaf process.

    Obtained from :meth:`repro.core.network.Network.backend`; not
    constructed directly by applications.
    """

    def __init__(self, rank: int, topology: Topology, transport: Any):
        self.rank = rank
        self.topology = topology
        self.transport = transport
        self._parent = topology.parent(rank)
        # Data packets route into per-stream deques guarded by one
        # condition; a parallel arrival-order list serves untargeted
        # receives.  This lets independent application components (a
        # monitor loop, a task worker...) consume different streams of
        # the same back-end without stealing each other's packets.
        self._cond = threading.Condition(make_lock("backend_cond"))
        self._per_stream: dict[int, list[Packet]] = {}
        self._arrivals: list[int] = []
        self._streams: dict[int, StreamSpec] = {}
        self._closed_streams: set[int] = set()
        self._stream_events: dict[int, threading.Event] = {}
        self._lock = make_lock("backend_state")
        self._shutdown = threading.Event()
        # Per-endpoint telemetry registry; aggregated by the in-tree
        # stats reduction together with the internal nodes' registries.
        self.telemetry = Registry(f"backend-{rank}")
        self._m_sent = self.telemetry.counter(
            "tbon_backend_packets_total", {"direction": "sent"}
        )
        self._m_received = self.telemetry.counter(
            "tbon_backend_packets_total", {"direction": "received"}
        )
        self._thread = threading.Thread(
            target=self._listen, name=f"tbon-backend-{rank}", daemon=True
        )
        self._thread.start()

    # -- listener -----------------------------------------------------------
    def _listen(self) -> None:
        inbox = self.transport.inbox(self.rank)
        while not self._shutdown.is_set():
            try:
                env: Envelope = inbox.get(timeout=0.1)
            except queue.Empty:
                continue
            except ChannelClosedError:
                break
            packet: Packet = env.packet
            if packet.stream_id == CONTROL_STREAM_ID:
                self._handle_control(packet)
            else:
                if _TEL.enabled:
                    self._m_received.inc()
                with self._cond:
                    self._per_stream.setdefault(packet.stream_id, []).append(packet)
                    self._arrivals.append(packet.stream_id)
                    self._cond.notify_all()
        self._shutdown.set()
        with self._cond:
            self._cond.notify_all()

    def _handle_control(self, packet: Packet) -> None:
        if packet.tag == TAG_STREAM_CREATE:
            (spec,) = packet.values
            with self._lock:
                self._streams[spec.stream_id] = spec
                self._stream_events.setdefault(spec.stream_id, threading.Event()).set()
        elif packet.tag == TAG_STREAM_CLOSE:
            (stream_id,) = packet.values
            with self._lock:
                self._closed_streams.add(stream_id)
            # Acknowledge upstream; FIFO channels guarantee any data this
            # back-end already sent is ahead of the ack, so nothing is lost.
            ack = Packet(CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (stream_id,))
            self.transport.send(self.rank, self._parent, Direction.UPSTREAM, ack)
        elif packet.tag == TAG_P2P:
            # A routed peer message terminating here: unwrap and queue it
            # under the reserved P2P pseudo-stream (id 0).
            _dst, src, user_tag, fmt = packet.values[:4]
            values = packet.values[4]
            inner = Packet(CONTROL_STREAM_ID, int(user_tag), fmt, values, src=int(src))
            with self._cond:
                self._per_stream.setdefault(CONTROL_STREAM_ID, []).append(inner)
                self._arrivals.append(CONTROL_STREAM_ID)
                self._cond.notify_all()
        elif packet.tag == TAG_TOPOLOGY_ATTACH:
            # Recovery: adopt the reconfigured tree (a new parent).
            (new_topo,) = packet.values
            self.topology = new_topo
            self._parent = new_topo.parent(self.rank)
        elif packet.tag == TAG_TELEMETRY:
            # In-tree stats reduction: answer with this leaf's registry
            # snapshot; parents merge it on the way up (PROTOCOL.md §4).
            (req_id,) = packet.values
            reply = Packet(
                CONTROL_STREAM_ID,
                TAG_TELEMETRY,
                "%d %o",
                (req_id, self.telemetry.snapshot()),
            )
            self.transport.send(self.rank, self._parent, Direction.UPSTREAM, reply)
        elif packet.tag == TAG_SHUTDOWN:
            self._shutdown.set()
        # Other control traffic (filter loads...) needs no back-end action.

    # -- application API ------------------------------------------------------
    def wait_for_stream(self, stream_id: int, timeout: float | None = 5.0) -> StreamSpec:
        """Block until the stream-create control packet has arrived."""
        with self._lock:
            ev = self._stream_events.setdefault(stream_id, threading.Event())
        if not ev.wait(timeout):
            raise StreamError(
                f"back-end {self.rank}: stream {stream_id} not announced in time"
            )
        with self._lock:
            return self._streams[stream_id]

    @property
    def streams(self) -> dict[int, StreamSpec]:
        """Streams announced to this back-end so far."""
        with self._lock:
            return dict(self._streams)

    def send(self, stream_id: int, tag: int, fmt: str, *values: Any) -> None:
        """Send one data packet upstream on ``stream_id``.

        Raises:
            StreamError: the stream has not been announced here (send
                would race the stream-create broadcast).
            StreamClosedError: the stream is already closed.
            NetworkShutdownError: the network has shut down.
        """
        if self._shutdown.is_set():
            raise NetworkShutdownError(f"back-end {self.rank} is shut down")
        with self._lock:
            if stream_id in self._closed_streams:
                raise StreamClosedError(f"stream {stream_id} is closed")
            if stream_id not in self._streams:
                raise StreamError(
                    f"back-end {self.rank}: unknown stream {stream_id}; "
                    "wait_for_stream() first"
                )
        pkt = Packet(stream_id, tag, fmt, values, src=self.rank)
        if _TEL.enabled:
            self._m_sent.inc()
            if _TRACER.sample():
                # Start a sampled causal trace: the "send" hop anchors
                # t=0 for the wave's critical-path attribution.
                pkt.attach_trace(TraceContext.start(self.rank, time.monotonic()))
        self.transport.send(self.rank, self._parent, Direction.UPSTREAM, pkt)

    def send_p2p(self, dst_rank: int, tag: int, fmt: str, *values: Any) -> None:
        """Send a message to another back-end, routed through the tree.

        The paper's Section 2.1 escape hatch: no direct peer links exist,
        but the internal process-tree can route peer messages (up to the
        lowest common ancestor, then down) — "sub-optimal" but available.
        Delivery surfaces at the destination via
        ``recv(stream_id=P2P_STREAM)`` where ``P2P_STREAM`` is 0.
        """
        if self._shutdown.is_set():
            raise NetworkShutdownError(f"back-end {self.rank} is shut down")
        from .serialization import validate_values

        coerced = validate_values(fmt, values)
        pkt = Packet(
            CONTROL_STREAM_ID,
            TAG_P2P,
            "%d %d %d %s %o",
            (dst_rank, self.rank, tag, fmt, coerced),
            src=self.rank,
        )
        self.transport.send(self.rank, self._parent, Direction.UPSTREAM, pkt)

    def recv_p2p(self, timeout: float | None = None) -> Packet:
        """Receive the next routed peer message (see :meth:`send_p2p`)."""
        return self.recv(timeout=timeout, stream_id=CONTROL_STREAM_ID)

    def _try_pop(self, stream_id: int | None) -> Packet | None:
        """Pop the next packet (for ``stream_id``, or oldest overall).

        Caller holds ``self._cond``.
        """
        if stream_id is not None:
            bucket = self._per_stream.get(stream_id)
            if bucket:
                pkt = bucket.pop(0)
                # Lazily drop one stale arrival token for this stream.
                try:
                    self._arrivals.remove(stream_id)
                except ValueError:
                    pass
                return pkt
            return None
        while self._arrivals:
            sid = self._arrivals.pop(0)
            bucket = self._per_stream.get(sid)
            if bucket:
                return bucket.pop(0)
            # Token was orphaned by a targeted receive; skip it.
        return None

    def recv(
        self, timeout: float | None = None, stream_id: int | None = None
    ) -> Packet:
        """Receive the next downstream data packet.

        Args:
            timeout: seconds to wait (None blocks until shutdown).
            stream_id: restrict to one stream.  Independent consumers of
                different streams on the same back-end must target their
                streams, otherwise they steal each other's packets.

        Raises:
            TimeoutError: nothing arrived in time.
            NetworkShutdownError: shutdown arrived and the data drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                pkt = self._try_pop(stream_id)
                if pkt is not None:
                    return pkt
                if self._shutdown.is_set():
                    raise NetworkShutdownError(
                        f"back-end {self.rank} is shut down"
                    )
                wait = 0.1 if deadline is None else min(0.1, deadline - time.monotonic())
                if deadline is not None and wait <= 0:
                    raise TimeoutError(
                        f"back-end {self.rank}: no packet within {timeout}s"
                    )
                self._cond.wait(wait)

    def stop(self) -> None:
        """Stop the listener thread (idempotent)."""
        self._shutdown.set()
        self._thread.join(timeout=2.0)

    @property
    def is_shut_down(self) -> bool:
        return self._shutdown.is_set()
