"""MRNet's built-in transformation filters.

"MRNet has built-in transformation filters for common aggregations
including avg, sum, min, max and concat."  These filters are generic over
packet formats: they combine packets *slot by slot*, so a packet format
``"%d %af"`` is reduced to one packet whose integer slot is the reduction
of all integer slots and whose array slot is the elementwise reduction of
all arrays (shapes must match).

Associativity is what makes the tree reduction correct: for ``sum``,
``min``, ``max``, ``concat`` (with deterministic source ordering) and
``count``, reducing partial results at internal nodes yields exactly the
flat reduction.  ``avg`` is *not* associative, so :class:`AverageFilter`
carries an explicit contribution count through the tree (appended as a
trailing ``%ud`` slot on internal packets) and finalizes the true
weighted mean at the front-end — avoiding the average-of-averages error
on unbalanced subtrees.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .errors import FilterError
from .filters import FilterContext, TransformationFilter
from .packet import Packet

__all__ = [
    "SumFilter",
    "MinFilter",
    "MaxFilter",
    "CountFilter",
    "AverageFilter",
    "ConcatFilter",
]


def _check_same_fmt(packets: Sequence[Packet], filter_name: str) -> str:
    fmt = packets[0].fmt
    for p in packets[1:]:
        if p.fmt != fmt:
            raise FilterError(
                f"{filter_name} requires uniform packet formats, "
                f"got {fmt!r} and {p.fmt!r}"
            )
    return fmt


def _reduce_slotwise(
    packets: Sequence[Packet],
    scalar_op: Callable[[list], Any],
    array_op: Callable[[np.ndarray], np.ndarray],
    filter_name: str,
) -> list[Any]:
    """Combine packets slot-by-slot with a scalar and an array reducer.

    ``array_op`` receives the slot's arrays stacked on a new leading
    axis and reduces over that axis.
    """
    out: list[Any] = []
    n_slots = len(packets[0].values)
    for i in range(n_slots):
        slot = [p.values[i] for p in packets]
        first = slot[0]
        if isinstance(first, np.ndarray):
            shapes = {v.shape for v in slot}
            if len(shapes) != 1:
                raise FilterError(
                    f"{filter_name}: slot {i} arrays have mismatched shapes {shapes}"
                )
            out.append(array_op(np.stack(slot)))
        elif isinstance(first, (int, float)) and not isinstance(first, bool):
            out.append(scalar_op(slot))
        else:
            raise FilterError(
                f"{filter_name}: slot {i} holds {type(first).__name__}, "
                "which this numeric filter cannot reduce"
            )
    return out


class SumFilter(TransformationFilter):
    """Slotwise sum of numeric and array slots."""

    name = "sum"

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        _check_same_fmt(packets, self.name)
        vals = _reduce_slotwise(packets, sum, lambda a: a.sum(axis=0), self.name)
        return packets[0].with_values(vals)


class MinFilter(TransformationFilter):
    """Slotwise minimum."""

    name = "min"

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        _check_same_fmt(packets, self.name)
        vals = _reduce_slotwise(packets, min, lambda a: a.min(axis=0), self.name)
        return packets[0].with_values(vals)


class MaxFilter(TransformationFilter):
    """Slotwise maximum."""

    name = "max"

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        _check_same_fmt(packets, self.name)
        vals = _reduce_slotwise(packets, max, lambda a: a.max(axis=0), self.name)
        return packets[0].with_values(vals)


class CountFilter(TransformationFilter):
    """Total a per-back-end count up the tree.

    Back-ends send a single integer slot (their local count, commonly 1);
    the filter sums counts at every level, so the front-end receives the
    total across all contributing back-ends.
    """

    name = "count"

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        fmt = _check_same_fmt(packets, self.name)
        if fmt.replace(" ", "") not in ("%d", "%ud"):
            raise FilterError(f"count expects a single integer slot, got {fmt!r}")
        return packets[0].with_values([sum(p.values[0] for p in packets)])


class AverageFilter(TransformationFilter):
    """Weighted mean across back-ends, exact on unbalanced trees.

    Internally, packets travelling between communication processes carry
    slotwise *sums* plus a trailing ``%ud`` contribution count; the root
    divides through and emits the original format.  Back-end packets
    (original format) are weight-1 contributions.
    """

    name = "avg"

    #: ``src`` marker on internal partial-sum packets.  A packet's format
    #: alone cannot distinguish a back-end payload that happens to end in
    #: ``%ud`` from the filter's own sum+count encoding, so the filter
    #: stamps its intermediate outputs with this sentinel source rank.
    _PARTIAL_SRC = -2

    def _split(self, packet: Packet) -> tuple[list[Any], int]:
        """Return (slot sums, weight) for an input packet."""
        if packet.src == self._PARTIAL_SRC:
            return list(packet.values[:-1]), int(packet.values[-1])
        return list(packet.values), 1

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        split = [self._split(p) for p in packets]
        widths = {len(vals) for vals, _w in split}
        if len(widths) != 1:
            raise FilterError(f"avg saw incompatible slot widths {widths}")
        n_slots = len(split[0][0])
        sums: list[Any] = []
        for i in range(n_slots):
            slot = [vals[i] for vals, _w in split]
            first = slot[0]
            if isinstance(first, np.ndarray):
                shapes = {v.shape for v in slot}
                if len(shapes) != 1:
                    raise FilterError(
                        f"avg: slot {i} arrays have mismatched shapes {shapes}"
                    )
                sums.append(np.stack(slot).astype(np.float64).sum(axis=0))
            elif isinstance(first, (int, float)) and not isinstance(first, bool):
                sums.append(float(sum(slot)))
            else:
                raise FilterError(
                    f"avg: slot {i} holds {type(first).__name__}, not numeric"
                )
        weight = sum(w for _vals, w in split)
        if ctx.is_root:
            final = [s / weight for s in sums]
            # Emit in the base format; float slots stay float.
            float_fmt = " ".join(
                "%af" if isinstance(s, np.ndarray) else "%f" for s in final
            )
            return Packet(
                packets[0].stream_id, packets[0].tag, float_fmt, final, src=-1
            )
        float_base = " ".join(
            "%af" if isinstance(s, np.ndarray) else "%f" for s in sums
        )
        return Packet(
            packets[0].stream_id,
            packets[0].tag,
            float_base + " %ud",
            sums + [weight],
            src=self._PARTIAL_SRC,
        )


class ConcatFilter(TransformationFilter):
    """Slotwise concatenation, ordered by source rank for determinism.

    Arrays concatenate along axis 0, strings join, string lists extend.
    Scalar ``%d``/``%f`` slots are promoted to arrays so that leaf
    scalars concatenate into a vector at the front-end (the common
    "gather" usage).
    """

    name = "concat"

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet:
        ordered = sorted(packets, key=lambda p: (p.src, p.seq))
        n_slots = len(ordered[0].values)
        for p in ordered[1:]:
            if len(p.values) != n_slots:
                raise FilterError("concat requires equal slot counts")
        out: list[Any] = []
        fmt_parts: list[str] = []
        for i in range(n_slots):
            slot = [p.values[i] for p in ordered]
            first = slot[0]
            # A slot mixes arrays and scalars when a back-end feeds an
            # internal node directly (unbalanced trees): promote to arrays
            # if any contribution already is one.
            if any(isinstance(v, np.ndarray) for v in slot):
                first = next(v for v in slot if isinstance(v, np.ndarray))
            if isinstance(first, np.ndarray):
                arrays = [np.atleast_1d(v) for v in slot]
                cat = np.concatenate(arrays, axis=0)
                out.append(cat)
                if cat.ndim == 2:
                    fmt_parts.append("%am")
                elif cat.dtype == np.int64:
                    fmt_parts.append("%ad")
                elif cat.dtype == np.uint64:
                    fmt_parts.append("%aud")
                else:
                    fmt_parts.append("%af")
            elif isinstance(first, str):
                out.append("".join(slot))
                fmt_parts.append("%s")
            elif isinstance(first, list):
                merged: list[str] = []
                for v in slot:
                    merged.extend(v)
                out.append(merged)
                fmt_parts.append("%as")
            elif isinstance(first, bool):
                raise FilterError("concat cannot promote bool slots")
            elif isinstance(first, int):
                out.append(np.asarray(slot, dtype=np.int64))
                fmt_parts.append("%ad")
            elif isinstance(first, float):
                out.append(np.asarray(slot, dtype=np.float64))
                fmt_parts.append("%af")
            else:
                raise FilterError(
                    f"concat: slot {i} holds {type(first).__name__}, not concatenable"
                )
        return Packet(
            ordered[0].stream_id,
            ordered[0].tag,
            " ".join(fmt_parts),
            out,
            src=-1,
        )
