"""Filter abstractions: stateful transformation and synchronization filters.

Filters are the strength of the TBON model: "a filter can be any function
that inputs a set of packets and outputs a single packet", with
"persistent filter state used to carry side-effects from one filter
execution to the next".  Every non-leaf process on a stream instantiates
one *transformation filter* and one *synchronization filter*; instances
are per-(node, stream), so ordinary instance attributes are the
persistent state.

Two filter families:

* :class:`TransformationFilter` — aggregates a batch of upstream packets
  into (normally) one output packet.  The general TBON model permits
  multiple outputs, so :meth:`~TransformationFilter.execute` returns a
  list, but as the paper notes "in practice we have not found the need
  for outputting multiple packets".
* :class:`SynchronizationFilter` — decides *when* a batch of packets is
  delivered to the transformation filter, independent of arrival times
  (MRNet built-ins: ``wait_for_all``, ``time_out``, ``null``).

:class:`SuperFilter` reproduces the paper's suggested workaround for the
missing filter-chaining feature: "a single 'super filter' that propagates
the packet flow to a sequence of filters could seamlessly mimic this
functionality".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .errors import FilterError
from .packet import Packet

__all__ = [
    "FilterContext",
    "TransformationFilter",
    "SynchronizationFilter",
    "FunctionFilter",
    "SuperFilter",
    "PassthroughFilter",
]


@dataclass
class FilterContext:
    """Execution context handed to every filter invocation.

    Attributes:
        node_rank: rank of the communication process running the filter.
        stream_id: id of the stream the packets belong to.
        n_children: number of this node's children that lie on the
            stream (the expected batch width for aligned waves).
        is_root: True at the front-end node.
        depth: node's depth in the tree (root = 0).
        now: monotonic clock function; the thread/TCP transports pass
            :func:`time.monotonic`, the simulator passes virtual time.
        params: free-form per-stream configuration (from the stream
            spec), e.g. mean-shift bandwidth.
    """

    node_rank: int = 0
    stream_id: int = 0
    n_children: int = 1
    is_root: bool = False
    depth: int = 0
    now: Callable[[], float] = time.monotonic
    params: dict[str, Any] = field(default_factory=dict)


class TransformationFilter:
    """Base class for data-reduction filters.

    Subclasses override :meth:`transform` (batch → one packet or None).
    Filter parameters arrive as keyword arguments and are stored on
    ``self.params``; persistent state is plain instance attributes,
    initialized in :meth:`__init__` or lazily.
    """

    #: Registered name (set by the registry decorator).
    name: str = ""

    def __init__(self, **params: Any) -> None:
        self.params = params

    def transform(
        self, packets: Sequence[Packet], ctx: FilterContext
    ) -> Packet | Sequence[Packet] | None:
        """Reduce a batch of packets to one packet (or None to emit nothing)."""
        raise NotImplementedError

    def execute(self, packets: Sequence[Packet], ctx: FilterContext) -> list[Packet]:
        """Run the filter, normalizing the output to a packet list.

        Wraps any exception from :meth:`transform` in :class:`FilterError`
        so a buggy application filter cannot take down a communication
        process silently.
        """
        if not packets:
            return []
        try:
            out = self.transform(packets, ctx)
        except FilterError:
            raise
        except Exception as exc:
            raise FilterError(
                f"filter {type(self).__name__} failed at node {ctx.node_rank}: {exc}"
            ) from exc
        if out is None:
            return []
        if isinstance(out, Packet):
            return [out]
        if isinstance(out, (list, tuple)) and all(isinstance(p, Packet) for p in out):
            return list(out)
        raise FilterError(
            f"filter {type(self).__name__} returned {type(out).__name__}, "
            "expected Packet, list of Packets, or None"
        )

    def flush(self, ctx: FilterContext) -> list[Packet]:
        """Emit any held state at stream close (default: nothing).

        Stateful filters that buffer across waves (e.g. time-aligned
        aggregation) override this to drain on shutdown.
        """
        return []


class FunctionFilter(TransformationFilter):
    """Adapter turning a plain function into a transformation filter.

    The function receives ``(packets, ctx)`` and returns a Packet or
    None.  Useful for quick application-specific reductions without a
    class definition::

        f = FunctionFilter(lambda pkts, ctx: pkts[0])
    """

    def __init__(
        self,
        fn: Callable[[Sequence[Packet], FilterContext], Packet | None],
        **params: Any,
    ) -> None:
        super().__init__(**params)
        self.fn = fn

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet | None:
        return self.fn(packets, ctx)


class PassthroughFilter(TransformationFilter):
    """Forward every packet unchanged (no reduction).

    Equivalent to running a stream without a transformation filter; at a
    node with several children this forwards each child's packets
    upstream individually, so the front-end sees one packet per
    back-end — exactly the non-aggregating load the paper's one-to-many
    baselines suffer from.
    """

    def execute(self, packets: Sequence[Packet], ctx: FilterContext) -> list[Packet]:
        return list(packets)

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet | None:
        raise AssertionError("PassthroughFilter overrides execute directly")


class SuperFilter(TransformationFilter):
    """Apply a sequence of transformation filters at one node.

    MRNet "does not support filter chaining where a sequence of filters
    are applied at each communication process"; the paper observes a
    single super filter can mimic it.  Each stage's outputs feed the
    next stage's inputs.
    """

    def __init__(self, stages: Sequence[TransformationFilter], **params: Any) -> None:
        super().__init__(**params)
        if not stages:
            raise FilterError("SuperFilter needs at least one stage")
        self.stages = list(stages)

    def execute(self, packets: Sequence[Packet], ctx: FilterContext) -> list[Packet]:
        current = list(packets)
        for stage in self.stages:
            if not current:
                break
            current = stage.execute(current, ctx)
        return current

    def transform(self, packets: Sequence[Packet], ctx: FilterContext) -> Packet | None:
        raise AssertionError("SuperFilter overrides execute directly")

    def flush(self, ctx: FilterContext) -> list[Packet]:
        out: list[Packet] = []
        for stage in self.stages:
            out.extend(stage.flush(ctx))
        return out


class SynchronizationFilter:
    """Base class for packet-delivery synchronization policies.

    A synchronization filter sees every upstream packet as it arrives at
    a node (tagged with which child link delivered it) and decides when
    to release *batches* to the transformation filter.  MRNet ships
    three policies; all are implemented in
    :mod:`repro.core.sync_filters`.

    The node event loop drives the filter with :meth:`push` per arrival,
    polls :meth:`next_deadline` to schedule timer wakeups, and calls
    :meth:`on_timer` when a deadline passes and :meth:`flush` at stream
    close.

    Filters that never set deadlines (``wait_for_all``, ``null``) leave
    :attr:`timed` False so the event loop can skip timer bookkeeping for
    their streams entirely; the loop also treats any subclass overriding
    :meth:`next_deadline` or :meth:`on_timer` as timed.
    """

    name: str = ""
    #: True when this policy schedules deadlines (drives timer wakeups).
    timed: bool = False

    def __init__(self, **params: Any) -> None:
        self.params = params

    def push(
        self, packet: Packet, child: int, ctx: FilterContext
    ) -> list[list[Packet]]:
        """Accept one packet from ``child``; return released batches."""
        raise NotImplementedError

    def next_deadline(self) -> float | None:
        """Virtual/real time of the next timer event, or None."""
        return None

    def on_timer(self, now: float, ctx: FilterContext) -> list[list[Packet]]:
        """Handle a timer expiry; return released batches."""
        return []

    def flush(self, ctx: FilterContext) -> list[list[Packet]]:
        """Release everything still held (stream close / shutdown)."""
        return []

    def recheck(
        self, ctx: FilterContext, covering: tuple[int, ...]
    ) -> list[list[Packet]]:
        """Re-evaluate held packets after a topology change (recovery).

        Default: nothing held, nothing to release.
        """
        return []

    def pending_count(self) -> int:
        """Number of packets currently held (for tests and monitoring)."""
        return 0
