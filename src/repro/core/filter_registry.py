"""Filter registry and dlopen-style dynamic filter loading.

MRNet "allows developers to extend the filter set with application-
specific filters ... loaded on-demand into instantiated networks; an
interface similar to dlopen is used to dynamically specify and load the
filters into the running communication processes."

The Python equivalent: filters are addressed by *name*.  Built-ins and
decorator-registered filters resolve from the process-local registry;
names of the form ``"package.module:Attr"`` are resolved with
:mod:`importlib` — the running communication process imports the module
on demand, exactly as a ``dlopen``/``dlsym`` pair would map a shared
object and symbol.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Iterator, Type

from ..analysis.locks import make_lock
from .errors import FilterLoadError
from .filters import SynchronizationFilter, TransformationFilter

__all__ = [
    "FilterRegistry",
    "register_transform",
    "register_sync",
    "default_registry",
]


class FilterRegistry:
    """Thread-safe name → filter-class registry.

    Separate namespaces for transformation and synchronization filters
    (MRNet treats them as distinct filter kinds).  Lookup order:

    1. explicit registration (built-ins, decorated user filters);
    2. dynamic ``"module:attr"`` loading via importlib, after which the
       class is cached in the registry.
    """

    def __init__(self) -> None:
        self._transforms: dict[str, Type[TransformationFilter]] = {}
        self._syncs: dict[str, Type[SynchronizationFilter]] = {}
        self._lock = make_lock("filter_registry")

    # -- registration -----------------------------------------------------
    def add_transform(
        self, name: str, cls: Type[TransformationFilter], *, replace: bool = False
    ) -> None:
        if not issubclass(cls, TransformationFilter):
            raise FilterLoadError(
                f"{cls.__name__} is not a TransformationFilter subclass"
            )
        with self._lock:
            if name in self._transforms and not replace:
                raise FilterLoadError(f"transformation filter {name!r} already registered")
            self._transforms[name] = cls

    def add_sync(
        self, name: str, cls: Type[SynchronizationFilter], *, replace: bool = False
    ) -> None:
        if not issubclass(cls, SynchronizationFilter):
            raise FilterLoadError(
                f"{cls.__name__} is not a SynchronizationFilter subclass"
            )
        with self._lock:
            if name in self._syncs and not replace:
                raise FilterLoadError(f"synchronization filter {name!r} already registered")
            self._syncs[name] = cls

    # -- resolution -----------------------------------------------------------
    def _dynamic_load(self, name: str) -> Any:
        """Resolve ``"module:attr"``, the dlopen-analogue path."""
        module_name, _, attr = name.partition(":")
        if not module_name or not attr:
            raise FilterLoadError(
                f"unknown filter {name!r} (not registered, and not of the "
                "dynamic 'module:attr' form)"
            )
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise FilterLoadError(f"cannot import filter module {module_name!r}: {exc}") from exc
        try:
            return getattr(module, attr)
        except AttributeError as exc:
            raise FilterLoadError(
                f"module {module_name!r} has no attribute {attr!r}"
            ) from exc

    def resolve_transform(self, name: str) -> Type[TransformationFilter]:
        with self._lock:
            cls = self._transforms.get(name)
        if cls is not None:
            return cls
        loaded = self._dynamic_load(name)
        if not (isinstance(loaded, type) and issubclass(loaded, TransformationFilter)):
            raise FilterLoadError(
                f"{name!r} resolved to {loaded!r}, not a TransformationFilter class"
            )
        self.add_transform(name, loaded, replace=True)
        return loaded

    def resolve_sync(self, name: str) -> Type[SynchronizationFilter]:
        with self._lock:
            cls = self._syncs.get(name)
        if cls is not None:
            return cls
        loaded = self._dynamic_load(name)
        if not (isinstance(loaded, type) and issubclass(loaded, SynchronizationFilter)):
            raise FilterLoadError(
                f"{name!r} resolved to {loaded!r}, not a SynchronizationFilter class"
            )
        self.add_sync(name, loaded, replace=True)
        return loaded

    def make_transform(self, name: str, **params: Any) -> TransformationFilter:
        """Instantiate a transformation filter by name.

        A ``|``-separated name (``"equivalence|passthrough"``) builds a
        :class:`~repro.core.filters.SuperFilter` applying the stages in
        order — the paper's observation that "a single 'super filter'
        that propagates the packet flow to a sequence of filters could
        seamlessly mimic" filter chaining, packaged as syntax.  Each
        stage receives the same ``params``.
        """
        if "|" in name:
            from .filters import SuperFilter

            stage_names = [part.strip() for part in name.split("|")]
            if any(not part for part in stage_names):
                raise FilterLoadError(f"empty stage in filter chain {name!r}")
            stages = [self.resolve_transform(part)(**params) for part in stage_names]
            return SuperFilter(stages, **params)
        return self.resolve_transform(name)(**params)

    def make_sync(self, name: str, **params: Any) -> SynchronizationFilter:
        """Instantiate a synchronization filter by name."""
        return self.resolve_sync(name)(**params)

    # -- introspection ----------------------------------------------------------
    def transforms(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._transforms))

    def syncs(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._syncs))


#: The process-wide default registry used by :class:`repro.core.network.Network`.
default_registry = FilterRegistry()


def register_transform(
    name: str, registry: FilterRegistry | None = None
) -> Callable[[Type[TransformationFilter]], Type[TransformationFilter]]:
    """Class decorator registering a transformation filter under ``name``."""

    def deco(cls: Type[TransformationFilter]) -> Type[TransformationFilter]:
        (registry or default_registry).add_transform(name, cls)
        cls.name = name
        return cls

    return deco


def register_sync(
    name: str, registry: FilterRegistry | None = None
) -> Callable[[Type[SynchronizationFilter]], Type[SynchronizationFilter]]:
    """Class decorator registering a synchronization filter under ``name``."""

    def deco(cls: Type[SynchronizationFilter]) -> Type[SynchronizationFilter]:
        (registry or default_registry).add_sync(name, cls)
        cls.name = name
        return cls

    return deco


def _register_builtins() -> None:
    """Install MRNet's built-in filters into the default registry."""
    from . import builtin_filters as bf
    from . import sync_filters as sf
    from ..telemetry.merge_filter import TelemetryMergeFilter
    from .filters import PassthroughFilter

    for cls in (
        bf.SumFilter,
        bf.MinFilter,
        bf.MaxFilter,
        bf.CountFilter,
        bf.AverageFilter,
        bf.ConcatFilter,
    ):
        default_registry.add_transform(cls.name, cls, replace=True)
    default_registry.add_transform("passthrough", PassthroughFilter, replace=True)
    default_registry.add_transform(
        TelemetryMergeFilter.name, TelemetryMergeFilter, replace=True
    )
    for scls in (sf.WaitForAll, sf.TimeOut, sf.NullSync):
        default_registry.add_sync(scls.name, scls, replace=True)


_register_builtins()
