"""The public TBON network facade (MRNet's ``Network`` class).

Instantiating a :class:`Network` materializes a process tree over a
transport: one :class:`~repro.core.node.NodeRunner` per non-leaf rank,
one :class:`~repro.core.backend.BackEnd` handle per leaf, and a
:class:`~repro.core.frontend.FrontEnd` dispatcher at the root.  The
front-end creates :class:`~repro.core.stream.Stream` objects binding
back-end subsets to filter pairs, mirroring the MRNet API::

    from repro import Network, balanced_topology, FIRST_APPLICATION_TAG

    topo = balanced_topology(fanout=4, depth=2)     # 16 back-ends
    with Network(topo) as net:
        s = net.new_stream(transform="sum", sync="wait_for_all")
        net.run_backends(lambda be: be.send(s.stream_id, TAG, "%d", be.rank))
        total = s.recv(timeout=5.0).values[0]

Everything is in-process by default (:class:`ThreadTransport`); pass
``transport="tcp"`` to run the same tree over real localhost TCP
sockets.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Callable, Iterable, Sequence

from ..analysis.locks import make_lock
from .backend import BackEnd
from .errors import NetworkShutdownError, StreamError, TopologyError, TransportError
from .events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    FIRST_STREAM_ID,
    StreamSpec,
    TAG_FILTER_LOAD,
    TAG_SHUTDOWN,
    TAG_STREAM_CREATE,
    TAG_TELEMETRY,
)
from .filter_registry import FilterRegistry, default_registry
from .frontend import FrontEnd
from .node import NodeRunner
from .packet import Packet
from .stream import Stream
from .topology import Topology

__all__ = ["Network"]

#: Environment variable selecting the socket transport implementation
#: behind ``transport="tcp"`` (documented next to TBON_TELEMETRY /
#: TBON_LOCKCHECK in the README).
TRANSPORT_ENV_VAR = "TBON_TRANSPORT"


def _make_socket_transport(kind: str) -> Any:
    """Materialize a named localhost-TCP transport.

    ``"tcp"`` resolves through :data:`TRANSPORT_ENV_VAR`: the
    selector-reactor transport by default, or the legacy
    thread-per-connection transport under ``TBON_TRANSPORT=threads``
    (kept for one release as a fallback).  ``"reactor"`` and
    ``"tcp-threads"`` name an implementation explicitly, bypassing the
    environment.
    """
    if kind == "tcp":
        env = os.environ.get(TRANSPORT_ENV_VAR, "").strip().lower()
        if env in ("", "reactor", "tcp"):
            kind = "reactor"
        elif env in ("threads", "thread", "tcp-threads"):
            kind = "tcp-threads"
        else:
            raise TransportError(
                f"unknown {TRANSPORT_ENV_VAR} value {env!r} "
                "(expected 'reactor' or 'threads')"
            )
    if kind == "reactor":
        from ..transport.reactor import ReactorTransport

        return ReactorTransport()
    from ..transport.tcp import TCPTransport

    return TCPTransport()


class Network:
    """An instantiated tree-based overlay network.

    Args:
        topology: the process tree to materialize.
        transport: ``"thread"`` (default), ``"tcp"``, ``"reactor"``,
            ``"tcp-threads"``, or a pre-built
            :class:`~repro.transport.base.Transport` instance.
            ``"tcp"`` selects the default socket implementation — the
            selector-reactor transport — unless the ``TBON_TRANSPORT``
            environment variable names one explicitly (``reactor`` or
            ``threads``, the legacy thread-per-connection fallback kept
            for one release).
        registry: filter registry (defaults to the process-wide one with
            MRNet's built-ins).
    """

    def __init__(
        self,
        topology: Topology,
        transport: Any = "thread",
        registry: FilterRegistry | None = None,
    ):
        if topology.n_backends == 0:
            raise TopologyError("a network needs at least one back-end")
        self.topology = topology
        self.registry = registry or default_registry
        self.frontend = FrontEnd()
        self._stream_ids = itertools.count(FIRST_STREAM_ID)
        self._telemetry_ids = itertools.count(1)
        self._shutdown = False
        self._lock = make_lock("network_state")

        if transport == "thread":
            from ..transport.local import ThreadTransport

            transport = ThreadTransport()
        elif transport in ("tcp", "reactor", "tcp-threads"):
            transport = _make_socket_transport(transport)
        self.transport = transport
        self.transport.bind(topology)

        # Non-leaf ranks run communication processes.
        self.nodes: dict[int, NodeRunner] = {}
        for rank in topology.ranks:
            if topology.children(rank):
                self.nodes[rank] = NodeRunner(
                    rank,
                    topology,
                    self.transport,
                    self.registry,
                    deliver_up=self.frontend.dispatch if rank == topology.root else None,
                )
        # Leaves are application back-ends.
        self._backends: dict[int, BackEnd] = {
            rank: BackEnd(rank, topology, self.transport) for rank in topology.backends
        }
        for node in self.nodes.values():
            node.start()

    # -- stream management ----------------------------------------------------
    def new_stream(
        self,
        members: Iterable[int] | None = None,
        *,
        transform: str = "passthrough",
        sync: str = "wait_for_all",
        transform_params: dict | None = None,
        sync_params: dict | None = None,
        down_transform: str = "",
    ) -> Stream:
        """Create a stream over ``members`` (default: every back-end).

        The stream-create control packet is broadcast down the tree;
        every covering node instantiates its filter pair before any
        member can send, so no data packet can beat its stream's
        creation (FIFO channels).
        """
        self._check_alive()
        if members is None:
            member_tuple = tuple(self.topology.backends)
        else:
            member_tuple = tuple(sorted(set(int(m) for m in members)))
            backends = set(self.topology.backends)
            bad = [m for m in member_tuple if m not in backends]
            if bad:
                raise StreamError(f"stream members must be back-ends; bad ranks {bad}")
            if not member_tuple:
                raise StreamError("stream needs at least one member")
        # Fail fast: resolve filter names at the front-end before the
        # spec is broadcast (a typo'd name should raise here, not as an
        # asynchronous node error).  "|"-chained names resolve per stage.
        for name in transform.split("|"):
            self.registry.resolve_transform(name.strip() or transform)
        self.registry.resolve_sync(sync)
        if down_transform:
            for name in down_transform.split("|"):
                self.registry.resolve_transform(name.strip() or down_transform)
        spec = StreamSpec(
            stream_id=next(self._stream_ids),
            members=member_tuple,
            transform=transform,
            sync=sync,
            transform_params=tuple(sorted((transform_params or {}).items())),
            sync_params=tuple(sorted((sync_params or {}).items())),
            down_transform=down_transform,
        )
        stream = Stream(self, spec)
        self.frontend.register(stream)
        create = Packet(CONTROL_STREAM_ID, TAG_STREAM_CREATE, "%o", (spec,))
        self._inject_down(create)
        return stream

    def load_filter(self, name: str, kind: str = "transform") -> None:
        """Dynamically load a filter into every communication process.

        ``name`` may be a registered name or the dlopen-analogue
        ``"module:Attr"`` form; each node resolves (imports) it locally.
        """
        self._check_alive()
        if kind not in ("transform", "sync"):
            raise StreamError(f"filter kind must be 'transform' or 'sync', got {kind!r}")
        # Resolve at the front-end first so errors surface synchronously.
        if kind == "transform":
            self.registry.resolve_transform(name)
        else:
            self.registry.resolve_sync(name)
        pkt = Packet(CONTROL_STREAM_ID, TAG_FILTER_LOAD, "%s %s", (name, kind))
        self._inject_down(pkt)

    def attach_backend(self, parent_rank: int) -> BackEnd:
        """Attach a new back-end under ``parent_rank`` in the live network.

        MRNet's dynamic topology model: "back-end processes may join
        after the internal tree has been instantiated."  The new
        back-end is *not* a member of existing streams (their
        memberships were fixed at creation); streams created afterwards
        may include it.

        Requires a transport with live rebinding (the thread transport);
        returns the new :class:`BackEnd` handle.
        """
        self._check_alive()
        if not hasattr(self.transport, "rebind"):
            raise StreamError(
                f"{type(self.transport).__name__} does not support live attach"
            )
        if parent_rank not in self.nodes:
            raise StreamError(
                f"rank {parent_rank} is not a running communication process"
            )
        from .events import TAG_TOPOLOGY_ATTACH

        new_topo, new_rank = self.topology.attach_backend(parent_rank)
        self.transport.rebind(new_topo)
        self.topology = new_topo
        self._backends[new_rank] = BackEnd(new_rank, new_topo, self.transport)
        reconfig = Packet(CONTROL_STREAM_ID, TAG_TOPOLOGY_ATTACH, "%o", (new_topo,))
        for rank in self.nodes:
            self.transport.inbox(rank).put(
                Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
            )
        for rank in new_topo.backends:
            if rank != new_rank:
                self.transport.inbox(rank).put(
                    Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=reconfig)
                )
        return self._backends[new_rank]

    # -- endpoints ---------------------------------------------------------------
    def backend(self, rank: int) -> BackEnd:
        """The application handle for back-end ``rank``."""
        try:
            return self._backends[rank]
        except KeyError:
            raise StreamError(f"rank {rank} is not a back-end") from None

    @property
    def backends(self) -> list[BackEnd]:
        """All back-end handles, in topology (BFS) order."""
        return [self._backends[r] for r in self.topology.backends]

    def run_backends(
        self,
        fn: Callable[[BackEnd], Any],
        ranks: Sequence[int] | None = None,
        *,
        join: bool = True,
        timeout: float | None = 60.0,
    ) -> list[threading.Thread]:
        """Run ``fn(backend)`` on a thread per back-end (the app's leaves).

        With ``join=True`` (default) waits for all threads; exceptions
        inside ``fn`` are re-raised at the caller (first one wins).
        """
        errors: list[Exception] = []
        err_lock = make_lock("run_backends_errors")

        def wrap(be: BackEnd) -> None:
            try:
                fn(be)
            except Exception as exc:
                with err_lock:
                    errors.append(exc)

        targets = self.topology.backends if ranks is None else list(ranks)
        threads = [
            threading.Thread(
                target=wrap, args=(self._backends[r],), name=f"tbon-beapp-{r}", daemon=True
            )
            for r in targets
        ]
        for t in threads:
            t.start()
        if join:
            for t in threads:
                t.join(timeout)
            if errors:
                raise errors[0]
        return threads

    # -- plumbing --------------------------------------------------------------------
    def _inject_down(self, packet: Packet) -> None:
        """Inject a packet at the root as if sent by the application."""
        self._check_alive()
        self.transport.inbox(self.topology.root).put(
            Envelope(src=-1, direction=Direction.DOWNSTREAM, packet=packet)
        )

    def _check_alive(self) -> None:
        if self._shutdown:
            raise NetworkShutdownError("network has been shut down")

    # -- lifecycle ---------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Tear the tree down: broadcast shutdown, join every process."""
        if self._shutdown:
            return
        pkt = Packet(CONTROL_STREAM_ID, TAG_SHUTDOWN, "%d", (0,))
        self._inject_down(pkt)
        self._shutdown = True
        for node in self.nodes.values():
            node.join(timeout)
        for be in self._backends.values():
            be.stop()
        self.transport.shutdown()

    def telemetry_snapshot(self, timeout: float = 10.0) -> dict:
        """Tree-aggregated telemetry snapshot (the in-tree stats reduction).

        Injects a ``TAG_TELEMETRY`` request at the root; every node
        forwards it to its children, back-ends answer with their local
        registry snapshots, and internal nodes fold the replies together
        with their own registries via the ``telemetry_merge`` filter on
        the way back up.  The returned dict has ``counters`` summed,
        ``histograms`` bucket-merged and ``gauges`` maxed over every
        node and back-end (see :mod:`repro.telemetry.registry`), with
        ``sources`` listing the contributors.

        Works with telemetry disabled too (all instruments read zero);
        enable with ``TBON_TELEMETRY=1`` or
        :func:`repro.telemetry.enable` to see real counts.
        """
        import queue as _queue
        import time as _time

        self._check_alive()
        req_id = next(self._telemetry_ids)
        self._inject_down(Packet(CONTROL_STREAM_ID, TAG_TELEMETRY, "%d", (req_id,)))
        deadline = _time.monotonic() + timeout
        while True:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"telemetry snapshot {req_id} did not complete within {timeout}s"
                )
            try:
                reply = self.frontend.telemetry_replies.get(timeout=remaining)
            except _queue.Empty:
                raise TimeoutError(
                    f"telemetry snapshot {req_id} did not complete within {timeout}s"
                ) from None
            rid, snapshot = reply.values
            if int(rid) == req_id:
                return snapshot
            # A stale reply from an abandoned (timed-out) gather: drop it.

    def node_errors(self) -> dict[int, Exception]:
        """Errors captured by communication processes (empty when healthy)."""
        return {r: n.error for r, n in self.nodes.items() if n.error is not None}

    def stats(self) -> dict[str, dict[int, tuple[int, int]]]:
        """Per-stream packet accounting across all communication processes.

        Returns ``{"node <rank>": {stream_id: (packets_in, packets_out)}}``
        for monitoring and tests; aggregation ratios fall straight out
        (a node with (k, 1) per wave is reducing k-fold).
        """
        return {f"node {r}": n.stream_stats() for r, n in self.nodes.items()}

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network({self.topology!r}, transport={type(self.transport).__name__})"
        )
