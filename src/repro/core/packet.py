"""Application-level packets and counted payload references.

A :class:`Packet` is the unit of data flowing through a TBON: it names a
stream, carries an application *tag*, and holds a typed payload described
by an MRNet-style format string (see :mod:`repro.core.serialization`).

MRNet's high-performance communication layer "uses counted packet
references to place a single packet object into multiple outgoing packet
buffers and performs the requisite garbage collection when the packet is
no longer referenced".  :class:`PayloadRef` reproduces that design: when
an internal node multicasts a packet to *k* children, all *k* channel
entries share one serialized buffer; the buffer's serialization happens
at most once, and explicit reference counts (observable via
:class:`PacketStats`) let tests assert the single-copy property.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..analysis.locks import make_lock
from ..telemetry.registry import GLOBAL as _TELEMETRY, TELEMETRY as _TEL
from ..telemetry.trace import TraceContext
from .errors import SerializationError
from .serialization import (
    pack_payload,
    payload_nbytes,
    unpack_payload,
    validate_values,
)

__all__ = ["Packet", "PayloadRef", "PacketStats", "make_packet"]

_packet_seq = itertools.count()

#: Wire format of the per-packet control header (see docs/PROTOCOL.md §2).
HEADER_FMT = "%d %d %d %d %s"

_LEN = struct.Struct("<I")

#: Escape hatch for benchmarking the pre-memoization data plane; leave
#: True in production code.  (See ``benchmarks/bench_fastpath.py``.)
FRAME_CACHE_ENABLED = True

_frame_cache_hits = _TELEMETRY.counter("tbon_frame_cache_total", {"result": "hit"})
_frame_cache_misses = _TELEMETRY.counter("tbon_frame_cache_total", {"result": "miss"})


@dataclass
class PacketStats:
    """Counters for payload-buffer behaviour (zero-copy accounting).

    Attributes:
        serializations: number of times a payload was packed to bytes.
        buffers_live: number of PayloadRef buffers currently referenced.
        max_refcount: the largest refcount ever observed on one buffer
            (``k`` after a k-way multicast that shared a single buffer).
    """

    serializations: int = 0
    buffers_live: int = 0
    max_refcount: int = 0
    _lock: Any = field(default_factory=lambda: make_lock("packet_stats"), repr=False)

    def reset(self) -> None:
        with self._lock:
            self.serializations = 0
            self.buffers_live = 0
            self.max_refcount = 0


#: Process-global stats instance; tests may reset it around a scenario.
GLOBAL_PACKET_STATS = PacketStats()


class PayloadRef:
    """A reference-counted serialized payload buffer.

    The buffer is created lazily on first :meth:`serialize` and shared by
    every holder; :meth:`incref`/:meth:`decref` track ownership the same
    way MRNet's counted packet references do.  When the count reaches
    zero the buffer is dropped (Python's GC would reclaim it anyway — the
    explicit count exists so the single-serialization invariant is
    observable and testable).
    """

    __slots__ = ("_fmt", "_values", "_buffer", "_refcount", "_lock")

    def __init__(self, fmt: str, values: tuple[Any, ...]) -> None:
        self._fmt = fmt
        self._values = values
        self._buffer: bytes | None = None  # tbon: lock=_lock
        self._refcount = 1  # tbon: lock=_lock
        self._lock = make_lock("payload_ref")
        with GLOBAL_PACKET_STATS._lock:
            GLOBAL_PACKET_STATS.buffers_live += 1

    @property
    def refcount(self) -> int:
        return self._refcount

    def incref(self, n: int = 1) -> "PayloadRef":
        with self._lock:
            self._refcount += n
            with GLOBAL_PACKET_STATS._lock:
                if self._refcount > GLOBAL_PACKET_STATS.max_refcount:
                    GLOBAL_PACKET_STATS.max_refcount = self._refcount
        return self

    def decref(self, n: int = 1) -> None:
        with self._lock:
            self._refcount -= n
            if self._refcount < 0:
                raise SerializationError("PayloadRef refcount went negative")
            if self._refcount == 0:
                self._buffer = None
                with GLOBAL_PACKET_STATS._lock:
                    GLOBAL_PACKET_STATS.buffers_live -= 1

    def serialize(self) -> bytes:
        """Pack the payload, caching the buffer so packing happens once."""
        with self._lock:
            if self._buffer is None:
                self._buffer = pack_payload(self._fmt, self._values)
                with GLOBAL_PACKET_STATS._lock:
                    GLOBAL_PACKET_STATS.serializations += 1
            return self._buffer


class Packet:
    """One application-level packet.

    Attributes:
        stream_id: id of the stream this packet belongs to.
        tag: application-defined integer tag (tags below
            :data:`repro.core.events.FIRST_APPLICATION_TAG` are reserved
            for the control plane).
        fmt: MRNet-style format string describing the payload.
        src: rank of the originating endpoint (-1 if unknown).
        hops: number of communication processes traversed so far.
    """

    __slots__ = (
        "stream_id",
        "tag",
        "fmt",
        "src",
        "hops",
        "seq",
        "trace",
        "_values",
        "_ref",
        "_frame",
        "_frame_hops",
    )

    def __init__(
        self,
        stream_id: int,
        tag: int,
        fmt: str,
        values: Sequence[Any],
        *,
        src: int = -1,
        hops: int = 0,
        trace: TraceContext | None = None,
        _validated: bool = False,
    ) -> None:
        self.stream_id = int(stream_id)
        self.tag = int(tag)
        self.fmt = fmt
        self.src = int(src)
        self.hops = int(hops)
        self.seq = next(_packet_seq)
        self.trace = trace
        vals = tuple(values) if _validated else validate_values(fmt, values)
        self._values = vals
        self._ref: PayloadRef | None = None
        self._frame: bytes | None = None
        self._frame_hops = -1

    # -- payload access ------------------------------------------------
    @property
    def values(self) -> tuple[Any, ...]:
        """The typed payload values (coerced per the format string)."""
        return self._values

    def unpack(self) -> tuple[Any, ...]:
        """MRNet-flavoured alias for :attr:`values`."""
        return self._values

    def __getitem__(self, idx: int) -> Any:
        return self._values[idx]

    def __len__(self) -> int:
        return len(self._values)

    # -- serialization ---------------------------------------------------
    def payload_ref(self) -> PayloadRef:
        """Return the shared counted payload reference, creating it lazily."""
        if self._ref is None:
            self._ref = PayloadRef(self.fmt, self._values)
        return self._ref

    def nbytes(self) -> int:
        """Serialized payload size in bytes (without header)."""
        return payload_nbytes(self.fmt, self._values)

    def to_bytes(self) -> bytes:
        """Serialize header + payload to a transport frame body.

        The frame is memoized on the packet: everything below the header
        is immutable, and the only mutable header field is ``hops`` (via
        :meth:`hop`), so the cache is keyed by the hop count at
        serialization time.  A k-way multicast therefore serializes once
        and writes the identical buffer k times — MRNet's serialize-once
        contract, now covering header bytes as well as the counted
        payload reference.
        """
        frame = self._frame
        if (
            frame is not None
            and self._frame_hops == self.hops
            and FRAME_CACHE_ENABLED
        ):
            if _TEL.enabled:
                _frame_cache_hits.inc()
            return frame
        if _TEL.enabled:
            _frame_cache_misses.inc()
        header = pack_payload(
            HEADER_FMT, (self.stream_id, self.tag, self.src, self.hops, self.fmt)
        )
        body = self.payload_ref().serialize()
        # Inlined pack_payload("%ac %ac", (header, body)) — same bytes,
        # no per-directive dispatch on the per-frame hot path.
        if self.trace is None:
            frame = b"".join(
                (_LEN.pack(len(header)), header, _LEN.pack(len(body)), body)
            )
        else:
            tb = self.trace.to_bytes()
            frame = b"".join(
                (
                    _LEN.pack(len(header)),
                    header,
                    _LEN.pack(len(body)),
                    body,
                    _LEN.pack(len(tb)),
                    tb,
                )
            )
        self._frame = frame
        self._frame_hops = self.hops
        return frame

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Inverse of :meth:`to_bytes` (accepts any bytes-like buffer).

        The frame is two (untraced) or three (traced) length-prefixed
        sections; the parse is hand-rolled because the trace section is
        optional, with the same truncation/trailing-byte errors the
        ``"%ac %ac"`` interpreter path raised.
        """
        mv = memoryview(data)
        total = len(mv)
        offset = 0
        sections: list[memoryview] = []
        for _ in range(2):
            if offset + 4 > total:
                raise SerializationError("truncated packet frame")
            (length,) = _LEN.unpack_from(mv, offset)
            offset += 4
            if offset + length > total:
                raise SerializationError("truncated packet frame")
            sections.append(mv[offset : offset + length])
            offset += length
        trace: TraceContext | None = None
        if offset < total:
            if offset + 4 > total:
                raise SerializationError("truncated packet frame")
            (length,) = _LEN.unpack_from(mv, offset)
            offset += 4
            if offset + length > total:
                raise SerializationError("truncated packet frame")
            trace = TraceContext.from_bytes(bytes(mv[offset : offset + length]))
            offset += length
        if offset != total:
            raise SerializationError(
                f"{total - offset} trailing byte(s) after packet frame"
            )
        header_raw, body = sections
        stream_id, tag, src, hops, fmt = unpack_payload(HEADER_FMT, header_raw)
        values = unpack_payload(fmt, body)
        return cls(
            stream_id,
            tag,
            fmt,
            values,
            src=src,
            hops=hops,
            trace=trace,
            _validated=True,
        )

    # -- misc -------------------------------------------------------------
    def with_values(self, values: Sequence[Any], *, fmt: str | None = None) -> "Packet":
        """A new packet on the same stream/tag with a different payload.

        The trace context is deliberately *not* copied: the node event
        loop attaches the critical-path trace to transform outputs
        itself (one sanctioned :meth:`attach_trace` site), so a filter
        building packets with ``with_values`` cannot duplicate hops.
        """
        return Packet(
            self.stream_id,
            self.tag,
            self.fmt if fmt is None else fmt,
            values,
            src=self.src,
            hops=self.hops,
        )

    def hop(self) -> "Packet":
        """Record traversal of one communication process (in place)."""
        self.hops += 1
        return self

    def attach_trace(self, trace: TraceContext | None) -> "Packet":
        """Attach or replace the causal trace context (in place).

        Like :meth:`hop`, this is a sanctioned mutation: the memoized
        frame is invalidated so the trace section is re-serialized.
        Traced packets are sampled (rare), so the extra serialization
        does not affect the multicast fast path.  Outside this module,
        assigning ``.trace`` directly is flagged by tboncheck TB204 —
        use this method.
        """
        self.trace = trace
        self._frame = None
        self._frame_hops = -1
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        vals = ", ".join(
            f"{v!r}" if not hasattr(v, "shape") else f"<array {getattr(v, 'shape')}>"
            for v in self._values[:4]
        )
        if len(self._values) > 4:
            vals += ", ..."
        return (
            f"Packet(stream={self.stream_id}, tag={self.tag}, fmt={self.fmt!r}, "
            f"src={self.src}, [{vals}])"
        )


def make_packet(
    stream_id: int, tag: int, fmt: str, *values: Any, src: int = -1
) -> Packet:
    """Convenience constructor: ``make_packet(s, t, "%d %f", 3, 2.5)``."""
    return Packet(stream_id, tag, fmt, values, src=src)


def total_nbytes(packets: Iterable[Packet]) -> int:
    """Sum of serialized payload sizes for a batch of packets."""
    return sum(p.nbytes() for p in packets)
