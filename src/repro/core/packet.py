"""Application-level packets and counted payload references.

A :class:`Packet` is the unit of data flowing through a TBON: it names a
stream, carries an application *tag*, and holds a typed payload described
by an MRNet-style format string (see :mod:`repro.core.serialization`).

MRNet's high-performance communication layer "uses counted packet
references to place a single packet object into multiple outgoing packet
buffers and performs the requisite garbage collection when the packet is
no longer referenced".  :class:`PayloadRef` reproduces that design: when
an internal node multicasts a packet to *k* children, all *k* channel
entries share one serialized buffer; the buffer's serialization happens
at most once, and explicit reference counts (observable via
:class:`PacketStats`) let tests assert the single-copy property.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .errors import SerializationError
from .serialization import (
    pack_payload,
    payload_nbytes,
    unpack_payload,
    validate_values,
)

__all__ = ["Packet", "PayloadRef", "PacketStats", "make_packet"]

_packet_seq = itertools.count()


@dataclass
class PacketStats:
    """Counters for payload-buffer behaviour (zero-copy accounting).

    Attributes:
        serializations: number of times a payload was packed to bytes.
        buffers_live: number of PayloadRef buffers currently referenced.
        max_refcount: the largest refcount ever observed on one buffer
            (``k`` after a k-way multicast that shared a single buffer).
    """

    serializations: int = 0
    buffers_live: int = 0
    max_refcount: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def reset(self) -> None:
        with self._lock:
            self.serializations = 0
            self.buffers_live = 0
            self.max_refcount = 0


#: Process-global stats instance; tests may reset it around a scenario.
GLOBAL_PACKET_STATS = PacketStats()


class PayloadRef:
    """A reference-counted serialized payload buffer.

    The buffer is created lazily on first :meth:`serialize` and shared by
    every holder; :meth:`incref`/:meth:`decref` track ownership the same
    way MRNet's counted packet references do.  When the count reaches
    zero the buffer is dropped (Python's GC would reclaim it anyway — the
    explicit count exists so the single-serialization invariant is
    observable and testable).
    """

    __slots__ = ("_fmt", "_values", "_buffer", "_refcount", "_lock")

    def __init__(self, fmt: str, values: tuple[Any, ...]):
        self._fmt = fmt
        self._values = values
        self._buffer: bytes | None = None
        self._refcount = 1
        self._lock = threading.Lock()
        with GLOBAL_PACKET_STATS._lock:
            GLOBAL_PACKET_STATS.buffers_live += 1

    @property
    def refcount(self) -> int:
        return self._refcount

    def incref(self, n: int = 1) -> "PayloadRef":
        with self._lock:
            self._refcount += n
            with GLOBAL_PACKET_STATS._lock:
                if self._refcount > GLOBAL_PACKET_STATS.max_refcount:
                    GLOBAL_PACKET_STATS.max_refcount = self._refcount
        return self

    def decref(self, n: int = 1) -> None:
        with self._lock:
            self._refcount -= n
            if self._refcount < 0:
                raise SerializationError("PayloadRef refcount went negative")
            if self._refcount == 0:
                self._buffer = None
                with GLOBAL_PACKET_STATS._lock:
                    GLOBAL_PACKET_STATS.buffers_live -= 1

    def serialize(self) -> bytes:
        """Pack the payload, caching the buffer so packing happens once."""
        with self._lock:
            if self._buffer is None:
                self._buffer = pack_payload(self._fmt, self._values)
                with GLOBAL_PACKET_STATS._lock:
                    GLOBAL_PACKET_STATS.serializations += 1
            return self._buffer


class Packet:
    """One application-level packet.

    Attributes:
        stream_id: id of the stream this packet belongs to.
        tag: application-defined integer tag (tags below
            :data:`repro.core.events.FIRST_APPLICATION_TAG` are reserved
            for the control plane).
        fmt: MRNet-style format string describing the payload.
        src: rank of the originating endpoint (-1 if unknown).
        hops: number of communication processes traversed so far.
    """

    __slots__ = ("stream_id", "tag", "fmt", "src", "hops", "seq", "_values", "_ref")

    def __init__(
        self,
        stream_id: int,
        tag: int,
        fmt: str,
        values: Sequence[Any],
        *,
        src: int = -1,
        hops: int = 0,
        _validated: bool = False,
    ):
        self.stream_id = int(stream_id)
        self.tag = int(tag)
        self.fmt = fmt
        self.src = int(src)
        self.hops = int(hops)
        self.seq = next(_packet_seq)
        vals = tuple(values) if _validated else validate_values(fmt, values)
        self._values = vals
        self._ref: PayloadRef | None = None

    # -- payload access ------------------------------------------------
    @property
    def values(self) -> tuple[Any, ...]:
        """The typed payload values (coerced per the format string)."""
        return self._values

    def unpack(self) -> tuple[Any, ...]:
        """MRNet-flavoured alias for :attr:`values`."""
        return self._values

    def __getitem__(self, idx: int) -> Any:
        return self._values[idx]

    def __len__(self) -> int:
        return len(self._values)

    # -- serialization ---------------------------------------------------
    def payload_ref(self) -> PayloadRef:
        """Return the shared counted payload reference, creating it lazily."""
        if self._ref is None:
            self._ref = PayloadRef(self.fmt, self._values)
        return self._ref

    def nbytes(self) -> int:
        """Serialized payload size in bytes (without header)."""
        return payload_nbytes(self.fmt, self._values)

    def to_bytes(self) -> bytes:
        """Serialize header + payload to a transport frame body."""
        header = pack_payload(
            "%d %d %d %d %s", (self.stream_id, self.tag, self.src, self.hops, self.fmt)
        )
        body = self.payload_ref().serialize()
        return pack_payload("%ac %ac", (header, body))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Inverse of :meth:`to_bytes`."""
        header_raw, body = unpack_payload("%ac %ac", data)
        stream_id, tag, src, hops, fmt = unpack_payload("%d %d %d %d %s", header_raw)
        values = unpack_payload(fmt, body)
        return cls(stream_id, tag, fmt, values, src=src, hops=hops, _validated=True)

    # -- misc -------------------------------------------------------------
    def with_values(self, values: Sequence[Any], *, fmt: str | None = None) -> "Packet":
        """A new packet on the same stream/tag with a different payload."""
        return Packet(
            self.stream_id,
            self.tag,
            self.fmt if fmt is None else fmt,
            values,
            src=self.src,
            hops=self.hops,
        )

    def hop(self) -> "Packet":
        """Record traversal of one communication process (in place)."""
        self.hops += 1
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        vals = ", ".join(
            f"{v!r}" if not hasattr(v, "shape") else f"<array {getattr(v, 'shape')}>"
            for v in self._values[:4]
        )
        if len(self._values) > 4:
            vals += ", ..."
        return (
            f"Packet(stream={self.stream_id}, tag={self.tag}, fmt={self.fmt!r}, "
            f"src={self.src}, [{vals}])"
        )


def make_packet(
    stream_id: int, tag: int, fmt: str, *values: Any, src: int = -1
) -> Packet:
    """Convenience constructor: ``make_packet(s, t, "%d %f", 3, 2.5)``."""
    return Packet(stream_id, tag, fmt, values, src=src)


def total_nbytes(packets: Iterable[Packet]) -> int:
    """Sum of serialized payload sizes for a batch of packets."""
    return sum(p.nbytes() for p in packets)
