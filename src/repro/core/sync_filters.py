"""MRNet's built-in synchronization filters.

"MRNet uses synchronization filters to enforce the simultaneous delivery
of packets regardless of the time they actually arrive at a communication
process":

* :class:`WaitForAll` — "delivers packets in groups based on packet
  receipt from all downstream children";
* :class:`TimeOut` — "delivers packets received within a specified
  window";
* :class:`NullSync` — "delivers packets immediately upon receipt".

All three are registered in the filter registry under their MRNet names
(``wait_for_all``, ``time_out``, ``null``).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .errors import FilterError
from .filters import FilterContext, SynchronizationFilter
from .packet import Packet

__all__ = ["WaitForAll", "TimeOut", "NullSync"]


class WaitForAll(SynchronizationFilter):
    """Release a batch only when every on-stream child has contributed.

    Packets are aligned into *waves*: the i-th packets from each child
    form the i-th batch.  Per-child FIFO queues preserve channel order;
    a wave is released the moment the last missing child's packet for
    that wave arrives.
    """

    name = "wait_for_all"

    def __init__(self, **params: Any):
        super().__init__(**params)
        self._queues: dict[int, deque[Packet]] = {}
        self._known_children: set[int] = set()

    def push(self, packet: Packet, child: int, ctx: FilterContext) -> list[list[Packet]]:
        self._queues.setdefault(child, deque()).append(packet)
        self._known_children.add(child)
        batches: list[list[Packet]] = []
        while len(self._queues) >= ctx.n_children and all(
            q for q in self._queues.values()
        ):
            batches.append([self._queues[c].popleft() for c in sorted(self._queues)])
        return batches

    def flush(self, ctx: FilterContext) -> list[list[Packet]]:
        """Release leftover partial waves (e.g. at stream close)."""
        batches: list[list[Packet]] = []
        while any(q for q in self._queues.values()):
            batch = [
                self._queues[c].popleft() for c in sorted(self._queues) if self._queues[c]
            ]
            batches.append(batch)
        return batches

    def recheck(self, ctx: FilterContext, covering: tuple[int, ...]) -> list[list[Packet]]:
        """Re-evaluate wave completeness after a topology change.

        Recovery shrinks a node's covering-child set when a subtree is
        lost or re-parented; waves that were blocked waiting on a
        now-gone child must release with the survivors' packets.
        """
        alive = set(covering)
        for child in list(self._queues):
            if child not in alive:
                del self._queues[child]
        batches: list[list[Packet]] = []
        while (
            self._queues
            and len(self._queues) >= ctx.n_children
            and all(q for q in self._queues.values())
        ):
            batches.append([self._queues[c].popleft() for c in sorted(self._queues)])
        return batches

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())


class TimeOut(SynchronizationFilter):
    """Release whatever arrived within a time window.

    The window opens when the first packet of a batch arrives and closes
    ``window`` seconds later (real seconds under the thread/TCP
    transports, virtual seconds under the simulator).  A batch is also
    released early if every child has contributed — waiting longer could
    only delay delivery.
    """

    name = "time_out"
    timed = True

    def __init__(self, *, window: float = 0.1, **params: Any):
        super().__init__(window=window, **params)
        if window <= 0:
            raise FilterError(f"time_out window must be positive, got {window}")
        self.window = float(window)
        self._held: list[Packet] = []
        self._children_seen: set[int] = set()
        self._deadline: float | None = None

    def push(self, packet: Packet, child: int, ctx: FilterContext) -> list[list[Packet]]:
        if not self._held:
            self._deadline = ctx.now() + self.window
        self._held.append(packet)
        self._children_seen.add(child)
        if len(self._children_seen) >= ctx.n_children:
            return self._release()
        return []

    def _release(self) -> list[list[Packet]]:
        if not self._held:
            return []
        batch = self._held
        self._held = []
        self._children_seen = set()
        self._deadline = None
        return [batch]

    def next_deadline(self) -> float | None:
        return self._deadline

    def on_timer(self, now: float, ctx: FilterContext) -> list[list[Packet]]:
        if self._deadline is not None and now >= self._deadline:
            return self._release()
        return []

    def flush(self, ctx: FilterContext) -> list[list[Packet]]:
        return self._release()

    def pending_count(self) -> int:
        return len(self._held)


class NullSync(SynchronizationFilter):
    """Deliver each packet immediately as a singleton batch."""

    name = "null"

    def push(self, packet: Packet, child: int, ctx: FilterContext) -> list[list[Packet]]:
        return [[packet]]
