"""The communication-process event loop.

Every non-leaf rank of the tree (the front-end's root process and all
internal processes) runs a :class:`NodeRunner`: a loop that drains the
rank's inbox, interprets control packets (stream creation, filter
loading, close/shutdown) and drives the per-stream filter pipeline on
data packets — synchronization filter first, then the transformation
filter, then forwarding toward the front-end, exactly as Figure 1 of the
paper describes.

The loop is transport-independent: it sees only an
:class:`~repro.transport.base.Inbox` and the transport's ``send``; the
thread transport runs one Python thread per node, the TCP transport the
same but with socket-fed inboxes, and the discrete-event simulator
re-uses :class:`StreamState`'s filter pipeline with virtual time.
"""

from __future__ import annotations

import logging
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from ..telemetry.registry import Registry, SIZE_BOUNDS, TELEMETRY as _TEL
from .errors import (
    ChannelClosedError,
    FilterError,
    ProtocolError,
    TopologyError,
    TransportError,
)
from .events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    StreamSpec,
    TAG_ERROR,
    TAG_FILTER_LOAD,
    TAG_P2P,
    TAG_SHUTDOWN,
    TAG_STREAM_CLOSE,
    TAG_STREAM_CREATE,
    TAG_TELEMETRY,
    TAG_TOPOLOGY_ATTACH,
)
from .filter_registry import FilterRegistry
from .filters import FilterContext, SynchronizationFilter, TransformationFilter
from .packet import Packet
from .topology import Topology

__all__ = ["StreamState", "NodeRunner"]

_LOG = logging.getLogger(__name__)


@dataclass
class StreamState:
    """Per-(node, stream) runtime state: filters, routing and close status."""

    spec: StreamSpec
    transform: TransformationFilter
    sync: SynchronizationFilter
    down_transform: TransformationFilter | None
    ctx: FilterContext
    covering: tuple[int, ...]  # children whose subtrees hold stream members
    closing: bool = False
    close_acks: set[int] = field(default_factory=set)
    packets_in: int = 0
    packets_out: int = 0
    # Telemetry instruments (shared per filter name via the node registry).
    m_filter_calls: Any = None
    m_filter_wall: Any = None


class NodeRunner:
    """Event loop for one communication process.

    Args:
        rank: this process's rank (0 = the front-end's root process).
        topology: the process tree.
        transport: bound transport providing inbox and sends.
        registry: filter registry for resolving stream filters.
        deliver_up: only at rank 0 — callable receiving final upstream
            packets (and close/error events) for the application
            front-end.
        clock: monotonic time source (overridden by tests).
    """

    def __init__(
        self,
        rank: int,
        topology: Topology,
        transport: Any,
        registry: FilterRegistry,
        *,
        deliver_up: Callable[[Envelope], None] | None = None,
        clock: Callable[[], float] | None = None,
    ):
        import time as _time

        self.rank = rank
        self.topology = topology
        self.transport = transport
        self.registry = registry
        self.deliver_up = deliver_up
        self.clock = clock or _time.monotonic
        self.streams: dict[int, StreamState] = {}
        self.running = False
        self.error: Exception | None = None
        #: Envelopes handled per inbox wakeup (tunable; higher amortizes
        #: queue locking, lower bounds timer latency under backlog).
        self.batch_max = 64
        self._thread: threading.Thread | None = None
        self._is_root = rank == topology.root
        self._children = topology.children(rank)
        self._parent = topology.parent(rank)
        self._backend_children = frozenset(
            c for c in self._children if not topology.children(c)
        )
        # Timer bookkeeping: only streams whose sync filter actually
        # implements deadlines are scanned, and the earliest deadline is
        # cached between mutations — the wait_for_all/null fast path
        # does zero next_deadline()/on_timer() calls per data packet.
        self._timed_streams: dict[int, StreamState] = {}
        self._deadline_dirty = True
        self._cached_deadline: float | None = None
        # Duck-typed transports (tests, simulators) may predate multicast.
        self._multicast = getattr(transport, "multicast", None)
        # Per-node telemetry registry: the unit the in-tree stats
        # reduction aggregates (docs/OBSERVABILITY.md).  Instruments are
        # created once here; hot paths pay one TELEMETRY.enabled check.
        self.telemetry = Registry(f"node-{rank}")
        self._m_up_in = self.telemetry.counter(
            "tbon_node_packets_total", {"direction": "up", "point": "in"}
        )
        self._m_up_out = self.telemetry.counter(
            "tbon_node_packets_total", {"direction": "up", "point": "out"}
        )
        self._m_down_in = self.telemetry.counter(
            "tbon_node_packets_total", {"direction": "down", "point": "in"}
        )
        self._m_down_out = self.telemetry.counter(
            "tbon_node_packets_total", {"direction": "down", "point": "out"}
        )
        self._m_control = self.telemetry.counter("tbon_node_control_packets_total")
        self._m_timer_fires = self.telemetry.counter("tbon_node_timer_fires_total")
        self._m_batch = self.telemetry.histogram(
            "tbon_node_batch_size", bounds=SIZE_BOUNDS
        )
        self._m_inbox_depth = self.telemetry.gauge("tbon_node_inbox_depth")
        # In-flight TAG_TELEMETRY gathers: req_id -> (waiting children, replies).
        self._tel_pending: dict[int, dict[str, Any]] = {}
        self._tel_merge: TransformationFilter | None = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "NodeRunner":
        """Run the event loop on a daemon thread."""
        self._thread = threading.Thread(
            target=self.run, name=f"tbon-node-{self.rank}", daemon=True
        )
        self.running = True
        self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def run(self) -> None:
        """Drain the inbox until shutdown; called by :meth:`start`.

        Each wakeup handles a whole batch of ready envelopes (one queue
        lock round-trip for the batch, one timer check after it) instead
        of paying the full wait/lock/timer cycle per packet.  Both the
        per-envelope handlers and the timer pass report errors through
        ``self.error`` rather than killing the thread silently.
        """
        inbox = self.transport.inbox(self.rank)
        get_batch = getattr(inbox, "get_batch", None)
        qsize = getattr(inbox, "qsize", None)
        n_batches = 0
        self.running = True
        while self.running:
            timeout = self._next_timer_delay()
            try:
                if get_batch is not None:
                    batch = get_batch(self.batch_max, timeout=timeout)
                else:  # duck-typed inbox without batching
                    batch = [inbox.get(timeout=timeout)]
            except queue.Empty:
                batch = []
            except ChannelClosedError:
                break
            if _TEL.enabled and batch:
                self._m_batch.observe(len(batch))
                n_batches += 1
                if qsize is not None and not n_batches % 32:
                    # Residual depth after the drain: backlog the batch
                    # cap left behind (0 = the node is keeping up).
                    # Sampled 1-in-32: qsize() takes the queue mutex and
                    # would contend with producers on every drain.
                    self._m_inbox_depth.set(qsize())
            for env in batch:
                try:
                    self.handle(env)
                except ChannelClosedError as exc:
                    # A send inside handle() raced channel teardown.  When
                    # the transport reports it is closing this is an
                    # orderly shutdown (the reactor tears all channels
                    # down at once), not a node failure; likewise when
                    # this node itself was just killed (failure injection
                    # severs its channels before the loop notices
                    # running=False).
                    if getattr(self.transport, "closing", False) or not self.running:
                        self.running = False
                        break
                    self.error = exc
                    self._report_error(exc)
                except Exception as exc:  # surface, don't die silently
                    self.error = exc
                    self._report_error(exc)
                if not self.running:
                    break
            try:
                self._fire_timers()
            except Exception as exc:  # a filter exception from on_timer
                self.error = exc
                self._report_error(exc)

    # -- timers ----------------------------------------------------------------
    def _register_stream_timers(self, st: StreamState) -> None:
        """Track ``st`` for timer scans iff its sync filter uses deadlines."""
        sync_cls = type(st.sync)
        timed = getattr(sync_cls, "timed", False) or (
            sync_cls.next_deadline is not SynchronizationFilter.next_deadline
            or sync_cls.on_timer is not SynchronizationFilter.on_timer
        )
        if timed:
            self._timed_streams[st.spec.stream_id] = st
            self._deadline_dirty = True

    def _unregister_stream_timers(self, stream_id: int) -> None:
        if self._timed_streams.pop(stream_id, None) is not None:
            self._deadline_dirty = True

    def _next_timer_delay(self) -> float | None:
        """Seconds until the earliest sync-filter deadline, or None.

        O(1) when no stream has a timed sync filter; otherwise the
        min-deadline is recomputed only after a mutation (push, timer
        fire, close, reconfigure) marked the cache dirty.
        """
        if not self._timed_streams:
            return None
        if self._deadline_dirty:
            earliest: float | None = None
            for st in self._timed_streams.values():
                d = st.sync.next_deadline()
                if d is not None and (earliest is None or d < earliest):
                    earliest = d
            self._cached_deadline = earliest
            self._deadline_dirty = False
        if self._cached_deadline is None:
            return None
        return max(0.0, self._cached_deadline - self.clock())

    def _fire_timers(self) -> None:
        if not self._timed_streams:
            return
        now = self.clock()
        if (
            not self._deadline_dirty
            and (self._cached_deadline is None or now < self._cached_deadline)
        ):
            return  # nothing can be due yet
        for st in list(self._timed_streams.values()):
            batches = st.sync.on_timer(now, st.ctx)
            if batches and _TEL.enabled:
                self._m_timer_fires.inc(len(batches))
            for batch in batches:
                self._run_transform(st, batch)
        self._deadline_dirty = True

    # -- dispatch ----------------------------------------------------------------
    def handle(self, env: Envelope) -> None:
        """Process one envelope (exposed for simulator/tests)."""
        packet: Packet = env.packet
        if packet.stream_id == CONTROL_STREAM_ID:
            self._handle_control(env)
        elif env.direction is Direction.UPSTREAM:
            self._handle_data_up(env)
        else:
            self._handle_data_down(env)

    # -- control plane -------------------------------------------------------------
    def _handle_control(self, env: Envelope) -> None:
        packet: Packet = env.packet
        tag = packet.tag
        if _TEL.enabled:
            self._m_control.inc()
        if tag == TAG_STREAM_CREATE:
            self._on_stream_create(packet)
        elif tag == TAG_STREAM_CLOSE:
            if env.direction is Direction.DOWNSTREAM:
                self._on_stream_close_down(packet)
            else:
                self._on_stream_close_ack(env)
        elif tag == TAG_FILTER_LOAD:
            self._on_filter_load(packet)
        elif tag == TAG_P2P:
            self._on_p2p(packet)
        elif tag == TAG_TOPOLOGY_ATTACH:
            self._on_reconfigure(packet)
        elif tag == TAG_TELEMETRY:
            self._on_telemetry(env)
        elif tag == TAG_SHUTDOWN:
            self._on_shutdown(packet)
        elif env.direction is Direction.UPSTREAM:
            # Unknown upstream control (e.g. error reports): forward to root.
            self._send_root_or_up(env.packet)
        else:
            raise ProtocolError(f"unknown control tag {tag} at node {self.rank}")

    def _on_stream_create(self, packet: Packet) -> None:
        (spec_obj,) = packet.values
        spec: StreamSpec = spec_obj
        covering = tuple(self.topology.covering_children(self.rank, spec.members))
        ctx = FilterContext(
            node_rank=self.rank,
            stream_id=spec.stream_id,
            n_children=len(covering),
            is_root=self._is_root,
            depth=self.topology.depth(self.rank),
            now=self.clock,
            params=spec.transform_kwargs(),
        )
        transform = self.registry.make_transform(
            spec.transform, **spec.transform_kwargs()
        )
        sync = self.registry.make_sync(spec.sync, **spec.sync_kwargs())
        down = None
        down_name = getattr(spec, "down_transform", "")
        if down_name:
            down = self.registry.make_transform(down_name, **spec.transform_kwargs())
        st = StreamState(
            spec=spec,
            transform=transform,
            sync=sync,
            down_transform=down,
            ctx=ctx,
            covering=covering,
            m_filter_calls=self.telemetry.counter(
                "tbon_filter_invocations_total", {"filter": spec.transform}
            ),
            m_filter_wall=self.telemetry.histogram(
                "tbon_filter_wall_seconds", {"filter": spec.transform}
            ),
        )
        self.streams[spec.stream_id] = st
        self._register_stream_timers(st)
        self._forward_down(packet, covering)

    def _on_stream_close_down(self, packet: Packet) -> None:
        (stream_id,) = packet.values
        st = self.streams.get(stream_id)
        if st is None:
            raise ProtocolError(f"close for unknown stream {stream_id}")
        st.closing = True
        if not st.covering:
            self._finish_close(st)
            return
        self._forward_down(packet, st.covering)

    def _on_stream_close_ack(self, env: Envelope) -> None:
        (stream_id,) = env.packet.values
        st = self.streams.get(stream_id)
        if st is None:
            return  # already closed (duplicate ack)
        st.close_acks.add(env.src)
        if st.closing and st.close_acks >= set(st.covering):
            self._finish_close(st)

    def _finish_close(self, st: StreamState) -> None:
        """Drain filters, propagate remaining data, then ack upstream."""
        for batch in st.sync.flush(st.ctx):
            self._run_transform(st, batch)
        for out in st.transform.flush(st.ctx):
            self._emit_up(st, out)
        ack = Packet(
            CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (st.spec.stream_id,)
        )
        del self.streams[st.spec.stream_id]
        self._unregister_stream_timers(st.spec.stream_id)
        if self._is_root:
            if self.deliver_up is not None:
                self.deliver_up(Envelope(self.rank, Direction.UPSTREAM, ack))
        else:
            self.transport.send(self.rank, self._parent, Direction.UPSTREAM, ack)

    def _on_filter_load(self, packet: Packet) -> None:
        name = packet.values[0]
        kind = packet.values[1]
        if kind == "transform":
            self.registry.resolve_transform(name)
        else:
            self.registry.resolve_sync(name)
        self._forward_down(packet, [c for c in self._children if c not in self._backend_children])

    def _on_p2p(self, packet: Packet) -> None:
        """Route a back-end-to-back-end message through the tree.

        Section 2.1: "The TBON model does not support direct back-end to
        back-end communication.  However, similar support could be
        easily achieved, albeit in a sub-optimal manner, by using the
        internal process-tree to route back-end to back-end messages."
        The message climbs until its destination lies in the current
        subtree, then descends along the covering path.
        """
        dst = int(packet.values[0])
        if dst not in self.topology:
            raise ProtocolError(f"p2p destination {dst} not in topology")
        if dst in self.topology.subtree_backends(self.rank):
            (child,) = self.topology.covering_children(self.rank, (dst,))
            self.transport.send(self.rank, child, Direction.DOWNSTREAM, packet)
        elif self._is_root:
            raise ProtocolError(f"p2p destination {dst} is not a back-end")
        else:
            self.transport.send(self.rank, self._parent, Direction.UPSTREAM, packet)

    def _on_reconfigure(self, packet: Packet) -> None:
        """Adopt a reconfigured topology (recovery after a failure).

        Delivered straight into this node's inbox by the recovery
        machinery (not routed through the tree — the tree is what
        changed).  Updates routing state and rechecks held waves so
        packets blocked on a lost child release.
        """
        (new_topo,) = packet.values
        self.topology = new_topo
        self._children = new_topo.children(self.rank)
        self._parent = new_topo.parent(self.rank)
        self._backend_children = frozenset(
            c for c in self._children if not new_topo.children(c)
        )
        self._deadline_dirty = True
        for st in list(self.streams.values()):
            st.covering = tuple(
                new_topo.covering_children(self.rank, st.spec.members)
            )
            st.ctx.n_children = len(st.covering)
            st.ctx.depth = new_topo.depth(self.rank)
            for batch in st.sync.recheck(st.ctx, st.covering):
                self._run_transform(st, batch)
            if st.closing and st.close_acks >= set(st.covering):
                self._finish_close(st)

    def _on_telemetry(self, env: Envelope) -> None:
        """In-tree stats reduction (docs/PROTOCOL.md §4, TAG_TELEMETRY).

        Downstream ``(req_id,)`` requests fan out to every child;
        upstream ``(req_id, snapshot)`` replies are collected, and once
        all children answered the ``telemetry_merge`` filter folds them
        together with this node's own registry snapshot (sum counters,
        merge histograms, max gauges) before one merged reply ascends —
        the Paradyn pattern of reducing performance data through the
        tree it describes.
        """
        packet = env.packet
        if env.direction is Direction.DOWNSTREAM:
            (req_id,) = packet.values
            self._tel_pending[int(req_id)] = {
                "waiting": set(self._children),
                "replies": [],
            }
            self._forward_down(packet, self._children)
            if not self._children:  # degenerate tree; answer immediately
                self._finish_telemetry(int(req_id))
            return
        req_id = int(packet.values[0])
        pending = self._tel_pending.get(req_id)
        if pending is None:
            # Not a gather this node initiated tracking for (e.g. a late
            # duplicate after reconfiguration): pass it toward the root.
            self._send_root_or_up(packet)
            return
        pending["replies"].append(packet)
        pending["waiting"].discard(env.src)
        if not pending["waiting"]:
            self._finish_telemetry(req_id)

    def _finish_telemetry(self, req_id: int) -> None:
        pending = self._tel_pending.pop(req_id)
        own = Packet(
            CONTROL_STREAM_ID,
            TAG_TELEMETRY,
            "%d %o",
            (req_id, self.telemetry.snapshot()),
        )
        if self._tel_merge is None:
            # Direct instantiation (not via self.registry): the gather
            # must work even under a custom registry without built-ins.
            from ..telemetry.merge_filter import TelemetryMergeFilter

            self._tel_merge = TelemetryMergeFilter()
        ctx = FilterContext(
            node_rank=self.rank,
            stream_id=CONTROL_STREAM_ID,
            n_children=len(self._children),
            is_root=self._is_root,
            depth=self.topology.depth(self.rank),
            now=self.clock,
        )
        for out in self._tel_merge.execute([own, *pending["replies"]], ctx):
            self._send_root_or_up(out)

    def _on_shutdown(self, packet: Packet) -> None:
        self._forward_down(packet, self._children)
        self.running = False

    def _report_error(self, exc: Exception) -> None:
        pkt = Packet(
            CONTROL_STREAM_ID,
            TAG_ERROR,
            "%d %s %s",
            (self.rank, type(exc).__name__, str(exc)),
        )
        try:
            self._send_root_or_up(pkt)
        except TransportError as report_exc:
            # Reporting itself raced channel teardown.  The error is
            # already recorded in self.error; only the front-end's copy
            # of the TAG_ERROR packet is lost.
            if not getattr(self.transport, "closing", False) and self.running:
                _LOG.warning(
                    "node %d could not report error upstream: %s",
                    self.rank,
                    report_exc,
                )

    def _send_root_or_up(self, pkt: Packet) -> None:
        if self._is_root:
            if self.deliver_up is not None:
                self.deliver_up(Envelope(self.rank, Direction.UPSTREAM, pkt))
        else:
            self.transport.send(self.rank, self._parent, Direction.UPSTREAM, pkt)

    # -- data plane -------------------------------------------------------------------
    def _handle_data_up(self, env: Envelope) -> None:
        packet: Packet = env.packet
        st = self.streams.get(packet.stream_id)
        if st is None:
            raise ProtocolError(
                f"upstream data for unknown stream {packet.stream_id} at node {self.rank}"
            )
        st.packets_in += 1
        trace = packet.trace
        if trace is not None:
            # Stamp the arrival time now; the hop completes (t_out, filter
            # name) when the wave this packet gates leaves the transform.
            packet.attach_trace(trace.mark_arrival(self.rank, self.clock()))
        packet.hop()
        batches = st.sync.push(packet, env.src, st.ctx)
        if packet.stream_id in self._timed_streams:
            # A push can open or close a delivery window; recompute the
            # min-deadline cache lazily on the next loop iteration.
            self._deadline_dirty = True
        for batch in batches:
            self._run_transform(st, batch)

    def _run_transform(self, st: StreamState, batch: list[Packet]) -> None:
        # Critical-path trace selection: of the traced inputs feeding
        # this wave, the latest arrival is what gated it — its context
        # (plus this node's hop) propagates on every output.
        trace_in = None
        for p in batch:
            t = p.trace
            if t is not None and (trace_in is None or t.t_latest > trace_in.t_latest):
                trace_in = t
        if _TEL.enabled:
            # Up-in arrivals are counted per released batch (one inc of
            # len(batch)) rather than per push: every pushed packet is
            # released through here exactly once (push / on_timer /
            # flush / recheck), so totals converge while the per-packet
            # hot path stays a single flag check.
            self._m_up_in.inc(len(batch))
            if st.m_filter_wall is not None:
                t0 = self.clock()
                outputs = st.transform.execute(batch, st.ctx)
                st.m_filter_wall.observe(self.clock() - t0)
                st.m_filter_calls.inc()
            else:
                outputs = st.transform.execute(batch, st.ctx)
        else:
            outputs = st.transform.execute(batch, st.ctx)
        if trace_in is not None and outputs:
            out_trace = trace_in.complete(st.spec.transform, self.clock())
            for out in outputs:
                out.attach_trace(out_trace)
        for out in outputs:
            self._emit_up(st, out)

    def _edge_vanished(self, dst: int) -> bool:
        """True when ``(self.rank, dst)`` is no longer an edge of the
        transport's *current* tree.

        A send can fail mid-recovery because this node is still routing
        on a topology the transport has already rebound away from (the
        reconfigure control packet is in flight).  Data lost to that
        window is the documented loss window of reference [2]; it is a
        race to be tolerated, not a node failure to be reported.
        """
        if getattr(self.transport, "rebinding", False):
            # Mid-rebind the new tree is visible before its repaired
            # connections exist; sends in that window are the loss the
            # recovery docs accept.
            return True
        topo: Topology | None = getattr(self.transport, "topology", None)
        if topo is None:
            return False
        if self.rank not in topo or dst not in topo:
            return True
        return topo.parent(dst) != self.rank and topo.parent(self.rank) != dst

    def _emit_up(self, st: StreamState, packet: Packet) -> None:
        st.packets_out += 1
        if _TEL.enabled:
            self._m_up_out.inc()
        if self._is_root:
            if self.deliver_up is not None:
                self.deliver_up(Envelope(self.rank, Direction.UPSTREAM, packet))
        else:
            try:
                self.transport.send(
                    self.rank, self._parent, Direction.UPSTREAM, packet
                )
            except (TransportError, TopologyError):
                if not self._edge_vanished(self._parent):
                    raise

    def _handle_data_down(self, env: Envelope) -> None:
        packet: Packet = env.packet
        st = self.streams.get(packet.stream_id)
        if st is None:
            raise ProtocolError(
                f"downstream data for unknown stream {packet.stream_id} at node {self.rank}"
            )
        if _TEL.enabled:
            self._m_down_in.inc()
        # NB: no per-hop mutation here — downstream packets are shared by
        # reference across siblings (counted references), so they must be
        # treated as immutable.
        if st.down_transform is not None:
            outputs = st.down_transform.execute([packet], st.ctx)
        else:
            outputs = [packet]
        for out in outputs:
            self._forward_down(out, st.covering)

    # -- send helpers -----------------------------------------------------------------
    def _forward_down(self, packet: Packet, children: Any) -> None:
        """Multicast one packet to ``children`` sharing its payload buffer.

        The shared :class:`~repro.core.packet.PayloadRef` is increffed
        once per extra recipient — MRNet's counted packet references: one
        payload object placed in multiple outgoing buffers.  The actual
        fan-out goes through :meth:`Transport.multicast` so transports
        can share per-packet work (the TCP transport serializes the wire
        frame exactly once for all k children).
        """
        kids = list(children)
        if not kids:
            return
        if _TEL.enabled:
            self._m_down_out.inc(len(kids))
        if len(kids) > 1:
            packet.payload_ref().incref(len(kids) - 1)
        try:
            if self._multicast is not None:
                self._multicast(self.rank, kids, Direction.DOWNSTREAM, packet)
            else:
                for c in kids:
                    self.transport.send(self.rank, c, Direction.DOWNSTREAM, packet)
        except (TransportError, TopologyError):
            # Tolerate sends racing a recovery rebind: if any recipient's
            # edge is gone from the transport's current tree, the whole
            # fan-out falls in the documented reconfiguration loss window.
            if all(not self._edge_vanished(c) for c in kids):
                raise

    # -- introspection -------------------------------------------------------------------
    def stream_stats(self) -> dict[int, tuple[int, int]]:
        """Mapping stream id -> (packets_in, packets_out) at this node."""
        return {
            sid: (st.packets_in, st.packets_out) for sid, st in self.streams.items()
        }
