"""Front-end application endpoint: dispatch of root-filter output.

The front-end process sits at the tree root.  Its root communication
process (a :class:`~repro.core.node.NodeRunner` at rank 0) hands final
upstream packets to :class:`FrontEnd.dispatch`, which routes them to the
owning :class:`~repro.core.stream.Stream` handle — data packets to the
stream's receive queue, close acknowledgements to its closed event, and
forwarded filter errors to every open stream (so a blocked ``recv``
surfaces the failure instead of hanging).
"""

from __future__ import annotations

import queue
from typing import TYPE_CHECKING

from ..analysis.locks import make_lock
from .errors import FilterError
from .events import (
    CONTROL_STREAM_ID,
    Envelope,
    TAG_ERROR,
    TAG_STREAM_CLOSE,
    TAG_TELEMETRY,
)
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .stream import Stream

__all__ = ["FrontEnd"]


class FrontEnd:
    """Stream registry + upstream dispatcher for the root application."""

    def __init__(self) -> None:
        self._streams: dict[int, "Stream"] = {}
        self._lock = make_lock("frontend_streams")
        self.errors: list[FilterError] = []
        #: Tree-aggregated TAG_TELEMETRY replies, consumed by
        #: :meth:`repro.core.network.Network.telemetry_snapshot`.
        self.telemetry_replies: "queue.Queue[Packet]" = queue.Queue()

    def register(self, stream: "Stream") -> None:
        with self._lock:
            self._streams[stream.stream_id] = stream

    def unregister(self, stream_id: int) -> None:
        with self._lock:
            self._streams.pop(stream_id, None)

    def get(self, stream_id: int) -> "Stream | None":
        with self._lock:
            return self._streams.get(stream_id)

    def open_streams(self) -> list["Stream"]:
        with self._lock:
            return [s for s in self._streams.values() if not s.is_closed]

    def dispatch(self, env: Envelope) -> None:
        """Route one envelope delivered by the root communication process.

        Runs on the root node's thread; must stay non-blocking.
        """
        packet: Packet = env.packet
        if packet.stream_id == CONTROL_STREAM_ID:
            if packet.tag == TAG_STREAM_CLOSE:
                (stream_id,) = packet.values
                stream = self.get(stream_id)
                if stream is not None:
                    stream._mark_closed()
            elif packet.tag == TAG_ERROR:
                rank, exc_type, msg = packet.values
                err = FilterError(f"node {rank}: {exc_type}: {msg}")
                self.errors.append(err)
                for stream in self.open_streams():
                    stream._deliver_error(err)
            elif packet.tag == TAG_TELEMETRY:
                # Merged (req_id, snapshot) from the root's in-tree gather.
                self.telemetry_replies.put(packet)
            # other control noise is ignored at the application layer
            return
        stream = self.get(packet.stream_id)
        if stream is not None:
            stream._deliver(packet)
