"""Front-end stream handles.

MRNet applications communicate over *streams* — "virtual channels"
binding a subset of back-ends to a (transformation, synchronization)
filter pair.  Multiple streams coexist on one tree and may overlap in
membership; each keeps independent filter state at every node.

:class:`Stream` is the front-end's handle: ``send`` multicasts downstream
to the member back-ends, ``recv`` yields the aggregated upstream packets
emerging from the root filter, and ``close`` runs the loss-free
tear-down handshake (close broadcast down, per-subtree flush, acks up).
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from .errors import FilterError, StreamClosedError
from .events import (
    CONTROL_STREAM_ID,
    Direction,
    Envelope,
    StreamSpec,
    TAG_STREAM_CLOSE,
)
from .packet import Packet

__all__ = ["Stream"]


class Stream:
    """One virtual channel between the front-end and member back-ends."""

    def __init__(self, network: Any, spec: StreamSpec):
        self.network = network
        self.spec = spec
        self.stream_id = spec.stream_id
        self.members = spec.members
        self._recv_q: "queue.Queue[Packet | Exception]" = queue.Queue()
        self._closed = threading.Event()
        self._close_acked = threading.Event()

    # -- called by the front-end dispatcher (root node thread) ------------------
    def _deliver(self, packet: Packet) -> None:
        self._recv_q.put(packet)

    def _deliver_error(self, exc: Exception) -> None:
        self._recv_q.put(exc)

    def _mark_closed(self) -> None:
        self._close_acked.set()
        self._closed.set()

    # -- application API -------------------------------------------------------
    def send(self, tag: int, fmt: str, *values: Any) -> None:
        """Multicast one packet downstream to all member back-ends."""
        if self._closed.is_set():
            raise StreamClosedError(f"stream {self.stream_id} is closed")
        pkt = Packet(self.stream_id, tag, fmt, values, src=-1)
        self.network._inject_down(pkt)

    def recv(self, timeout: float | None = None) -> Packet:
        """Receive the next aggregated packet from the root filter.

        Raises:
            TimeoutError: nothing arrived in ``timeout`` seconds.
            FilterError: a filter failed somewhere in the tree (the
                error is forwarded to the front-end).
            StreamClosedError: the stream closed and the queue drained.
        """
        step = 0.1
        remaining = timeout
        while True:
            if self._closed.is_set() and self._recv_q.empty():
                raise StreamClosedError(f"stream {self.stream_id} is closed")
            try:
                item = self._recv_q.get(
                    timeout=step if remaining is None else min(step, remaining)
                )
            except queue.Empty:
                if remaining is not None:
                    remaining -= step
                    if remaining <= 0:
                        raise TimeoutError(
                            f"stream {self.stream_id}: no packet within {timeout}s"
                        ) from None
                continue
            if isinstance(item, Exception):
                raise item
            return item

    def recv_nowait(self) -> Packet | None:
        """Non-blocking receive; None if nothing is queued."""
        try:
            item = self._recv_q.get_nowait()
        except queue.Empty:
            return None
        if isinstance(item, Exception):
            raise item
        return item

    def drain(self, timeout: float | None = None) -> list[Packet]:
        """Collect packets until the stream's close ack (then return all).

        Convenience for the common "close then read every remaining
        aggregate" pattern; must be called *after* :meth:`close_async`.
        """
        out: list[Packet] = []
        if not self._close_acked.wait(timeout) and timeout is not None:
            raise TimeoutError(f"stream {self.stream_id}: close not acked")
        while True:
            try:
                item = self._recv_q.get_nowait()
            except queue.Empty:
                return out
            if isinstance(item, Exception):
                raise item
            out.append(item)

    def iter(self, timeout: float | None = None):
        """Iterate over aggregated packets until the stream closes.

        Convenience for consumers of unbounded streams (monitoring,
        epoch queries): yields packets as they arrive; ``timeout``
        bounds each individual wait.  Stops cleanly at close.
        """
        while True:
            try:
                yield self.recv(timeout=timeout)
            except StreamClosedError:
                return

    def close_async(self) -> None:
        """Initiate the close handshake without waiting for the ack."""
        if self._closed.is_set():
            return
        pkt = Packet(
            CONTROL_STREAM_ID, TAG_STREAM_CLOSE, "%d", (self.stream_id,)
        )
        self.network._inject_down(pkt)

    def close(self, timeout: float | None = 10.0) -> None:
        """Close the stream and wait for every subtree to flush and ack."""
        if self._closed.is_set():
            return
        self.close_async()
        if not self._close_acked.wait(timeout):
            raise TimeoutError(f"stream {self.stream_id}: close not acked in {timeout}s")
        self._closed.set()

    @property
    def is_closed(self) -> bool:
        return self._closed.is_set()

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *exc: Any) -> None:
        if not self._closed.is_set():
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Stream(id={self.stream_id}, members={len(self.members)}, "
            f"transform={self.spec.transform!r}, sync={self.spec.sync!r})"
        )
