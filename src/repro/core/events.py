"""Control-plane protocol constants and event records.

The TBON control plane rides on the same packet mechanism as application
data: control packets use the reserved stream id 0 and tags below
:data:`FIRST_APPLICATION_TAG`.  Communication processes interpret these
packets to build per-stream routing state, load filters dynamically, and
shut the tree down; everything else is forwarded untouched.

Reserved control tags (keep in sync with the constants below and the
table in docs/PROTOCOL.md §4):

====  ====================  ===========================================
 tag  constant              purpose
====  ====================  ===========================================
   1  TAG_STREAM_CREATE     instantiate per-stream filter state
   2  TAG_STREAM_CLOSE      loss-free close handshake (down + up ack)
   3  TAG_FILTER_LOAD       resolve a filter by name at every node
   4  TAG_SHUTDOWN          halt the event loops
   5  TAG_TOPOLOGY_ATTACH   adopt reconfigured routing state (recovery)
   6  TAG_TOPOLOGY_DETACH   announce a departing subtree
   7  TAG_HEARTBEAT         liveness probe
   8  TAG_CLOCK_PROBE       clock-offset measurement request
   9  TAG_CLOCK_REPLY       clock-offset measurement reply
  10  TAG_ERROR             error report routed to the front-end
  11  TAG_P2P               back-end to back-end routing through the tree
  12  TAG_TELEMETRY         in-tree stats reduction (request down,
                            merged registry snapshots up)
====  ====================  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "CONTROL_STREAM_ID",
    "FIRST_STREAM_ID",
    "TAG_STREAM_CREATE",
    "TAG_STREAM_CLOSE",
    "TAG_FILTER_LOAD",
    "TAG_SHUTDOWN",
    "TAG_TOPOLOGY_ATTACH",
    "TAG_TOPOLOGY_DETACH",
    "TAG_HEARTBEAT",
    "TAG_CLOCK_PROBE",
    "TAG_CLOCK_REPLY",
    "TAG_ERROR",
    "TAG_P2P",
    "TAG_TELEMETRY",
    "FIRST_APPLICATION_TAG",
    "Direction",
    "Envelope",
    "StreamSpec",
]

#: Stream id reserved for control messages.
CONTROL_STREAM_ID = 0
#: First id handed out to application streams.
FIRST_STREAM_ID = 1

# Reserved control tags (all below FIRST_APPLICATION_TAG).
TAG_STREAM_CREATE = 1
TAG_STREAM_CLOSE = 2
TAG_FILTER_LOAD = 3
TAG_SHUTDOWN = 4
TAG_TOPOLOGY_ATTACH = 5
TAG_TOPOLOGY_DETACH = 6
TAG_HEARTBEAT = 7
TAG_CLOCK_PROBE = 8
TAG_CLOCK_REPLY = 9
TAG_ERROR = 10
TAG_P2P = 11
TAG_TELEMETRY = 12

#: Application tags must be >= this value.
FIRST_APPLICATION_TAG = 100


class Direction(Enum):
    """Which way a packet is travelling through the tree."""

    UPSTREAM = "up"      # toward the front-end (reduction path)
    DOWNSTREAM = "down"  # toward the back-ends (multicast path)

    @property
    def wire_code(self) -> int:
        """Single-byte code used in the socket transports' frame header.

        The frame layout (docs/PROTOCOL.md §2) is
        ``u32 length | u8 direction | i32 src``; this is the ``u8``:
        0 = upstream, 1 = downstream.  Both the threaded TCP transport
        and the reactor transport encode with this property and decode
        with :meth:`from_wire`, so the two implementations cannot drift.
        """
        return 0 if self is Direction.UPSTREAM else 1

    @classmethod
    def from_wire(cls, code: int) -> "Direction":
        """Inverse of :attr:`wire_code` for frame decoding."""
        if code == 0:
            return cls.UPSTREAM
        if code == 1:
            return cls.DOWNSTREAM
        from .errors import ProtocolError

        raise ProtocolError(f"unknown wire direction code {code!r}")


@dataclass(frozen=True)
class Envelope:
    """One in-flight message on a FIFO channel.

    Attributes:
        src: rank of the sending process (-1 for the application layer
            injecting at an endpoint).
        direction: travel direction relative to the tree.
        packet: the application-level packet (control or data).
    """

    src: int
    direction: Direction
    packet: "object"  # Packet; typed loosely to avoid an import cycle


@dataclass(frozen=True)
class StreamSpec:
    """Wire-level description of a stream, broadcast at creation time.

    Attributes:
        stream_id: unique id (>= :data:`FIRST_STREAM_ID`).
        members: sorted tuple of back-end ranks on the stream.
        transform: registered name of the transformation filter.
        sync: registered name of the synchronization filter.
        transform_params: keyword parameters for the transformation
            filter (must be picklable; sent once at stream creation).
        sync_params: keyword parameters for the synchronization filter
            (e.g. ``{"window": 0.05}`` for ``time_out``).
        down_transform: optional transformation filter applied to
            *downstream* packets at every node — the paper's planned
            bidirectional-filter extension ("we plan to extend MRNet so
            that a filter can propagate information along a stream in
            either direction").  Empty string disables it.
    """

    stream_id: int
    members: tuple[int, ...]
    transform: str
    sync: str
    transform_params: tuple[tuple[str, object], ...] = ()
    sync_params: tuple[tuple[str, object], ...] = ()
    down_transform: str = ""

    def transform_kwargs(self) -> dict:
        return dict(self.transform_params)

    def sync_kwargs(self) -> dict:
        return dict(self.sync_params)
