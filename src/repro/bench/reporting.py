"""Tabular reporting for benchmark harnesses.

The paper reports one figure and several in-prose numbers; every bench
in ``benchmarks/`` prints its reproduction as an aligned table (rows =
x-axis points, columns = series) so EXPERIMENTS.md can quote
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["SeriesTable", "fmt_seconds"]


def fmt_seconds(v: float) -> str:
    """Human-scaled seconds (``123 ms``, ``4.56 s``...)."""
    if v != v:  # NaN
        return "-"
    if v < 1e-3:
        return f"{v * 1e6:.1f} us"
    if v < 1.0:
        return f"{v * 1e3:.1f} ms"
    return f"{v:.2f} s"


@dataclass
class SeriesTable:
    """An x-axis plus named series, printable as an aligned table.

    Example::

        t = SeriesTable("scale", ["single", "flat", "deep"])
        t.add_row(16, [5.6, 0.43, 0.37])
        print(t.render(value_fmt=fmt_seconds))
    """

    x_name: str
    series_names: Sequence[str]
    rows: list[tuple[Any, list[Any]]] = field(default_factory=list)
    title: str = ""

    def add_row(self, x: Any, values: Sequence[Any]) -> None:
        if len(values) != len(self.series_names):
            raise ValueError(
                f"expected {len(self.series_names)} values, got {len(values)}"
            )
        self.rows.append((x, list(values)))

    def series(self, name: str) -> list[Any]:
        """One series' values, in row order."""
        idx = list(self.series_names).index(name)
        return [vals[idx] for _x, vals in self.rows]

    def xs(self) -> list[Any]:
        return [x for x, _vals in self.rows]

    def render(self, value_fmt=str) -> str:
        header = [self.x_name, *self.series_names]
        body = [
            [str(x)] + [value_fmt(v) for v in vals] for x, vals in self.rows
        ]
        widths = [
            max(len(row[i]) for row in [header] + body)
            for i in range(len(header))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
