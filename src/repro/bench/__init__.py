"""Benchmark harness: experiment drivers and table reporting."""

from .harness import (
    Fig4Result,
    run_fig4,
    run_logscale_table,
    run_nodecost_table,
    run_startup_table,
    run_throughput_table,
)
from .reporting import SeriesTable, fmt_seconds

__all__ = [
    "Fig4Result",
    "run_fig4",
    "run_startup_table",
    "run_throughput_table",
    "run_nodecost_table",
    "run_logscale_table",
    "SeriesTable",
    "fmt_seconds",
]
