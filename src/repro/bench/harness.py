"""Shared experiment drivers for the benchmark suite.

One function per experiment id from DESIGN.md's index; ``benchmarks/``
wraps these in pytest-benchmark fixtures and asserts the shape criteria,
and EXPERIMENTS.md records their printed tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.topology import flat_topology, internal_node_overhead
from ..simulate.calibrate import MeanShiftCostModel
from ..simulate.simnet import SimCosts
from ..simulate.workload import (
    FIG4_SCALES,
    meanshift_deep_topology,
    meanshift_sim,
    paradyn_report_stream,
)
from ..telemetry.registry import (
    GLOBAL,
    Registry,
    TELEMETRY,
    empty_snapshot,
    snapshot_delta,
)
from ..tools.profiler import simulate_startup
from .reporting import SeriesTable, fmt_seconds

__all__ = [
    "run_fig4",
    "run_startup_table",
    "run_throughput_table",
    "run_nodecost_table",
    "run_logscale_table",
    "Fig4Result",
    "instrument_capture",
]


class instrument_capture:
    """Wall time + telemetry instrument deltas around a benchmark section.

    Benchmarks wrap their timed workloads in this so their recorded JSON
    carries instrument deltas (packets, bytes, frame-cache hits) next to
    the timings — the numbers that explain *why* a timing moved::

        with instrument_capture() as cap:
            run_workload()
        results["telemetry"] = cap.as_dict()

    Captures the process-wide :data:`~repro.telemetry.registry.GLOBAL`
    registry by default; pass a node's or back-end's own ``Registry`` to
    scope the delta.  With telemetry disabled the delta is empty and
    ``as_dict()`` reports ``{"enabled": False}`` — the capture itself
    never enables instrumentation, so disabled benchmarks measure the
    true disabled fast path.
    """

    def __init__(self, registry: Registry | None = None) -> None:
        self.registry = GLOBAL if registry is None else registry
        self.elapsed = 0.0
        self.delta: dict = empty_snapshot()
        self.enabled = False

    def __enter__(self) -> "instrument_capture":
        self.enabled = TELEMETRY.enabled
        self._before = self.registry.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self.delta = snapshot_delta(self._before, self.registry.snapshot())

    def counter(self, key: str) -> int:
        """Delta of one counter by full key (``name{label="v"}``)."""
        return int(self.delta["counters"].get(key, 0))

    def as_dict(self) -> dict:
        """JSON-friendly summary: counter deltas + histogram (count, sum)."""
        return {
            "enabled": self.enabled,
            "elapsed_s": self.elapsed,
            "counters": dict(self.delta["counters"]),
            "histograms": {
                key: {"count": h["count"], "sum": h["sum"]}
                for key, h in self.delta["histograms"].items()
            },
        }


@dataclass
class Fig4Result:
    """Figure 4 reproduction: times per scale for the three series."""

    table: SeriesTable
    single: list[float]
    flat: list[float]
    deep: list[float]

    def check_shape(self) -> list[str]:
        """Verify the paper's qualitative claims; returns violations."""
        xs = np.asarray(self.table.xs(), dtype=float)
        single = np.asarray(self.single)
        flat = np.asarray(self.flat)
        deep = np.asarray(self.deep)
        problems = []
        # Single-node series is linear in scale (R^2 > 0.99).
        coeffs = np.polyfit(xs, single, 1)
        resid = single - np.polyval(coeffs, xs)
        r2 = 1 - resid.var() / single.var()
        if r2 < 0.99:
            problems.append(f"single-node series not linear (R^2={r2:.3f})")
        # Distribution beats the single node everywhere.
        if not np.all(flat < single):
            problems.append("flat tree does not beat single node everywhere")
        if not np.all(deep < single):
            problems.append("deep tree does not beat single node everywhere")
        # Flat bottleneck emerges between 64 and 128 leaves.
        i64 = list(xs).index(64)
        if flat[-1] < 3 * flat[i64]:
            problems.append(
                f"flat front-end bottleneck missing "
                f"(t(324)={flat[-1]:.2f} < 3*t(64)={3 * flat[i64]:.2f})"
            )
        # Deep trees stay near-constant through 64 leaves...
        if max(deep[: i64 + 1]) > 2 * min(deep[: i64 + 1]):
            problems.append("deep-tree series not near-constant through 64")
        # ...and beat flat at scale >= 128.
        if not np.all(deep[i64 + 1 :] < flat[i64 + 1 :]):
            problems.append("deep tree does not beat flat beyond 64 leaves")
        return problems


def run_fig4(
    model: MeanShiftCostModel,
    scales: tuple[int, ...] = FIG4_SCALES,
    costs: SimCosts | None = None,
) -> Fig4Result:
    """Experiment **Fig. 4**: mean-shift times for single/flat/deep."""
    table = SeriesTable(
        "scale", ["single", "flat", "deep"], title="Fig. 4 — mean-shift processing times"
    )
    single, flat, deep = [], [], []
    for n in scales:
        t_single = model.single_node_time(n)
        t_flat = meanshift_sim(flat_topology(n), model, costs).run().completion_time
        t_deep = (
            meanshift_sim(meanshift_deep_topology(n), model, costs)
            .run()
            .completion_time
        )
        single.append(t_single)
        flat.append(t_flat)
        deep.append(t_deep)
        table.add_row(n, [t_single, t_flat, t_deep])
    return Fig4Result(table=table, single=single, flat=flat, deep=deep)


def run_startup_table(
    parse_cost_per_byte: float | None = None,
    daemon_counts: tuple[int, ...] = (32, 128, 512),
) -> SeriesTable:
    """Experiment **T-startup**: Paradyn startup, one-to-many vs tree."""
    table = SeriesTable(
        "daemons",
        ["one_to_many", "tbon", "speedup"],
        title="T-startup — tool startup time (s)",
    )
    for n in daemon_counts:
        one = simulate_startup(
            n, aggregate=False, parse_cost_per_byte=parse_cost_per_byte
        ).total_time
        tree = simulate_startup(
            n, aggregate=True, parse_cost_per_byte=parse_cost_per_byte
        ).total_time
        table.add_row(n, [one, tree, one / tree])
    return table


def run_throughput_table(
    daemon_counts: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
    duration: float = 10.0,
) -> SeriesTable:
    """Experiment **T-throughput**: front-end saturation vs daemon count."""
    table = SeriesTable(
        "daemons",
        ["flat_util", "flat_saturated", "tree_util", "tree_saturated"],
        title="T-throughput — front-end load under continuous reports",
    )
    for n in daemon_counts:
        flat = paradyn_report_stream(n, aggregate=False, duration=duration).run()
        tree = paradyn_report_stream(n, aggregate=True, duration=duration).run()
        table.add_row(
            n,
            [
                round(flat.frontend_utilization, 3),
                flat.saturated,
                round(tree.frontend_utilization, 3),
                tree.saturated,
            ],
        )
    return table


def run_nodecost_table(
    fanout: int = 16,
    backend_counts: tuple[int, ...] = (16, 256, 1024, 4096),
) -> SeriesTable:
    """Experiment **T-nodecost**: internal-node overhead of deep trees."""
    table = SeriesTable(
        "backends",
        ["internal_nodes", "overhead_pct"],
        title=f"T-nodecost — internal nodes at fan-out {fanout}",
    )
    for n in backend_counts:
        extra, frac = internal_node_overhead(fanout, n)
        table.add_row(n, [extra, round(100 * frac, 2)])
    return table


def run_logscale_table(
    sizes: tuple[int, ...] = (16, 64, 256, 1024, 4096),
    fanout: int = 16,
    costs: SimCosts | None = None,
) -> SeriesTable:
    """Experiment **A-logscale**: reduction latency, flat vs bounded fan-out.

    A fixed tiny per-leaf payload isolates communication/consolidation
    cost: flat grows linearly in N (serial front-end ingest), trees grow
    with depth × fan-out ~ log N.
    """
    from ..core.topology import deep_topology
    from ..simulate.simnet import SimTBON, WaveMessage

    costs = costs or SimCosts()
    payload = 1024.0

    def leaf_fn(rank: int):
        return 0.0, WaveMessage(nbytes=payload, meta=1)

    def merge_fn(rank: int, msgs):
        # A trivial (constant-per-message) reduction.
        return 2e-6 * len(msgs), WaveMessage(nbytes=payload, meta=sum(m.meta for m in msgs))

    table = SeriesTable(
        "n", ["flat", "tree", "ratio"], title="A-logscale — tiny-payload reduction latency"
    )
    for n in sizes:
        t_flat = SimTBON(flat_topology(n), costs, leaf_fn, merge_fn).run().completion_time
        t_tree = (
            SimTBON(deep_topology(n, fanout), costs, leaf_fn, merge_fn)
            .run()
            .completion_time
        )
        table.add_row(n, [t_flat, t_tree, round(t_flat / t_tree, 2)])
    return table
