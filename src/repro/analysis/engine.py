"""The ``tboncheck`` analysis engine: file walking, two passes, reporting.

Pass 1 parses every file and builds the project-wide class index (so
filter-protocol rules see subclass relationships that cross module
boundaries — ``class MyFilter(HistogramFilter)`` in one file, the
``TransformationFilter`` ancestry in another).  Pass 2 runs the rule
visitors per module and applies ``# tbon:`` pragma suppression.

Used by ``python -m repro.cli tboncheck <paths...>`` and by the test
suite's zero-findings gate over ``src/``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from .findings import Finding, PragmaTable, RULES, parse_pragmas
from .rules import build_index, analyze_module

__all__ = ["AnalysisResult", "analyze_paths", "iter_python_files", "main"]

#: The one module allowed to mutate Packet frame internals (hop(), memo).
_PACKET_MODULE = os.path.join("core", "packet.py")

#: The package whose Registry legitimately constructs instrument classes.
_TELEMETRY_PACKAGE = os.path.join("repro", "telemetry") + os.sep

#: The one module allowed to touch the ``_chaos_*`` fault hooks (TB701).
#: Matched on the exact path suffix — NOT the basename — so the rule's
#: fixture files (tests/analysis_fixtures/fx_chaos_hooks.py) stay in
#: scope and the rule is testable like every other one.
_CHAOS_MODULE = os.path.join("reliability", "chaos.py")


def _is_reactor_module(path: str) -> bool:
    """TB601 scope: modules whose basename names the reactor.

    Matching on the basename (rather than the exact transport path)
    keeps the rule's fixture files in scope too, so the rule is testable
    like every other one.
    """
    return "reactor" in os.path.basename(path)


@dataclass
class AnalysisResult:
    """Findings plus bookkeeping from one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [f.format() for f in self.findings]
        lines.append(
            f"tboncheck: {len(self.findings)} finding(s) in "
            f"{self.files_analyzed} file(s)"
        )
        return "\n".join(lines)


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
        else:
            out.add(path)
    return sorted(out)


def analyze_paths(paths: list[str]) -> AnalysisResult:
    """Run every rule over ``paths`` (files and/or directory trees)."""
    result = AnalysisResult()
    files = iter_python_files(paths)
    trees: dict[str, ast.Module] = {}
    pragma_tables: dict[str, PragmaTable] = {}

    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            trees[path] = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            result.findings.append(Finding("TB001", path, 1, 1, str(exc)))
            continue
        pragma_tables[path] = parse_pragmas(source)

    index = build_index(trees)
    for path, tree in trees.items():
        result.files_analyzed += 1
        result.findings.extend(
            analyze_module(
                path,
                tree,
                pragma_tables[path],
                index,
                skip_packet_mutation=path.endswith(_PACKET_MODULE),
                skip_telemetry_instruments=_TELEMETRY_PACKAGE in path,
                check_reactor_io=_is_reactor_module(path),
                check_chaos_hooks=not path.endswith(_CHAOS_MODULE),
            )
        )
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def list_rules() -> str:
    """Human-readable rule catalog (for ``tboncheck --list-rules``)."""
    width = max(len(r) for r in RULES)
    return "\n".join(f"{rule:<{width}}  {desc}" for rule, desc in sorted(RULES.items()))


def main(paths: list[str], *, list_rules_only: bool = False) -> int:
    """CLI entry point; returns the process exit code (0 = clean)."""
    if list_rules_only:
        print(list_rules())
        return 0
    result = analyze_paths(paths)
    print(result.render())
    return 0 if result.ok else 1
