"""TBON-aware AST lint rules.

Each rule encodes an invariant the paper (or docs/PROTOCOL.md) relies on
but a generic linter cannot see:

* **TB1xx — wire format.**  Packet payloads are described by MRNet-style
  format strings (``"%d %f %as"``, Section 2.1).  A bad directive or an
  arity/type mismatch between the format and the packed values is a
  guaranteed runtime :class:`~repro.core.errors.SerializationError` —
  and on the *receiving* side of a stream it surfaces as a corrupted
  reduction, far from the offending call site.  These rules validate
  every format-string literal at ``pack_payload``/``unpack_payload``/
  ``Packet``/``make_packet``/``*.send(...)`` call sites against the real
  directive table in :mod:`repro.core.serialization` (the checker *is*
  the production parser, so the two can never drift).
* **TB2xx — filter protocol.**  "A filter can be any function that
  inputs a set of packets and outputs a single packet"; the middleware
  drives filters through a fixed protocol (``transform``/``execute``,
  ``push``, ``timed``).  A subclass missing its override dies at the
  first wave; a timed sync filter that forgets ``timed = True`` *mostly
  works* — until the event loop's timer fast path skips it and held
  packets never release.  TB204 enforces docs/PROTOCOL.md §5's
  mutation contract: header and payload attributes of a
  :class:`~repro.core.packet.Packet` are frozen after construction
  because the serialized frame is memoized and shared across a
  multicast fan-out; one stray ``pkt.tag = ...`` after first
  serialization silently forks what children see.
* **TB3xx — lock discipline.**  Attributes shared between the node
  event loop, transport reader threads and the application are declared
  with ``# tbon: lock=<name>`` at their initialising assignment; every
  other write must sit inside ``with self.<name>:`` (or carry an
  explicit ``# tbon: lock-free(<reason>)``).
* **TB4xx — exception hygiene.**  Data-plane errors must route through
  ``node.error``/logging, never vanish in a broad ``except``.  A
  handler that binds and uses the exception, re-raises, or calls a
  logger counts as reporting; ``except Exception: pass`` does not.
* **TB5xx — telemetry discipline.**  Instruments must be created
  through a :class:`repro.telemetry.registry.Registry` (its keyed
  get-or-create store is what ``snapshot()`` serializes); a directly
  constructed ``Counter``/``Gauge``/``Histogram`` records data the
  in-tree stats reduction can never see.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from ..core.errors import FormatStringError
from ..core.serialization import parse_format
from .findings import Finding, PragmaTable

__all__ = ["ClassIndex", "build_index", "analyze_module"]

# -- project-wide class index ---------------------------------------------------

_TRANSFORM_ROOT = "TransformationFilter"
_SYNC_ROOT = "SynchronizationFilter"


class ClassInfo:
    """Shape of one class definition (for cross-module hierarchy checks)."""

    __slots__ = ("name", "bases", "methods", "class_consts", "path", "line")

    def __init__(self, node: ast.ClassDef, path: str) -> None:
        self.name = node.name
        self.path = path
        self.line = node.lineno
        self.bases = tuple(_base_name(b) for b in node.bases)
        self.methods = frozenset(
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        consts: dict[str, Any] = {}
        for item in node.body:
            if isinstance(item, ast.Assign) and isinstance(item.value, ast.Constant):
                for tgt in item.targets:
                    if isinstance(tgt, ast.Name):
                        consts[tgt.id] = item.value.value
            elif (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and isinstance(item.value, ast.Constant)
            ):
                consts[item.target.id] = item.value.value
        self.class_consts = consts


def _base_name(node: ast.expr) -> str:
    """The last dotted segment of a base-class expression, or ''."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return ""


class ClassIndex:
    """Name -> :class:`ClassInfo` across every analyzed file.

    Hierarchy queries resolve base names transitively through the index;
    classes whose bases are unknown (imported from outside the analyzed
    tree) terminate the walk, so the rules only fire on provable
    relationships.
    """

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}

    def add(self, info: ClassInfo) -> None:
        # First definition wins on (unlikely) simple-name collisions.
        self.classes.setdefault(info.name, info)

    def _base_names(self, name: str) -> set[str]:
        """All transitive base names of ``name`` (known and unknown)."""
        seen: set[str] = set()
        queue = list(self.classes[name].bases) if name in self.classes else []
        while queue:
            base = queue.pop(0)
            if not base or base in seen:
                continue
            seen.add(base)
            if base in self.classes:
                queue.extend(self.classes[base].bases)
        return seen

    def _ancestry(self, name: str) -> Iterator[ClassInfo]:
        """Known ancestors of ``name`` (excluding itself), BFS order."""
        seen = {name}
        queue = list(self.classes[name].bases) if name in self.classes else []
        while queue:
            base = queue.pop(0)
            if base in seen or base not in self.classes:
                continue
            seen.add(base)
            info = self.classes[base]
            yield info
            queue.extend(info.bases)

    def is_subclass(self, name: str, root: str) -> bool:
        """True when ``root`` appears anywhere in the transitive base names.

        The root class itself need not be part of the analyzed file set —
        ``class F(TransformationFilter)`` is recognized even when only
        ``F``'s module is analyzed, because the *name* terminates the walk.
        """
        return root in self._base_names(name)

    def chain_defines(self, name: str, methods: tuple[str, ...], root: str) -> bool:
        """Does ``name`` or any ancestor *below* ``root`` define one of ``methods``?"""
        infos = [self.classes[name]] if name in self.classes else []
        infos += [i for i in self._ancestry(name) if i.name != root]
        return any(m in info.methods for info in infos for m in methods)

    def chain_const(self, name: str, const: str, root: str) -> Any:
        """The nearest class-level constant ``const`` below ``root``, or None."""
        infos = [self.classes[name]] if name in self.classes else []
        infos += [i for i in self._ancestry(name) if i.name != root]
        for info in infos:
            if const in info.class_consts:
                return info.class_consts[const]
        return None


def build_index(trees: dict[str, ast.Module]) -> ClassIndex:
    index = ClassIndex()
    for path, tree in trees.items():
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                index.add(ClassInfo(node, path))
    return index


# -- TB1xx: wire-format validation ----------------------------------------------

#: func name -> index of the format-string argument; values follow per-site.
_PACK_LIKE = {"pack_payload": 0, "validate_values": 0, "payload_nbytes": 0}
_UNPACK_LIKE = {"unpack_payload": 0}
_SEND_METHODS = {"send", "send_p2p"}


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _const_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _literal_value(node: ast.expr) -> tuple[bool, Any]:
    """(known, value) for constants, including negated numeric literals."""
    if isinstance(node, ast.Constant):
        return True, node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
        and not isinstance(node.operand.value, bool)
    ):
        return True, -node.operand.value
    return False, None


def _literal_type_error(code: str, value: Any) -> str | None:
    """Mirror of the runtime checkers for values knowable at lint time."""
    if code == "d":
        if isinstance(value, bool) or not isinstance(value, int):
            return f"%d expects an int, got {type(value).__name__}"
        if not -(2**63) <= value < 2**63:
            return f"%d value {value} out of signed 64-bit range"
    elif code == "ud":
        if isinstance(value, bool) or not isinstance(value, int):
            return f"%ud expects an int, got {type(value).__name__}"
        if not 0 <= value < 2**64:
            return f"%ud value {value} out of unsigned 64-bit range"
    elif code == "f":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"%f expects a float, got {type(value).__name__}"
    elif code == "s":
        if not isinstance(value, str):
            return f"%s expects a str, got {type(value).__name__}"
    elif code == "c":
        if not isinstance(value, str) or len(value) != 1:
            return f"%c expects a 1-character str, got {value!r}"
    elif code == "b":
        if not isinstance(value, bool):
            return f"%b expects a bool, got {type(value).__name__}"
    elif code == "ac":
        if not isinstance(value, (bytes, bytearray)):
            return f"%ac expects bytes, got {type(value).__name__}"
    return None


class _WireFormatVisitor(ast.NodeVisitor):
    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, node.lineno, node.col_offset + 1, message)
        )

    def _check_fmt(self, fmt_node: ast.expr) -> tuple[Any, ...] | None:
        """Validate a literal format string; returns directives or None."""
        fmt = _const_str(fmt_node)
        if fmt is None:
            return None
        try:
            return parse_format(fmt)
        except FormatStringError as exc:
            self._flag("TB101", fmt_node, str(exc))
            return None

    def _check_values(
        self,
        fmt_node: ast.expr,
        directives: tuple[Any, ...],
        value_nodes: list[ast.expr],
        countable: bool,
    ) -> None:
        fmt = _const_str(fmt_node)
        if countable and len(value_nodes) != len(directives):
            self._flag(
                "TB102",
                fmt_node,
                f"format {fmt!r} expects {len(directives)} values, "
                f"call packs {len(value_nodes)}",
            )
            return
        for d, node in zip(directives, value_nodes):
            known, value = _literal_value(node)
            if not known:
                continue
            err = _literal_type_error(d.code, value)
            if err:
                self._flag("TB103", node, err)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        args = node.args
        if name in _PACK_LIKE and len(args) >= 2:
            directives = self._check_fmt(args[0])
            if directives is not None:
                values = args[1]
                if isinstance(values, (ast.Tuple, ast.List)) and not any(
                    isinstance(e, ast.Starred) for e in values.elts
                ):
                    self._check_values(args[0], directives, list(values.elts), True)
        elif name in _UNPACK_LIKE and args:
            self._check_fmt(args[0])
        elif name == "Packet" and len(args) >= 4:
            directives = self._check_fmt(args[2])
            if directives is not None:
                values = args[3]
                if isinstance(values, (ast.Tuple, ast.List)) and not any(
                    isinstance(e, ast.Starred) for e in values.elts
                ):
                    self._check_values(args[2], directives, list(values.elts), True)
        elif name == "make_packet" and len(args) >= 3:
            directives = self._check_fmt(args[2])
            if directives is not None:
                tail = args[3:]
                countable = not any(isinstance(e, ast.Starred) for e in tail)
                self._check_values(args[2], directives, list(tail), countable)
        elif name in _SEND_METHODS and isinstance(node.func, ast.Attribute):
            # BackEnd.send(stream_id, tag, fmt, *v) / Stream.send(tag, fmt, *v)
            # / send_p2p(dst, tag, fmt, *v): locate the first literal that
            # looks like a format string; everything after it is payload.
            for i, arg in enumerate(args):
                s = _const_str(arg)
                if s is not None and s.lstrip().startswith("%"):
                    directives = self._check_fmt(arg)
                    if directives is not None:
                        tail = args[i + 1 :]
                        countable = not any(
                            isinstance(e, ast.Starred) for e in tail
                        )
                        self._check_values(arg, directives, list(tail), countable)
                    break
        self.generic_visit(node)


# -- TB2xx: filter protocol -----------------------------------------------------

#: Packet attributes frozen after construction (docs/PROTOCOL.md §5).
#: ``trace`` has a sanctioned mutator (``Packet.attach_trace``, which
#: invalidates the frame memo); direct assignment is still a violation.
_PACKET_FROZEN_ATTRS = frozenset(
    {
        "stream_id",
        "tag",
        "fmt",
        "src",
        "hops",
        "seq",
        "payload",
        "trace",
        "_values",
        "_ref",
        "_frame",
        "_frame_hops",
    }
)


def _check_filter_classes(
    path: str, tree: ast.Module, index: ClassIndex, findings: list[Finding]
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        name = node.name
        if name in (_TRANSFORM_ROOT, _SYNC_ROOT):
            continue
        if index.is_subclass(name, _TRANSFORM_ROOT):
            if not index.chain_defines(name, ("transform", "execute"), _TRANSFORM_ROOT):
                findings.append(
                    Finding(
                        "TB201",
                        path,
                        node.lineno,
                        node.col_offset + 1,
                        f"{name} subclasses TransformationFilter but overrides "
                        "neither transform() nor execute(); the first wave will "
                        "raise NotImplementedError inside the node event loop",
                    )
                )
        if index.is_subclass(name, _SYNC_ROOT):
            if not index.chain_defines(name, ("push",), _SYNC_ROOT):
                findings.append(
                    Finding(
                        "TB202",
                        path,
                        node.lineno,
                        node.col_offset + 1,
                        f"{name} subclasses SynchronizationFilter but does not "
                        "override push(); every arrival will raise "
                        "NotImplementedError",
                    )
                )
            defines_timers = any(
                m in index.classes[name].methods
                for m in ("next_deadline", "on_timer")
            ) if name in index.classes else False
            if defines_timers and index.chain_const(name, "timed", _SYNC_ROOT) is not True:
                findings.append(
                    Finding(
                        "TB203",
                        path,
                        node.lineno,
                        node.col_offset + 1,
                        f"{name} overrides next_deadline/on_timer but does not "
                        "declare 'timed = True'; NodeRunner registers timer "
                        "streams by this flag and a mis-declared filter can "
                        "hold packets forever",
                    )
                )


class _PacketMutationVisitor(ast.NodeVisitor):
    """TB204: assignment to a frozen Packet attribute on a non-self object."""

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt)
            return
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in _PACKET_FROZEN_ATTRS:
            return
        base = target.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            return
        self.findings.append(
            Finding(
                "TB204",
                self.path,
                target.lineno,
                target.col_offset + 1,
                f"assignment to .{target.attr} mutates a Packet after "
                "construction; frames are memoized and shared across the "
                "multicast fan-out (serialize-once contract, "
                "docs/PROTOCOL.md §5) — build a new packet with "
                "with_values() instead",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_target(t)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)


# -- TB3xx: lock discipline ------------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _LockDisciplineVisitor(ast.NodeVisitor):
    """Per-class TB301/TB302 checker (driven by ``# tbon: lock=`` pragmas)."""

    def __init__(
        self,
        path: str,
        pragmas: PragmaTable,
        findings: list[Finding],
    ) -> None:
        self.path = path
        self.pragmas = pragmas
        self.findings = findings

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        guarded: dict[str, tuple[str, int]] = {}  # attr -> (lock, decl line)
        self_assigned: set[str] = set()
        writes: list[tuple[ast.expr, str]] = []  # (target node, attr)

        class Collector(ast.NodeVisitor):
            def __init__(self, outer: "_LockDisciplineVisitor") -> None:
                self.outer = outer
                self.with_stack: list[str] = []
                self.write_locks: dict[int, tuple[str, ...]] = {}

            def _record(self, target: ast.expr) -> None:
                attr = _self_attr(target)
                if attr is None:
                    return
                self_assigned.add(attr)
                lock = self.outer.pragmas.lock_name(target.lineno)
                if lock is not None and attr not in guarded:
                    guarded[attr] = (lock, target.lineno)
                writes.append((target, attr))
                self.write_locks[id(target)] = tuple(self.with_stack)

            def visit_Assign(self, n: ast.Assign) -> None:
                for t in n.targets:
                    self._record(t)
                self.generic_visit(n)

            def visit_AugAssign(self, n: ast.AugAssign) -> None:
                self._record(n.target)
                self.generic_visit(n)

            def visit_AnnAssign(self, n: ast.AnnAssign) -> None:
                self._record(n.target)
                self.generic_visit(n)

            def visit_With(self, n: ast.With) -> None:
                held = [
                    a
                    for item in n.items
                    if (a := _self_attr(item.context_expr)) is not None
                ]
                self.with_stack.extend(held)
                self.generic_visit(n)
                del self.with_stack[len(self.with_stack) - len(held) :]

            visit_AsyncWith = visit_With  # type: ignore[assignment]

            def visit_ClassDef(self, n: ast.ClassDef) -> None:
                # Nested classes get their own visit from the outer walker.
                self.outer.visit_ClassDef(n)

        collector = Collector(self)
        for stmt in node.body:
            collector.visit(stmt)

        for attr, (lock, decl_line) in guarded.items():
            if lock not in self_assigned:
                self.findings.append(
                    Finding(
                        "TB302",
                        self.path,
                        decl_line,
                        1,
                        f"'# tbon: lock={lock}' on {node.name}.{attr}: the class "
                        f"never assigns self.{lock}",
                    )
                )
        for target, attr in writes:
            info = guarded.get(attr)
            if info is None:
                continue
            lock, decl_line = info
            if target.lineno == decl_line:
                continue  # the declaring assignment itself
            if lock in collector.write_locks.get(id(target), ()):
                continue
            self.findings.append(
                Finding(
                    "TB301",
                    self.path,
                    target.lineno,
                    target.col_offset + 1,
                    f"write to {node.name}.{attr} outside 'with self.{lock}:' "
                    f"(declared lock-guarded at line {decl_line})",
                )
            )


# -- TB4xx: exception hygiene -----------------------------------------------------

_BROAD_NAMES = {"Exception", "BaseException"}
_REPORT_CALLS = {
    "warning",
    "error",
    "exception",
    "critical",
    "info",
    "debug",
    "log",
    "print",
}


def _exception_names(type_node: ast.expr) -> list[str]:
    if isinstance(type_node, ast.Tuple):
        return [n for e in type_node.elts for n in _exception_names(e)]
    if isinstance(type_node, ast.Name):
        return [type_node.id]
    if isinstance(type_node, ast.Attribute):
        return [type_node.attr]
    return []


def _handler_reports(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises, uses the bound exception, or logs."""
    bound = handler.name
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
            if isinstance(node, ast.Call):
                fn = node.func
                call = fn.attr if isinstance(fn, ast.Attribute) else (
                    fn.id if isinstance(fn, ast.Name) else ""
                )
                if call in _REPORT_CALLS:
                    return True
    return False


class _ExceptionVisitor(ast.NodeVisitor):
    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            if not _handler_reports(node):
                self.findings.append(
                    Finding(
                        "TB401",
                        self.path,
                        node.lineno,
                        node.col_offset + 1,
                        "bare 'except:' swallows everything (including "
                        "KeyboardInterrupt) without reporting; catch specific "
                        "exceptions or add "
                        "'# tbon: allow-broad-except(<reason>)'",
                    )
                )
        elif any(n in _BROAD_NAMES for n in _exception_names(node.type)):
            if not _handler_reports(node):
                self.findings.append(
                    Finding(
                        "TB402",
                        self.path,
                        node.lineno,
                        node.col_offset + 1,
                        "broad 'except Exception' swallows the error without "
                        "routing it through node.error/logging; catch specific "
                        "exceptions or add "
                        "'# tbon: allow-broad-except(<reason>)'",
                    )
                )
        self.generic_visit(node)


# -- TB5xx: telemetry discipline ---------------------------------------------------

_INSTRUMENT_CLASSES = frozenset({"Counter", "Gauge", "Histogram"})


class _TelemetryInstrumentVisitor(ast.NodeVisitor):
    """TB501: instrument classes constructed outside a Registry.

    A ``Counter``/``Gauge``/``Histogram`` built directly bypasses the
    registry's keyed get-or-create store: it never appears in
    ``snapshot()``, so the in-tree stats reduction and ``repro.cli
    stats`` silently miss everything it records.  Only calls to names
    provably imported from a ``telemetry`` module are flagged —
    ``collections.Counter`` and friends stay out of scope.
    """

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings
        self._instrument_aliases: dict[str, str] = {}  # local name -> class
        self._module_aliases: set[str] = set()  # aliases of telemetry modules

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if "telemetry" in module.split("."):
            for alias in node.names:
                if alias.name in _INSTRUMENT_CLASSES:
                    self._instrument_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if "telemetry" in alias.name.split("."):
                # `import repro.telemetry.registry as reg` -> reg.Counter(...)
                self._module_aliases.add(alias.asname or alias.name.split(".")[0])
        self.generic_visit(node)

    def _flag(self, node: ast.Call, cls: str) -> None:
        self.findings.append(
            Finding(
                "TB501",
                self.path,
                node.lineno,
                node.col_offset + 1,
                f"{cls} instantiated directly; instruments must come from a "
                "Registry (registry.counter()/gauge()/histogram()) or they "
                "never appear in snapshot() and the in-tree stats reduction "
                "silently drops their data",
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Name):
            cls = self._instrument_aliases.get(fn.id)
            if cls is not None:
                self._flag(node, cls)
        elif (
            isinstance(fn, ast.Attribute)
            and fn.attr in _INSTRUMENT_CLASSES
            and isinstance(fn.value, ast.Name)
            and fn.value.id in self._module_aliases
        ):
            self._flag(node, fn.attr)
        self.generic_visit(node)


# -- TB6xx: reactor I/O discipline -------------------------------------------------

#: socket.socket methods that block (or raise BlockingIOError) on the
#: event-loop thread.  Matched by attribute name: inside the reactor
#: package *any* ``.send(...)``-shaped call is suspect enough to flag —
#: false positives are suppressible, a blocked event loop is not.
_BLOCKING_SOCKET_METHODS = frozenset(
    {
        "recv",
        "recv_into",
        "recvfrom",
        "recvfrom_into",
        "recvmsg",
        "recvmsg_into",
        "send",
        "sendall",
        "sendto",
        "sendmsg",
        "sendfile",
    }
)


class _ReactorIOVisitor(ast.NodeVisitor):
    """TB601: direct socket send/recv calls in the reactor package.

    The reactor's contract is that every registered socket is
    non-blocking and all I/O flows through the ``_nb_*`` helpers, which
    translate EAGAIN into a ``None`` return.  A stray ``sock.sendall()``
    or ``sock.recv()`` here either parks the single event-loop thread —
    stalling every channel in the process at once — or raises
    ``BlockingIOError`` from the hot path.  Only functions whose names
    start with ``_nb_`` may touch the socket primitives directly; the
    blocking bind-time handshake belongs in :mod:`repro.transport.tcp`.
    """

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings
        self._exempt_depth = 0

    def _visit_func(self, node: Any) -> None:
        exempt = node.name.startswith("_nb_")
        if exempt:
            self._exempt_depth += 1
        self.generic_visit(node)
        if exempt:
            self._exempt_depth -= 1

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if (
            self._exempt_depth == 0
            and isinstance(fn, ast.Attribute)
            and fn.attr in _BLOCKING_SOCKET_METHODS
        ):
            self.findings.append(
                Finding(
                    "TB601",
                    self.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"direct socket .{fn.attr}() call in the reactor package; "
                    "all reactor I/O must go through the non-blocking _nb_* "
                    "helpers so one peer can never block the event loop",
                )
            )
        self.generic_visit(node)


# -- TB7xx: chaos-hook discipline --------------------------------------------------


class _ChaosHookVisitor(ast.NodeVisitor):
    """TB701: fault-injection hooks used outside the sanctioned wrapper.

    The chaos engine's interposition points are the ``_chaos_*``
    methods, and the only caller allowed to reach them is
    :class:`repro.reliability.chaos.ChaosTransport` — that wrapper is
    what keeps fault injection composable (control plane exempt, one
    decision per send, deterministic per-edge ordinals).  A ``_chaos_*``
    reference anywhere else means production code is injecting faults
    behind the wrapper's back, where none of those guarantees hold.
    """

    def __init__(self, path: str, findings: list[Finding]) -> None:
        self.path = path
        self.findings = findings

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_chaos_"):
            self.findings.append(
                Finding(
                    "TB701",
                    self.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"chaos fault hook .{node.attr} referenced outside "
                    "repro.reliability.chaos; fault injection must go through "
                    "the sanctioned ChaosTransport wrapper",
                )
            )
        self.generic_visit(node)


# -- entry point ----------------------------------------------------------------


def analyze_module(
    path: str,
    tree: ast.Module,
    pragmas: PragmaTable,
    index: ClassIndex,
    *,
    skip_packet_mutation: bool = False,
    skip_telemetry_instruments: bool = False,
    check_reactor_io: bool = False,
    check_chaos_hooks: bool = False,
) -> list[Finding]:
    """Run every rule over one parsed module; returns unsuppressed findings.

    ``skip_packet_mutation`` exempts :mod:`repro.core.packet` itself —
    the one module allowed to touch frame internals (``hop()``, the
    memo fields).  ``skip_telemetry_instruments`` exempts the
    :mod:`repro.telemetry` package, where the Registry's get-or-create
    paths legitimately construct the instrument classes.
    ``check_reactor_io`` turns on TB601 — it applies only to reactor
    modules, where a blocking socket call would stall the whole event
    loop.  ``check_chaos_hooks`` turns on TB701 everywhere *except*
    :mod:`repro.reliability.chaos`, the one module allowed to touch the
    ``_chaos_*`` fault hooks.
    """
    findings: list[Finding] = []
    for line, message in pragmas.errors:
        findings.append(Finding("TB002", path, line, 1, message))
    _WireFormatVisitor(path, findings).visit(tree)
    _check_filter_classes(path, tree, index, findings)
    if not skip_packet_mutation:
        _PacketMutationVisitor(path, findings).visit(tree)
    _LockDisciplineVisitor(path, pragmas, findings).visit(tree)
    _ExceptionVisitor(path, findings).visit(tree)
    if not skip_telemetry_instruments:
        _TelemetryInstrumentVisitor(path, findings).visit(tree)
    if check_reactor_io:
        _ReactorIOVisitor(path, findings).visit(tree)
    if check_chaos_hooks:
        _ChaosHookVisitor(path, findings).visit(tree)
    return [f for f in findings if not pragmas.suppressed(f.rule, f.line)]
