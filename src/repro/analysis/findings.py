"""Finding records, the rule catalog, and ``# tbon:`` pragma parsing.

This module is import-light (stdlib only) so that
:mod:`repro.analysis.locks` and the package ``__init__`` can load
without pulling in :mod:`repro.core` — the core imports the analysis
package for its lock factory, and the dependency must stay one-way.

Pragma syntax (one directive per comment, anywhere on a source line)::

    # tbon: allow-broad-except(<reason>)   suppress TB401/TB402 here
    # tbon: lock=<name>                    declare the attribute assigned on
                                           this line guarded by self.<name>
    # tbon: lock-free(<reason>)            suppress TB301: this write is
                                           deliberately unguarded
    # tbon: ignore[TB101,TB204]            suppress the listed rules here
    # tbon: ignore[*]                      suppress every rule on this line

``allow-broad-except`` and ``lock-free`` require a reason: a suppression
nobody can justify in a parenthesis is a suppression that should not
exist.  Unknown or malformed directives are themselves reported (TB002)
so a typo cannot silently disable a check.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "Pragma",
    "PragmaError",
    "RULES",
    "parse_pragmas",
]

#: Rule catalog: id -> one-line description (documented in docs/ANALYSIS.md).
RULES: dict[str, str] = {
    "TB001": "file could not be read or parsed",
    "TB002": "malformed or unknown '# tbon:' pragma",
    "TB101": "invalid wire-format string (does not parse against the directive table)",
    "TB102": "wire-format arity mismatch between format string and packed values",
    "TB103": "wire-format type mismatch for a literal value",
    "TB201": "TransformationFilter subclass overrides neither transform nor execute",
    "TB202": "SynchronizationFilter subclass does not override push",
    "TB203": "sync filter schedules deadlines but does not declare 'timed = True'",
    "TB204": "Packet header/payload mutated after construction (serialize-once contract)",
    "TB301": "write to a lock-guarded attribute outside 'with self.<lock>:'",
    "TB302": "'# tbon: lock=<name>' names a lock attribute the class never assigns",
    "TB401": "bare 'except:' swallows everything including KeyboardInterrupt",
    "TB402": "broad 'except Exception' swallows the error without reporting it",
    "TB501": "telemetry instrument instantiated directly instead of through a Registry",
    "TB601": "blocking socket send/recv call inside the reactor package (use the _nb_* helpers)",
    "TB701": "chaos fault hook (_chaos_*) used outside the sanctioned ChaosTransport wrapper",
}

_PRAGMA_RE = re.compile(r"#\s*tbon:\s*(?P<body>.*\S)\s*$")
_REASON_RE = re.compile(r"^(?P<kind>allow-broad-except|lock-free)\((?P<reason>[^)]*)\)$")
_LOCK_RE = re.compile(r"^lock=(?P<name>[A-Za-z_][A-Za-z0-9_]*)$")
_IGNORE_RE = re.compile(r"^ignore\[(?P<rules>[^\]]*)\]$")


class PragmaError(ValueError):
    """A ``# tbon:`` comment that does not parse (reported as TB002)."""


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# tbon:`` directive.

    Attributes:
        kind: ``allow-broad-except`` | ``lock`` | ``lock-free`` | ``ignore``.
        arg: the reason, lock name, or tuple of rule ids (``("*",)`` for
            wildcard ignore).
        line: 1-based source line the comment sits on.
    """

    kind: str
    arg: tuple[str, ...]
    line: int

    def suppresses(self, rule: str) -> bool:
        if self.kind == "ignore":
            return "*" in self.arg or rule in self.arg
        if self.kind == "allow-broad-except":
            return rule in ("TB401", "TB402")
        if self.kind == "lock-free":
            return rule == "TB301"
        return False


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _parse_directive(body: str, line: int) -> Pragma:
    m = _REASON_RE.match(body)
    if m:
        reason = m.group("reason").strip()
        if not reason:
            raise PragmaError(
                f"'{m.group('kind')}' pragma needs a reason: "
                f"# tbon: {m.group('kind')}(<why>)"
            )
        return Pragma(m.group("kind"), (reason,), line)
    m = _LOCK_RE.match(body)
    if m:
        return Pragma("lock", (m.group("name"),), line)
    m = _IGNORE_RE.match(body)
    if m:
        rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
        if not rules:
            raise PragmaError("'ignore' pragma lists no rules: # tbon: ignore[TBxxx]")
        bad = [r for r in rules if r != "*" and r not in RULES]
        if bad:
            raise PragmaError(f"'ignore' pragma names unknown rules: {', '.join(bad)}")
        return Pragma("ignore", rules, line)
    raise PragmaError(f"unknown tbon pragma {body!r}")


@dataclass
class PragmaTable:
    """All pragmas of one file, by line, plus pragma parse errors."""

    by_line: dict[int, list[Pragma]] = field(default_factory=dict)
    errors: list[tuple[int, str]] = field(default_factory=list)

    def suppressed(self, rule: str, line: int) -> bool:
        return any(p.suppresses(rule) for p in self.by_line.get(line, ()))

    def lock_name(self, line: int) -> str | None:
        """The lock declared by a ``lock=`` pragma on ``line``, if any."""
        for p in self.by_line.get(line, ()):
            if p.kind == "lock":
                return p.arg[0]
        return None


def parse_pragmas(source: str) -> PragmaTable:
    """Extract every ``# tbon:`` pragma from ``source``.

    Uses the tokenizer rather than a per-line regex so that ``# tbon:``
    inside string literals is never mistaken for a pragma.  Files the
    tokenizer rejects fall back to empty (the AST parse will report
    TB001 for them anyway).
    """
    table = PragmaTable()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _PRAGMA_RE.search(tok.string)
        if not m:
            continue
        line = tok.start[0]
        try:
            pragma = _parse_directive(m.group("body"), line)
        except PragmaError as exc:
            table.errors.append((line, str(exc)))
            continue
        table.by_line.setdefault(line, []).append(pragma)
    return table
