"""Runtime lock-order and guarded-attribute instrumentation.

The static rules in :mod:`repro.analysis.rules` check lock discipline
lexically; this module checks it *dynamically*: a TBON runs one event
loop per communication process plus reader threads per TCP connection,
so every lock in the data plane participates in a process-wide partial
order.  Acquiring locks in inconsistent order across threads is a latent
deadlock even when the interleaving that hangs has never been observed.

Three pieces:

* :class:`TrackedLock` — a drop-in ``threading.Lock``/``RLock`` wrapper
  that reports every acquisition to the process-wide
  :class:`LockOrderMonitor`.
* :class:`LockOrderMonitor` — records the directed graph "``a`` was held
  while ``b`` was acquired" across *all* threads and raises
  :class:`LockOrderError` the moment an acquisition would close a cycle
  (the classic potential-deadlock witness), naming the offending path.
* :class:`GuardedBy` — a data descriptor declaring "this attribute is
  protected by that lock"; any access without the owning
  :class:`TrackedLock` held by the current thread raises
  :class:`GuardedAccessError`.

Activation: :func:`make_lock` is the factory the repro code base uses
for its internal locks.  Normally it returns a plain
``threading.Lock``/``RLock`` (zero overhead).  With ``TBON_LOCKCHECK=1``
in the environment it returns named :class:`TrackedLock` instances, so
running the tier-1 suite under that variable turns every test into a
lock-order test::

    TBON_LOCKCHECK=1 PYTHONPATH=src python -m pytest -x -q

Lock-order edges are recorded *by name*, not by instance: the graph
node for every ``PayloadRef._lock`` is ``"payload_ref"``.  That is the
standard lock-ranking abstraction — two instances of the same class
rank equally — and keeps the graph small and the reports readable.
Reentrant acquisitions of a lock already held by this thread do not add
edges.

This module deliberately imports nothing from :mod:`repro.core` (the
core imports *us* for :func:`make_lock`).
"""

from __future__ import annotations

import os
import threading
from typing import Any

__all__ = [
    "ENV_VAR",
    "GuardedAccessError",
    "GuardedBy",
    "LockOrderError",
    "LockOrderMonitor",
    "TrackedLock",
    "get_monitor",
    "lockcheck_enabled",
    "make_lock",
]

#: Environment variable that switches :func:`make_lock` to tracked locks.
ENV_VAR = "TBON_LOCKCHECK"


class LockOrderError(RuntimeError):
    """An acquisition closed a cycle in the process-wide lock-order graph."""


class GuardedAccessError(RuntimeError):
    """A guarded attribute was accessed without its owning lock held."""


def lockcheck_enabled() -> bool:
    """True when ``TBON_LOCKCHECK`` requests runtime lock instrumentation."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no")


class LockOrderMonitor:
    """Process-wide record of cross-thread lock acquisition order.

    The graph has one node per lock *name* and an edge ``a -> b``
    whenever some thread acquired ``b`` while holding ``a``.  A cycle in
    this graph means two threads can deadlock by acquiring the same
    locks in opposite orders; detection is eager, at the acquisition
    that would create the cycle, so the traceback points at the exact
    call site of the inversion.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._mu = threading.Lock()
        self._local = threading.local()

    # -- per-thread held stack ------------------------------------------------
    def _stack(self) -> list["TrackedLock"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def holds(self, lock: "TrackedLock") -> bool:
        """True when the calling thread currently holds ``lock``."""
        return any(held is lock for held in self._stack())

    def held_names(self) -> tuple[str, ...]:
        """Names of locks held by the calling thread, outermost first."""
        return tuple(held.name for held in self._stack())

    # -- graph maintenance ------------------------------------------------------
    def on_acquired(self, lock: "TrackedLock") -> None:
        """Record that the calling thread acquired ``lock``.

        Raises:
            LockOrderError: this acquisition closes a cycle (an existing
                path already leads from ``lock`` back to a held lock).
        """
        stack = self._stack()
        held = [h.name for h in stack if h.name != lock.name]
        if held:
            with self._mu:
                for name in dict.fromkeys(held):
                    self._edges.setdefault(name, set()).add(lock.name)
                for name in held:
                    path = self._find_path(lock.name, name)
                    if path is not None:
                        cycle = " -> ".join(path + [path[0]])
                        raise LockOrderError(
                            f"lock-order inversion: acquiring {lock.name!r} while "
                            f"holding {name!r} closes the cycle {cycle}"
                        )
        stack.append(lock)

    def on_released(self, lock: "TrackedLock") -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """A path ``start -> ... -> goal`` in the edge graph, or None.

        Caller holds ``self._mu``.
        """
        seen = {start}
        frontier: list[list[str]] = [[start]]
        while frontier:
            path = frontier.pop()
            for nxt in self._edges.get(path[-1], ()):
                if nxt == goal:
                    return path + [goal]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    def edges(self) -> dict[str, set[str]]:
        """A snapshot of the order graph (for tests and diagnostics)."""
        with self._mu:
            return {a: set(bs) for a, bs in self._edges.items()}

    def reset(self) -> None:
        """Forget all recorded edges (test isolation)."""
        with self._mu:
            self._edges.clear()


_monitor = LockOrderMonitor()


def get_monitor() -> LockOrderMonitor:
    """The process-wide monitor used by default-constructed tracked locks."""
    return _monitor


class TrackedLock:
    """A named ``threading.Lock``/``RLock`` that reports to a monitor.

    Implements the full lock protocol (``acquire``/``release``, context
    manager, ``locked``) plus ``_is_owned`` so it can serve as the
    underlying lock of a ``threading.Condition``.
    """

    def __init__(
        self,
        name: str,
        *,
        reentrant: bool = False,
        monitor: LockOrderMonitor | None = None,
    ) -> None:
        self.name = name
        self.reentrant = reentrant
        self.monitor = monitor or _monitor
        self._lock: Any = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            try:
                self.monitor.on_acquired(self)
            except BaseException:
                self._lock.release()
                raise
        return ok

    def release(self) -> None:
        self.monitor.on_released(self)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._lock, "locked", None)
        if inner_locked is not None:
            return bool(inner_locked())
        return self.monitor.holds(self)  # RLock before 3.12 has no locked()

    def _is_owned(self) -> bool:
        """Ownership probe (``threading.Condition`` protocol)."""
        return self.monitor.holds(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"TrackedLock({self.name!r}, {kind})"


class GuardedBy:
    """Data descriptor enforcing that a lock is held around attribute access.

    Usage::

        class Counter:
            value = GuardedBy("_lock")

            def __init__(self) -> None:
                self._lock = make_lock("counter")
                with self._lock:
                    self.value = 0

    Enforcement requires the owning lock to be a :class:`TrackedLock`
    (i.e. lock checking is active); with a plain ``threading.Lock``
    ownership is unknowable and the descriptor degrades to plain
    attribute storage.  This mirrors :func:`make_lock`: the same code
    runs un-instrumented in production and fully checked under
    ``TBON_LOCKCHECK=1``.
    """

    def __init__(self, lock_attr: str) -> None:
        self.lock_attr = lock_attr
        self.attr = "<unbound>"

    def __set_name__(self, owner: type, name: str) -> None:
        self.attr = name

    def _check(self, obj: Any, op: str) -> None:
        lock = getattr(obj, self.lock_attr, None)
        if isinstance(lock, TrackedLock) and not lock._is_owned():
            raise GuardedAccessError(
                f"{op} of {type(obj).__name__}.{self.attr} without holding "
                f"{self.lock_attr} ({lock.name!r})"
            )

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        self._check(obj, "read")
        try:
            return obj.__dict__[self.attr]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute {self.attr!r}"
            ) from None

    def __set__(self, obj: Any, value: Any) -> None:
        self._check(obj, "write")
        obj.__dict__[self.attr] = value

    def __delete__(self, obj: Any) -> None:
        self._check(obj, "delete")
        del obj.__dict__[self.attr]


def make_lock(
    name: str,
    *,
    reentrant: bool = False,
    monitor: LockOrderMonitor | None = None,
) -> Any:
    """The lock factory used by repro's internal locks.

    Returns a plain ``threading.Lock`` (or ``RLock``) normally — no
    indirection on the hot path — and a named :class:`TrackedLock` when
    ``TBON_LOCKCHECK`` is set, so the entire middleware participates in
    lock-order recording.  ``name`` identifies the lock *class* in the
    order graph (all instances created with one name rank together).
    """
    if lockcheck_enabled():
        return TrackedLock(name, reentrant=reentrant, monitor=monitor)
    return threading.RLock() if reentrant else threading.Lock()
