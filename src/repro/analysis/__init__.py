"""TBON-aware static analysis and runtime race detection (``tboncheck``).

Two halves:

* Static: an AST lint engine with rules for the paper's correctness
  invariants — wire-format strings, the filter protocol, the
  serialize-once mutation contract, lock discipline and exception
  hygiene.  Run it with ``python -m repro.cli tboncheck src/``; rule
  catalog and pragma syntax are documented in ``docs/ANALYSIS.md``.
* Dynamic: :mod:`repro.analysis.locks` instruments every internal lock
  of the middleware (via :func:`~repro.analysis.locks.make_lock`) with
  lock-order-graph recording and guarded-attribute enforcement when
  ``TBON_LOCKCHECK=1`` is set, turning the tier-1 suite into a
  deadlock-witness detector.

Import discipline: this ``__init__`` (and :mod:`.locks`/:mod:`.findings`)
must not import :mod:`repro.core` — the core imports *us* for its lock
factory.  The heavy AST machinery lives in :mod:`.engine`/:mod:`.rules`,
imported lazily by the CLI.
"""

from .findings import Finding, RULES
from .locks import (
    ENV_VAR,
    GuardedAccessError,
    GuardedBy,
    LockOrderError,
    LockOrderMonitor,
    TrackedLock,
    get_monitor,
    lockcheck_enabled,
    make_lock,
)

__all__ = [
    "ENV_VAR",
    "Finding",
    "GuardedAccessError",
    "GuardedBy",
    "LockOrderError",
    "LockOrderMonitor",
    "RULES",
    "TrackedLock",
    "get_monitor",
    "lockcheck_enabled",
    "make_lock",
]
