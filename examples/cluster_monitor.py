"""A Ganglia/Supermon-style cluster monitor on a TBON (Section 2.3).

Monitors 27 synthetic hosts through a 3-level tree using three
concurrent overlapping streams (min / max / avg aggregations of the
same samples) plus an adaptive histogram of the CPU distribution.

Run:  python examples/cluster_monitor.py
"""

from __future__ import annotations

import numpy as np

import repro.filters_ext  # registers histogram filters
from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.filters_ext.histogram import ADAPTIVE_HISTOGRAM_FMT, sketch_values
from repro.tools.monitor import ClusterMonitor

TAG = FIRST_APPLICATION_TAG


def main() -> None:
    topo = balanced_topology(3, 3)  # 27 hosts, 2 aggregation levels
    print(f"monitoring {topo.n_backends} hosts through {topo.n_internal} "
          f"aggregator nodes (depth {topo.depth()})")

    with Network(topo) as net:
        monitor = ClusterMonitor(net, sync_window=1.0)
        print("\nper-metric cluster aggregates (3 snapshots):")
        header = f"{'metric':>10} {'min':>10} {'avg':>10} {'max':>10}"
        for i in range(3):
            snap = monitor.snapshot(timeout=15)
            print(f"-- snapshot {i + 1} " + "-" * 33)
            print(header)
            for metric, agg in snap.as_dict().items():
                print(
                    f"{metric:>10} {agg['min']:>10.1f} {agg['avg']:>10.1f} "
                    f"{agg['max']:>10.1f}"
                )
        monitor.close()

        # Histogram of per-host CPU over one sampling round: leaves send
        # equi-width sketches; the tree re-bins onto the union range.
        s_hist = net.new_stream(
            transform="adaptive_histogram",
            sync="wait_for_all",
            transform_params={"n_bins": 16},
        )

        def leaf(be):
            be.wait_for_stream(s_hist.stream_id)
            rng = np.random.default_rng(be.rank)
            cpu_samples = rng.uniform(5, 95, size=20)
            be.send(
                s_hist.stream_id, TAG, ADAPTIVE_HISTOGRAM_FMT,
                *sketch_values(cpu_samples, 16),
            )

        net.run_backends(leaf)
        lo, hi, counts = s_hist.recv(timeout=15).values
        s_hist.close()
        print(f"\ncluster CPU histogram ({int(counts.sum())} samples, "
              f"range {lo:.0f}-{hi:.0f}%):")
        peak = counts.max()
        width = (hi - lo) / len(counts)
        for i, c in enumerate(counts):
            bar = "#" * int(40 * c / peak)
            print(f"  {lo + i * width:5.1f}-{lo + (i + 1) * width:5.1f}%  {bar} {c}")


if __name__ == "__main__":
    main()
