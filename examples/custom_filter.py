"""Writing and dynamically loading an application-specific filter.

MRNet's extensibility story: "MRNet allows developers to extend the
filter set with application-specific filters ... loaded on-demand into
instantiated networks" via a dlopen-like interface.  This example
defines a stateful top-k filter, loads it into a *running* network by
its ``module:Class`` name, and uses it to track the k largest values
across all back-ends over several waves.

Run:  python examples/custom_filter.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FIRST_APPLICATION_TAG,
    FilterContext,
    Network,
    Packet,
    TransformationFilter,
    balanced_topology,
)

TAG = FIRST_APPLICATION_TAG


class TopKFilter(TransformationFilter):
    """Keep the k largest values seen on this stream (stateful).

    Demonstrates persistent filter state: the running top-k survives
    across waves at every node, so upstream packets stay k-sized no
    matter how much data the subtree has produced.
    """

    def __init__(self, **params):
        super().__init__(**params)
        self.k = int(params.get("k", 5))
        self.best = np.empty(0)  # persistent across waves

    def transform(self, packets, ctx: FilterContext) -> Packet:
        arrivals = np.concatenate([p.values[0] for p in packets])
        self.best = np.sort(np.concatenate([self.best, arrivals]))[-self.k:]
        return packets[0].with_values([self.best])


def main() -> None:
    topo = balanced_topology(3, 2)
    with Network(topo) as net:
        # Dynamic load by module path — the dlopen analogue.  Every
        # communication process resolves the class on demand.
        filter_name = "custom_filter:TopKFilter"
        net.load_filter(filter_name)
        print(f"loaded {filter_name} into the running network")

        s = net.new_stream(
            transform=filter_name,
            sync="wait_for_all",
            transform_params={"k": 3},
        )
        n_waves = 4

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            rng = np.random.default_rng(be.rank)
            for _ in range(n_waves):
                be.send(s.stream_id, TAG, "%af", rng.uniform(0, 1000, size=8))

        net.run_backends(leaf)
        print(f"\n{topo.n_backends} back-ends x {n_waves} waves x 8 values:")
        for wave in range(n_waves):
            top = s.recv(timeout=10).values[0]
            print(f"  after wave {wave + 1}: global top-3 = "
                  + ", ".join(f"{v:.1f}" for v in sorted(top, reverse=True)))
        s.close()


if __name__ == "__main__":
    main()
