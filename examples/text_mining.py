"""Distributed information extraction (the paper's data-mining domains).

Section 2.3 motivates TBONs for "data mining or information extraction,
the process of distilling specific facts from large quantities of data"
— Internet retrieval, business intelligence, digital collections.  This
example mines a sharded document corpus with the Figure-2 equivalence-
class computation: every leaf classifies its documents' terms, the tree
unions the classes, and the front-end reads off corpus-wide term
statistics — plus an adaptive histogram of document lengths from the
same pass.

Run:  python examples/text_mining.py
"""

from __future__ import annotations

import numpy as np

import repro.filters_ext  # registers equivalence + histogram filters
from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.filters_ext.equivalence import EQUIVALENCE_FMT, EquivalenceClasses
from repro.filters_ext.histogram import ADAPTIVE_HISTOGRAM_FMT, sketch_values

TAG = FIRST_APPLICATION_TAG

_COMMON = ("system data node network tree time run process result set "
           "model scale value test case").split()
_TOPICS = {
    0: "cluster filter reduction multicast overlay".split(),
    1: "genome protein sequence alignment sample".split(),
    2: "market price trade revenue forecast".split(),
}


def make_shard(shard: int, n_docs: int = 40, seed: int = 0) -> list[str]:
    """Synthetic documents: common vocabulary + a per-shard topic."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, shard]))
    topic = _TOPICS[shard % len(_TOPICS)]
    docs = []
    for _ in range(n_docs):
        n_words = int(rng.integers(20, 120))
        words = rng.choice(_COMMON, size=n_words).tolist()
        words += rng.choice(topic, size=max(1, n_words // 4)).tolist()
        rng.shuffle(words)
        docs.append(" ".join(words))
    return docs


def main() -> None:
    topo = balanced_topology(3, 2)
    print(f"mining {topo.n_backends} document shards through "
          f"{topo.n_internal} aggregators\n")

    with Network(topo) as net:
        s_terms = net.new_stream(
            transform="equivalence",
            sync="wait_for_all",
            transform_params={"max_members_per_class": 4},
        )
        s_lens = net.new_stream(
            transform="adaptive_histogram",
            sync="wait_for_all",
            transform_params={"n_bins": 12},
        )
        order = {r: i for i, r in enumerate(topo.backends)}

        def miner(be):
            be.wait_for_stream(s_terms.stream_id)
            be.wait_for_stream(s_lens.stream_id)
            docs = make_shard(order[be.rank])
            # Figure 2: classify elements (term occurrences) into the
            # classes they represent (the terms), counting members.
            ec = EquivalenceClasses()
            for d, doc in enumerate(docs):
                for word in doc.split():
                    ec.add(word, f"s{be.rank}d{d}")
            be.send(s_terms.stream_id, TAG, EQUIVALENCE_FMT, *ec.to_payload())
            lengths = np.array([float(len(d.split())) for d in docs])
            be.send(s_lens.stream_id, TAG, ADAPTIVE_HISTOGRAM_FMT,
                    *sketch_values(lengths, 12))

        net.run_backends(miner)
        terms = EquivalenceClasses.from_payload(*s_terms.recv(timeout=30).values)
        lo, hi, counts = s_lens.recv(timeout=30).values
        s_terms.close()
        s_lens.close()

    print(f"corpus vocabulary: {terms.n_classes} distinct terms, "
          f"{terms.total_count} occurrences")
    top = sorted(terms.counts.items(), key=lambda kv: -kv[1])[:8]
    print("top terms:")
    for word, count in top:
        print(f"  {word:<10} {count:>6}")
    topic_terms = [w for ws in _TOPICS.values() for w in ws]
    seen_topics = [w for w in topic_terms if w in terms.counts]
    print(f"\ntopic terms surfaced from all shards: "
          f"{len(seen_topics)}/{len(topic_terms)}")
    print(f"\ndocument length histogram ({int(counts.sum())} docs, "
          f"{lo:.0f}-{hi:.0f} words):")
    peak = counts.max()
    width = (hi - lo) / len(counts)
    for i, c in enumerate(counts):
        bar = "#" * int(30 * c / max(1, peak))
        print(f"  {lo + i * width:5.0f}-{lo + (i + 1) * width:5.0f}  {bar} {c}")


if __name__ == "__main__":
    main()
