"""The paper's case study: distributed mean-shift clustering (Section 3).

1. Generates the synthetic workload (Gaussian clusters, per-leaf
   shifted centers) exactly as Section 3.1 describes.
2. Runs the single-node mean-shift on the union.
3. Runs the distributed version over a real in-process TBON (leaves run
   the local search, the ``mean_shift`` filter merges up the tree) and
   compares the peaks.
4. Reproduces a compact Figure-4 sweep on the calibrated simulator.

Run:  python examples/distributed_meanshift.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.bench.harness import run_fig4
from repro.bench.reporting import fmt_seconds
from repro.cluster import (
    ClusterSpec,
    MEANSHIFT_FMT,
    full_dataset,
    leaf_dataset,
    leaf_mean_shift,
    mean_shift,
)
from repro.simulate.calibrate import calibrate_mean_shift

TAG = FIRST_APPLICATION_TAG


def main() -> None:
    spec = ClusterSpec()
    n_leaves = 9
    print(f"workload: {len(spec.centers)} true modes, "
          f"{spec.points_per_cluster} pts/cluster/leaf, {n_leaves} leaves")

    # --- single node -----------------------------------------------------
    data = full_dataset(n_leaves, spec, seed=42)
    t0 = time.perf_counter()
    single = mean_shift(data)  # the paper's fixed bandwidth of 50
    t_single = time.perf_counter() - t0
    print(f"\nsingle node: {len(data)} points -> {len(single.peaks)} peaks "
          f"in {t_single:.2f}s ({single.iterations} search iterations)")

    # --- distributed over a 3x3 tree ---------------------------------------
    topo = balanced_topology(3, 2)
    with Network(topo) as net:
        s = net.new_stream(
            transform="mean_shift",
            sync="wait_for_all",
            transform_params={"bandwidth": 50.0},
        )
        order = {r: i for i, r in enumerate(topo.backends)}

        def leaf(be):
            be.wait_for_stream(s.stream_id)
            be.recv(timeout=30, stream_id=s.stream_id)  # start control msg
            pts = leaf_dataset(order[be.rank], spec, seed=42)
            d, w, pk, res = leaf_mean_shift(pts)
            be.send(s.stream_id, TAG, MEANSHIFT_FMT, d, w, pk)

        threads = net.run_backends(leaf, join=False)
        t0 = time.perf_counter()
        s.send(TAG, "%d", 0)  # the paper's measured phase starts here
        pkt = s.recv(timeout=60)
        t_dist = time.perf_counter() - t0
        for t in threads:
            t.join(30)
        dist_data, dist_w, dist_peaks = pkt.values

    print(f"distributed: {t_dist:.2f}s over a {topo.max_fanout}-ary depth-2 "
          f"tree (speedup {t_single / t_dist:.1f}x)")
    print(f"  reduced data at front-end: {len(dist_data)} weighted reps "
          f"(total weight {dist_w.sum():.0f})")
    print("\npeaks (single vs distributed):")
    for sp, dp in zip(np.sort(single.peaks, axis=0), np.sort(dist_peaks, axis=0)):
        print(f"  ({sp[0]:7.2f}, {sp[1]:7.2f})   ({dp[0]:7.2f}, {dp[1]:7.2f})")

    # --- Figure 4 on the calibrated simulator --------------------------------
    print("\ncalibrating the performance model from the real kernel...")
    model = calibrate_mean_shift()
    result = run_fig4(model, scales=(16, 64, 128, 324))
    print()
    print(result.table.render(fmt_seconds))
    print("\n(see benchmarks/bench_fig4_meanshift.py for the full sweep "
          "and shape assertions)")


if __name__ == "__main__":
    main()
