"""The Paradyn scenario of Section 2.2: startup + continuous aggregation.

Phase 1 runs the *live* miniature on a real network (tree clock-skew
detection composing per-edge offsets; equivalence-class suppression of
redundant daemon symbol tables).  Phase 2 reproduces the paper's
512-daemon numbers on the calibrated model: startup time one-to-many vs
TBON, and front-end saturation under the 32-function report load.

Run:  python examples/paradyn_profiler.py
"""

from __future__ import annotations

from repro import Network, balanced_topology
from repro.bench.harness import run_startup_table, run_throughput_table
from repro.tools.profiler import live_startup


def main() -> None:
    # --- live miniature ---------------------------------------------------
    topo = balanced_topology(3, 2)
    print(f"live tool startup over {topo.n_backends} daemons:")
    with Network(topo) as net:
        rep = live_startup(net, n_functions=200, n_variants=3)
    print(f"  total {rep.total_time * 1e3:.1f} ms "
          f"(skew phase {rep.skew_time * 1e3:.1f} ms, "
          f"tables {rep.table_time * 1e3:.1f} ms)")
    print(f"  clock skew recovered to within {rep.skew_error * 1e6:.1f} us")
    print(f"  {rep.n_daemons} daemon symbol tables collapsed to "
          f"{rep.n_classes} equivalence classes")

    # --- the paper's 512-daemon startup claim --------------------------------
    print("\nT-startup (paper: >1 min one-to-many -> <20 s with MRNet, 3.4x):")
    table = run_startup_table()
    print(table.render(lambda v: f"{v:.2f}"))

    # --- the paper's front-end throughput claim -------------------------------
    print("\nT-throughput (paper: one-to-many fails >32 daemons; "
          "MRNet handles 512):")
    print(run_throughput_table(daemon_counts=(16, 32, 48, 64, 128, 512),
                               duration=5.0))


if __name__ == "__main__":
    main()
