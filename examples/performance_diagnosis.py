"""Automated performance diagnosis with sub-graph folding (SGFA, [24]).

The scenario behind MRNet's thousand-node graph-folding results: every
daemon runs a hypothesis search over its host's behaviour, producing a
labelled search-history graph; the ``graph_fold`` filter collapses
structurally identical graphs as they climb the tree, so the analyst
reads one composite instead of N graphs — and the minority classes are
the anomalies.

Also shows a Supermon-style symbolic concentrator answering follow-up
questions about the same cluster.

Run:  python examples/performance_diagnosis.py
"""

from __future__ import annotations

import numpy as np

from repro import Network, balanced_topology
from repro.tools.concentrator import Concentrator
from repro.tools.consultant import PerformanceConsultant


def main() -> None:
    topo = balanced_topology(3, 3)  # 27 hosts
    print(f"diagnosing {topo.n_backends} hosts "
          f"({topo.n_internal} folding nodes)\n")

    with Network(topo) as net:
        # Two hosts behave badly; the rest compute happily.
        profiles = {r: "cpu_solve" for r in topo.backends}
        profiles[topo.backends[7]] = "io_checkpoint"
        profiles[topo.backends[19]] = "sync_exchange"
        pc = PerformanceConsultant(net, profile_of=profiles)

        report = pc.diagnose()
        print(f"search graphs folded from {report.n_hosts} hosts into "
              f"{len(report.composite)} composite nodes")
        print("\nfindings (hypothesis path -> hosts):")
        for path, (n, hosts) in sorted(report.findings.items(), key=lambda kv: -kv[1][0]):
            example = ", ".join(hosts[:3]) + ("..." if n > 3 else "")
            print(f"  [{n:2d}] {path}   ({example})")
        print("\nanomalies (minority behaviours):")
        for path, (n, hosts) in report.anomalies().items():
            print(f"  !! {path} on {hosts}")

        # Follow-up questions via a symbolic concentrator.
        def sampler(rank: int, wave: int) -> list[float]:
            h = pc.hosts[rank]
            return [h.metric("cpu"), h.metric("io")]

        conc = Concentrator(net, ["cpu", "io"], sampler)
        for expr in ("(avg cpu)", "(max io)", "(if (> (max io) 0.5) 1 0)"):
            value, n = conc.evaluate(expr)
            print(f"\nconcentrate> {expr}\n  = {value:.3f}  over {n} hosts")


if __name__ == "__main__":
    main()
