"""The paper's future work, working: distributed decision/regression trees.

Section 4 sketches "data models such as decision and regression trees
that can be built by passing data both directions in the tree", with
bidirectional communication enabling "model cross-validation or
refinement via operations performed directly on the models."

This example fits a classifier over 9 data shards held at the leaves of
a live TBON (model broadcasts down, statistic reductions up), verifies
the distributed fit is *identical* to the single-node fit on the union,
cross-validates the model on distributed holdout shards, and repeats
for a regression tree.

Run:  python examples/decision_trees.py
"""

from __future__ import annotations

import numpy as np

from repro import Network, balanced_topology
from repro.learn import (
    distributed_score,
    fit_distributed,
    fit_single,
    make_classification_shard,
    make_regression_shard,
    union_shards,
)


def main() -> None:
    topo = balanced_topology(3, 2)
    backends = topo.backends

    # --- classification -----------------------------------------------------
    shards = {r: make_classification_shard(i, n_samples=300, seed=11)
              for i, r in enumerate(backends)}
    holdout = {r: make_classification_shard(100 + i, n_samples=200, seed=11)
               for i, r in enumerate(backends)}
    X, y = union_shards([shards[r] for r in backends])
    print(f"classification: {len(X)} samples x {X.shape[1]} features, "
          f"{len(np.unique(y))} classes, sharded over {len(backends)} leaves")

    with Network(topo) as net:
        tree = fit_distributed(net, shards, "classify", max_depth=6, n_bins=32)
        single = fit_single(X, y, "classify", max_depth=6, n_bins=32)
        identical = len(tree.nodes) == len(single.nodes) and all(
            a.feature == b.feature and a.threshold == b.threshold
            for a, b in zip(tree.nodes, single.nodes)
        )
        print(f"  fitted tree: depth {tree.depth}, {tree.n_leaves} leaves")
        print(f"  identical to single-node fit on the union: {identical}")
        train_acc = distributed_score(net, tree, shards)
        test_acc = distributed_score(net, tree, holdout)
        print(f"  distributed cross-validation: train {train_acc:.3f}, "
              f"holdout {test_acc:.3f}")

    # --- regression -------------------------------------------------------------
    rshards = {r: make_regression_shard(i, n_samples=400, seed=5)
               for i, r in enumerate(backends)}
    rholdout = {r: make_regression_shard(100 + i, n_samples=200, seed=5)
                for i, r in enumerate(backends)}
    print(f"\nregression: piecewise-constant target + noise, "
          f"{400 * len(backends)} samples")
    with Network(topo) as net:
        rtree = fit_distributed(net, rshards, "regress", max_depth=3, n_bins=32)
        mse = distributed_score(net, rtree, rholdout)
        print(f"  fitted tree: depth {rtree.depth}, {rtree.n_leaves} leaves")
        print(f"  holdout MSE {mse:.4f} (noise floor 0.01)")
        print("  leaf predictions:",
              sorted(round(n.prediction, 2) for n in rtree.nodes if n.is_leaf))


if __name__ == "__main__":
    main()
