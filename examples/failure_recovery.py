"""Failure injection and tree recovery (the dynamic-topology extension).

Kills an internal communication process mid-run, repairs the tree by
re-parenting its children, and shows the open stream continuing to
aggregate — the behaviour the paper's MRNet roadmap describes
("the network properly reconfigures and re-routes traffic").

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

import time

from repro import FIRST_APPLICATION_TAG, Network, balanced_topology
from repro.reliability import FailureInjector, recover_from_failure

TAG = FIRST_APPLICATION_TAG


def main() -> None:
    topo = balanced_topology(3, 2)
    print(f"initial tree: {topo}")
    with Network(topo) as net:
        s = net.new_stream(transform="sum", sync="wait_for_all")
        for be in net.backends:
            be.wait_for_stream(s.stream_id)

        def wave(value: int) -> int:
            for be in net.backends:
                be.send(s.stream_id, TAG, "%d", value)
            return s.recv(timeout=10).values[0]

        print(f"wave 1 aggregate: {wave(1)} (9 back-ends x 1)")

        victim = net.topology.internals[1]
        print(f"\nkilling communication process {victim} "
              f"(children {net.topology.children(victim)})...")
        FailureInjector(net).kill_node(victim)
        new_topo = recover_from_failure(net, victim)
        time.sleep(0.3)
        print(f"recovered tree: {new_topo}")
        print(f"  rank {victim}'s children re-parented to the front-end "
              f"(root fan-out now {new_topo.fanout(0)})")

        print(f"\nwave 2 aggregate: {wave(2)} (same 9 back-ends x 2)")

        print("\nlosing every internal node, one at a time:")
        inj = FailureInjector(net)
        for v in list(net.topology.internals):
            inj.kill_node(v)
            recover_from_failure(net, v)
            time.sleep(0.3)
            print(f"  killed {v}; tree is now {net.topology}")
        print(f"wave 3 aggregate: {wave(3)} (degenerated to a flat tree, "
              "still correct)")
        s.close()


if __name__ == "__main__":
    main()
