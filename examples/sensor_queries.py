"""TAG-style declarative queries over a TBON sensor network (Section 2.3).

A 27-node "sensor network" answers SQL-ish aggregation queries: the
WHERE clause filters at the leaves (in-network selection), aggregates
reduce in-flight, and EPOCH streams repeated rounds — TAG's model
mapped onto the MRNet-style middleware.

Run:  python examples/sensor_queries.py
"""

from __future__ import annotations

from repro import Network, balanced_topology
from repro.tools.tag import TagService


QUERIES = [
    "SELECT min(temp), avg(temp), max(temp) FROM sensors",
    "SELECT count(cpu), avg(cpu) FROM sensors WHERE cpu > 75",
    "SELECT max(mem) FROM sensors WHERE temp < 40 EPOCH 3",
]


def main() -> None:
    topo = balanced_topology(3, 3)
    print(f"sensor network: {topo.n_backends} nodes, "
          f"{topo.n_internal} in-network aggregators\n")
    with Network(topo) as net:
        svc = TagService(net)
        for sql in QUERIES:
            print(f"tag> {sql}")
            for res in svc.execute(sql):
                cells = ", ".join(
                    f"{k} = {v:.2f}" for k, v in sorted(res.values.items())
                )
                print(f"  epoch {res.epoch}: {cells}   [{res.n_rows} rows]")
            print()


if __name__ == "__main__":
    main()
